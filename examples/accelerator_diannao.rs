//! DianNao accelerator study (a reduced version of §5.7): predict the
//! synthesis results of DianNao configurations, run the cycle-accurate
//! performance model for power gating, and show the datatype/accuracy
//! trade-off.
//!
//! ```text
//! cargo run --release --example accelerator_diannao
//! ```

use sns::casestudies::diannao::{alexnet_like, classification_accuracy, simulate_diannao};
use sns::core::{train_sns, SnsTrainConfig};
use sns::designs::catalog;
use sns::designs::diannao::{diannao, DataType, DianNaoParams};
use sns::netlist::parse_and_elaborate;

fn main() {
    println!("training SNS...");
    let designs = catalog();
    let mut config = SnsTrainConfig::fast();
    config.sample = config.sample.with_max_paths(300);
    let (model, _) = train_sns(&designs[..16], &config);

    let layers = alexnet_like();
    println!("\nTn sweep (int16, like Figure 10):");
    println!("{:>4} {:>12} {:>12} {:>10} {:>14}", "Tn", "area um2", "power mW", "cycles", "infer/s @pred");
    for tn in [4u32, 8, 16, 32] {
        let p = DianNaoParams { tn, ..Default::default() };
        let d = diannao(&p);
        let nl = parse_and_elaborate(&d.verilog, &d.top).expect("generator output is valid");
        let perf = simulate_diannao(&p, &layers, &nl);
        // Power-gated prediction using the performance model's activities.
        let pred = model.predict_netlist(&nl, Some(&perf.activity));
        let freq_ghz = 1000.0 / pred.timing_ps;
        println!(
            "{:>4} {:>12.0} {:>12.3} {:>10} {:>14.1}",
            tn,
            pred.area_um2,
            pred.power_mw,
            perf.cycles,
            perf.throughput(freq_ghz)
        );
    }

    println!("\ndatatype sweep (Tn=16, like Figure 11):");
    println!("{:>6} {:>12} {:>12} {:>10}", "dtype", "area um2", "power mW", "accuracy");
    for dt in DataType::ALL {
        let p = DianNaoParams { tn: 16, datatype: dt, ..Default::default() };
        let d = diannao(&p);
        let nl = parse_and_elaborate(&d.verilog, &d.top).expect("generator output is valid");
        let pred = model.predict_netlist(&nl, None);
        let acc = classification_accuracy(dt, 42);
        println!("{:>6} {:>12.0} {:>12.3} {:>9.1}%", dt.tag(), pred.area_um2, pred.power_mw, 100.0 * acc);
    }
    println!("\n(int16 saturates the task accuracy — the paper's §5.7 conclusion.)");
}
