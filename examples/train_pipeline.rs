//! A tour of the training pipeline's intermediate artifacts (Figure 4):
//! dataset generation, path sampling, augmentation, and both model
//! training stages — printing what each step produced.
//!
//! ```text
//! cargo run --release --example train_pipeline
//! ```

use sns::core::dataset::{AugmentConfig, CircuitPathDataset, HardwareDesignDataset};
use sns::core::train::train_sns_on_labeled;
use sns::core::SnsTrainConfig;
use sns::designs::catalog;
use sns::sampler::SampleConfig;
use sns::vsynth::{CellLibrary, SynthOptions};

fn main() {
    let designs: Vec<_> = catalog().into_iter().take(12).collect();

    // Step 1: Hardware Design Dataset (Table 4) — label with the virtual
    // synthesizer.
    println!("== step 1: hardware design dataset ==");
    let dataset = HardwareDesignDataset::generate(&designs, &SynthOptions::default());
    for e in dataset.entries.iter().take(5) {
        println!(
            "  {:<22} {:>9.1} ps {:>12.1} um2 {:>9.4} mW  ({} gates)",
            e.design.name,
            e.report.timing_ps,
            e.report.area_um2,
            e.report.power_mw,
            e.report.gate_count
        );
    }
    println!("  ... {} designs total", dataset.entries.len());

    // Step 2: Circuit Path Dataset (Table 5) — sample + augment.
    println!("\n== step 2: circuit path dataset ==");
    let refs: Vec<_> = dataset.entries.iter().map(|e| &e.design).collect();
    let mut aug = AugmentConfig::fast();
    aug.markov_count = 100;
    aug.seqgan_count = 100;
    let sample = SampleConfig::paper_default().with_max_paths(300);
    let paths = CircuitPathDataset::build(&refs, &sample, &aug, &CellLibrary::freepdk15());
    println!(
        "  {} paths: {} direct + {} markov + {} seqgan",
        paths.len(),
        paths.direct_count,
        paths.markov_count,
        paths.seqgan_count
    );
    let (ids, label) = &paths.examples[0];
    println!("  example: {} tokens -> timing {:.1} ps, area {:.2} um2", ids.len(), label[0], label[1]);

    // Steps 3+4: Circuitformer + Aggregation MLPs.
    println!("\n== steps 3-4: model training ==");
    let mut config = SnsTrainConfig::fast();
    config.sample = sample;
    let entries: Vec<_> = dataset.entries.iter().collect();
    let (model, report) = train_sns_on_labeled(&entries, &config);
    println!(
        "  circuitformer: {} params, {} epochs",
        model.circuitformer().parameter_count(),
        report.cf_history.epochs.len()
    );
    for (i, e) in report.cf_history.epochs.iter().enumerate().step_by(4) {
        println!("    epoch {:>3}: train {:.4}  val {:.4}", i, e.train_loss, e.val_loss);
    }
    println!("  aggregation MLPs trained ({} features)", model.feature_dim());
    println!("\ndone — the model is ready for prediction (see quickstart example).");
}
