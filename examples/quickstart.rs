//! Quickstart: train a small SNS model and predict a design it has never
//! seen, comparing against the virtual synthesizer's ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sns::core::{train_sns, SnsTrainConfig};
use sns::designs::catalog;
use sns::netlist::parse_and_elaborate;
use sns::vsynth::{SynthOptions, VirtualSynthesizer};

fn main() {
    // 1. Take the 41-design dataset and hold one design out.
    let designs = catalog();
    let held_out = designs.iter().position(|d| d.name == "fir_16_16").expect("in catalog");
    let train_set: Vec<_> = designs
        .iter()
        .enumerate()
        .filter(|&(i, d)| i != held_out && d.base != designs[held_out].base)
        .map(|(_, d)| d.clone())
        .take(16)
        .collect();
    let target = &designs[held_out];

    // 2. Train (reduced schedule — pass SnsTrainConfig::paper() for the
    //    full Table 6 schedule).
    println!("training SNS on {} designs...", train_set.len());
    let mut config = SnsTrainConfig::fast();
    config.sample = config.sample.with_max_paths(400);
    let (model, report) = train_sns(&train_set, &config);
    println!(
        "  path dataset: {} ({} direct, {} markov, {} seqgan)",
        report.path_dataset_size, report.direct_paths, report.markov_paths, report.seqgan_paths
    );
    if let Some(last) = report.cf_history.last() {
        println!(
            "  circuitformer: train loss {:.4}, val loss {:.4} after {} epochs",
            last.train_loss,
            last.val_loss,
            report.cf_history.epochs.len()
        );
    }

    // 3. Predict the held-out design.
    let pred = model.predict_verilog(&target.verilog, &target.top).expect("valid Verilog");
    println!("\nSNS prediction for `{}` ({} paths, {:?}):", target.name, pred.path_count, pred.runtime);
    println!("  timing {:>10.1} ps", pred.timing_ps);
    println!("  area   {:>10.1} um2", pred.area_um2);
    println!("  power  {:>10.4} mW", pred.power_mw);
    println!("  critical path: {}", pred.critical_path.join(" -> "));

    // 4. Compare with the (much slower) virtual synthesizer.
    let nl = parse_and_elaborate(&target.verilog, &target.top).expect("valid Verilog");
    let truth = VirtualSynthesizer::new(SynthOptions::default()).synthesize(&nl);
    println!("\nvirtual synthesizer ground truth ({:?}):", truth.runtime);
    println!("  timing {:>10.1} ps", truth.timing_ps);
    println!("  area   {:>10.1} um2", truth.area_um2);
    println!("  power  {:>10.4} mW", truth.power_mw);
    println!(
        "\nprediction error: timing {:+.1}%, area {:+.1}%, power {:+.1}%",
        100.0 * (pred.timing_ps - truth.timing_ps) / truth.timing_ps,
        100.0 * (pred.area_um2 - truth.area_um2) / truth.area_um2,
        100.0 * (pred.power_mw - truth.power_mw) / truth.power_mw,
    );
}
