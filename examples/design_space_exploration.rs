//! BOOM-style design-space exploration (a reduced version of §5.6):
//! sweep a slice of the Table 10 grid with SNS, score CoreMark with the
//! analytical performance model, and report the Pareto designs.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use sns::casestudies::boom::{coremark_score, pareto_front, BoomDsePoint};
use sns::core::{train_sns, SnsTrainConfig};
use sns::designs::boomlike::{boom_like, BoomParams, Predictor};
use sns::designs::catalog;
use sns::netlist::parse_and_elaborate;

fn main() {
    // Train once on the standard dataset.
    println!("training SNS...");
    let designs = catalog();
    let mut config = SnsTrainConfig::fast();
    config.sample = config.sample.with_max_paths(300);
    let (model, _) = train_sns(&designs[..16], &config);

    // A 36-point slice of the 2592-point grid (full grid: Table10 bench).
    let mut grid = Vec::new();
    for predictor in Predictor::ALL {
        for core_width in [1, 2, 4] {
            for issue_slots in [8, 32] {
                for rob_size in [32, 96] {
                    grid.push(BoomParams {
                        predictor,
                        core_width,
                        issue_slots,
                        rob_size,
                        ..BoomParams::default()
                    });
                }
            }
        }
    }
    println!("exploring {} BOOM configurations with SNS...", grid.len());

    let mut points = Vec::new();
    for p in grid {
        let d = boom_like(&p);
        let nl = parse_and_elaborate(&d.verilog, &d.top).expect("generator output is valid");
        let pred = model.predict_netlist(&nl, None);
        let freq_ghz = 1000.0 / pred.timing_ps;
        points.push(BoomDsePoint {
            performance: coremark_score(&p) * freq_ghz,
            power_mw: pred.power_mw,
            area_um2: pred.area_um2,
            timing_ps: pred.timing_ps,
            params: p,
        });
    }
    // Normalize performance like Figure 8 (fastest = 1.0).
    let max_perf = points.iter().map(|p| p.performance).fold(0.0, f64::max);
    for p in &mut points {
        p.performance /= max_perf;
    }

    println!("\n{:<12} {:>5} {:>6} {:>5} {:>9} {:>10} {:>8}", "predictor", "width", "slots", "rob", "perf", "area um2", "mW");
    let front = pareto_front(&points, |p| p.performance, |p| p.power_mw);
    for &i in &front {
        let p = &points[i];
        println!(
            "{:<12} {:>5} {:>6} {:>5} {:>9.3} {:>10.0} {:>8.2}",
            p.params.predictor.tag(),
            p.params.core_width,
            p.params.issue_slots,
            p.params.rob_size,
            p.performance,
            p.area_um2,
            p.power_mw
        );
    }

    let best = front.last().map(|&i| &points[i]).expect("nonempty front");
    println!(
        "\nHighPerf pick: {} (perf {:.3}, {:.2} mW)",
        best.params.name(),
        best.performance,
        best.power_mw
    );
}
