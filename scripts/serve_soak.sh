#!/usr/bin/env bash
# Serve soak: the seeded multi-concurrency load sweep (k = 1/4/16/64)
# against both a single-replica server and a 4-replica sns-shard server,
# refreshing BENCH_serve.json with per-level req/s, client-side p50/p99,
# batcher coalescing stats, and shed (503) counts.
#
#   ./scripts/serve_soak.sh
#
# The sweep is deterministic end to end: the serving model trains from
# fixed seeds, the request schedule is a fixed function of the level,
# and the shard router places designs by content hash — so two soaks
# differ only by machine noise (each level keeps the better of two
# fresh-server attempts to damp that).
set -euo pipefail
cd "$(dirname "$0")/.."

export SNS_SOAK=1
cargo bench -q -p sns-bench --bench serve_load

echo "==> BENCH_serve.json"
grep -oE '\{"concurrency":[^}]*\}' BENCH_serve.json || true
