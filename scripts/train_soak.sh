#!/usr/bin/env bash
# Label-factory soak: runs the self-training daemon over >= 500 generated
# designs (bootstrap + online loop) from a fixed seed, refreshing
# BENCH_train.json with labeling/step throughput, the per-quartile
# disagreement trend, and the final zoo checkpoint provenance.
#
#   ./scripts/train_soak.sh [N_DESIGNS]
#
# The run is deterministic end to end: same seed + same step count give a
# bit-identical model (and therefore byte-identical weight hashes) at any
# SNS_THREADS / SNS_BATCH / SNS_SYNTH_THREADS — tests/train_determinism.rs
# holds that gate. SNS_TRAIN_REQUIRE_TREND=1 makes the soak fail unless
# the model-vs-vsynth relative error strictly decreases from the first to
# the last quartile of the run (the acceptance criterion: the factory is
# actually teaching the model, not just spinning).
set -euo pipefail
cd "$(dirname "$0")/.."

DESIGNS="${1:-500}"
ZOO="$(mktemp -d "${TMPDIR:-/tmp}/sns-train-soak.XXXXXX")"
trap 'rm -rf "$ZOO"' EXIT

SNS_TRAIN_REQUIRE_TREND=1 cargo run --release -q -p sns-train --bin train_soak -- \
  --designs "$DESIGNS" --zoo "$ZOO" --out BENCH_train.json

echo "==> BENCH_train.json"
cat BENCH_train.json
echo
echo "==> zoo manifest"
cat "$ZOO/manifest.json"
echo
