#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   ./scripts/tier1.sh
#
# Runs the release build, the full test suite, and clippy with warnings
# promoted to errors, from the repo root regardless of invocation dir.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# `cargo test` at the root only runs the root package; the serving stack
# and its substrates get exercised explicitly.
echo "==> cargo test -q -p sns-rt -p sns-core -p sns-serve -p sns-train -p sns-genmodel"
cargo test -q -p sns-rt -p sns-core -p sns-serve -p sns-train -p sns-genmodel

# The untrusted front-end: unit suites plus the seeded adversarial fuzz
# corpus (deep nesting, huge replication, truncated/mutated sources).
echo "==> cargo test -q -p sns-netlist -p sns-graphir -p sns-sampler"
cargo test -q -p sns-netlist -p sns-graphir -p sns-sampler

# No-new-panics gate: the untrusted pipeline (netlist/graphir/sampler),
# the network-facing serving layer (serve front-end, its binary, and the
# rt reactor substrate), the virtual synthesizer (labels every
# training design — a panic on one odd netlist kills a whole dataset
# build), and the self-training daemon (long-running; a panic hours into
# a soak loses the run) must stay free of
# unwrap/expect/panic!/unreachable! outside tests — every one of these
# is a remote crash when the input is hostile.
echo "==> no-new-panics grep gate (crates/{netlist,graphir,sampler,serve,vsynth,train}/src + rt net)"
panic_sites=$(
  for f in crates/netlist/src/*.rs crates/graphir/src/*.rs crates/sampler/src/*.rs \
           crates/serve/src/*.rs crates/serve/src/bin/*.rs crates/rt/src/net.rs \
           crates/vsynth/src/*.rs crates/train/src/*.rs crates/train/src/bin/*.rs; do
    # Cut each file at its #[cfg(test)] module; test code may panic freely.
    awk '/^#\[cfg\(test\)\]/ { exit } { print FILENAME ":" FNR ": " $0 }' "$f"
  done | grep -E '\.unwrap\(\)|\.expect\(|panic!|unreachable!' | grep -vE ':\s*//' || true
)
if [ -n "$panic_sites" ]; then
  echo "panic-capable call sites in untrusted-input crates:"
  echo "$panic_sites"
  exit 1
fi

# Differential conformance: 200 fixed-seed random designs through the
# sim-vs-gates / vsynth-invariant / predictor-determinism / serve-identity
# oracles, the incremental-ECO oracle smoke (25 hierarchical designs x 3
# random module edits, incremental ≡ from-scratch bit-for-bit) with its
# content-hash identity/sensitivity/collision suite, plus bit-exact replay
# of every checked-in corpus regression and the nn serialization/optimizer
# property suite the oracles lean on.
echo "==> cargo test -q -p sns-conformance -p sns-nn"
cargo test -q -p sns-conformance -p sns-nn

# The serve end-to-end suite boots real servers with worker/queue limits
# tuned per test; keep it single-threaded so the limits stay meaningful
# on small machines.
echo "==> cargo test -q --test serve_e2e -- --test-threads=1"
cargo test -q --test serve_e2e -- --test-threads=1

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# Fast-vs-reference synthesis identity on the blessed corpus plus a
# quick generated sample; the full 2000-design sweep lives in
# ./scripts/vsynth_soak.sh.
echo "==> vsynth_soak (200 designs)"
SNS_VSYNTH_SOAK_N=200 cargo run --release -q -p sns-conformance --bin vsynth_soak

# Label-factory gate: a ~100-design smoke exercises the full
# generate → vsynth-label → filter → fine-tune → checkpoint loop, then
# the ≥500-design soak enforces the disagreement-trend acceptance
# criterion (quartile mean rel-err strictly decreasing). The trend gate
# is only statistically meaningful at soak scale — at 100 designs each
# quartile holds 25 designs and the prequential error is dominated by
# generator variance, so the smoke runs ungated.
echo "==> train_soak smoke (100 designs, ungated)"
cargo run --release -q -p sns-train --bin train_soak -- \
  --designs 100 --out /tmp/BENCH_train_smoke.json
echo "==> train_soak trend gate (500 designs)"
SNS_TRAIN_REQUIRE_TREND=1 cargo run --release -q -p sns-train --bin train_soak -- \
  --designs 500 --out /tmp/BENCH_train_tier1.json

# Informational: how the kernel-bench snapshot moved relative to HEAD.
# Never fails the gate — the absolute acceptance numbers live in
# BENCH_kernels.json itself.
echo "==> bench_diff (informational)"
./scripts/bench_diff.sh || true

echo "==> tier-1 OK"
