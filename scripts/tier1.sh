#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   ./scripts/tier1.sh
#
# Runs the release build, the full test suite, and clippy with warnings
# promoted to errors, from the repo root regardless of invocation dir.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# `cargo test` at the root only runs the root package; the serving stack
# and its substrates get exercised explicitly.
echo "==> cargo test -q -p sns-rt -p sns-core -p sns-serve"
cargo test -q -p sns-rt -p sns-core -p sns-serve

# The serve end-to-end suite boots real servers with worker/queue limits
# tuned per test; keep it single-threaded so the limits stay meaningful
# on small machines.
echo "==> cargo test -q --test serve_e2e -- --test-threads=1"
cargo test -q --test serve_e2e -- --test-threads=1

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier-1 OK"
