#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   ./scripts/tier1.sh
#
# Runs the release build, the full test suite, and clippy with warnings
# promoted to errors, from the repo root regardless of invocation dir.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier-1 OK"
