#!/usr/bin/env bash
# Conformance soak: thousands of random designs through the full
# differential-oracle stack, with a throughput report.
#
#   ./scripts/conformance_soak.sh             # 2000 designs, seed 1
#   SNS_SOAK_N=10000 ./scripts/conformance_soak.sh
#   SNS_SOAK_SEED=42 ./scripts/conformance_soak.sh
#
# Writes BENCH_conformance.json at the repo root (designs/second plus a
# per-oracle checked/failed/seconds breakdown) and exits non-zero if any
# oracle disagrees. Failing designs are shrunk and persisted under
# tests/corpus/pending/ for promotion into the blessed corpus.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release -p sns-conformance --bin conformance_soak"
SNS_SOAK_N="${SNS_SOAK_N:-2000}" SNS_SOAK_SEED="${SNS_SOAK_SEED:-1}" \
  cargo run --release -p sns-conformance --bin conformance_soak

echo "==> BENCH_conformance.json"
cat BENCH_conformance.json
