#!/usr/bin/env bash
# ECO soak: the incremental oracle at scale plus a catalog warm-vs-cold
# speedup measurement.
#
#   ./scripts/eco_soak.sh                     # 500 designs x 4 edits, seed 1
#   SNS_ECO_N=2000 ./scripts/eco_soak.sh
#   SNS_ECO_EDITS=8 SNS_ECO_SEED=42 ./scripts/eco_soak.sh
#
# Every edit step's incremental re-prediction (predict_patch through a
# live session) must be bit-identical to a from-scratch run of the merged
# source — tokens, predictions, per-terminal samples — and the
# incremental netlist must equal the flat reference. A single-module edit
# on the catalog hierarchical Ariane-like core (branch unit only, timed
# under the paper-architecture Circuitformer) must re-predict at least
# 5x faster warm than cold. Writes BENCH_incremental.json at the repo root (edits/second,
# re-elaboration fraction, warm/cold speedup) and exits non-zero on any
# divergence or a speedup below the floor. Failing designs are shrunk and
# persisted under tests/corpus/pending/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release -p sns-conformance --bin eco_soak"
SNS_ECO_N="${SNS_ECO_N:-500}" SNS_ECO_EDITS="${SNS_ECO_EDITS:-4}" \
  SNS_ECO_SEED="${SNS_ECO_SEED:-1}" \
  cargo run --release -p sns-conformance --bin eco_soak

echo "==> BENCH_incremental.json"
cat BENCH_incremental.json
