#!/usr/bin/env bash
# Vsynth soak: the fast synthesis flow (parallel elaboration, expansion
# memoization, sparse STA) against the single-threaded dense reference.
#
#   ./scripts/vsynth_soak.sh                  # 2000 designs, seed 1
#   SNS_VSYNTH_SOAK_N=10000 ./scripts/vsynth_soak.sh
#   SNS_VSYNTH_SOAK_SEED=42 ./scripts/vsynth_soak.sh
#
# Two parts:
#   1. vsynth_soak — every blessed corpus case plus N generated designs
#      through the bit-identity oracle (graph node for node, labels bit
#      for bit, at 1 and 4 threads). Exits non-zero on any divergence;
#      failing designs are shrunk into tests/corpus/pending/.
#   2. vsynth_bench — times reference vs fast flows on the catalog suite
#      and writes BENCH_vsynth.json at the repo root (per-stage seconds
#      for elaborate/STA/sizing/power at 1 and pool threads).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release -p sns-conformance --bin vsynth_soak"
SNS_VSYNTH_SOAK_N="${SNS_VSYNTH_SOAK_N:-2000}" \
  SNS_VSYNTH_SOAK_SEED="${SNS_VSYNTH_SOAK_SEED:-1}" \
  cargo run --release -p sns-conformance --bin vsynth_soak

echo "==> cargo run --release -p sns-bench --bin vsynth_bench"
cargo run --release -p sns-bench --bin vsynth_bench

echo "==> BENCH_vsynth.json"
cat BENCH_vsynth.json
