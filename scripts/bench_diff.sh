#!/usr/bin/env bash
# Compares two kernel-bench snapshots (default: the committed
# BENCH_kernels.json at HEAD vs. the working tree) and prints the
# per-shape gemm speedup movement plus per-benchmark timing deltas.
#
#   ./scripts/bench_diff.sh                 # HEAD vs. working tree
#   ./scripts/bench_diff.sh old.json new.json
#
# Informational: exits 0 when there is simply no baseline to diff
# against (fresh clone, artifact not committed yet).
set -euo pipefail
cd "$(dirname "$0")/.."

OLD="${1:-}"
NEW="${2:-BENCH_kernels.json}"
CLEANUP=""

if [ -z "$OLD" ]; then
  OLD="$(mktemp)"
  CLEANUP="$OLD"
  if ! git show HEAD:BENCH_kernels.json > "$OLD" 2>/dev/null; then
    echo "bench_diff: no BENCH_kernels.json at HEAD — nothing to diff against"
    rm -f "$CLEANUP"
    exit 0
  fi
fi

if [ ! -f "$NEW" ]; then
  echo "bench_diff: $NEW does not exist — run the micro_kernels bench first"
  [ -n "$CLEANUP" ] && rm -f "$CLEANUP"
  exit 0
fi

status=0
cargo run -q --release -p sns-bench --bin bench_diff -- "$OLD" "$NEW" || status=$?
[ -n "$CLEANUP" ] && rm -f "$CLEANUP"
exit $status
