#!/usr/bin/env bash
# Smoke test for the sns-serve daemon as a real process: build it, boot
# it with a quick-trained demo model, poll /healthz, run one /predict,
# then shut it down with SIGTERM and check it drained cleanly.
#
#   ./scripts/smoke_serve.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-17878}"
ADDR="127.0.0.1:${PORT}"

echo "==> cargo build --release -p sns-serve"
cargo build --release -p sns-serve

echo "==> starting sns-serve --train 3 on ${ADDR}"
./target/release/sns-serve --train 3 --addr "${ADDR}" &
SERVER_PID=$!
trap 'kill "${SERVER_PID}" 2>/dev/null || true' EXIT

# /dev/tcp-based HTTP: no curl dependency needed in a hermetic container.
http_get() {
    local path="$1"
    exec 3<>"/dev/tcp/127.0.0.1/${PORT}" || return 1
    printf 'GET %s HTTP/1.1\r\nhost: smoke\r\nconnection: close\r\n\r\n' "${path}" >&3
    cat <&3
    exec 3>&- 3<&-
}

http_post() {
    local path="$1" body="$2"
    exec 3<>"/dev/tcp/127.0.0.1/${PORT}" || return 1
    printf 'POST %s HTTP/1.1\r\nhost: smoke\r\ncontent-length: %s\r\nconnection: close\r\n\r\n%s' \
        "${path}" "${#body}" "${body}" >&3
    cat <&3
    exec 3>&- 3<&-
}

echo "==> waiting for /healthz (training the demo model takes a moment)"
for _ in $(seq 1 120); do
    if OUT="$(http_get /healthz 2>/dev/null)" && grep -q '"status":"ok"' <<<"${OUT}"; then
        READY=1
        break
    fi
    sleep 1
done
[ "${READY:-0}" = "1" ] || { echo "FAIL: server never became healthy"; exit 1; }
echo "    healthy"

echo "==> POST /predict"
BODY='{"verilog": "module mac (input clk, input [7:0] a, b, output [15:0] y);\n reg [15:0] acc;\n always @(posedge clk) acc <= acc + a * b;\n assign y = acc;\nendmodule", "top": "mac", "clock_ps": 1500}'
OUT="$(http_post /predict "${BODY}")"
grep -q 'HTTP/1.1 200' <<<"${OUT}" || { echo "FAIL: /predict did not 200:"; echo "${OUT}"; exit 1; }
grep -q '"timing_ps"' <<<"${OUT}" || { echo "FAIL: no timing in response:"; echo "${OUT}"; exit 1; }
echo "    $(grep -o '"timing_ps":[0-9.]*' <<<"${OUT}") ps"

echo "==> GET /metrics"
OUT="$(http_get /metrics)"
grep -q '"predict_ok":1' <<<"${OUT}" || { echo "FAIL: metrics do not show the prediction:"; echo "${OUT}"; exit 1; }
echo "    metrics reconcile"

echo "==> SIGTERM and drain"
kill -TERM "${SERVER_PID}"
wait "${SERVER_PID}"
trap - EXIT
echo "==> smoke_serve OK"
