//! The BOOM design-space exploration (§5.6).
//!
//! The paper runs CoreMark on Chipyard's cycle-accurate simulator for each
//! of the 2592 Table 10 configurations, then scales scores by the
//! SNS-predicted frequency. Chipyard is not available here, so
//! [`coremark_score`] is an analytical IPC model that encodes the
//! first-order microarchitectural effects the paper reports:
//!
//! * IPC rises with core width at strongly diminishing returns,
//! * issue slots beyond ~4× the core width add nothing (the 4-wide core
//!   is decoder-bound, §5.6 observation 1),
//! * ROB size and physical registers saturate once they cover the window,
//! * better branch predictors help modestly on CoreMark,
//! * CoreMark is not memory intensive, so memory ports barely matter
//!   (§5.6 observation 3).

use sns_designs::boomlike::{BoomParams, Predictor};

/// Relative CoreMark score (IPC model, frequency-independent). Multiply
/// by the SNS-predicted frequency to obtain performance as in Figure 8.
pub fn coremark_score(p: &BoomParams) -> f64 {
    let w = p.core_width as f64;
    // Width: strong but sub-linear gains (decoder/dependency limits).
    let width_factor = w.powf(0.62);
    // Issue queue: saturates at 4 slots per way.
    let issue_factor = ((p.issue_slots as f64) / (4.0 * w)).min(1.0).powf(0.28);
    // ROB: needs ~24 entries per way to cover the window.
    let rob_factor = ((p.rob_size as f64) / (24.0 * w)).min(1.0).powf(0.22);
    // Physical registers: beyond the architectural 32, ~16 per way help.
    let prf_factor = (((p.int_regs as f64) - 32.0) / (16.0 * w)).clamp(0.1, 1.0).powf(0.2);
    // Fetch: needs ~2 instructions per decode way.
    let fetch_factor = ((p.fetch_width as f64) / (2.0 * w)).min(1.0).powf(0.4);
    // Branch prediction quality.
    let bp_factor = match p.predictor {
        Predictor::TageL => 1.0,
        Predictor::Alpha21264 => 0.975,
        Predictor::Boom2 => 0.94,
    };
    // CoreMark is not memory bound.
    let mem_factor = 1.0 + 0.012 * (p.mem_ports as f64 - 1.0);
    let cache_factor = 1.0 + 0.006 * ((p.dcache_ways as f64) - 4.0) / 4.0;
    width_factor * issue_factor * rob_factor * prf_factor * fetch_factor * bp_factor
        * mem_factor
        * cache_factor
}

/// One evaluated DSE point.
#[derive(Debug, Clone)]
pub struct BoomDsePoint {
    /// The configuration.
    pub params: BoomParams,
    /// Normalized performance (score × frequency, caller-normalized).
    pub performance: f64,
    /// Predicted power in mW.
    pub power_mw: f64,
    /// Predicted area in µm².
    pub area_um2: f64,
    /// Predicted clock period in ps.
    pub timing_ps: f64,
}

/// Extracts the Pareto frontier maximizing `value` while minimizing
/// `cost`. Returns indices into `points`, sorted by cost.
pub fn pareto_front<T>(
    points: &[T],
    value: impl Fn(&T) -> f64,
    cost: impl Fn(&T) -> f64,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        cost(&points[a]).partial_cmp(&cost(&points[b])).expect("finite costs")
    });
    let mut front = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for i in order {
        let v = value(&points[i]);
        if v > best {
            best = v;
            front.push(i);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BoomParams {
        BoomParams::default()
    }

    #[test]
    fn wider_cores_are_faster_with_diminishing_returns() {
        let s1 = coremark_score(&BoomParams { core_width: 1, ..base() });
        let s2 = coremark_score(&BoomParams { core_width: 2, ..base() });
        let s4 = coremark_score(&BoomParams { core_width: 4, issue_slots: 16, ..base() });
        assert!(s2 > s1 && s4 > s2);
        assert!((s2 / s1) > (s4 / s2), "returns must diminish");
    }

    #[test]
    fn issue_slots_saturate_on_a_4_wide_core() {
        // §5.6 observation 1: 32 slots give no speedup over 16 at width 4.
        let p16 = BoomParams { core_width: 4, issue_slots: 16, ..base() };
        let p32 = BoomParams { core_width: 4, issue_slots: 32, ..base() };
        let s16 = coremark_score(&p16);
        let s32 = coremark_score(&p32);
        assert!((s32 - s16).abs() < 1e-9, "{s16} vs {s32}");
        // But 8 slots do hurt.
        let p8 = BoomParams { core_width: 4, issue_slots: 8, ..base() };
        assert!(coremark_score(&p8) < s16);
    }

    #[test]
    fn memory_ports_barely_matter() {
        // §5.6 observation 3.
        let one = coremark_score(&BoomParams { mem_ports: 1, ..base() });
        let two = coremark_score(&BoomParams { mem_ports: 2, ..base() });
        assert!(two > one);
        assert!((two - one) / one < 0.02);
    }

    #[test]
    fn predictor_ordering_matches_quality() {
        let tage = coremark_score(&BoomParams { predictor: Predictor::TageL, ..base() });
        let alpha = coremark_score(&BoomParams { predictor: Predictor::Alpha21264, ..base() });
        let boom2 = coremark_score(&BoomParams { predictor: Predictor::Boom2, ..base() });
        assert!(tage > alpha && alpha > boom2);
    }

    #[test]
    fn pareto_front_is_monotone() {
        #[derive(Debug)]
        struct P(f64, f64); // (value, cost)
        let pts = vec![P(1.0, 1.0), P(2.0, 2.0), P(1.5, 3.0), P(3.0, 4.0), P(2.5, 5.0)];
        let front = pareto_front(&pts, |p| p.0, |p| p.1);
        assert_eq!(front, vec![0, 1, 3]);
    }
}
