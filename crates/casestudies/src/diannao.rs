//! The DianNao case study (§5.7): cycle-accurate performance model,
//! per-register activity coefficients, and the datatype-vs-accuracy
//! experiment.

use std::collections::HashMap;

use sns_rt::rng::StdRng;

use sns_designs::diannao::{DataType, DianNaoParams};
use sns_netlist::{CellKind, Netlist};

/// One neural-network layer shape for the performance model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerShape {
    /// Input neurons (fan-in per output, for FC; Cin·K² for conv).
    pub nin: u32,
    /// Output neurons.
    pub nout: u32,
}

/// An AlexNet-like layer stack (sized for CIFAR-10-scale inputs), used as
/// the workload in the DianNao experiments.
pub fn alexnet_like() -> Vec<LayerShape> {
    vec![
        LayerShape { nin: 363, nout: 96 },   // conv1: 3*11*11
        LayerShape { nin: 2400, nout: 256 }, // conv2: 96*5*5
        LayerShape { nin: 2304, nout: 384 }, // conv3: 256*3*3
        LayerShape { nin: 3456, nout: 384 }, // conv4
        LayerShape { nin: 3456, nout: 256 }, // conv5
        LayerShape { nin: 4096, nout: 1024 },// fc6 (scaled for CIFAR)
        LayerShape { nin: 1024, nout: 256 }, // fc7
        LayerShape { nin: 256, nout: 10 },   // fc8
    ]
}

/// The result of simulating a workload on a DianNao configuration.
#[derive(Debug, Clone)]
pub struct DianNaoPerf {
    /// Total cycles for one inference.
    pub cycles: u64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// Average NFU utilization in [0, 1].
    pub utilization: f64,
    /// Per-register activity coefficients (keyed by register cell name),
    /// ready to feed SNS power gating (§3.4.4) or the virtual
    /// synthesizer.
    pub activity: HashMap<String, f32>,
}

impl DianNaoPerf {
    /// Inference throughput at a clock frequency (GHz → inferences/s).
    pub fn throughput(&self, freq_ghz: f64) -> f64 {
        freq_ghz * 1e9 / self.cycles as f64
    }
}

/// Cycle-accurate simulation of `layers` on the DianNao configuration
/// `p`, plus activity-coefficient extraction for the registers of the
/// generated design `netlist` (pass the netlist elaborated from
/// [`sns_designs::diannao::diannao`]).
pub fn simulate_diannao(
    p: &DianNaoParams,
    layers: &[LayerShape],
    netlist: &Netlist,
) -> DianNaoPerf {
    let tn = p.tn as u64;
    let pipe_fill = p.pipeline_stages as u64;
    let mut cycles = 0u64;
    let mut macs = 0u64;
    let mut busy_mac_slots = 0u64;
    for l in layers {
        // Tn output neurons and Tn input neurons are processed per cycle:
        // ceil(nout/Tn) output groups, each needing ceil(nin/Tn) cycles.
        let in_steps = (l.nin as u64).div_ceil(tn);
        let out_steps = (l.nout as u64).div_ceil(tn);
        let layer_cycles = in_steps * out_steps + pipe_fill;
        cycles += layer_cycles;
        macs += l.nin as u64 * l.nout as u64;
        busy_mac_slots += in_steps * out_steps * tn * tn;
    }
    // Utilization: useful MACs over offered MAC slots.
    let utilization = (macs as f64 / busy_mac_slots.max(1) as f64).min(1.0);

    // Activity coefficients per pipeline region. NFU-1 product registers
    // toggle with operand churn (high), NFU-2 sums are partially
    // correlated (medium), NFU-3 activations change once per output
    // (lower). Idle (fill) cycles reduce everything.
    let busy_frac = 1.0 - (layers.len() as f64 * pipe_fill as f64) / cycles.max(1) as f64;
    let a1 = (0.85 * utilization * busy_frac) as f32;
    let a2 = (0.65 * utilization * busy_frac) as f32;
    let a3 = (0.40 * utilization * busy_frac) as f32;
    let mut activity = HashMap::new();
    for c in netlist.cells() {
        if c.kind != CellKind::Dff {
            continue;
        }
        let coeff = if c.name.starts_with('p') {
            a1
        } else if c.name.starts_with("sum") {
            a2
        } else if c.name.starts_with("act") {
            a3
        } else {
            (0.5 * utilization) as f32
        };
        activity.insert(c.name.clone(), coeff.clamp(0.005, 1.0));
    }
    DianNaoPerf { cycles, macs, utilization, activity }
}

// ---- datatype vs model accuracy (Figure 11) ----

/// Quantizes a value as datatype `dt` with a fixed-point scale chosen for
/// a [-8, 8) dynamic range (integers) or by mantissa rounding (floats).
fn quantize(x: f64, dt: DataType) -> f64 {
    match dt {
        DataType::Int8 => {
            let scale = 127.0 / 8.0;
            ((x * scale).round() / scale).clamp(-8.0, 8.0 - 1.0 / scale)
        }
        DataType::Int16 => {
            let scale = 32767.0 / 8.0;
            ((x * scale).round() / scale).clamp(-8.0, 8.0 - 1.0 / scale)
        }
        DataType::Fp16 | DataType::Bf16 | DataType::Tf32 | DataType::Fp32 => {
            let (_, m) = dt.float_fields().expect("float type");
            if x == 0.0 {
                return 0.0;
            }
            let exp = x.abs().log2().floor();
            let scale = 2f64.powf(m as f64 - exp);
            (x * scale).round() / scale
        }
    }
}

/// Measures classification accuracy of a linear classifier evaluated with
/// weights *and* activations quantized to `dt`.
///
/// This is the stand-in for the paper's AlexNet-on-CIFAR-10 sweep: the
/// task is a synthetic two-class problem with heavy-tailed feature scales
/// (as real activations have), trained in full precision and evaluated
/// quantized. It reproduces the paper's Figure 11(b) shape: int8 loses
/// accuracy, and everything from int16 up is indistinguishable.
pub fn classification_accuracy(dt: DataType, seed: u64) -> f64 {
    let dim = 64;
    let n_train = 600;
    let n_test = 2000;
    let mut rng = StdRng::seed_from_u64(seed);
    // Heavy-tailed per-feature scales, as real activations have: a few
    // large-magnitude features that set the quantizer's dynamic range but
    // carry almost no class signal, plus many small features that decide
    // the class in aggregate. int8's coarse step (sized for the large
    // features) crushes the small ones; int16 and floats keep them.
    let scales: Vec<f64> =
        (0..dim).map(|i| if i < 4 { 4.0 } else { 0.12 }).collect();
    let true_w: Vec<f64> = (0..dim)
        .map(|i| {
            if i < 4 {
                rng.gen_range(-0.05..0.05)
            } else {
                rng.gen_range(-1.0f64..1.0)
            }
        })
        .collect();
    let sample = |rng: &mut StdRng| -> (Vec<f64>, f64) {
        let x: Vec<f64> =
            scales.iter().map(|s| s * (rng.gen_range(-1.0f64..1.0))).collect();
        let score: f64 = x.iter().zip(&true_w).map(|(a, b)| a * b).sum();
        let noise = rng.gen_range(-0.05f64..0.05);
        (x, if score + noise > 0.0 { 1.0 } else { -1.0 })
    };
    // Train a logistic classifier in full precision.
    let train: Vec<(Vec<f64>, f64)> = (0..n_train).map(|_| sample(&mut rng)).collect();
    let mut w = vec![0.0f64; dim];
    for _ in 0..300 {
        for (x, y) in &train {
            let score: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
            let margin = y * score;
            let g = -y / (1.0 + margin.exp());
            for (wi, xi) in w.iter_mut().zip(x) {
                *wi -= 0.05 * (g * xi + 1e-4 * *wi);
            }
        }
    }
    // Evaluate with quantized weights and activations.
    let wq: Vec<f64> = w.iter().map(|&v| quantize(v, dt)).collect();
    let mut correct = 0;
    for _ in 0..n_test {
        let (x, y) = sample(&mut rng);
        let score: f64 =
            x.iter().zip(&wq).map(|(a, b)| quantize(*a, dt) * b).sum();
        if (score > 0.0) == (y > 0.0) {
            correct += 1;
        }
    }
    correct as f64 / n_test as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_designs::diannao::diannao;
    use sns_netlist::parse_and_elaborate;

    #[test]
    fn tn16_is_faster_than_tn4() {
        let layers = alexnet_like();
        let nl4 = {
            let d = diannao(&DianNaoParams { tn: 4, ..Default::default() });
            parse_and_elaborate(&d.verilog, &d.top).unwrap()
        };
        let nl16 = {
            let d = diannao(&DianNaoParams::default());
            parse_and_elaborate(&d.verilog, &d.top).unwrap()
        };
        let p4 = simulate_diannao(&DianNaoParams { tn: 4, ..Default::default() }, &layers, &nl4);
        let p16 = simulate_diannao(&DianNaoParams::default(), &layers, &nl16);
        assert!(p16.cycles < p4.cycles / 8, "{} vs {}", p16.cycles, p4.cycles);
        assert_eq!(p4.macs, p16.macs);
    }

    #[test]
    fn utilization_drops_for_oversized_tn() {
        let tiny_layer = vec![LayerShape { nin: 6, nout: 6 }];
        let p32 = DianNaoParams { tn: 32, ..Default::default() };
        let d = diannao(&DianNaoParams { tn: 4, ..Default::default() });
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        let perf = simulate_diannao(&p32, &tiny_layer, &nl);
        assert!(perf.utilization < 0.1, "utilization {}", perf.utilization);
    }

    #[test]
    fn activity_coefficients_cover_registers_by_region() {
        let p = DianNaoParams { tn: 4, ..Default::default() };
        let d = diannao(&p);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        let perf = simulate_diannao(&p, &alexnet_like(), &nl);
        assert!(!perf.activity.is_empty());
        // NFU-1 registers (products) busier than NFU-3 (activations).
        let a1 = perf.activity.iter().find(|(k, _)| k.starts_with('p')).map(|(_, v)| *v);
        let a3 = perf.activity.iter().find(|(k, _)| k.starts_with("act")).map(|(_, v)| *v);
        if let (Some(a1), Some(a3)) = (a1, a3) {
            assert!(a1 > a3, "NFU-1 {a1} should exceed NFU-3 {a3}");
        } else {
            panic!("expected both NFU-1 and NFU-3 registers in the activity map");
        }
    }

    #[test]
    fn figure_11_accuracy_shape() {
        // int8 visibly worse; int16 and all floats saturate.
        let acc: Vec<(DataType, f64)> =
            DataType::ALL.iter().map(|&dt| (dt, classification_accuracy(dt, 5))).collect();
        let get = |dt: DataType| acc.iter().find(|(d, _)| *d == dt).unwrap().1;
        let int8 = get(DataType::Int8);
        let int16 = get(DataType::Int16);
        let fp32 = get(DataType::Fp32);
        assert!(int8 < int16 - 0.015, "int8 {int8} should lose accuracy vs int16 {int16}");
        assert!((int16 - fp32).abs() < 0.02, "int16 {int16} should match fp32 {fp32}");
        assert!(fp32 > 0.88, "fp32 accuracy {fp32} too low for a sane task");
    }

    #[test]
    fn quantization_is_identity_ish_for_fp32() {
        for &x in &[0.12345, -3.75, 0.0, 7.5] {
            let q = quantize(x, DataType::Fp32);
            assert!((q - x).abs() < 1e-6, "{x} -> {q}");
        }
        // int8 is coarse.
        let q = quantize(0.033, DataType::Int8);
        assert!((q - 0.033).abs() > 1e-4);
    }
}
