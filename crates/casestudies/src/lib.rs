//! # sns-casestudies
//!
//! The two case studies of the SNS paper's evaluation:
//!
//! * [`boom`] — the RISC-V BOOM design-space exploration (§5.6): the
//!   2592-point Table 10 grid, an analytical CoreMark performance model,
//!   and Pareto-selection helpers behind Figure 8 / Table 11.
//! * [`diannao`] — the DianNao accelerator study (§5.7): a cycle-accurate
//!   performance model that also produces per-register activity
//!   coefficients for power gating, the Table 13 DSE grid, and the
//!   datatype-vs-accuracy experiment behind Figure 11 (a quantization
//!   study on a synthetic classification task standing in for
//!   AlexNet/CIFAR-10 — see DESIGN.md).

pub mod boom;
pub mod diannao;

pub use boom::{coremark_score, pareto_front, BoomDsePoint};
pub use diannao::{classification_accuracy, simulate_diannao, DianNaoPerf, LayerShape};
