//! # sns-designs
//!
//! The hardware-design dataset generators (§4.1 / Table 3 of the SNS
//! paper).
//!
//! The paper collects 41 open-source Verilog designs across ten
//! application classes (processor cores, peripherals, ML accelerators,
//! vector units, signal processing, crypto, linear algebra, sorting,
//! non-linear approximation, and "other"), re-implementing several
//! MachSuite kernels in Chisel. Those exact repositories are not
//! available here, so this crate provides *parameterizable generators* in
//! the same classes and size range, each emitting plain synthesizable
//! Verilog **source text** — which forces the whole SNS front-end (parser
//! → elaborator → GraphIR) on every use, exactly like the paper's flow
//! compiles Verilog through Yosys.
//!
//! [`catalog`] returns the standard 41-design dataset.
//!
//! # Example
//!
//! ```rust
//! use sns_designs::catalog;
//! use sns_netlist::parse_and_elaborate;
//!
//! let designs = catalog();
//! assert_eq!(designs.len(), 41);
//! let d = &designs[0];
//! let netlist = parse_and_elaborate(&d.verilog, &d.top).expect("catalog designs elaborate");
//! assert!(netlist.logic_cell_count() > 0);
//! ```

pub mod boomlike;
pub mod cores;
pub mod crypto;
pub mod diannao;
pub mod dsp;
pub mod extra;
pub mod linalg;
pub mod mlaccel;
pub mod misc;
pub mod nonlinear;
pub mod peripherals;
pub mod sort;
pub mod vector;

use std::fmt;

/// The application classes of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Rocket / Ariane / Sodor-class processor cores.
    ProcessorCore,
    /// IceNet / GPIO-class peripheral components.
    Peripheral,
    /// Gemmini / NVDLA / DianNao-class ML accelerators.
    MachineLearning,
    /// SIMD ALUs / Hwacha-class vector arithmetic.
    VectorArithmetic,
    /// FFT / convolution signal processing.
    SignalProcessing,
    /// AES / SHA3 cryptographic arithmetic.
    Cryptographic,
    /// GEMM / SPMV linear algebra.
    LinearAlgebra,
    /// Merge / radix sorting.
    Sort,
    /// Lookup tables / piecewise approximation.
    NonlinearApprox,
    /// FP unit / Stencil2D / Viterbi.
    Other,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::ProcessorCore => "processor-core",
            Family::Peripheral => "peripheral",
            Family::MachineLearning => "ml-accelerator",
            Family::VectorArithmetic => "vector-arithmetic",
            Family::SignalProcessing => "signal-processing",
            Family::Cryptographic => "cryptographic",
            Family::LinearAlgebra => "linear-algebra",
            Family::Sort => "sort",
            Family::NonlinearApprox => "nonlinear-approx",
            Family::Other => "other",
        };
        f.write_str(s)
    }
}

/// One generated design: a name, its class, and Verilog source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    /// Unique dataset name, e.g. `"simd_alu_8x16"`.
    pub name: String,
    /// Application class.
    pub family: Family,
    /// Top module name within [`Design::verilog`].
    pub top: String,
    /// Synthesizable Verilog source.
    pub verilog: String,
    /// Designs generated from the same parameterizable base share a base
    /// id; the dataset split keeps a base on one side only (§4.1: "we
    /// avoid putting designs generated from the same parameterizable base
    /// design in both the training and the testing sets").
    pub base: String,
}

impl Design {
    /// Creates a design record.
    pub fn new(
        name: impl Into<String>,
        family: Family,
        top: impl Into<String>,
        base: impl Into<String>,
        verilog: String,
    ) -> Self {
        Design { name: name.into(), family, top: top.into(), base: base.into(), verilog }
    }
}

/// The standard 41-design hardware dataset (the analogue of Table 3).
pub fn catalog() -> Vec<Design> {
    vec![
        // Processor cores (4)
        cores::sodor_like(32),
        cores::rocket_like(32),
        cores::rocket_like(64),
        cores::ariane_like(),
        // Peripherals (4)
        peripherals::gpio(8),
        peripherals::gpio(32),
        peripherals::uart_like(),
        peripherals::icenet_like(),
        // ML accelerators (6)
        mlaccel::systolic_array(4, 8),
        mlaccel::systolic_array(8, 16),
        mlaccel::nvdla_like(8),
        diannao::diannao(&diannao::DianNaoParams { tn: 4, ..Default::default() }),
        diannao::diannao(&diannao::DianNaoParams { tn: 8, ..Default::default() }),
        diannao::diannao(&diannao::DianNaoParams::default()),
        // Vector arithmetic (5)
        vector::simd_alu(4, 8),
        vector::simd_alu(8, 16),
        vector::simd_alu(16, 32),
        vector::hwacha_like(4, 32),
        vector::hwacha_like(8, 16),
        // Signal processing (5)
        dsp::fft_stage(8, 16),
        dsp::fft_stage(16, 16),
        dsp::fir(8, 16),
        dsp::fir(16, 16),
        dsp::conv2d(3, 8),
        // Crypto (3)
        crypto::aes_round(),
        crypto::sha3_like(4),
        crypto::sha3_like(8),
        // Linear algebra (4)
        linalg::gemm(2, 16),
        linalg::gemm(4, 16),
        linalg::spmv(4, 16),
        linalg::spmv(8, 32),
        // Sort (4)
        sort::merge_sort_network(8, 16),
        sort::merge_sort_network(16, 16),
        sort::radix_sort_stage(8, 16),
        sort::radix_sort_stage(16, 32),
        // Non-linear approximation (3)
        nonlinear::lut(128, 8),
        nonlinear::lut(64, 16),
        nonlinear::piecewise(8, 16),
        // Other (3)
        misc::fp_unit(),
        misc::stencil2d(1, 16),
        misc::viterbi(4, 8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_has_41_unique_designs() {
        let c = catalog();
        assert_eq!(c.len(), 41, "the paper's dataset has 41 designs");
        let names: HashSet<_> = c.iter().map(|d| d.name.clone()).collect();
        assert_eq!(names.len(), 41, "design names must be unique");
    }

    #[test]
    fn catalog_covers_all_families() {
        let c = catalog();
        let fams: HashSet<_> = c.iter().map(|d| d.family).collect();
        assert_eq!(fams.len(), 10, "all ten Table 3 classes present");
    }

    #[test]
    fn parameter_variants_share_a_base() {
        let c = catalog();
        let bases: HashSet<_> = c.iter().map(|d| d.base.clone()).collect();
        assert!(bases.len() >= 20, "enough independent bases for a fair split");
        assert!(bases.len() < c.len(), "some designs are parameter variants");
    }
}
