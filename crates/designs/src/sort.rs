//! Sorting-network generators (merge sort network, radix sort stage).

use crate::{Design, Family};

/// Emits one compare-exchange between element wires `a` and `b`.
fn compare_exchange(v: &mut String, width: u32, a: &str, b: &str, lo: &str, hi: &str) {
    let im = width - 1;
    v.push_str(&format!(
        "    wire cmp_{lo} = {a} < {b};\n    wire [{im}:0] {lo} = cmp_{lo} ? {a} : {b};\n    wire [{im}:0] {hi} = cmp_{lo} ? {b} : {a};\n"
    ));
}

/// A Batcher odd-even merge sorting network over `n` elements with a
/// pipeline register after every stage — the structural analogue of the
/// MachSuite merge-sort kernel as hardware.
pub fn merge_sort_network(n: u32, width: u32) -> Design {
    assert!(n.is_power_of_two() && n >= 2, "n must be a power of two");
    let im = width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule msort{n}_{width} (\n    input clk,\n    input [{b}:0] unsorted,\n    output [{b}:0] sorted\n);\n",
        b = n * width - 1
    ));
    let mut cur: Vec<String> = (0..n)
        .map(|i| {
            let nm = format!("e0_{i}");
            v.push_str(&format!(
                "    wire [{im}:0] {nm} = unsorted[{hi}:{lo}];\n",
                hi = (i + 1) * width - 1,
                lo = i * width
            ));
            nm
        })
        .collect();

    // Batcher odd-even mergesort comparator schedule.
    let mut stage = 1usize;
    let nu = n as usize;
    let mut p = 1;
    while p < nu {
        let mut k = p;
        while k >= 1 {
            let mut pairs = Vec::new();
            let mut j = k % p;
            while j + k < nu {
                for i in 0..k {
                    let lo_i = j + i;
                    let hi_i = j + i + k;
                    if hi_i < nu && (lo_i / (p * 2)) == (hi_i / (p * 2)) {
                        pairs.push((lo_i, hi_i));
                    }
                }
                j += 2 * k;
            }
            // Apply this comparator stage combinationally.
            let mut next = cur.clone();
            for (idx, &(a, b)) in pairs.iter().enumerate() {
                let lo = format!("s{stage}_{idx}_lo");
                let hi = format!("s{stage}_{idx}_hi");
                compare_exchange(&mut v, width, &cur[a], &cur[b], &lo, &hi);
                next[a] = lo;
                next[b] = hi;
            }
            // Pipeline register after the stage.
            for (i, nm) in next.iter().enumerate() {
                v.push_str(&format!(
                    "    reg [{im}:0] r{stage}_{i};\n    always @(posedge clk) r{stage}_{i} <= {nm};\n"
                ));
            }
            cur = (0..nu).map(|i| format!("r{stage}_{i}")).collect();
            stage += 1;
            k /= 2;
        }
        p *= 2;
    }
    for (i, nm) in cur.iter().enumerate() {
        v.push_str(&format!(
            "    assign sorted[{hi}:{lo}] = {nm};\n",
            hi = (i as u32 + 1) * width - 1,
            lo = i as u32 * width
        ));
    }
    v.push_str("endmodule\n");
    Design::new(
        format!("msort_{n}_{width}"),
        Family::Sort,
        format!("msort{n}_{width}"),
        "msort",
        v,
    )
}

/// One radix-sort counting stage: per-element 2-bit digit extraction,
/// one-hot digit histogram adders and prefix-sum offset computation.
pub fn radix_sort_stage(n: u32, width: u32) -> Design {
    let im = width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule radix{n}_{width} (\n    input clk, input rst,\n    input [{b}:0] keys,\n    input [1:0] digit_sel,\n    output [15:0] count0, output [15:0] count1,\n    output [15:0] count2, output [15:0] count3\n);\n",
        b = n * width - 1
    ));
    for i in 0..n {
        v.push_str(&format!(
            "    wire [{im}:0] k{i} = keys[{hi}:{lo}];\n",
            hi = (i + 1) * width - 1,
            lo = i * width
        ));
        // Digit = 2 bits selected by digit_sel.
        v.push_str(&format!(
            "    wire [1:0] d{i} = (k{i} >> {{digit_sel, 1'b0}});\n"
        ));
        for dv in 0..4 {
            v.push_str(&format!(
                "    wire h{i}_{dv} = d{i} == 2'd{dv};\n"
            ));
        }
    }
    for dv in 0..4 {
        let mut terms: Vec<String> = (0..n).map(|i| format!("{{15'd0, h{i}_{dv}}}")).collect();
        let mut lvl = 0;
        while terms.len() > 1 {
            let mut next = Vec::new();
            for (k, pair) in terms.chunks(2).enumerate() {
                if pair.len() == 2 {
                    let nm = format!("hc{dv}_{lvl}_{k}");
                    v.push_str(&format!(
                        "    wire [15:0] {nm} = {} + {};\n",
                        pair[0], pair[1]
                    ));
                    next.push(nm);
                } else {
                    next.push(pair[0].clone());
                }
            }
            terms = next;
            lvl += 1;
        }
        v.push_str(&format!(
            "    reg [15:0] cnt{dv};\n    always @(posedge clk) begin\n        if (rst) cnt{dv} <= 16'd0;\n        else cnt{dv} <= cnt{dv} + {};\n    end\n",
            terms[0]
        ));
    }
    v.push_str(
        "    assign count0 = cnt0;\n    assign count1 = cnt0 + cnt1;\n    assign count2 = cnt0 + cnt1 + cnt2;\n    assign count3 = cnt0 + cnt1 + cnt2 + cnt3;\nendmodule\n",
    );
    Design::new(
        format!("radix_{n}_{width}"),
        Family::Sort,
        format!("radix{n}_{width}"),
        "radix",
        v,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::{parse_and_elaborate, CellKind};

    #[test]
    fn merge_network_has_comparators_and_pipeline() {
        let d = merge_sort_network(8, 16);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        // Batcher network for 8 elements: 19 comparators.
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Lgt).count(), 19);
        assert!(nl.cells().filter(|c| c.kind == CellKind::Dff).count() >= 8);
    }

    #[test]
    fn radix_stage_counts_digits() {
        let d = radix_sort_stage(8, 16);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Dff).count(), 4);
        assert!(nl.cells().filter(|c| c.kind == CellKind::Eq).count() >= 32);
    }
}
