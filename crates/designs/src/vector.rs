//! Vector-arithmetic generators (SIMD ALUs, Hwacha-like vector unit).

use crate::{Design, Family};

/// A SIMD ALU: `lanes` independent lanes of width `width`, each with a
/// case-decoded integer ALU and a result register.
pub fn simd_alu(lanes: u32, width: u32) -> Design {
    let im = width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule simd_alu{lanes}x{width} (\n    input clk,\n    input [3:0] op,\n"
    ));
    v.push_str(&format!(
        "    input [{ab}:0] a_bus,\n    input [{ab}:0] b_bus,\n    output [{ab}:0] y_bus\n);\n",
        ab = lanes * width - 1
    ));
    for l in 0..lanes {
        let hi = (l + 1) * width - 1;
        let lo = l * width;
        v.push_str(&format!(
            r#"    wire [{im}:0] a{l} = a_bus[{hi}:{lo}];
    wire [{im}:0] b{l} = b_bus[{hi}:{lo}];
    reg [{im}:0] r{l};
    always @(*) begin
        case (op)
            4'd0: r{l} = a{l} + b{l};
            4'd1: r{l} = a{l} - b{l};
            4'd2: r{l} = a{l} & b{l};
            4'd3: r{l} = a{l} | b{l};
            4'd4: r{l} = a{l} ^ b{l};
            4'd5: r{l} = a{l} * b{l};
            4'd6: r{l} = a{l} << b{l}[3:0];
            4'd7: r{l} = a{l} >> b{l}[3:0];
            4'd8: r{l} = (a{l} < b{l}) ? {width}'d1 : {width}'d0;
            4'd9: r{l} = (a{l} == b{l}) ? {width}'d1 : {width}'d0;
            default: r{l} = a{l};
        endcase
    end
    reg [{im}:0] q{l};
    always @(posedge clk) q{l} <= r{l};
    assign y_bus[{hi}:{lo}] = q{l};
"#
        ));
    }
    v.push_str("endmodule\n");
    Design::new(
        format!("simd_alu_{lanes}x{width}"),
        Family::VectorArithmetic,
        format!("simd_alu{lanes}x{width}"),
        "simd_alu",
        v,
    )
}

/// A Hwacha-style vector MAC unit: per-lane fused multiply-add with
/// chaining registers and a cross-lane reduction tree.
pub fn hwacha_like(lanes: u32, width: u32) -> Design {
    let im = width - 1;
    let am = 2 * width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule hwacha{lanes}x{width} (\n    input clk, input rst,\n    input [{ab}:0] va,\n    input [{ab}:0] vb,\n    input [{ab}:0] vc,\n    output [{am}:0] vsum\n);\n",
        ab = lanes * width - 1
    ));
    for l in 0..lanes {
        let hi = (l + 1) * width - 1;
        let lo = l * width;
        v.push_str(&format!(
            r#"    wire [{im}:0] a{l} = va[{hi}:{lo}];
    wire [{im}:0] b{l} = vb[{hi}:{lo}];
    wire [{im}:0] c{l} = vc[{hi}:{lo}];
    reg [{am}:0] fma{l};
    always @(posedge clk) begin
        if (rst) fma{l} <= {aw}'d0;
        else fma{l} <= a{l} * b{l} + c{l};
    end
"#,
            aw = 2 * width,
        ));
    }
    // Reduction tree over lane results.
    let mut terms: Vec<String> = (0..lanes).map(|l| format!("fma{l}")).collect();
    let mut lvl = 0;
    while terms.len() > 1 {
        let mut next = Vec::new();
        for (k, pair) in terms.chunks(2).enumerate() {
            if pair.len() == 2 {
                let n = format!("red_{lvl}_{k}");
                v.push_str(&format!("    wire [{am}:0] {n} = {} + {};\n", pair[0], pair[1]));
                next.push(n);
            } else {
                next.push(pair[0].clone());
            }
        }
        terms = next;
        lvl += 1;
    }
    v.push_str(&format!("    assign vsum = {};\nendmodule\n", terms[0]));
    Design::new(
        format!("hwacha_{lanes}x{width}"),
        Family::VectorArithmetic,
        format!("hwacha{lanes}x{width}"),
        "hwacha",
        v,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::{parse_and_elaborate, CellKind};

    #[test]
    fn simd_alu_scales_with_lanes() {
        let small = parse_and_elaborate(&simd_alu(4, 8).verilog, "simd_alu4x8").unwrap();
        let big = parse_and_elaborate(&simd_alu(16, 32).verilog, "simd_alu16x32").unwrap();
        small.validate().unwrap();
        big.validate().unwrap();
        assert!(big.logic_cell_count() > 3 * small.logic_cell_count());
    }

    #[test]
    fn hwacha_has_fma_per_lane() {
        let nl = parse_and_elaborate(&hwacha_like(4, 32).verilog, "hwacha4x32").unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Mul).count(), 4);
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Dff).count(), 4);
    }
}
