//! Peripheral-component generators (GPIO / UART / IceNet analogues).

use crate::{Design, Family};

/// A GPIO block: direction register, output register, two-stage input
/// synchronizers and edge-detect interrupt logic.
pub fn gpio(width: u32) -> Design {
    let im = width - 1;
    let verilog = format!(
        r#"
module gpio{width} (
    input clk, input rst,
    input [{im}:0] pins_in,
    input [{im}:0] bus_wdata,
    input [1:0] bus_addr,
    input bus_we,
    output [{im}:0] pins_out,
    output [{im}:0] bus_rdata,
    output irq
);
    reg [{im}:0] dir;
    reg [{im}:0] out;
    reg [{im}:0] irq_mask;
    always @(posedge clk) begin
        if (rst) begin
            dir <= {width}'d0;
            out <= {width}'d0;
            irq_mask <= {width}'d0;
        end else if (bus_we) begin
            case (bus_addr)
                2'd0: dir <= bus_wdata;
                2'd1: out <= bus_wdata;
                2'd2: irq_mask <= bus_wdata;
                default: out <= bus_wdata;
            endcase
        end
    end
    reg [{im}:0] sync0, sync1, prev;
    always @(posedge clk) begin
        sync0 <= pins_in;
        sync1 <= sync0;
        prev <= sync1;
    end
    wire [{im}:0] edges = (sync1 ^ prev) & irq_mask;
    assign irq = |edges;
    assign pins_out = out & dir;
    assign bus_rdata = (bus_addr == 2'd0) ? dir : ((bus_addr == 2'd1) ? out : sync1);
endmodule
"#,
    );
    Design::new(format!("gpio_{width}"), Family::Peripheral, format!("gpio{width}"), "gpio", verilog)
}

/// A UART-style serializer/deserializer with a baud-rate divider and a
/// 16-entry receive FIFO.
pub fn uart_like() -> Design {
    let verilog = r#"
module uart (
    input clk, input rst,
    input rx,
    input [7:0] tx_data,
    input tx_start,
    input rx_pop,
    output tx,
    output [7:0] rx_data,
    output rx_valid
);
    // Baud generator.
    reg [15:0] baud;
    wire tick = baud == 16'd868;
    always @(posedge clk) begin
        if (rst) baud <= 16'd0;
        else if (tick) baud <= 16'd0;
        else baud <= baud + 16'd1;
    end
    // Transmit shift register.
    reg [9:0] tx_shift;
    reg [3:0] tx_count;
    always @(posedge clk) begin
        if (rst) begin
            tx_shift <= 10'd1023;
            tx_count <= 4'd0;
        end else if (tx_start && (tx_count == 4'd0)) begin
            tx_shift <= {1'b1, tx_data, 1'b0};
            tx_count <= 4'd10;
        end else if (tick && (tx_count != 4'd0)) begin
            tx_shift <= {1'b1, tx_shift[9:1]};
            tx_count <= tx_count - 4'd1;
        end
    end
    assign tx = tx_shift[0];
    // Receive shift register.
    reg [7:0] rx_shift;
    reg [3:0] rx_count;
    reg rx_done;
    always @(posedge clk) begin
        if (rst) begin
            rx_shift <= 8'd0;
            rx_count <= 4'd0;
            rx_done <= 1'b0;
        end else if (tick) begin
            if ((rx_count == 4'd0) && !rx) begin
                rx_count <= 4'd8;
                rx_done <= 1'b0;
            end else if (rx_count != 4'd0) begin
                rx_shift <= {rx, rx_shift[7:1]};
                rx_count <= rx_count - 4'd1;
                rx_done <= rx_count == 4'd1;
            end else begin
                rx_done <= 1'b0;
            end
        end else begin
            rx_done <= 1'b0;
        end
    end
    // 16-entry FIFO.
    reg [7:0] fifo [0:15];
    reg [3:0] head, tail;
    always @(posedge clk) begin
        if (rst) begin
            head <= 4'd0;
            tail <= 4'd0;
        end else begin
            if (rx_done) begin
                fifo[tail] <= rx_shift;
                tail <= tail + 4'd1;
            end
            if (rx_pop && (head != tail)) head <= head + 4'd1;
        end
    end
    assign rx_data = fifo[head];
    assign rx_valid = head != tail;
endmodule
"#
    .to_string();
    Design::new("uart", Family::Peripheral, "uart", "uart", verilog)
}

/// An IceNet-style NIC datapath slice: a packet FIFO, a ones-complement
/// checksum unit and a CRC-style folding register.
pub fn icenet_like() -> Design {
    let verilog = r#"
module icenet (
    input clk, input rst,
    input [63:0] in_data,
    input in_valid,
    input out_ready,
    output [63:0] out_data,
    output out_valid,
    output [15:0] checksum,
    output [31:0] crc
);
    // 32-entry packet FIFO.
    reg [63:0] fifo [0:31];
    reg [4:0] head, tail;
    wire full = (tail + 5'd1) == head;
    wire empty = head == tail;
    always @(posedge clk) begin
        if (rst) begin
            head <= 5'd0;
            tail <= 5'd0;
        end else begin
            if (in_valid && !full) begin
                fifo[tail] <= in_data;
                tail <= tail + 5'd1;
            end
            if (out_ready && !empty) head <= head + 5'd1;
        end
    end
    assign out_data = fifo[head];
    assign out_valid = !empty;

    // Ones-complement checksum over 16-bit fields.
    reg [15:0] csum;
    wire [16:0] s0 = {1'b0, in_data[15:0]} + {1'b0, in_data[31:16]};
    wire [16:0] s1 = {1'b0, in_data[47:32]} + {1'b0, in_data[63:48]};
    wire [16:0] s2 = {1'b0, s0[15:0]} + {1'b0, s1[15:0]};
    wire [15:0] folded = s2[15:0] + {15'd0, s2[16]} + {15'd0, s0[16]} + {15'd0, s1[16]};
    always @(posedge clk) begin
        if (rst) csum <= 16'd0;
        else if (in_valid) csum <= csum + folded;
    end
    assign checksum = ~csum;

    // CRC-style folding register.
    reg [31:0] crc_r;
    wire [31:0] folded_crc = crc_r ^ in_data[31:0] ^ in_data[63:32];
    always @(posedge clk) begin
        if (rst) crc_r <= 32'hFFFFFFFF;
        else if (in_valid) crc_r <= {folded_crc[30:0], 1'b0} ^ (folded_crc[31] ? 32'h04C11DB7 : 32'd0);
    end
    assign crc = crc_r;
endmodule
"#
    .to_string();
    Design::new("icenet", Family::Peripheral, "icenet", "icenet", verilog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::parse_and_elaborate;

    #[test]
    fn peripherals_elaborate() {
        for d in [gpio(8), gpio(32), uart_like(), icenet_like()] {
            let nl = parse_and_elaborate(&d.verilog, &d.top)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name));
            nl.validate().unwrap();
            assert!(nl.logic_cell_count() > 10, "{}", d.name);
        }
    }

    #[test]
    fn wider_gpio_is_larger() {
        let g8 = parse_and_elaborate(&gpio(8).verilog, "gpio8").unwrap();
        let g32 = parse_and_elaborate(&gpio(32).verilog, "gpio32").unwrap();
        let bits = |nl: &sns_netlist::Netlist| -> u64 {
            nl.nets_enumerated().map(|(_, n)| n.width as u64).sum()
        };
        assert!(bits(&g32) > bits(&g8));
    }
}
