//! "Other" generators: FP unit, multi-core Stencil2D, Viterbi decoder.

use crate::{Design, Family};

/// A combined FP32 adder + multiplier execution unit (Berkeley
/// HardFloat-flavoured: explicit sign/exponent/mantissa datapaths with
/// alignment and normalization shifters).
pub fn fp_unit() -> Design {
    let verilog = r#"
module fp_unit (
    input clk,
    input op_mul,
    input [31:0] a,
    input [31:0] b,
    output [31:0] result
);
    wire sa = a[31];
    wire sb = b[31];
    wire [7:0] ea = a[30:23];
    wire [7:0] eb = b[30:23];
    wire [23:0] ma = {1'b1, a[22:0]};
    wire [23:0] mb = {1'b1, b[22:0]};

    // ---- multiply path ----
    wire smul = sa ^ sb;
    wire [47:0] prod = ma * mb;
    wire mnorm = prod[47];
    wire [22:0] mfrac = mnorm ? prod[46:24] : prod[45:23];
    wire [7:0] emul = ea + eb - 8'd127 + (mnorm ? 8'd1 : 8'd0);
    wire [31:0] mul_res = {smul, emul, mfrac};

    // ---- add path ----
    wire a_big = {ea, a[22:0]} >= {eb, b[22:0]};
    wire [7:0] ediff = a_big ? (ea - eb) : (eb - ea);
    wire [23:0] mbig = a_big ? ma : mb;
    wire [23:0] msml = a_big ? mb : ma;
    wire [23:0] aligned = msml >> ediff;
    wire sub = sa ^ sb;
    wire [24:0] sum = sub ? ({1'b0, mbig} - {1'b0, aligned})
                          : ({1'b0, mbig} + {1'b0, aligned});
    // Normalization: priority shift by 16/8/4/2/1.
    wire [24:0] n16 = (sum[24:9] == 16'd0) ? {sum[8:0], 16'd0} : sum;
    wire [4:0] sh16 = (sum[24:9] == 16'd0) ? 5'd16 : 5'd0;
    wire [24:0] n8 = (n16[24:17] == 8'd0) ? {n16[16:0], 8'd0} : n16;
    wire [4:0] sh8 = (n16[24:17] == 8'd0) ? 5'd8 : 5'd0;
    wire [24:0] n4 = (n8[24:21] == 4'd0) ? {n8[20:0], 4'd0} : n8;
    wire [4:0] sh4 = (n8[24:21] == 4'd0) ? 5'd4 : 5'd0;
    wire [24:0] n2 = (n4[24:23] == 2'd0) ? {n4[22:0], 2'd0} : n4;
    wire [4:0] sh2 = (n4[24:23] == 2'd0) ? 5'd2 : 5'd0;
    wire [24:0] n1 = (n2[24] == 1'd0) ? {n2[23:0], 1'd0} : n2;
    wire [4:0] sh1 = (n2[24] == 1'd0) ? 5'd1 : 5'd0;
    wire [4:0] shtot = sh16 + sh8 + sh4 + sh2 + sh1;
    wire [7:0] ebig = a_big ? ea : eb;
    wire [7:0] eadd = ebig + 8'd1 - {3'd0, shtot};
    wire sadd = a_big ? sa : sb;
    wire [31:0] add_res = {sadd, eadd, n1[23:1]};

    reg [31:0] res_r;
    always @(posedge clk) res_r <= op_mul ? mul_res : add_res;
    assign result = res_r;
endmodule
"#
    .to_string();
    Design::new("fp_unit", Family::Other, "fp_unit", "fp_unit", verilog)
}

/// A multi-core Stencil2D accelerator: `cores` independent 3×3 stencil
/// engines (line buffers + MAC trees), matching the paper's largest
/// Figure 7 design when instantiated as `stencil2d(16, 32)`.
pub fn stencil2d(cores: u32, width: u32) -> Design {
    let im = width - 1;
    let pm = 2 * width - 1;
    let mut v = String::new();
    // Single-core engine module.
    v.push_str(&format!(
        "\nmodule stencil_core_{width} (\n    input clk,\n    input [{im}:0] pixel,\n    output [{pm}:0] stencil_out\n);\n"
    ));
    let depth = 12u32;
    let mut prev = "pixel".to_string();
    for r in 0..3 {
        for c in 0..depth {
            v.push_str(&format!(
                "    reg [{im}:0] lb{r}_{c};\n    always @(posedge clk) lb{r}_{c} <= {prev};\n"
            ));
            prev = format!("lb{r}_{c}");
        }
    }
    let mut terms = Vec::new();
    for r in 0..3 {
        for c in 0..3 {
            let coef = ((r * 13 + c * 7 + 1) % (1 << width.min(12))) | 1;
            let nm = format!("sm{r}_{c}");
            v.push_str(&format!("    wire [{pm}:0] {nm} = lb{r}_{c} * {width}'d{coef};\n"));
            terms.push(nm);
        }
    }
    let mut lvl = 0;
    while terms.len() > 1 {
        let mut next = Vec::new();
        for (k, pair) in terms.chunks(2).enumerate() {
            if pair.len() == 2 {
                let nm = format!("st_{lvl}_{k}");
                v.push_str(&format!("    wire [{pm}:0] {nm} = {} + {};\n", pair[0], pair[1]));
                next.push(nm);
            } else {
                next.push(pair[0].clone());
            }
        }
        terms = next;
        lvl += 1;
    }
    v.push_str(&format!(
        "    reg [{pm}:0] out_r;\n    always @(posedge clk) out_r <= {};\n    assign stencil_out = out_r;\nendmodule\n",
        terms[0]
    ));
    // Multi-core top.
    v.push_str(&format!(
        "\nmodule stencil2d_{cores}c_{width} (\n    input clk,\n    input [{b}:0] pixels,\n    output [{ob}:0] results\n);\n",
        b = cores * width - 1,
        ob = cores * 2 * width - 1,
    ));
    for c in 0..cores {
        v.push_str(&format!(
            "    wire [{pm}:0] core_out{c};\n    stencil_core_{width} u{c} (.clk(clk), .pixel(pixels[{hi}:{lo}]), .stencil_out(core_out{c}));\n    assign results[{ohi}:{olo}] = core_out{c};\n",
            hi = (c + 1) * width - 1,
            lo = c * width,
            ohi = (c + 1) * 2 * width - 1,
            olo = c * 2 * width,
        ));
    }
    v.push_str("endmodule\n");
    Design::new(
        format!("stencil2d_{cores}c_{width}"),
        Family::Other,
        format!("stencil2d_{cores}c_{width}"),
        "stencil2d",
        v,
    )
}

/// A Viterbi add-compare-select stage over `states` trellis states.
pub fn viterbi(states: u32, width: u32) -> Design {
    let im = width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule viterbi{states}_{width} (\n    input clk, input rst,\n    input [{bm}:0] branch_metrics,\n    output [{sm}:0] survivors\n);\n",
        bm = 2 * states * width - 1,
        sm = states - 1,
    ));
    for s in 0..states {
        v.push_str(&format!(
            "    reg [{im}:0] pm{s};\n",
        ));
    }
    for s in 0..states as usize {
        let p0 = (2 * s) % states as usize;
        let p1 = (2 * s + 1) % states as usize;
        let b0_hi = (2 * s + 1) * width as usize - 1;
        let b0_lo = 2 * s * width as usize;
        let b1_hi = (2 * s + 2) * width as usize - 1;
        let b1_lo = (2 * s + 1) * width as usize;
        v.push_str(&format!(
            r#"    wire [{im}:0] cand0_{s} = pm{p0} + branch_metrics[{b0_hi}:{b0_lo}];
    wire [{im}:0] cand1_{s} = pm{p1} + branch_metrics[{b1_hi}:{b1_lo}];
    wire sel{s} = cand1_{s} < cand0_{s};
    wire [{im}:0] best{s} = sel{s} ? cand1_{s} : cand0_{s};
    always @(posedge clk) begin
        if (rst) pm{s} <= {width}'d0;
        else pm{s} <= best{s};
    end
    assign survivors[{s}] = sel{s};
"#
        ));
    }
    v.push_str("endmodule\n");
    Design::new(
        format!("viterbi_{states}_{width}"),
        Family::Other,
        format!("viterbi{states}_{width}"),
        "viterbi",
        v,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::{parse_and_elaborate, CellKind};

    #[test]
    fn fp_unit_elaborates_with_mul_and_shifts() {
        let d = fp_unit();
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        assert!(nl.cells().any(|c| c.kind == CellKind::Mul));
        assert!(nl.cells().any(|c| c.kind == CellKind::Shr));
    }

    #[test]
    fn stencil_cores_scale_linearly() {
        let one = parse_and_elaborate(&stencil2d(1, 16).verilog, "stencil2d_1c_16").unwrap();
        let four = parse_and_elaborate(&stencil2d(4, 16).verilog, "stencil2d_4c_16").unwrap();
        one.validate().unwrap();
        four.validate().unwrap();
        assert!(four.logic_cell_count() >= 3 * one.logic_cell_count());
    }

    #[test]
    fn viterbi_acs_structure() {
        let d = viterbi(4, 8);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Lgt).count(), 4);
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Dff).count(), 4);
    }
}
