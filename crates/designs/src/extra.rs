//! Extra design generators beyond the 41-design Table 3 catalog.
//!
//! These widen the structural variety available to robustness tests,
//! ablations and the Figure 7 size ladder (crossbars, cache control,
//! explicitly structural arithmetic like Booth multipliers and CORDIC,
//! LFSRs, a DCT butterfly, string matching, and a hash round).
//! [`extended`] returns the full catalog plus these.

use crate::{catalog, Design, Family};

/// An `n × n` crossbar switch: per-output select registers and `n`
/// n-to-1 mux trees.
pub fn crossbar(n: u32, width: u32) -> Design {
    let im = width - 1;
    let sel_w = (32 - (n - 1).leading_zeros()).max(1);
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule xbar{n}x{n}_{width} (\n    input clk,\n    input [{ib}:0] in_bus,\n    input [{sb}:0] sel_bus,\n    input sel_we,\n    output [{ib}:0] out_bus\n);\n",
        ib = n * width - 1,
        sb = n * sel_w - 1,
    ));
    for i in 0..n {
        v.push_str(&format!(
            "    wire [{im}:0] in{i} = in_bus[{hi}:{lo}];\n",
            hi = (i + 1) * width - 1,
            lo = i * width
        ));
    }
    for o in 0..n {
        v.push_str(&format!(
            "    reg [{sm}:0] sel{o};\n    always @(posedge clk) if (sel_we) sel{o} <= sel_bus[{hi}:{lo}];\n",
            sm = sel_w - 1,
            hi = (o + 1) * sel_w - 1,
            lo = o * sel_w
        ));
        let mut expr = "in0".to_string();
        for i in 1..n {
            expr = format!("((sel{o} == {sel_w}'d{i}) ? in{i} : {expr})");
        }
        v.push_str(&format!(
            "    reg [{im}:0] out{o};\n    always @(posedge clk) out{o} <= {expr};\n    assign out_bus[{hi}:{lo}] = out{o};\n",
            hi = (o + 1) * width - 1,
            lo = o * width
        ));
    }
    v.push_str("endmodule\n");
    Design::new(
        format!("xbar_{n}x{n}_{width}"),
        Family::Peripheral,
        format!("xbar{n}x{n}_{width}"),
        "xbar",
        v,
    )
}

/// A direct-mapped cache controller slice: tag/valid arrays, hit
/// comparison, and a write-allocate state register.
pub fn cache_ctrl(sets: u32, tag_w: u32) -> Design {
    assert!(sets.is_power_of_two(), "sets must be a power of two");
    let idx_w = sets.trailing_zeros().max(1);
    let tm = tag_w - 1;
    let verilog = format!(
        r#"
module cache{sets}_{tag_w} (
    input clk, input rst,
    input req_valid,
    input req_write,
    input [{am}:0] req_addr,
    output hit,
    output evict,
    output [{tm}:0] evict_tag
);
    reg [{tm}:0] tags [0:{last}];
    reg [{last}:0] valid;
    wire [{xm}:0] index = req_addr[{xm}:0];
    wire [{tm}:0] tag = req_addr[{am}:{idx_w}];
    wire [{tm}:0] stored = tags[index];
    wire way_valid = (valid >> index) & 1'b1;
    wire tag_match = stored == tag;
    wire is_hit = req_valid && way_valid && tag_match;
    wire is_miss = req_valid && !is_hit;
    always @(posedge clk) begin
        if (rst) valid <= {sets}'d0;
        else if (is_miss) begin
            tags[index] <= tag;
            valid <= valid | ({sets}'d1 << index);
        end
    end
    reg [{tm}:0] evict_r;
    reg evict_v;
    always @(posedge clk) begin
        if (rst) begin
            evict_v <= 1'b0;
            evict_r <= {tag_w}'d0;
        end else begin
            evict_v <= is_miss && way_valid && req_write;
            evict_r <= stored;
        end
    end
    assign hit = is_hit;
    assign evict = evict_v;
    assign evict_tag = evict_r;
endmodule
"#,
        am = tag_w + idx_w - 1,
        xm = idx_w - 1,
        last = sets - 1,
    );
    Design::new(
        format!("cache_{sets}_{tag_w}"),
        Family::Peripheral,
        format!("cache{sets}_{tag_w}"),
        "cache",
        verilog,
    )
}

/// A structurally-described shift-add multiplier (radix-2 Booth-style
/// recoding unrolled across the operand): exercises adders, muxes and
/// wiring rather than the `*` operator.
pub fn shift_add_multiplier(width: u32) -> Design {
    let im = width - 1;
    let pm = 2 * width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule shiftmul{width} (\n    input clk,\n    input [{im}:0] a,\n    input [{im}:0] b,\n    output [{pm}:0] p\n);\n"
    ));
    v.push_str(&format!("    wire [{pm}:0] acc0 = {w2}'d0;\n", w2 = 2 * width));
    for i in 0..width {
        v.push_str(&format!(
            "    wire [{pm}:0] pp{i} = b[{i}] ? ({{{pad}'d0, a}} << {i}) : {w2}'d0;\n    wire [{pm}:0] acc{next} = acc{i} + pp{i};\n",
            pad = width,
            w2 = 2 * width,
            next = i + 1,
        ));
    }
    v.push_str(&format!(
        "    reg [{pm}:0] p_r;\n    always @(posedge clk) p_r <= acc{width};\n    assign p = p_r;\nendmodule\n"
    ));
    Design::new(
        format!("shiftmul_{width}"),
        Family::LinearAlgebra,
        format!("shiftmul{width}"),
        "shiftmul",
        v,
    )
}

/// An unrolled CORDIC rotator: per-iteration conditional add/subtract of
/// arctangent constants with arithmetic shifts.
pub fn cordic(iterations: u32, width: u32) -> Design {
    let im = width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule cordic{iterations}_{width} (\n    input clk,\n    input [{im}:0] x_in, y_in, z_in,\n    output [{im}:0] x_out, y_out\n);\n"
    ));
    v.push_str(&format!(
        "    wire [{im}:0] x0 = x_in;\n    wire [{im}:0] y0 = y_in;\n    wire [{im}:0] z0 = z_in;\n"
    ));
    for i in 0..iterations {
        let atan = (1u64 << width.saturating_sub(3)) >> i;
        v.push_str(&format!(
            r#"    wire neg{i} = z{i}[{im}];
    wire [{im}:0] xs{i} = x{i} >> {i};
    wire [{im}:0] ys{i} = y{i} >> {i};
    wire [{im}:0] x{n} = neg{i} ? (x{i} + ys{i}) : (x{i} - ys{i});
    wire [{im}:0] y{n} = neg{i} ? (y{i} - xs{i}) : (y{i} + xs{i});
    wire [{im}:0] z{n} = neg{i} ? (z{i} + {width}'d{atan}) : (z{i} - {width}'d{atan});
"#,
            n = i + 1,
        ));
    }
    v.push_str(&format!(
        "    reg [{im}:0] xr, yr;\n    always @(posedge clk) begin\n        xr <= x{iterations};\n        yr <= y{iterations};\n    end\n    assign x_out = xr;\n    assign y_out = yr;\nendmodule\n"
    ));
    Design::new(
        format!("cordic_{iterations}_{width}"),
        Family::NonlinearApprox,
        format!("cordic{iterations}_{width}"),
        "cordic",
        v,
    )
}

/// A Fibonacci LFSR pseudo-random generator.
pub fn lfsr(width: u32) -> Design {
    let im = width - 1;
    // A few tap positions spread over the register.
    let t1 = width - 1;
    let t2 = width / 2;
    let t3 = width / 3;
    let verilog = format!(
        r#"
module lfsr{width} (
    input clk, input rst,
    input enable,
    output [{im}:0] value
);
    reg [{im}:0] state;
    wire feedback = state[{t1}] ^ state[{t2}] ^ state[{t3}] ^ state[0];
    always @(posedge clk) begin
        if (rst) state <= {width}'d1;
        else if (enable) state <= {{state[{sm}:0], feedback}};
    end
    assign value = state;
endmodule
"#,
        sm = width - 2,
    );
    Design::new(format!("lfsr_{width}"), Family::Cryptographic, format!("lfsr{width}"), "lfsr", verilog)
}

/// A 4-point DCT butterfly with constant multipliers.
pub fn dct4(width: u32) -> Design {
    let im = width - 1;
    let pm = 2 * width - 1;
    let c1 = (1u64 << (width.min(12) - 1)) | 3;
    let c2 = (1u64 << (width.min(12) - 2)) | 5;
    let verilog = format!(
        r#"
module dct4_{width} (
    input clk,
    input [{im}:0] x0, x1, x2, x3,
    output [{pm}:0] y0, y1, y2, y3
);
    wire [{im}:0] s0 = x0 + x3;
    wire [{im}:0] s1 = x1 + x2;
    wire [{im}:0] d0 = x0 - x3;
    wire [{im}:0] d1 = x1 - x2;
    reg [{pm}:0] y0r, y1r, y2r, y3r;
    always @(posedge clk) begin
        y0r <= (s0 + s1) * {width}'d{c1};
        y2r <= (s0 - s1) * {width}'d{c1};
        y1r <= d0 * {width}'d{c1} + d1 * {width}'d{c2};
        y3r <= d0 * {width}'d{c2} - d1 * {width}'d{c1};
    end
    assign y0 = y0r;
    assign y1 = y1r;
    assign y2 = y2r;
    assign y3 = y3r;
endmodule
"#,
    );
    Design::new(format!("dct4_{width}"), Family::SignalProcessing, format!("dct4_{width}"), "dct", verilog)
}

/// A parallel string matcher: compares a sliding window of input bytes
/// against `patterns` stored constant patterns (KMP-flavoured workload
/// from MachSuite, as hardware).
pub fn string_match(patterns: u32) -> Design {
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule strmatch{patterns} (\n    input clk, input rst,\n    input [7:0] byte_in,\n    output [{pm}:0] match_flags,\n    output [15:0] match_count\n);\n",
        pm = patterns - 1,
    ));
    // 4-byte sliding window.
    v.push_str(
        "    reg [7:0] w0, w1, w2, w3;\n    always @(posedge clk) begin\n        w0 <= byte_in;\n        w1 <= w0;\n        w2 <= w1;\n        w3 <= w2;\n    end\n",
    );
    for p in 0..patterns {
        let b0 = 0x41 + (p % 26) as u64;
        let b1 = 0x41 + ((p * 7 + 3) % 26) as u64;
        let b2 = 0x41 + ((p * 13 + 5) % 26) as u64;
        let b3 = 0x41 + ((p * 19 + 11) % 26) as u64;
        v.push_str(&format!(
            "    wire m{p} = (w3 == 8'd{b0}) && (w2 == 8'd{b1}) && (w1 == 8'd{b2}) && (w0 == 8'd{b3});\n    assign match_flags[{p}] = m{p};\n"
        ));
    }
    let ors: Vec<String> = (0..patterns).map(|p| format!("{{15'd0, m{p}}}")).collect();
    v.push_str(&format!(
        "    reg [15:0] count;\n    always @(posedge clk) begin\n        if (rst) count <= 16'd0;\n        else count <= count + {};\n    end\n    assign match_count = count;\nendmodule\n",
        ors.join(" + ")
    ));
    Design::new(
        format!("strmatch_{patterns}"),
        Family::Sort, // string processing kernels group with the sorting class here
        format!("strmatch{patterns}"),
        "strmatch",
        v,
    )
}

/// One round of an MD5-flavoured hash: modular adds, rotations and a
/// nonlinear boolean function.
pub fn hash_round() -> Design {
    let verilog = r#"
module hash_round (
    input clk,
    input [31:0] a_in, b_in, c_in, d_in,
    input [31:0] msg,
    input [31:0] konst,
    output [31:0] a_out, b_out, c_out, d_out
);
    wire [31:0] f = (b_in & c_in) | (~b_in & d_in);
    wire [31:0] sum = a_in + f + msg + konst;
    wire [31:0] rot = {sum[24:0], sum[31:25]};
    reg [31:0] ar, br, cr, dr;
    always @(posedge clk) begin
        ar <= d_in;
        br <= b_in + rot;
        cr <= b_in;
        dr <= c_in;
    end
    assign a_out = ar;
    assign b_out = br;
    assign c_out = cr;
    assign d_out = dr;
endmodule
"#
    .to_string();
    Design::new("hash_round", Family::Cryptographic, "hash_round", "hash", verilog)
}

/// The 41-design catalog plus the extra generators — a 49-design pool for
/// robustness testing and size-ladder studies.
pub fn extended() -> Vec<Design> {
    let mut all = catalog();
    all.extend([
        crossbar(8, 16),
        cache_ctrl(64, 20),
        shift_add_multiplier(16),
        cordic(12, 16),
        lfsr(32),
        dct4(12),
        string_match(16),
        hash_round(),
    ]);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::{parse_and_elaborate, CellKind, Simulator};

    #[test]
    fn extended_designs_all_elaborate() {
        let all = extended();
        assert_eq!(all.len(), 49);
        for d in &all[41..] {
            let nl = parse_and_elaborate(&d.verilog, &d.top)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name));
            nl.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name));
            assert!(nl.logic_cell_count() > 5, "{}", d.name);
        }
    }

    #[test]
    fn shift_add_multiplier_multiplies() {
        let d = shift_add_multiplier(8);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        // It must NOT use a hardware multiplier cell.
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Mul).count(), 0);
        let mut sim = Simulator::new(&nl).unwrap();
        for (a, b) in [(7u128, 9u128), (255, 255), (0, 123), (13, 11)] {
            sim.set_input("a", a).unwrap();
            sim.set_input("b", b).unwrap();
            sim.step().unwrap();
            assert_eq!(sim.output("p").unwrap(), a * b, "{a}*{b}");
        }
    }

    #[test]
    fn lfsr_cycles_through_states() {
        let d = lfsr(16);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("rst", 1).unwrap();
        sim.step().unwrap();
        sim.set_input("rst", 0).unwrap();
        sim.set_input("enable", 1).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            sim.step().unwrap();
            seen.insert(sim.output("value").unwrap());
        }
        assert!(seen.len() > 48, "LFSR should not repeat quickly: {} states", seen.len());
    }

    #[test]
    fn cache_hits_after_fill() {
        let d = cache_ctrl(16, 8);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("rst", 1).unwrap();
        sim.step().unwrap();
        sim.set_input("rst", 0).unwrap();
        // Miss then hit on the same address.
        sim.set_input("req_valid", 1).unwrap();
        sim.set_input("req_addr", 0xAB3).unwrap();
        sim.eval().unwrap();
        assert_eq!(sim.output("hit").unwrap(), 0, "cold cache should miss");
        sim.step().unwrap(); // allocate
        sim.eval().unwrap();
        assert_eq!(sim.output("hit").unwrap(), 1, "second access should hit");
    }

    #[test]
    fn string_matcher_counts_matches() {
        let d = string_match(4);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("rst", 1).unwrap();
        sim.step().unwrap();
        sim.set_input("rst", 0).unwrap();
        // Pattern 0 is bytes (0x41, 0x44, 0x46, 0x4C) given the generator's
        // constants for p=0: b0=0x41+(0)=A, b1=0x41+3=D, b2=0x41+5=F, b3=0x41+11=L.
        for b in [0x41u128, 0x44, 0x46, 0x4C] {
            sim.set_input("byte_in", b).unwrap();
            sim.step().unwrap();
        }
        assert_eq!(sim.output("match_flags").unwrap() & 1, 1, "pattern 0 should match");
    }
}
