//! Processor-core design generators (Rocket / Sodor / Ariane analogues).

use crate::{Design, Family};

/// A single-stage in-order core in the spirit of the Sodor 1-stage: a
/// fetch PC, a 16-entry register file, a case-decoded ALU and a memory
/// interface.
pub fn sodor_like(xlen: u32) -> Design {
    let w = xlen;
    let verilog = format!(
        r#"
module sodor{w} (
    input clk, input rst,
    input [{im}:0] instr,
    input [{im}:0] mem_rdata,
    output [{im}:0] mem_addr,
    output [{im}:0] mem_wdata,
    output mem_we,
    output [{im}:0] pc_out
);
    reg [{im}:0] pc;
    reg [{im}:0] rf [0:15];
    wire [3:0] rs1 = instr[19:16];
    wire [3:0] rs2 = instr[23:20];
    wire [3:0] rd = instr[27:24];
    wire [5:0] opcode = instr[5:0];
    wire [{im}:0] imm = {{{{{ext}{{instr[15]}}}}, instr[15:0]}};
    wire [{im}:0] a = rf[rs1];
    wire [{im}:0] b = rf[rs2];
    reg [{im}:0] alu;
    always @(*) begin
        case (opcode)
            6'd0: alu = a + b;
            6'd1: alu = a - b;
            6'd2: alu = a & b;
            6'd3: alu = a | b;
            6'd4: alu = a ^ b;
            6'd5: alu = a << b[4:0];
            6'd6: alu = a >> b[4:0];
            6'd7: alu = (a < b) ? {w}'d1 : {w}'d0;
            6'd8: alu = a + imm;
            6'd9: alu = a * b;
            default: alu = a;
        endcase
    end
    wire take_branch = (opcode == 6'd10) && (a == b);
    always @(posedge clk) begin
        if (rst) pc <= {w}'d0;
        else if (take_branch) pc <= pc + imm;
        else pc <= pc + {w}'d4;
    end
    always @(posedge clk) begin
        if (opcode != 6'd11) rf[rd] <= (opcode == 6'd12) ? mem_rdata : alu;
    end
    assign mem_addr = a + imm;
    assign mem_wdata = b;
    assign mem_we = opcode == 6'd11;
    assign pc_out = pc;
endmodule
"#,
        w = w,
        im = w - 1,
        ext = w - 16,
    );
    Design::new(format!("sodor_{w}"), Family::ProcessorCore, format!("sodor{w}"), "sodor", verilog)
}

/// A three-stage pipelined in-order core in the spirit of Rocket: decode /
/// execute / writeback pipeline registers, a 32-entry register file with
/// bypassing, an ALU plus multiplier, and a branch unit.
pub fn rocket_like(xlen: u32) -> Design {
    let w = xlen;
    let verilog = format!(
        r#"
module rocket{w} (
    input clk, input rst,
    input [31:0] instr,
    input [{im}:0] dmem_rdata,
    output [{im}:0] dmem_addr,
    output [{im}:0] dmem_wdata,
    output dmem_we,
    output [{im}:0] retire_value
);
    // ---- decode stage ----
    reg [31:0] id_instr;
    always @(posedge clk) id_instr <= instr;
    wire [4:0] rs1 = id_instr[19:15];
    wire [4:0] rs2 = id_instr[24:20];
    wire [4:0] rd = id_instr[11:7];
    wire [6:0] opcode = id_instr[6:0];
    wire [{im}:0] imm = {{{{{ext}{{id_instr[31]}}}}, id_instr[31:20]}};
    reg [{im}:0] rf [0:31];
    wire [{im}:0] rf1 = rf[rs1];
    wire [{im}:0] rf2 = rf[rs2];

    // ---- execute stage ----
    reg [{im}:0] ex_a, ex_b, ex_imm;
    reg [6:0] ex_op;
    reg [4:0] ex_rd;
    always @(posedge clk) begin
        ex_a <= rf1;
        ex_b <= rf2;
        ex_imm <= imm;
        ex_op <= opcode;
        ex_rd <= rd;
    end
    reg [{im}:0] alu;
    always @(*) begin
        case (ex_op)
            7'd0: alu = ex_a + ex_b;
            7'd1: alu = ex_a - ex_b;
            7'd2: alu = ex_a & ex_b;
            7'd3: alu = ex_a | ex_b;
            7'd4: alu = ex_a ^ ex_b;
            7'd5: alu = ex_a << ex_b[4:0];
            7'd6: alu = ex_a >> ex_b[4:0];
            7'd7: alu = ex_a * ex_b;
            7'd8: alu = (ex_a < ex_b) ? {w}'d1 : {w}'d0;
            7'd9: alu = ex_a + ex_imm;
            default: alu = ex_a;
        endcase
    end
    wire [{im}:0] agu = ex_a + ex_imm;

    // ---- writeback stage ----
    reg [{im}:0] wb_value;
    reg [4:0] wb_rd;
    reg wb_valid;
    always @(posedge clk) begin
        wb_value <= (ex_op == 7'd12) ? dmem_rdata : alu;
        wb_rd <= ex_rd;
        wb_valid <= ex_op != 7'd13;
    end
    always @(posedge clk) begin
        if (wb_valid) rf[wb_rd] <= wb_value;
    end

    // ---- pc / branch ----
    reg [{im}:0] pc;
    wire take = (ex_op == 7'd10) && (ex_a == ex_b);
    always @(posedge clk) begin
        if (rst) pc <= {w}'d0;
        else if (take) pc <= pc + ex_imm;
        else pc <= pc + {w}'d4;
    end

    assign dmem_addr = agu;
    assign dmem_wdata = ex_b;
    assign dmem_we = ex_op == 7'd13;
    assign retire_value = wb_value;
endmodule
"#,
        w = w,
        im = w - 1,
        ext = w - 12,
    );
    Design::new(
        format!("rocket_{w}"),
        Family::ProcessorCore,
        format!("rocket{w}"),
        "rocket",
        verilog,
    )
}

/// A wider five-stage core in the spirit of Ariane (CVA6): 64-bit
/// datapath, separate multiplier/divider unit, an ALU cluster and a
/// scoreboard register. Emitted as a *module hierarchy* — frontend,
/// ALU, mul/div, branch and commit are separate modules, each latching
/// its own operands, the way the real CVA6 splits its functional units.
/// The registered unit boundaries make this the catalog's ECO
/// stress-case: editing one unit leaves every other unit's elaboration
/// and path samples reusable.
pub fn ariane_like() -> Design {
    let verilog = r#"
module ar_frontend64 (
    input clk,
    input [31:0] instr,
    input [63:0] wb_value,
    input [4:0] wb_rd,
    input wb_valid,
    output [63:0] rf1,
    output [63:0] rf2,
    output [63:0] imm,
    output [6:0] opcode,
    output [4:0] rd
);
    reg [31:0] if_instr, id_instr;
    always @(posedge clk) begin
        if_instr <= instr;
        id_instr <= if_instr;
    end
    wire [4:0] rs1 = id_instr[19:15];
    wire [4:0] rs2 = id_instr[24:20];
    reg [63:0] rf [0:31];
    always @(posedge clk) begin
        if (wb_valid) rf[wb_rd] <= wb_value;
    end
    assign rf1 = rf[rs1];
    assign rf2 = rf[rs2];
    assign imm = {{52{id_instr[31]}}, id_instr[31:20]};
    assign opcode = id_instr[6:0];
    assign rd = id_instr[11:7];
endmodule

module ar_alu64 (
    input clk,
    input [63:0] a,
    input [63:0] b,
    input [63:0] imm,
    input [6:0] op,
    output [63:0] result
);
    reg [63:0] ex_a, ex_b, ex_imm;
    reg [6:0] ex_op;
    always @(posedge clk) begin
        ex_a <= a;
        ex_b <= b;
        ex_imm <= imm;
        ex_op <= op;
    end
    reg [63:0] alu;
    always @(*) begin
        case (ex_op)
            7'd0: alu = ex_a + ex_b;
            7'd1: alu = ex_a - ex_b;
            7'd2: alu = ex_a & ex_b;
            7'd3: alu = ex_a | ex_b;
            7'd4: alu = ex_a ^ ex_b;
            7'd5: alu = ex_a << ex_b[5:0];
            7'd6: alu = ex_a >> ex_b[5:0];
            7'd7: alu = (ex_a < ex_b) ? 64'd1 : 64'd0;
            7'd8: alu = ex_a + ex_imm;
            default: alu = ex_a;
        endcase
    end
    reg [63:0] alu_r;
    always @(posedge clk) alu_r <= alu;
    assign result = alu_r;
endmodule

module ar_muldiv64 (
    input clk,
    input [63:0] a,
    input [63:0] b,
    input [6:0] op,
    output [63:0] result
);
    reg [63:0] md_a, md_b;
    reg [6:0] md_op;
    always @(posedge clk) begin
        md_a <= a;
        md_b <= b;
        md_op <= op;
    end
    wire [63:0] mul = md_a * md_b;
    wire [63:0] divq = md_a / ((md_b == 64'd0) ? 64'd1 : md_b);
    reg [63:0] md_r;
    always @(posedge clk) md_r <= (md_op == 7'd9) ? mul : divq;
    assign result = md_r;
endmodule

module ar_branch64 (
    input clk,
    input rst,
    input [63:0] a,
    input [63:0] b,
    input [63:0] imm,
    input [6:0] op,
    output [63:0] pc_out
);
    reg [63:0] br_a, br_b, br_imm;
    reg [6:0] br_op;
    always @(posedge clk) begin
        br_a <= a;
        br_b <= b;
        br_imm <= imm;
        br_op <= op;
    end
    reg [63:0] pc;
    wire take = (br_op == 7'd11) && (br_a >= br_b);
    always @(posedge clk) begin
        if (rst) pc <= 64'd0;
        else if (take) pc <= pc + br_imm;
        else pc <= pc + 64'd4;
    end
    assign pc_out = pc;
endmodule

module ar_commit64 (
    input clk,
    input [63:0] a,
    input [63:0] b,
    input [63:0] imm,
    input [6:0] op,
    input [4:0] rd,
    input [63:0] alu_result,
    input [63:0] md_result,
    input [63:0] dmem_rdata,
    output [63:0] dmem_addr,
    output [63:0] dmem_wdata,
    output dmem_we,
    output [63:0] wb_value,
    output [4:0] wb_rd,
    output wb_valid,
    output [63:0] retire_value
);
    reg [63:0] ls_a, ls_b, ls_imm;
    reg [6:0] ls_op;
    reg [4:0] ls_rd;
    always @(posedge clk) begin
        ls_a <= a;
        ls_b <= b;
        ls_imm <= imm;
        ls_op <= op;
        ls_rd <= rd;
    end
    wire [63:0] ex_result = (ls_op == 7'd9 || ls_op == 7'd10) ? md_result : alu_result;
    reg [63:0] mem_result;
    reg [4:0] mem_rd;
    reg mem_valid;
    always @(posedge clk) begin
        mem_result <= (ls_op == 7'd12) ? dmem_rdata : ex_result;
        mem_rd <= ls_rd;
        mem_valid <= ls_op != 7'd13;
    end
    assign dmem_addr = ls_a + ls_imm;
    assign dmem_wdata = ls_b;
    assign dmem_we = ls_op == 7'd13;
    assign wb_value = mem_result;
    assign wb_rd = mem_rd;
    assign wb_valid = mem_valid;
    assign retire_value = mem_result;
endmodule

module ariane64 (
    input clk, input rst,
    input [31:0] instr,
    input [63:0] dmem_rdata,
    output [63:0] dmem_addr,
    output [63:0] dmem_wdata,
    output dmem_we,
    output [63:0] retire_value
);
    wire [63:0] rf1, rf2, imm;
    wire [6:0] opcode;
    wire [4:0] rd;
    wire [63:0] wb_value;
    wire [4:0] wb_rd;
    wire wb_valid;
    wire [63:0] alu_result, md_result, pc_now;

    ar_frontend64 u_frontend (
        .clk(clk), .instr(instr),
        .wb_value(wb_value), .wb_rd(wb_rd), .wb_valid(wb_valid),
        .rf1(rf1), .rf2(rf2), .imm(imm), .opcode(opcode), .rd(rd)
    );
    ar_alu64 u_alu (
        .clk(clk), .a(rf1), .b(rf2), .imm(imm), .op(opcode), .result(alu_result)
    );
    ar_muldiv64 u_muldiv (
        .clk(clk), .a(rf1), .b(rf2), .op(opcode), .result(md_result)
    );
    ar_branch64 u_branch (
        .clk(clk), .rst(rst), .a(rf1), .b(rf2), .imm(imm), .op(opcode), .pc_out(pc_now)
    );
    ar_commit64 u_commit (
        .clk(clk), .a(rf1), .b(rf2), .imm(imm), .op(opcode), .rd(rd),
        .alu_result(alu_result), .md_result(md_result), .dmem_rdata(dmem_rdata),
        .dmem_addr(dmem_addr), .dmem_wdata(dmem_wdata), .dmem_we(dmem_we),
        .wb_value(wb_value), .wb_rd(wb_rd), .wb_valid(wb_valid),
        .retire_value(retire_value)
    );
endmodule
"#
    .to_string();
    Design::new("ariane_64", Family::ProcessorCore, "ariane64", "ariane", verilog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::parse_and_elaborate;

    #[test]
    fn cores_elaborate_and_validate() {
        for d in [sodor_like(32), rocket_like(32), rocket_like(64), ariane_like()] {
            let nl = parse_and_elaborate(&d.verilog, &d.top)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name));
            nl.validate().unwrap();
            assert!(nl.logic_cell_count() > 50, "{} too small", d.name);
        }
    }

    #[test]
    fn wider_core_is_larger() {
        let n32 = parse_and_elaborate(&rocket_like(32).verilog, "rocket32").unwrap();
        let n64 = parse_and_elaborate(&rocket_like(64).verilog, "rocket64").unwrap();
        assert!(n64.logic_cell_count() >= n32.logic_cell_count());
    }
}
