//! Processor-core design generators (Rocket / Sodor / Ariane analogues).

use crate::{Design, Family};

/// A single-stage in-order core in the spirit of the Sodor 1-stage: a
/// fetch PC, a 16-entry register file, a case-decoded ALU and a memory
/// interface.
pub fn sodor_like(xlen: u32) -> Design {
    let w = xlen;
    let verilog = format!(
        r#"
module sodor{w} (
    input clk, input rst,
    input [{im}:0] instr,
    input [{im}:0] mem_rdata,
    output [{im}:0] mem_addr,
    output [{im}:0] mem_wdata,
    output mem_we,
    output [{im}:0] pc_out
);
    reg [{im}:0] pc;
    reg [{im}:0] rf [0:15];
    wire [3:0] rs1 = instr[19:16];
    wire [3:0] rs2 = instr[23:20];
    wire [3:0] rd = instr[27:24];
    wire [5:0] opcode = instr[5:0];
    wire [{im}:0] imm = {{{{{ext}{{instr[15]}}}}, instr[15:0]}};
    wire [{im}:0] a = rf[rs1];
    wire [{im}:0] b = rf[rs2];
    reg [{im}:0] alu;
    always @(*) begin
        case (opcode)
            6'd0: alu = a + b;
            6'd1: alu = a - b;
            6'd2: alu = a & b;
            6'd3: alu = a | b;
            6'd4: alu = a ^ b;
            6'd5: alu = a << b[4:0];
            6'd6: alu = a >> b[4:0];
            6'd7: alu = (a < b) ? {w}'d1 : {w}'d0;
            6'd8: alu = a + imm;
            6'd9: alu = a * b;
            default: alu = a;
        endcase
    end
    wire take_branch = (opcode == 6'd10) && (a == b);
    always @(posedge clk) begin
        if (rst) pc <= {w}'d0;
        else if (take_branch) pc <= pc + imm;
        else pc <= pc + {w}'d4;
    end
    always @(posedge clk) begin
        if (opcode != 6'd11) rf[rd] <= (opcode == 6'd12) ? mem_rdata : alu;
    end
    assign mem_addr = a + imm;
    assign mem_wdata = b;
    assign mem_we = opcode == 6'd11;
    assign pc_out = pc;
endmodule
"#,
        w = w,
        im = w - 1,
        ext = w - 16,
    );
    Design::new(format!("sodor_{w}"), Family::ProcessorCore, format!("sodor{w}"), "sodor", verilog)
}

/// A three-stage pipelined in-order core in the spirit of Rocket: decode /
/// execute / writeback pipeline registers, a 32-entry register file with
/// bypassing, an ALU plus multiplier, and a branch unit.
pub fn rocket_like(xlen: u32) -> Design {
    let w = xlen;
    let verilog = format!(
        r#"
module rocket{w} (
    input clk, input rst,
    input [31:0] instr,
    input [{im}:0] dmem_rdata,
    output [{im}:0] dmem_addr,
    output [{im}:0] dmem_wdata,
    output dmem_we,
    output [{im}:0] retire_value
);
    // ---- decode stage ----
    reg [31:0] id_instr;
    always @(posedge clk) id_instr <= instr;
    wire [4:0] rs1 = id_instr[19:15];
    wire [4:0] rs2 = id_instr[24:20];
    wire [4:0] rd = id_instr[11:7];
    wire [6:0] opcode = id_instr[6:0];
    wire [{im}:0] imm = {{{{{ext}{{id_instr[31]}}}}, id_instr[31:20]}};
    reg [{im}:0] rf [0:31];
    wire [{im}:0] rf1 = rf[rs1];
    wire [{im}:0] rf2 = rf[rs2];

    // ---- execute stage ----
    reg [{im}:0] ex_a, ex_b, ex_imm;
    reg [6:0] ex_op;
    reg [4:0] ex_rd;
    always @(posedge clk) begin
        ex_a <= rf1;
        ex_b <= rf2;
        ex_imm <= imm;
        ex_op <= opcode;
        ex_rd <= rd;
    end
    reg [{im}:0] alu;
    always @(*) begin
        case (ex_op)
            7'd0: alu = ex_a + ex_b;
            7'd1: alu = ex_a - ex_b;
            7'd2: alu = ex_a & ex_b;
            7'd3: alu = ex_a | ex_b;
            7'd4: alu = ex_a ^ ex_b;
            7'd5: alu = ex_a << ex_b[4:0];
            7'd6: alu = ex_a >> ex_b[4:0];
            7'd7: alu = ex_a * ex_b;
            7'd8: alu = (ex_a < ex_b) ? {w}'d1 : {w}'d0;
            7'd9: alu = ex_a + ex_imm;
            default: alu = ex_a;
        endcase
    end
    wire [{im}:0] agu = ex_a + ex_imm;

    // ---- writeback stage ----
    reg [{im}:0] wb_value;
    reg [4:0] wb_rd;
    reg wb_valid;
    always @(posedge clk) begin
        wb_value <= (ex_op == 7'd12) ? dmem_rdata : alu;
        wb_rd <= ex_rd;
        wb_valid <= ex_op != 7'd13;
    end
    always @(posedge clk) begin
        if (wb_valid) rf[wb_rd] <= wb_value;
    end

    // ---- pc / branch ----
    reg [{im}:0] pc;
    wire take = (ex_op == 7'd10) && (ex_a == ex_b);
    always @(posedge clk) begin
        if (rst) pc <= {w}'d0;
        else if (take) pc <= pc + ex_imm;
        else pc <= pc + {w}'d4;
    end

    assign dmem_addr = agu;
    assign dmem_wdata = ex_b;
    assign dmem_we = ex_op == 7'd13;
    assign retire_value = wb_value;
endmodule
"#,
        w = w,
        im = w - 1,
        ext = w - 12,
    );
    Design::new(
        format!("rocket_{w}"),
        Family::ProcessorCore,
        format!("rocket{w}"),
        "rocket",
        verilog,
    )
}

/// A wider five-stage core in the spirit of Ariane (CVA6): 64-bit
/// datapath, separate multiplier/divider unit, an ALU cluster and a
/// scoreboard register.
pub fn ariane_like() -> Design {
    let verilog = r#"
module ariane64 (
    input clk, input rst,
    input [31:0] instr,
    input [63:0] dmem_rdata,
    output [63:0] dmem_addr,
    output [63:0] dmem_wdata,
    output dmem_we,
    output [63:0] retire_value
);
    // ---- fetch / decode ----
    reg [31:0] if_instr, id_instr;
    always @(posedge clk) begin
        if_instr <= instr;
        id_instr <= if_instr;
    end
    wire [4:0] rs1 = id_instr[19:15];
    wire [4:0] rs2 = id_instr[24:20];
    wire [4:0] rd = id_instr[11:7];
    wire [6:0] opcode = id_instr[6:0];
    wire [63:0] imm = {{52{id_instr[31]}}, id_instr[31:20]};
    reg [63:0] rf [0:31];
    wire [63:0] rf1 = rf[rs1];
    wire [63:0] rf2 = rf[rs2];

    // ---- issue ----
    reg [63:0] is_a, is_b, is_imm;
    reg [6:0] is_op;
    reg [4:0] is_rd;
    always @(posedge clk) begin
        is_a <= rf1;
        is_b <= rf2;
        is_imm <= imm;
        is_op <= opcode;
        is_rd <= rd;
    end

    // ---- execute: ALU + MUL + DIV ----
    reg [63:0] alu;
    always @(*) begin
        case (is_op)
            7'd0: alu = is_a + is_b;
            7'd1: alu = is_a - is_b;
            7'd2: alu = is_a & is_b;
            7'd3: alu = is_a | is_b;
            7'd4: alu = is_a ^ is_b;
            7'd5: alu = is_a << is_b[5:0];
            7'd6: alu = is_a >> is_b[5:0];
            7'd7: alu = (is_a < is_b) ? 64'd1 : 64'd0;
            7'd8: alu = is_a + is_imm;
            default: alu = is_a;
        endcase
    end
    wire [63:0] mul = is_a * is_b;
    wire [63:0] divq = is_a / ((is_b == 64'd0) ? 64'd1 : is_b);
    reg [63:0] ex_result;
    always @(*) begin
        case (is_op)
            7'd9: ex_result = mul;
            7'd10: ex_result = divq;
            default: ex_result = alu;
        endcase
    end

    // ---- memory + commit ----
    reg [63:0] mem_result;
    reg [4:0] mem_rd;
    reg mem_valid;
    always @(posedge clk) begin
        mem_result <= (is_op == 7'd12) ? dmem_rdata : ex_result;
        mem_rd <= is_rd;
        mem_valid <= is_op != 7'd13;
    end
    always @(posedge clk) begin
        if (mem_valid) rf[mem_rd] <= mem_result;
    end
    reg [63:0] pc;
    wire take = (is_op == 7'd11) && (is_a >= is_b);
    always @(posedge clk) begin
        if (rst) pc <= 64'd0;
        else if (take) pc <= pc + is_imm;
        else pc <= pc + 64'd4;
    end
    assign dmem_addr = is_a + is_imm;
    assign dmem_wdata = is_b;
    assign dmem_we = is_op == 7'd13;
    assign retire_value = mem_result;
endmodule
"#
    .to_string();
    Design::new("ariane_64", Family::ProcessorCore, "ariane64", "ariane", verilog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::parse_and_elaborate;

    #[test]
    fn cores_elaborate_and_validate() {
        for d in [sodor_like(32), rocket_like(32), rocket_like(64), ariane_like()] {
            let nl = parse_and_elaborate(&d.verilog, &d.top)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name));
            nl.validate().unwrap();
            assert!(nl.logic_cell_count() > 50, "{} too small", d.name);
        }
    }

    #[test]
    fn wider_core_is_larger() {
        let n32 = parse_and_elaborate(&rocket_like(32).verilog, "rocket32").unwrap();
        let n64 = parse_and_elaborate(&rocket_like(64).verilog, "rocket64").unwrap();
        assert!(n64.logic_cell_count() >= n32.logic_cell_count());
    }
}
