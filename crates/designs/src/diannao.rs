//! A parameterizable DianNao generator (§5.7 / Figure 9 of the SNS paper).
//!
//! The pipeline has three functional stages:
//!
//! * **NFU-1**: `Tn × Tn` multipliers,
//! * **NFU-2**: `Tn` adder trees of `Tn` inputs each (tree arity set by the
//!   *reduction width* parameter),
//! * **NFU-3**: `Tn` activation units — piecewise-linear approximation
//!   with a configurable number of segments (slope·x + offset selected by
//!   comparators).
//!
//! Supported datatypes match Table 13: `int8`, `int16`, `fp16`, `bf16`,
//! `tf32`, `fp32`. Floating-point operators are generated as explicit
//! sub-modules (sign/exponent/mantissa datapaths), so datatype choice has
//! the same first-order hardware-cost effect as in the paper.

use crate::{Design, Family};

/// The DianNao datatypes of Table 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// 8-bit integer.
    Int8,
    /// 16-bit integer (the original DianNao choice).
    Int16,
    /// IEEE half precision (1+5+10).
    Fp16,
    /// bfloat16 (1+8+7).
    Bf16,
    /// TensorFloat-32 (1+8+10).
    Tf32,
    /// IEEE single precision (1+8+23).
    Fp32,
}

impl DataType {
    /// All datatypes, in Table 13 order.
    pub const ALL: [DataType; 6] =
        [DataType::Int8, DataType::Int16, DataType::Fp16, DataType::Bf16, DataType::Tf32, DataType::Fp32];

    /// Storage width in bits.
    pub fn width(self) -> u32 {
        match self {
            DataType::Int8 => 8,
            DataType::Int16 => 16,
            DataType::Fp16 | DataType::Bf16 => 16,
            DataType::Tf32 => 19,
            DataType::Fp32 => 32,
        }
    }

    /// `(exponent bits, stored mantissa bits)` for float types.
    pub fn float_fields(self) -> Option<(u32, u32)> {
        match self {
            DataType::Fp16 => Some((5, 10)),
            DataType::Bf16 => Some((8, 7)),
            DataType::Tf32 => Some((8, 10)),
            DataType::Fp32 => Some((8, 23)),
            _ => None,
        }
    }

    /// Short name used in module and design names.
    pub fn tag(self) -> &'static str {
        match self {
            DataType::Int8 => "int8",
            DataType::Int16 => "int16",
            DataType::Fp16 => "fp16",
            DataType::Bf16 => "bf16",
            DataType::Tf32 => "tf32",
            DataType::Fp32 => "fp32",
        }
    }
}

/// The DSE parameters of Table 13.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DianNaoParams {
    /// Neurons processed per cycle (4, 8, 16 or 32).
    pub tn: u32,
    /// Arithmetic datatype.
    pub datatype: DataType,
    /// Total pipeline registers: 3 (one per NFU) or 8 (3+2+3).
    pub pipeline_stages: u32,
    /// Adder-tree arity in NFU-2 (4, 8 or 16).
    pub reduction_width: u32,
    /// Piecewise-linear segments in NFU-3 (2, 4, 8 or 16).
    pub activation_entries: u32,
}

impl Default for DianNaoParams {
    /// The original published configuration: Tn = 16, int16.
    fn default() -> Self {
        DianNaoParams {
            tn: 16,
            datatype: DataType::Int16,
            pipeline_stages: 3,
            reduction_width: 4,
            activation_entries: 8,
        }
    }
}

impl DianNaoParams {
    /// Unique design name for this configuration.
    pub fn name(&self) -> String {
        format!(
            "diannao_tn{}_{}_{}s_r{}_a{}",
            self.tn,
            self.datatype.tag(),
            self.pipeline_stages,
            self.reduction_width,
            self.activation_entries
        )
    }

    /// Top module name.
    pub fn top(&self) -> String {
        self.name()
    }
}

fn fp_mul_module(name: &str, dt: DataType) -> String {
    let w = dt.width();
    let (e, m) = dt.float_fields().expect("float type");
    let wm = w - 1;
    let sign = w - 1;
    let exp_hi = w - 2;
    let exp_lo = m;
    let man_hi = m - 1;
    let full = m + 1; // with hidden bit
    let prod_w = 2 * full;
    let bias = (1u32 << (e - 1)) - 1;
    format!(
        r#"
module {name} (input [{wm}:0] a, input [{wm}:0] b, output [{wm}:0] y);
    wire sgn = a[{sign}] ^ b[{sign}];
    wire [{em}:0] ea = a[{exp_hi}:{exp_lo}];
    wire [{em}:0] eb = b[{exp_hi}:{exp_lo}];
    wire [{fm}:0] ma = {{1'b1, a[{man_hi}:0]}};
    wire [{fm}:0] mb = {{1'b1, b[{man_hi}:0]}};
    wire [{pm}:0] prod = ma * mb;
    wire norm = prod[{pm}];
    wire [{man_hi}:0] frac = norm ? prod[{fhi}:{flo_n}] : prod[{fhi_d}:{flo_d}];
    wire [{em}:0] eo = ea + eb - {e}'d{bias} + (norm ? {e}'d1 : {e}'d0);
    assign y = {{sgn, eo, frac}};
endmodule
"#,
        em = e - 1,
        fm = full - 1,
        pm = prod_w - 1,
        fhi = prod_w - 2,
        flo_n = prod_w - 1 - m,
        fhi_d = prod_w - 3,
        flo_d = prod_w - 2 - m,
    )
}

fn fp_add_module(name: &str, dt: DataType) -> String {
    let w = dt.width();
    let (e, m) = dt.float_fields().expect("float type");
    let wm = w - 1;
    let sign = w - 1;
    let exp_hi = w - 2;
    let exp_lo = m;
    let man_hi = m - 1;
    let full = m + 1;
    let sum_w = full + 1;
    format!(
        r#"
module {name} (input [{wm}:0] a, input [{wm}:0] b, output [{wm}:0] y);
    wire [{em}:0] ea = a[{exp_hi}:{exp_lo}];
    wire [{em}:0] eb = b[{exp_hi}:{exp_lo}];
    wire [{fm}:0] ma = {{1'b1, a[{man_hi}:0]}};
    wire [{fm}:0] mb = {{1'b1, b[{man_hi}:0]}};
    wire a_big = ea >= eb;
    wire [{em}:0] ediff = a_big ? (ea - eb) : (eb - ea);
    wire [{fm}:0] mbig = a_big ? ma : mb;
    wire [{fm}:0] msmall = a_big ? mb : ma;
    wire [{fm}:0] aligned = msmall >> ediff;
    wire [{sm}:0] sum = {{1'b0, mbig}} + {{1'b0, aligned}};
    wire carry = sum[{sm}];
    wire [{man_hi}:0] frac = carry ? sum[{fm}:1] : sum[{fm2}:0];
    wire [{em}:0] ebig = a_big ? ea : eb;
    wire [{em}:0] eo = ebig + (carry ? {e}'d1 : {e}'d0);
    wire sgn = a_big ? a[{sign}] : b[{sign}];
    assign y = {{sgn, eo, frac}};
endmodule
"#,
        em = e - 1,
        fm = full - 1,
        sm = sum_w - 1,
        fm2 = full - 2,
    )
}

/// Generates the DianNao design for `p`.
pub fn diannao(p: &DianNaoParams) -> Design {
    let dt = p.datatype;
    let w = dt.width();
    let wm = w - 1;
    let tn = p.tn as usize;
    let is_fp = dt.float_fields().is_some();
    let acc_w = if is_fp { w } else { 2 * w };
    let am = acc_w - 1;
    let name = p.name();
    let mulmod = format!("dn_mul_{}", dt.tag());
    let addmod = format!("dn_add_{}", dt.tag());

    let mut v = String::new();
    if is_fp {
        v.push_str(&fp_mul_module(&mulmod, dt));
        v.push_str(&fp_add_module(&addmod, dt));
    }
    v.push_str(&format!(
        "\nmodule {name} (\n    input clk,\n    input [{nb}:0] neurons,\n    input [{sb}:0] synapses,\n    output [{ob}:0] outputs\n);\n",
        nb = tn as u32 * w - 1,
        sb = (tn * tn) as u32 * w - 1,
        ob = tn as u32 * w - 1,
    ));

    // Split buses into named lanes.
    for i in 0..tn {
        v.push_str(&format!(
            "    wire [{wm}:0] nb{i} = neurons[{hi}:{lo}];\n",
            hi = (i as u32 + 1) * w - 1,
            lo = i as u32 * w
        ));
    }
    for i in 0..tn {
        for j in 0..tn {
            let idx = i * tn + j;
            v.push_str(&format!(
                "    wire [{wm}:0] sb{i}_{j} = synapses[{hi}:{lo}];\n",
                hi = (idx as u32 + 1) * w - 1,
                lo = idx as u32 * w
            ));
        }
    }

    // ---- NFU-1: Tn x Tn multipliers ----
    for i in 0..tn {
        for j in 0..tn {
            if is_fp {
                v.push_str(&format!(
                    "    wire [{wm}:0] p{i}_{j};\n    {mulmod} um{i}_{j} (.a(nb{j}), .b(sb{i}_{j}), .y(p{i}_{j}));\n"
                ));
            } else {
                v.push_str(&format!(
                    "    wire [{am}:0] p{i}_{j} = nb{j} * sb{i}_{j};\n"
                ));
            }
        }
    }
    // NFU-1 pipeline registers.
    let (s1, s2, s3) = if p.pipeline_stages >= 8 { (3, 2, 3) } else { (1, 1, 1) };
    let pw = if is_fp { w } else { acc_w };
    let pm = pw - 1;
    for i in 0..tn {
        for j in 0..tn {
            let mut prev = format!("p{i}_{j}");
            for s in 0..s1 {
                v.push_str(&format!(
                    "    reg [{pm}:0] p{i}_{j}_r{s};\n    always @(posedge clk) p{i}_{j}_r{s} <= {prev};\n"
                ));
                prev = format!("p{i}_{j}_r{s}");
            }
            v.push_str(&format!("    wire [{pm}:0] pp{i}_{j} = {prev};\n"));
        }
    }

    // ---- NFU-2: Tn adder trees with arity = reduction_width ----
    let arity = p.reduction_width.max(2) as usize;
    for i in 0..tn {
        let mut terms: Vec<String> = (0..tn).map(|j| format!("pp{i}_{j}")).collect();
        let mut lvl = 0;
        let mut tmp = 0;
        while terms.len() > 1 {
            let mut next = Vec::new();
            for group in terms.chunks(arity) {
                if group.len() == 1 {
                    next.push(group[0].clone());
                    continue;
                }
                let mut acc = group[0].clone();
                for item in &group[1..] {
                    let nname = format!("t{i}_{lvl}_{tmp}");
                    tmp += 1;
                    if is_fp {
                        v.push_str(&format!(
                            "    wire [{pm}:0] {nname};\n    {addmod} ua_{nname} (.a({acc}), .b({item}), .y({nname}));\n"
                        ));
                    } else {
                        v.push_str(&format!("    wire [{pm}:0] {nname} = {acc} + {item};\n"));
                    }
                    acc = nname;
                }
                next.push(acc);
            }
            terms = next;
            lvl += 1;
        }
        let mut prev = terms[0].clone();
        for s in 0..s2 {
            v.push_str(&format!(
                "    reg [{pm}:0] sum{i}_r{s};\n    always @(posedge clk) sum{i}_r{s} <= {prev};\n"
            ));
            prev = format!("sum{i}_r{s}");
        }
        v.push_str(&format!("    wire [{pm}:0] nfu2_{i} = {prev};\n"));
    }

    // ---- NFU-3: piecewise-linear activation ----
    let entries = p.activation_entries.max(2);
    for i in 0..tn {
        let x = format!("nfu2_{i}");
        // Segment index from comparators against evenly spaced breakpoints.
        let mut sel = format!("{pw}'d0");
        for k in 1..entries {
            let bp = (k as u64) << (pw.saturating_sub(4).min(40));
            v.push_str(&format!(
                "    wire seg{i}_{k} = {x} >= {pw}'d{bp};\n"
            ));
            sel = format!("(seg{i}_{k} ? {pw}'d{k} : {sel})");
        }
        v.push_str(&format!("    wire [{pm}:0] segsel{i} = {sel};\n"));
        // slope/offset lookup via mux chains over constants.
        let mut slope = format!("{w}'d1");
        let mut offset = format!("{w}'d0");
        for k in 1..entries {
            let sl = (k * 3 + 1) % 13 + 1;
            let of = (k * 7 + 5) % 97;
            slope = format!("((segsel{i} == {pw}'d{k}) ? {w}'d{sl} : {slope})");
            offset = format!("((segsel{i} == {pw}'d{k}) ? {w}'d{of} : {offset})");
        }
        v.push_str(&format!("    wire [{wm}:0] slope{i} = {slope};\n"));
        v.push_str(&format!("    wire [{wm}:0] offset{i} = {offset};\n"));
        v.push_str(&format!(
            "    wire [{wm}:0] act{i} = {x}[{wm}:0] * slope{i} + offset{i};\n"
        ));
        let mut prev = format!("act{i}");
        for s in 0..s3 {
            v.push_str(&format!(
                "    reg [{wm}:0] act{i}_r{s};\n    always @(posedge clk) act{i}_r{s} <= {prev};\n"
            ));
            prev = format!("act{i}_r{s}");
        }
        v.push_str(&format!(
            "    assign outputs[{hi}:{lo}] = {prev};\n",
            hi = (i as u32 + 1) * w - 1,
            lo = i as u32 * w
        ));
    }
    v.push_str("endmodule\n");

    Design::new(name.clone(), Family::MachineLearning, name, "diannao", v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::{parse_and_elaborate, CellKind};

    #[test]
    fn int16_diannao_has_tn_squared_multipliers() {
        let p = DianNaoParams { tn: 4, ..Default::default() };
        let d = diannao(&p);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        // Tn² NFU-1 multipliers + Tn activation multipliers.
        let muls = nl.cells().filter(|c| c.kind == CellKind::Mul).count();
        assert_eq!(muls, 16 + 4);
    }

    #[test]
    fn fp_datatypes_elaborate() {
        for dt in [DataType::Fp16, DataType::Bf16, DataType::Tf32, DataType::Fp32] {
            let p = DianNaoParams { tn: 2, datatype: dt, ..Default::default() };
            let d = diannao(&p);
            let nl = parse_and_elaborate(&d.verilog, &d.top)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name));
            nl.validate().unwrap();
        }
    }

    #[test]
    fn deeper_pipeline_adds_registers() {
        let base = DianNaoParams { tn: 4, ..Default::default() };
        let deep = DianNaoParams { tn: 4, pipeline_stages: 8, ..Default::default() };
        let count = |p: &DianNaoParams| {
            let d = diannao(p);
            parse_and_elaborate(&d.verilog, &d.top)
                .unwrap()
                .cells()
                .filter(|c| c.kind == CellKind::Dff)
                .count()
        };
        assert!(count(&deep) > 2 * count(&base));
    }

    #[test]
    fn larger_tn_is_larger_hardware() {
        let small = diannao(&DianNaoParams { tn: 4, ..Default::default() });
        let big = diannao(&DianNaoParams { tn: 8, ..Default::default() });
        let cells = |d: &Design| {
            parse_and_elaborate(&d.verilog, &d.top).unwrap().logic_cell_count()
        };
        assert!(cells(&big) > 2 * cells(&small));
    }

    #[test]
    fn datatype_metadata_is_consistent() {
        for dt in DataType::ALL {
            assert!(dt.width() >= 8);
            if let Some((e, m)) = dt.float_fields() {
                assert_eq!(1 + e + m, dt.width());
            }
        }
    }
}
