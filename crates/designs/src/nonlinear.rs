//! Non-linear function approximation generators (lookup table, piecewise
//! approximation) — including the paper's smallest design, a 128-entry
//! 8-bit lookup table.

use crate::{Design, Family};

/// A writable lookup table: `entries` × `width` storage with one write
/// port and one registered read port. `lut(128, 8)` is the smallest design
/// in the paper's runtime comparison (Figure 7).
pub fn lut(entries: u32, width: u32) -> Design {
    assert!(entries.is_power_of_two(), "entries must be a power of two");
    let ab = entries.trailing_zeros().max(1);
    let im = width - 1;
    let verilog = format!(
        r#"
module lut{entries}x{width} (
    input clk,
    input we,
    input [{abm}:0] waddr,
    input [{im}:0] wdata,
    input [{abm}:0] raddr,
    output [{im}:0] rdata
);
    reg [{im}:0] table_mem [0:{last}];
    always @(posedge clk) begin
        if (we) table_mem[waddr] <= wdata;
    end
    reg [{im}:0] rd_r;
    always @(posedge clk) rd_r <= table_mem[raddr];
    assign rdata = rd_r;
endmodule
"#,
        abm = ab - 1,
        last = entries - 1,
    );
    Design::new(
        format!("lut_{entries}x{width}"),
        Family::NonlinearApprox,
        format!("lut{entries}x{width}"),
        "lut",
        verilog,
    )
}

/// A piecewise-linear function approximator: `segments` breakpoints with
/// slope/offset selection (the NFU-3 structure as a standalone unit).
pub fn piecewise(segments: u32, width: u32) -> Design {
    let im = width - 1;
    let pm = 2 * width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule pw{segments}_{width} (\n    input clk,\n    input [{im}:0] x,\n    output [{pm}:0] fx\n);\n"
    ));
    let step = (1u64 << width) / segments as u64;
    let mut slope_expr = format!("{width}'d1");
    let mut offset_expr = format!("{width}'d0");
    for s in 1..segments {
        let bp = step * s as u64;
        let sl = ((s * 5 + 3) % (1 << width.min(10))) | 1;
        let of = (s * 11 + 7) % (1 << width.min(10));
        v.push_str(&format!("    wire ge{s} = x >= {width}'d{bp};\n"));
        slope_expr = format!("(ge{s} ? {width}'d{sl} : {slope_expr})");
        offset_expr = format!("(ge{s} ? {width}'d{of} : {offset_expr})");
    }
    v.push_str(&format!(
        r#"    wire [{im}:0] slope = {slope_expr};
    wire [{im}:0] offset = {offset_expr};
    reg [{pm}:0] fx_r;
    always @(posedge clk) fx_r <= x * slope + offset;
    assign fx = fx_r;
endmodule
"#
    ));
    Design::new(
        format!("piecewise_{segments}_{width}"),
        Family::NonlinearApprox,
        format!("pw{segments}_{width}"),
        "piecewise",
        v,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::{parse_and_elaborate, CellKind};

    #[test]
    fn lut_128x8_is_the_papers_smallest_design() {
        let d = lut(128, 8);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        // 128 entry registers + the read register.
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Dff).count(), 129);
    }

    #[test]
    fn piecewise_has_segment_comparators_and_mac() {
        let d = piecewise(8, 16);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Lgt).count(), 7);
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Mul).count(), 1);
    }
}
