//! Linear-algebra generators (GEMM tile, SpMV lane unit).

use crate::{Design, Family};

/// A GEMM tile computing a `t × t` block of dot products per cycle:
/// t² MACs over shared row/column operand buses with accumulators.
pub fn gemm(t: u32, width: u32) -> Design {
    let im = width - 1;
    let am = 2 * width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule gemm{t}x{t}_{width} (\n    input clk, input rst,\n    input [{rb}:0] row_bus,\n    input [{rb}:0] col_bus,\n    output [{ob}:0] c_bus\n);\n",
        rb = t * width - 1,
        ob = t * t * 2 * width - 1,
    ));
    for i in 0..t {
        v.push_str(&format!(
            "    wire [{im}:0] a{i} = row_bus[{hi}:{lo}];\n",
            hi = (i + 1) * width - 1,
            lo = i * width
        ));
        v.push_str(&format!(
            "    wire [{im}:0] b{i} = col_bus[{hi}:{lo}];\n",
            hi = (i + 1) * width - 1,
            lo = i * width
        ));
    }
    for i in 0..t {
        for j in 0..t {
            let idx = i * t + j;
            v.push_str(&format!(
                r#"    reg [{am}:0] c{i}_{j};
    always @(posedge clk) begin
        if (rst) c{i}_{j} <= {aw}'d0;
        else c{i}_{j} <= c{i}_{j} + a{i} * b{j};
    end
    assign c_bus[{hi}:{lo}] = c{i}_{j};
"#,
                aw = 2 * width,
                hi = (idx + 1) * 2 * width - 1,
                lo = idx * 2 * width,
            ));
        }
    }
    v.push_str("endmodule\n");
    Design::new(
        format!("gemm_{t}x{t}_{width}"),
        Family::LinearAlgebra,
        format!("gemm{t}x{t}_{width}"),
        "gemm",
        v,
    )
}

/// A sparse matrix-vector lane unit: `lanes` value/column pairs per cycle,
/// each gated by a row-bound comparison, merged through an adder tree into
/// a row accumulator.
pub fn spmv(lanes: u32, width: u32) -> Design {
    let im = width - 1;
    let am = 2 * width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule spmv{lanes}_{width} (\n    input clk, input rst,\n    input [{vb}:0] values,\n    input [{cb}:0] cols,\n    input [{vb}:0] vec,\n    input [15:0] row_end,\n    output [{am}:0] row_sum\n);\n",
        vb = lanes * width - 1,
        cb = lanes * 16 - 1,
    ));
    for l in 0..lanes {
        v.push_str(&format!(
            r#"    wire [{im}:0] val{l} = values[{vhi}:{vlo}];
    wire [15:0] col{l} = cols[{chi}:{clo}];
    wire [{im}:0] x{l} = vec[{vhi}:{vlo}];
    wire active{l} = col{l} < row_end;
    wire [{am}:0] prod{l} = active{l} ? (val{l} * x{l}) : {aw}'d0;
"#,
            vhi = (l + 1) * width - 1,
            vlo = l * width,
            chi = (l + 1) * 16 - 1,
            clo = l * 16,
            aw = 2 * width,
        ));
    }
    let mut terms: Vec<String> = (0..lanes).map(|l| format!("prod{l}")).collect();
    let mut lvl = 0;
    while terms.len() > 1 {
        let mut next = Vec::new();
        for (k, pair) in terms.chunks(2).enumerate() {
            if pair.len() == 2 {
                let nm = format!("ps_{lvl}_{k}");
                v.push_str(&format!("    wire [{am}:0] {nm} = {} + {};\n", pair[0], pair[1]));
                next.push(nm);
            } else {
                next.push(pair[0].clone());
            }
        }
        terms = next;
        lvl += 1;
    }
    v.push_str(&format!(
        r#"    reg [{am}:0] acc;
    always @(posedge clk) begin
        if (rst) acc <= {aw}'d0;
        else acc <= acc + {top};
    end
    assign row_sum = acc;
endmodule
"#,
        aw = 2 * width,
        top = terms[0]
    ));
    Design::new(
        format!("spmv_{lanes}_{width}"),
        Family::LinearAlgebra,
        format!("spmv{lanes}_{width}"),
        "spmv",
        v,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::{parse_and_elaborate, CellKind};

    #[test]
    fn gemm_tile_has_t_squared_macs() {
        let d = gemm(4, 16);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Mul).count(), 16);
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Dff).count(), 16);
    }

    #[test]
    fn spmv_gates_products_with_comparators() {
        let d = spmv(4, 16);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Lgt).count(), 4);
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Mul).count(), 4);
    }
}
