//! Cryptographic-arithmetic generators (AES round, SHA3/Keccak-like
//! permutation).

use crate::{Design, Family};

/// One AES-style round over a 128-bit state: 16 S-box substitutions
/// (two 16-entry LUT halves combined per byte), a ShiftRows byte permuted
/// wiring, a MixColumns-style XOR/shift network and AddRoundKey.
pub fn aes_round() -> Design {
    let mut v = String::new();
    v.push_str(
        "\nmodule aes_round (\n    input clk,\n    input [127:0] state_in,\n    input [127:0] round_key,\n    output [127:0] state_out\n);\n",
    );
    // S-boxes: per byte, two 4-bit case LUTs xored with a rotation.
    for b in 0..16 {
        let hi = (b + 1) * 8 - 1;
        let lo = b * 8;
        v.push_str(&format!(
            r#"    wire [7:0] sb_in{b} = state_in[{hi}:{lo}];
    reg [7:0] sb_lo{b};
    always @(*) begin
        case (sb_in{b}[3:0])
            4'd0: sb_lo{b} = 8'h63; 4'd1: sb_lo{b} = 8'h7C; 4'd2: sb_lo{b} = 8'h77;
            4'd3: sb_lo{b} = 8'h7B; 4'd4: sb_lo{b} = 8'hF2; 4'd5: sb_lo{b} = 8'h6B;
            4'd6: sb_lo{b} = 8'h6F; 4'd7: sb_lo{b} = 8'hC5; 4'd8: sb_lo{b} = 8'h30;
            4'd9: sb_lo{b} = 8'h01; 4'd10: sb_lo{b} = 8'h67; 4'd11: sb_lo{b} = 8'h2B;
            4'd12: sb_lo{b} = 8'hFE; 4'd13: sb_lo{b} = 8'hD7; 4'd14: sb_lo{b} = 8'hAB;
            default: sb_lo{b} = 8'h76;
        endcase
    end
    reg [7:0] sb_hi{b};
    always @(*) begin
        case (sb_in{b}[7:4])
            4'd0: sb_hi{b} = 8'hCA; 4'd1: sb_hi{b} = 8'h82; 4'd2: sb_hi{b} = 8'hC9;
            4'd3: sb_hi{b} = 8'h7D; 4'd4: sb_hi{b} = 8'hFA; 4'd5: sb_hi{b} = 8'h59;
            4'd6: sb_hi{b} = 8'h47; 4'd7: sb_hi{b} = 8'hF0; 4'd8: sb_hi{b} = 8'hAD;
            4'd9: sb_hi{b} = 8'hD4; 4'd10: sb_hi{b} = 8'hA2; 4'd11: sb_hi{b} = 8'hAF;
            4'd12: sb_hi{b} = 8'h9C; 4'd13: sb_hi{b} = 8'hA4; 4'd14: sb_hi{b} = 8'h72;
            default: sb_hi{b} = 8'hC0;
        endcase
    end
    wire [7:0] sbox{b} = sb_lo{b} ^ {{sb_hi{b}[3:0], sb_hi{b}[7:4]}};
"#
        ));
    }
    // ShiftRows: byte permutation (pure wiring).
    let perm: [usize; 16] = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11];
    for (dst, &src) in perm.iter().enumerate() {
        v.push_str(&format!("    wire [7:0] sr{dst} = sbox{src};\n"));
    }
    // MixColumns-ish: xtime via shift+conditional xor, column xors.
    for col in 0..4 {
        let b0 = col * 4;
        for row in 0..4 {
            let a = b0 + row;
            let b = b0 + (row + 1) % 4;
            let c = b0 + (row + 2) % 4;
            let d = b0 + (row + 3) % 4;
            v.push_str(&format!(
                "    wire [7:0] xt{a} = {{sr{a}[6:0], 1'b0}} ^ (sr{a}[7] ? 8'h1B : 8'h00);\n"
            ));
            v.push_str(&format!(
                "    wire [7:0] mc{a} = xt{a} ^ sr{b} ^ sr{c} ^ sr{d};\n"
            ));
        }
    }
    // AddRoundKey and state register.
    v.push_str("    reg [127:0] state_r;\n    always @(posedge clk) state_r <= {");
    let bytes: Vec<String> = (0..16).rev().map(|b| format!("mc{b}")).collect();
    v.push_str(&bytes.join(", "));
    v.push_str("} ^ round_key;\n    assign state_out = state_r;\nendmodule\n");
    Design::new("aes_round", Family::Cryptographic, "aes_round", "aes", v)
}

/// A Keccak-flavoured permutation over `lanes` 64-bit lanes, `rounds`
/// unrolled: theta-style column XOR, rho rotations (constant shifts), chi
/// non-linear layer (NOT/AND/XOR).
pub fn sha3_like(rounds: u32) -> Design {
    let lanes = 8u32;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule sha3_r{rounds} (\n    input clk, input rst,\n    input [{b}:0] block_in,\n    input absorb,\n    output [{b}:0] digest\n);\n",
        b = lanes * 64 - 1
    ));
    for l in 0..lanes {
        v.push_str(&format!(
            "    reg [63:0] lane{l};\n    wire [63:0] st0_{l} = absorb ? (lane{l} ^ block_in[{hi}:{lo}]) : lane{l};\n",
            hi = (l + 1) * 64 - 1,
            lo = l * 64
        ));
    }
    let mut cur: Vec<String> = (0..lanes).map(|l| format!("st0_{l}")).collect();
    for r in 0..rounds {
        // theta: parity of all lanes.
        v.push_str(&format!("    wire [63:0] par{r} = {};\n", cur.join(" ^ ")));
        let mut next = Vec::new();
        for l in 0..lanes as usize {
            let rot = (5 * l + 7 * r as usize + 1) % 63 + 1;
            let inv = 64 - rot;
            let x = &cur[l];
            let y = &cur[(l + 1) % lanes as usize];
            let z = &cur[(l + 2) % lanes as usize];
            v.push_str(&format!(
                "    wire [63:0] th{r}_{l} = {x} ^ par{r};\n    wire [63:0] rho{r}_{l} = {{th{r}_{l}[{rm}:0], th{r}_{l}[63:{inv}]}};\n    wire [63:0] chi{r}_{l} = rho{r}_{l} ^ (~{y} & {z});\n",
                rm = inv - 1,
            ));
            next.push(format!("chi{r}_{l}"));
        }
        // round constant on lane 0
        let rc = 0x8000000080008008u64 ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        v.push_str(&format!(
            "    wire [63:0] rc{r}_0 = chi{r}_0 ^ 64'h{rc:016X};\n"
        ));
        next[0] = format!("rc{r}_0");
        cur = next;
    }
    for (l, src) in cur.iter().enumerate().take(lanes as usize) {
        v.push_str(&format!(
            "    always @(posedge clk) begin\n        if (rst) lane{l} <= 64'd0;\n        else lane{l} <= {src};\n    end\n",
        ));
        v.push_str(&format!(
            "    assign digest[{hi}:{lo}] = lane{l};\n",
            hi = (l + 1) * 64 - 1,
            lo = l * 64
        ));
    }
    v.push_str("endmodule\n");
    Design::new(
        format!("sha3_r{rounds}"),
        Family::Cryptographic,
        format!("sha3_r{rounds}"),
        "sha3",
        v,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::{parse_and_elaborate, CellKind};

    #[test]
    fn aes_round_elaborates_with_sbox_muxes() {
        let d = aes_round();
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        // 32 case LUTs produce a healthy mux population.
        assert!(nl.cells().filter(|c| c.kind == CellKind::Mux).count() > 100);
        assert!(nl.cells().filter(|c| c.kind == CellKind::Xor).count() > 50);
    }

    #[test]
    fn sha3_rounds_scale_logic() {
        let a = parse_and_elaborate(&sha3_like(4).verilog, "sha3_r4").unwrap();
        let b = parse_and_elaborate(&sha3_like(8).verilog, "sha3_r8").unwrap();
        a.validate().unwrap();
        b.validate().unwrap();
        assert!(b.logic_cell_count() > (a.logic_cell_count() * 3) / 2);
    }
}
