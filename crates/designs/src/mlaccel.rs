//! ML-accelerator generators (Gemmini / NVDLA analogues).

use crate::{Design, Family};

/// A weight-stationary systolic array in the spirit of Gemmini: an
/// `n × n` grid of processing elements, each a registered MAC, built as a
/// module hierarchy (one `pe` definition instantiated n² times).
pub fn systolic_array(n: u32, width: u32) -> Design {
    let w = width;
    let im = w - 1;
    let am = 2 * w - 1;
    let mut v = String::new();
    v.push_str(&format!(
        r#"
module pe{w} (
    input clk,
    input [{im}:0] a_in,
    input [{im}:0] b_in,
    output [{im}:0] a_out,
    output [{im}:0] b_out,
    output [{am}:0] acc_out
);
    reg [{im}:0] a_r, b_r;
    reg [{am}:0] acc;
    always @(posedge clk) begin
        a_r <= a_in;
        b_r <= b_in;
        acc <= acc + a_in * b_in;
    end
    assign a_out = a_r;
    assign b_out = b_r;
    assign acc_out = acc;
endmodule

module systolic{n}x{n}_{w} (
    input clk,
"#
    ));
    for i in 0..n {
        v.push_str(&format!("    input [{im}:0] a{i},\n"));
    }
    for j in 0..n {
        v.push_str(&format!("    input [{im}:0] b{j},\n"));
    }
    v.push_str(&format!("    output [{am}:0] result\n);\n"));
    // Internal forwarding wires.
    for i in 0..n {
        for j in 0..=n {
            v.push_str(&format!("    wire [{im}:0] ah_{i}_{j};\n"));
        }
    }
    for i in 0..=n {
        for j in 0..n {
            v.push_str(&format!("    wire [{im}:0] bv_{i}_{j};\n"));
        }
    }
    for i in 0..n {
        for j in 0..n {
            v.push_str(&format!("    wire [{am}:0] acc_{i}_{j};\n"));
        }
    }
    for i in 0..n {
        v.push_str(&format!("    assign ah_{i}_0 = a{i};\n"));
    }
    for j in 0..n {
        v.push_str(&format!("    assign bv_0_{j} = b{j};\n"));
    }
    for i in 0..n {
        for j in 0..n {
            v.push_str(&format!(
                "    pe{w} u_{i}_{j} (.clk(clk), .a_in(ah_{i}_{j}), .b_in(bv_{i}_{j}), \
                 .a_out(ah_{i}_{jn}), .b_out(bv_{inx}_{j}), .acc_out(acc_{i}_{j}));\n",
                jn = j + 1,
                inx = i + 1,
            ));
        }
    }
    // Reduce all accumulators into one result (balanced xor-free add tree).
    let mut terms: Vec<String> = (0..n)
        .flat_map(|i| (0..n).map(move |j| format!("acc_{i}_{j}")))
        .collect();
    let mut level = 0;
    while terms.len() > 1 {
        let mut next = Vec::new();
        for (k, pair) in terms.chunks(2).enumerate() {
            if pair.len() == 2 {
                let name = format!("sum_{level}_{k}");
                v.push_str(&format!(
                    "    wire [{am}:0] {name} = {} + {};\n",
                    pair[0], pair[1]
                ));
                next.push(name);
            } else {
                next.push(pair[0].clone());
            }
        }
        terms = next;
        level += 1;
    }
    v.push_str(&format!("    assign result = {};\nendmodule\n", terms[0]));
    Design::new(
        format!("systolic_{n}x{n}_{w}"),
        Family::MachineLearning,
        format!("systolic{n}x{n}_{w}"),
        "systolic",
        v,
    )
}

/// An NVDLA-style convolution MAC unit: `k` parallel multipliers, an adder
/// tree, and a partial-sum accumulator with saturation compare.
pub fn nvdla_like(k: u32) -> Design {
    let mut v = String::new();
    v.push_str(&format!("\nmodule nvdla_mac{k} (\n    input clk, input rst,\n"));
    for i in 0..k {
        v.push_str(&format!("    input [15:0] feat{i},\n    input [15:0] wt{i},\n"));
    }
    v.push_str("    input accumulate,\n    output [31:0] psum_out,\n    output saturated\n);\n");
    for i in 0..k {
        v.push_str(&format!("    wire [31:0] prod{i} = feat{i} * wt{i};\n"));
    }
    let mut terms: Vec<String> = (0..k).map(|i| format!("prod{i}")).collect();
    let mut level = 0;
    while terms.len() > 1 {
        let mut next = Vec::new();
        for (idx, pair) in terms.chunks(2).enumerate() {
            if pair.len() == 2 {
                let name = format!("t_{level}_{idx}");
                v.push_str(&format!("    wire [31:0] {name} = {} + {};\n", pair[0], pair[1]));
                next.push(name);
            } else {
                next.push(pair[0].clone());
            }
        }
        terms = next;
        level += 1;
    }
    v.push_str(&format!(
        r#"    reg [31:0] psum;
    wire [31:0] tree = {top};
    always @(posedge clk) begin
        if (rst) psum <= 32'd0;
        else if (accumulate) psum <= psum + tree;
        else psum <= tree;
    end
    assign psum_out = psum;
    assign saturated = psum > 32'h7FFF0000;
endmodule
"#,
        top = terms[0]
    ));
    Design::new(format!("nvdla_mac_{k}"), Family::MachineLearning, format!("nvdla_mac{k}"), "nvdla", v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::{parse_and_elaborate, CellKind};

    #[test]
    fn systolic_array_has_n_squared_macs() {
        let d = systolic_array(4, 8);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        let muls = nl.cells().filter(|c| c.kind == CellKind::Mul).count();
        assert_eq!(muls, 16);
        let dffs = nl.cells().filter(|c| c.kind == CellKind::Dff).count();
        assert_eq!(dffs, 48); // 16 PEs x (a_r + b_r + acc)
    }

    #[test]
    fn nvdla_mac_elaborates() {
        let d = nvdla_like(8);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        let muls = nl.cells().filter(|c| c.kind == CellKind::Mul).count();
        assert_eq!(muls, 8);
        let adds = nl.cells().filter(|c| c.kind == CellKind::Add).count();
        assert_eq!(adds, 8); // 7 tree + 1 accumulate
    }
}
