//! A parameterizable out-of-order core generator for the BOOM case study
//! (§5.6 / Table 10 of the SNS paper).
//!
//! The generator produces a structural skeleton of an OoO core whose
//! hardware cost responds to the same knobs the paper sweeps: branch
//! predictor flavour, core (decode) width, memory ports, fetch width, ROB
//! size, physical integer register count, issue-queue slots and L1-D
//! associativity. Storage structures are real register arrays (the
//! elaborator expands them to flip-flops, write decoders and read-mux
//! trees); the issue queue is a genuine CAM (per-slot tag comparators
//! against every wakeup bus).

use crate::{Design, Family};

/// The branch predictor options of Table 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Predictor {
    /// TAGE-L: several tagged geometric-history tables.
    TageL,
    /// The BOOM-2 gshare-style predictor.
    Boom2,
    /// The Alpha 21264 tournament predictor.
    Alpha21264,
}

impl Predictor {
    /// All options, Table 10 order.
    pub const ALL: [Predictor; 3] = [Predictor::TageL, Predictor::Boom2, Predictor::Alpha21264];

    /// Short tag for names.
    pub fn tag(self) -> &'static str {
        match self {
            Predictor::TageL => "tage",
            Predictor::Boom2 => "boom2",
            Predictor::Alpha21264 => "alpha",
        }
    }
}

/// The Table 10 design-space parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BoomParams {
    /// Branch predictor flavour.
    pub predictor: Predictor,
    /// Decode/issue/commit width (1–4).
    pub core_width: u32,
    /// Load/store ports (1–2).
    pub mem_ports: u32,
    /// Instruction fetch width (4 or 8).
    pub fetch_width: u32,
    /// Reorder-buffer entries.
    pub rob_size: u32,
    /// Physical integer registers.
    pub int_regs: u32,
    /// Issue-queue slots.
    pub issue_slots: u32,
    /// L1 data-cache ways.
    pub dcache_ways: u32,
}

impl Default for BoomParams {
    fn default() -> Self {
        BoomParams {
            predictor: Predictor::TageL,
            core_width: 2,
            mem_ports: 1,
            fetch_width: 4,
            rob_size: 64,
            int_regs: 80,
            issue_slots: 16,
            dcache_ways: 4,
        }
    }
}

impl BoomParams {
    /// Unique design name.
    pub fn name(&self) -> String {
        format!(
            "boom_{}_w{}_m{}_f{}_rob{}_pr{}_iq{}_dw{}",
            self.predictor.tag(),
            self.core_width,
            self.mem_ports,
            self.fetch_width,
            self.rob_size,
            self.int_regs,
            self.issue_slots,
            self.dcache_ways
        )
    }

    /// Top module name (same as [`BoomParams::name`]).
    pub fn top(&self) -> String {
        self.name()
    }

    /// The full 2592-point Table 10 grid.
    pub fn grid() -> Vec<BoomParams> {
        let mut out = Vec::new();
        for predictor in Predictor::ALL {
            for core_width in [1, 2, 3, 4] {
                for mem_ports in [1, 2] {
                    for fetch_width in [4, 8] {
                        for rob_size in [32, 64, 96] {
                            for int_regs in [52, 80, 100] {
                                for issue_slots in [8, 16, 32] {
                                    for dcache_ways in [4, 8] {
                                        out.push(BoomParams {
                                            predictor,
                                            core_width,
                                            mem_ports,
                                            fetch_width,
                                            rob_size,
                                            int_regs,
                                            issue_slots,
                                            dcache_ways,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

fn predictor_logic(v: &mut String, p: Predictor) {
    match p {
        Predictor::TageL => {
            // Four tagged tables, geometric history lengths.
            for t in 0..4u32 {
                let entries = 32;
                v.push_str(&format!(
                    "    reg [11:0] tage_t{t} [0:{last}];\n",
                    last = entries - 1
                ));
                v.push_str(&format!(
                    "    wire [4:0] tage_idx{t} = pc[6:2] ^ ghist[{h}:{l}];\n",
                    h = 4 + t,
                    l = t
                ));
                v.push_str(&format!(
                    "    wire [11:0] tage_e{t} = tage_t{t}[tage_idx{t}];\n"
                ));
                v.push_str(&format!(
                    "    wire tage_hit{t} = tage_e{t}[11:4] == pc[14:7];\n"
                ));
                v.push_str(&format!(
                    "    always @(posedge clk) if (bp_update) tage_t{t}[tage_idx{t}] <= {{pc[14:7], bp_taken, tage_e{t}[2:0]}};\n"
                ));
            }
            v.push_str(
                "    wire predict_taken = tage_hit3 ? tage_e3[3] : (tage_hit2 ? tage_e2[3] : (tage_hit1 ? tage_e1[3] : (tage_hit0 ? tage_e0[3] : ghist[0])));\n",
            );
        }
        Predictor::Boom2 => {
            v.push_str(
                r#"    reg [3:0] gshare [0:63];
    wire [5:0] gidx = pc[7:2] ^ ghist[5:0];
    wire [3:0] gent = gshare[gidx];
    always @(posedge clk) if (bp_update) gshare[gidx] <= bp_taken ? (gent + 4'd1) : (gent - 4'd1);
    reg [33:0] btb [0:15];
    wire [33:0] btb_e = btb[pc[5:2]];
    always @(posedge clk) if (bp_update) btb[pc[5:2]] <= {pc[3:2], target};
    wire predict_taken = gent[3];
"#,
            );
        }
        Predictor::Alpha21264 => {
            v.push_str(
                r#"    reg [9:0] local_hist [0:31];
    wire [9:0] lhist = local_hist[pc[6:2]];
    reg [2:0] local_pred [0:31];
    wire [2:0] lpred = local_pred[lhist[4:0]];
    reg [1:0] global_pred [0:63];
    wire [1:0] gpred = global_pred[ghist[5:0]];
    reg [1:0] choice [0:63];
    wire [1:0] ch = choice[ghist[5:0]];
    always @(posedge clk) begin
        if (bp_update) begin
            local_hist[pc[6:2]] <= {lhist[8:0], bp_taken};
            local_pred[lhist[4:0]] <= bp_taken ? (lpred + 3'd1) : (lpred - 3'd1);
            global_pred[ghist[5:0]] <= bp_taken ? (gpred + 2'd1) : (gpred - 2'd1);
            choice[ghist[5:0]] <= ch + 2'd1;
        end
    end
    wire predict_taken = ch[1] ? gpred[1] : lpred[2];
"#,
            );
        }
    }
}

/// Generates the OoO core for `p`.
pub fn boom_like(p: &BoomParams) -> Design {
    let name = p.name();
    let prf_ab = 32 - p.int_regs.leading_zeros(); // address bits
    let rob_ab = 32 - (p.rob_size - 1).leading_zeros();
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule {name} (\n    input clk, input rst,\n    input [{fb}:0] fetch_bundle,\n    input bp_update, input bp_taken,\n    input [31:0] target,\n    input [{mb}:0] dmem_rdata,\n    output [{mb}:0] dmem_addr,\n    output [31:0] commit_value\n);\n",
        fb = p.fetch_width * 32 - 1,
        mb = p.mem_ports * 32 - 1,
    ));

    // ---- fetch ----
    v.push_str("    reg [31:0] pc;\n    reg [15:0] ghist;\n");
    for f in 0..p.fetch_width {
        v.push_str(&format!(
            "    reg [31:0] fq{f};\n    always @(posedge clk) fq{f} <= fetch_bundle[{hi}:{lo}];\n",
            hi = (f + 1) * 32 - 1,
            lo = f * 32
        ));
    }
    predictor_logic(&mut v, p.predictor);
    v.push_str(
        r#"    always @(posedge clk) begin
        if (rst) begin
            pc <= 32'd0;
            ghist <= 16'd0;
        end else begin
            pc <= predict_taken ? target : (pc + 32'd16);
            ghist <= {ghist[14:0], predict_taken};
        end
    end
"#,
    );

    // ---- decode + rename (core_width ways) ----
    v.push_str(&format!(
        "    reg [{pam}:0] map_table [0:31];\n",
        pam = prf_ab - 1
    ));
    for w in 0..p.core_width {
        let f = w % p.fetch_width;
        v.push_str(&format!(
            r#"    wire [4:0] dec_rs1_{w} = fq{f}[19:15];
    wire [4:0] dec_rs2_{w} = fq{f}[24:20];
    wire [4:0] dec_rd_{w} = fq{f}[11:7];
    wire [{pam}:0] phys_rs1_{w} = map_table[dec_rs1_{w}];
    wire [{pam}:0] phys_rs2_{w} = map_table[dec_rs2_{w}];
    reg [{pam}:0] freelist_head_{w};
    always @(posedge clk) begin
        if (rst) freelist_head_{w} <= {pab}'d{init};
        else freelist_head_{w} <= freelist_head_{w} + {pab}'d{stride};
    end
    always @(posedge clk) map_table[dec_rd_{w}] <= freelist_head_{w};
"#,
            pam = prf_ab - 1,
            pab = prf_ab,
            init = w + 1,
            stride = p.core_width,
        ));
    }

    // ---- issue queue: CAM wakeup ----
    for s in 0..p.issue_slots {
        v.push_str(&format!(
            "    reg [{pam}:0] iq_src1_{s}, iq_src2_{s};\n    reg iq_rdy1_{s}, iq_rdy2_{s}, iq_valid_{s};\n",
            pam = prf_ab - 1
        ));
        let mut wake1 = Vec::new();
        let mut wake2 = Vec::new();
        for w in 0..p.core_width {
            v.push_str(&format!(
                "    wire wk1_{s}_{w} = iq_src1_{s} == freelist_head_{w};\n    wire wk2_{s}_{w} = iq_src2_{s} == freelist_head_{w};\n"
            ));
            wake1.push(format!("wk1_{s}_{w}"));
            wake2.push(format!("wk2_{s}_{w}"));
        }
        v.push_str(&format!(
            r#"    always @(posedge clk) begin
        if (rst) begin
            iq_valid_{s} <= 1'b0;
            iq_rdy1_{s} <= 1'b0;
            iq_rdy2_{s} <= 1'b0;
        end else begin
            iq_src1_{s} <= phys_rs1_{w0};
            iq_src2_{s} <= phys_rs2_{w0};
            iq_rdy1_{s} <= iq_rdy1_{s} | {or1};
            iq_rdy2_{s} <= iq_rdy2_{s} | {or2};
            iq_valid_{s} <= 1'b1;
        end
    end
    wire iq_ready_{s} = iq_valid_{s} && iq_rdy1_{s} && iq_rdy2_{s};
"#,
            w0 = s % p.core_width,
            or1 = wake1.join(" | "),
            or2 = wake2.join(" | "),
        ));
    }
    // Select: priority-encode one ready slot per execution way.
    for w in 0..p.core_width {
        let mut sel = format!("{prf_ab}'d0");
        for s in (0..p.issue_slots).rev() {
            if s % p.core_width == w {
                sel = format!("(iq_ready_{s} ? iq_src1_{s} : {sel})");
            }
        }
        v.push_str(&format!(
            "    wire [{pam}:0] grant_src_{w} = {sel};\n",
            pam = prf_ab - 1
        ));
    }

    // ---- physical register file: core_width*2 read ports ----
    v.push_str(&format!(
        "    reg [31:0] prf [0:{last}];\n",
        last = p.int_regs - 1
    ));
    for w in 0..p.core_width {
        v.push_str(&format!(
            "    wire [31:0] exe_a_{w} = prf[grant_src_{w}];\n    wire [31:0] exe_b_{w} = prf[phys_rs2_{w}];\n"
        ));
    }

    // ---- execute: ALU per way + one multiplier ----
    for w in 0..p.core_width {
        v.push_str(&format!(
            r#"    reg [31:0] alu_{w};
    wire [3:0] fn_{w} = fq{f}[30:27];
    always @(*) begin
        case (fn_{w})
            4'd0: alu_{w} = exe_a_{w} + exe_b_{w};
            4'd1: alu_{w} = exe_a_{w} - exe_b_{w};
            4'd2: alu_{w} = exe_a_{w} & exe_b_{w};
            4'd3: alu_{w} = exe_a_{w} | exe_b_{w};
            4'd4: alu_{w} = exe_a_{w} ^ exe_b_{w};
            4'd5: alu_{w} = exe_a_{w} << exe_b_{w}[4:0];
            4'd6: alu_{w} = exe_a_{w} >> exe_b_{w}[4:0];
            4'd7: alu_{w} = (exe_a_{w} < exe_b_{w}) ? 32'd1 : 32'd0;
            default: alu_{w} = exe_a_{w};
        endcase
    end
    always @(posedge clk) prf[grant_src_{w}] <= alu_{w};
"#,
            f = w % p.fetch_width,
        ));
    }
    v.push_str("    wire [31:0] mul_res = exe_a_0 * exe_b_0;\n");

    // ---- memory ports + L1D tag check ----
    for m in 0..p.mem_ports {
        v.push_str(&format!(
            "    wire [31:0] agu_{m} = exe_a_{w} + {{{{20{{fq{w}[31]}}}}, fq{w}[31:20]}};\n    assign dmem_addr[{hi}:{lo}] = agu_{m};\n",
            w = (m % p.core_width),
            hi = (m + 1) * 32 - 1,
            lo = m * 32,
        ));
        for way in 0..p.dcache_ways {
            v.push_str(&format!(
                "    reg [19:0] dtag_{m}_{way} [0:15];\n    wire dhit_{m}_{way} = dtag_{m}_{way}[agu_{m}[5:2]] == agu_{m}[25:6];\n"
            ));
            v.push_str(&format!(
                "    always @(posedge clk) if (bp_update) dtag_{m}_{way}[agu_{m}[5:2]] <= agu_{m}[25:6];\n"
            ));
        }
        let hits: Vec<String> =
            (0..p.dcache_ways).map(|way| format!("dhit_{m}_{way}")).collect();
        v.push_str(&format!(
            "    wire dhit_{m} = {};\n",
            hits.join(" | ")
        ));
    }

    // ---- ROB ----
    v.push_str(&format!(
        r#"    reg [31:0] rob [0:{last}];
    reg [{ram}:0] rob_head, rob_tail;
    always @(posedge clk) begin
        if (rst) begin
            rob_head <= {rab}'d0;
            rob_tail <= {rab}'d0;
        end else begin
            rob[rob_tail] <= dhit_0 ? dmem_rdata[31:0] : (mul_res ^ alu_0);
            rob_tail <= rob_tail + {rab}'d{cw};
            rob_head <= rob_head + {rab}'d{cw};
        end
    end
    assign commit_value = rob[rob_head];
endmodule
"#,
        last = p.rob_size - 1,
        ram = rob_ab - 1,
        rab = rob_ab,
        cw = p.core_width,
    ));

    Design::new(name.clone(), Family::ProcessorCore, name, "boom", v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::parse_and_elaborate;

    #[test]
    fn grid_matches_table_10_count() {
        assert_eq!(BoomParams::grid().len(), 2592);
    }

    #[test]
    fn all_predictors_elaborate() {
        for pred in Predictor::ALL {
            let p = BoomParams { predictor: pred, ..Default::default() };
            let d = boom_like(&p);
            let nl = parse_and_elaborate(&d.verilog, &d.top)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name));
            nl.validate().unwrap();
        }
    }

    #[test]
    fn bigger_configs_are_bigger_hardware() {
        let small = BoomParams {
            core_width: 1,
            rob_size: 32,
            int_regs: 52,
            issue_slots: 8,
            dcache_ways: 4,
            fetch_width: 4,
            ..Default::default()
        };
        let big = BoomParams {
            core_width: 4,
            rob_size: 96,
            int_regs: 100,
            issue_slots: 32,
            dcache_ways: 8,
            fetch_width: 8,
            ..Default::default()
        };
        let cells = |p: &BoomParams| {
            let d = boom_like(p);
            parse_and_elaborate(&d.verilog, &d.top).unwrap().logic_cell_count()
        };
        let cs = cells(&small);
        let cb = cells(&big);
        assert!(cb > 2 * cs, "big {cb} vs small {cs}");
    }
}
