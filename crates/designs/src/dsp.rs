//! Signal-processing generators (FFT stage, FIR filter, 2-D convolution).

use crate::{Design, Family};

/// One radix-2 FFT stage over `n` complex fixed-point samples: `n/2`
/// butterflies, each a complex multiply (4 real multiplies) by a constant
/// twiddle factor plus add/sub, with output registers.
pub fn fft_stage(n: u32, width: u32) -> Design {
    assert!(n >= 2 && n.is_power_of_two(), "n must be a power of two >= 2");
    let im = width - 1;
    let pm = 2 * width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule fft{n}_{width} (\n    input clk,\n    input [{b}:0] re_in,\n    input [{b}:0] im_in,\n    output [{b}:0] re_out,\n    output [{b}:0] im_out\n);\n",
        b = n * width - 1
    ));
    for k in 0..n / 2 {
        let hi_a = (k + 1) * width - 1;
        let lo_a = k * width;
        let hi_b = (k + n / 2 + 1) * width - 1;
        let lo_b = (k + n / 2) * width;
        // Deterministic pseudo-twiddle constants.
        let wr = ((k * 37 + 11) % (1 << (width.min(15)))) | 1;
        let wi = ((k * 53 + 7) % (1 << (width.min(15)))) | 1;
        v.push_str(&format!(
            r#"    wire [{im}:0] ar{k} = re_in[{hi_a}:{lo_a}];
    wire [{im}:0] ai{k} = im_in[{hi_a}:{lo_a}];
    wire [{im}:0] br{k} = re_in[{hi_b}:{lo_b}];
    wire [{im}:0] bi{k} = im_in[{hi_b}:{lo_b}];
    wire [{pm}:0] twr{k} = br{k} * {width}'d{wr};
    wire [{pm}:0] twi{k} = bi{k} * {width}'d{wi};
    wire [{pm}:0] txr{k} = br{k} * {width}'d{wi};
    wire [{pm}:0] txi{k} = bi{k} * {width}'d{wr};
    wire [{im}:0] tr{k} = twr{k}[{pm}:{width}] - twi{k}[{pm}:{width}];
    wire [{im}:0] ti{k} = txr{k}[{pm}:{width}] + txi{k}[{pm}:{width}];
    reg [{im}:0] yr{k}, yi{k}, zr{k}, zi{k};
    always @(posedge clk) begin
        yr{k} <= ar{k} + tr{k};
        yi{k} <= ai{k} + ti{k};
        zr{k} <= ar{k} - tr{k};
        zi{k} <= ai{k} - ti{k};
    end
    assign re_out[{hi_a}:{lo_a}] = yr{k};
    assign im_out[{hi_a}:{lo_a}] = yi{k};
    assign re_out[{hi_b}:{lo_b}] = zr{k};
    assign im_out[{hi_b}:{lo_b}] = zi{k};
"#
        ));
    }
    v.push_str("endmodule\n");
    Design::new(
        format!("fft_{n}_{width}"),
        Family::SignalProcessing,
        format!("fft{n}_{width}"),
        "fft",
        v,
    )
}

/// A direct-form FIR filter: a `taps`-deep delay line, constant
/// coefficient multipliers and a balanced adder tree.
pub fn fir(taps: u32, width: u32) -> Design {
    let im = width - 1;
    let pm = 2 * width - 1;
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule fir{taps}_{width} (\n    input clk, input rst,\n    input [{im}:0] sample,\n    output [{pm}:0] filtered\n);\n"
    ));
    v.push_str(&format!("    reg [{im}:0] dl0;\n    always @(posedge clk) dl0 <= sample;\n"));
    for t in 1..taps {
        v.push_str(&format!(
            "    reg [{im}:0] dl{t};\n    always @(posedge clk) dl{t} <= dl{p};\n",
            p = t - 1
        ));
    }
    for t in 0..taps {
        let coef = ((t * 29 + 13) % (1 << width.min(15))) | 1;
        v.push_str(&format!("    wire [{pm}:0] m{t} = dl{t} * {width}'d{coef};\n"));
    }
    let mut terms: Vec<String> = (0..taps).map(|t| format!("m{t}")).collect();
    let mut lvl = 0;
    while terms.len() > 1 {
        let mut next = Vec::new();
        for (k, pair) in terms.chunks(2).enumerate() {
            if pair.len() == 2 {
                let nm = format!("s_{lvl}_{k}");
                v.push_str(&format!("    wire [{pm}:0] {nm} = {} + {};\n", pair[0], pair[1]));
                next.push(nm);
            } else {
                next.push(pair[0].clone());
            }
        }
        terms = next;
        lvl += 1;
    }
    v.push_str(&format!(
        "    reg [{pm}:0] out_r;\n    always @(posedge clk) begin\n        if (rst) out_r <= {ow}'d0;\n        else out_r <= {top};\n    end\n    assign filtered = out_r;\nendmodule\n",
        ow = 2 * width,
        top = terms[0]
    ));
    Design::new(
        format!("fir_{taps}_{width}"),
        Family::SignalProcessing,
        format!("fir{taps}_{width}"),
        "fir",
        v,
    )
}

/// A `k × k` 2-D convolution window: line-buffer shift registers, constant
/// kernel multiplies and an adder tree.
pub fn conv2d(k: u32, width: u32) -> Design {
    let im = width - 1;
    let pm = 2 * width - 1;
    let cols = 8u32; // fixed modeled row length
    let mut v = String::new();
    v.push_str(&format!(
        "\nmodule conv2d_{k}x{k}_{width} (\n    input clk,\n    input [{im}:0] pixel,\n    output [{pm}:0] conv_out\n);\n"
    ));
    // k rows of shift registers, `cols` deep each.
    let depth = cols;
    let mut prev = "pixel".to_string();
    for r in 0..k {
        for c in 0..depth {
            v.push_str(&format!(
                "    reg [{im}:0] lb{r}_{c};\n    always @(posedge clk) lb{r}_{c} <= {prev};\n"
            ));
            prev = format!("lb{r}_{c}");
        }
    }
    // Window taps: the first k entries of each row.
    let mut terms = Vec::new();
    for r in 0..k {
        for c in 0..k {
            let coef = ((r * 31 + c * 17 + 3) % (1 << width.min(15))) | 1;
            let nm = format!("w{r}_{c}");
            v.push_str(&format!("    wire [{pm}:0] {nm} = lb{r}_{c} * {width}'d{coef};\n"));
            terms.push(nm);
        }
    }
    let mut lvl = 0;
    while terms.len() > 1 {
        let mut next = Vec::new();
        for (i, pair) in terms.chunks(2).enumerate() {
            if pair.len() == 2 {
                let nm = format!("cs_{lvl}_{i}");
                v.push_str(&format!("    wire [{pm}:0] {nm} = {} + {};\n", pair[0], pair[1]));
                next.push(nm);
            } else {
                next.push(pair[0].clone());
            }
        }
        terms = next;
        lvl += 1;
    }
    v.push_str(&format!("    assign conv_out = {};\nendmodule\n", terms[0]));
    Design::new(
        format!("conv2d_{k}x{k}_{width}"),
        Family::SignalProcessing,
        format!("conv2d_{k}x{k}_{width}"),
        "conv2d",
        v,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::{parse_and_elaborate, CellKind};

    #[test]
    fn fft_stage_has_four_muls_per_butterfly() {
        let d = fft_stage(8, 16);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Mul).count(), 16);
    }

    #[test]
    fn fir_delay_line_depth_matches_taps() {
        let d = fir(8, 16);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        // 8 delay registers + 1 output register.
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Dff).count(), 9);
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Mul).count(), 8);
    }

    #[test]
    fn conv2d_elaborates() {
        let d = conv2d(3, 8);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.cells().filter(|c| c.kind == CellKind::Mul).count(), 9);
    }
}
