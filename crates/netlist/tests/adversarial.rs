//! Adversarial tests for the Verilog front-end — the untrusted boundary of
//! the `sns-serve` HTTP daemon, where arbitrary network bytes flow into
//! `parse_and_elaborate`. The whole pipeline (lexer → parser → elaborator
//! → GraphIR → path sampler) must be *total*: every input returns `Ok` or
//! a structured `NetlistError`; it must never panic, overflow the stack,
//! or amplify a small request into unbounded allocation.
//!
//! Four seeded generators (`sns_rt::rng::StdRng`, so failures reproduce
//! exactly), ≥ 10k cases overall:
//!
//! 1. **token soup** — random sequences of legal Verilog tokens,
//! 2. **mutation** — catalog designs with a few random byte edits (the
//!    near-valid inputs most likely to reach deep elaborator paths),
//! 3. **truncation** — catalog sources cut at every strided char
//!    boundary (mid-token, mid-statement, mid-module),
//! 4. **deep nesting / amplification** — `((((…))))`, `{2{{2{…}}}}`,
//!    operator and statement chains, huge replications and widths.

use sns_netlist::elaborate::ElabLimits;
use sns_netlist::parser::MAX_DEPTH;
use sns_netlist::{elaborate_with_limits, parse_source, NetlistError};
use sns_rt::rng::StdRng;

use sns_graphir::GraphIr;
use sns_sampler::{PathSampler, SampleConfig};

/// Tight budgets so even "successfully amplifying" mutants stay cheap;
/// the serving default is larger, but the totality property is identical.
fn fuzz_limits() -> ElabLimits {
    ElabLimits { max_cells: 50_000, max_net_bits: 4_096, max_replication: 4_096 }
}

/// Drives the full untrusted pipeline the way a `/predict` handler does.
/// The return value only matters to the optimizer; the assertion is that
/// this function returns at all instead of aborting the process.
fn full_pipeline(source: &str, top: &str) -> Result<usize, NetlistError> {
    let design = parse_source(source)?;
    let netlist = elaborate_with_limits(&design, top, fuzz_limits())?;
    let graph = GraphIr::from_netlist(&netlist);
    let paths = PathSampler::new(SampleConfig {
        max_paths: 256,
        ..SampleConfig::paper_default()
    })
    .sample(&graph);
    Ok(paths.len())
}

// ---- generator 1: token soup ----

const TOKENS: &[&str] = &[
    "module", "endmodule", "input", "output", "wire", "reg", "assign", "always", "posedge",
    "negedge", "begin", "end", "if", "else", "case", "endcase", "default", "parameter",
    "localparam", "integer", "genvar", "generate", "endgenerate", "(", ")", "[", "]", "{", "}",
    ";", ",", ":", "?", "=", "<=", "==", "!=", "<", ">", ">=", "<<", ">>", ">>>", "+", "-", "*",
    "/", "%", "&", "|", "^", "~", "!", "&&", "||", "~^", "@", "#", ".", "a", "b", "clk", "rst",
    "m", "top", "x", "y", "0", "1", "8", "255", "8'hff", "4'b1010", "32'd7", "16'hdead", "'x",
    "1'bz", "9999999999999999999999", "\u{00e9}", "$display",
];

#[test]
fn token_soup_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x5050_0001);
    for case in 0..5000usize {
        let len = rng.gen_range(1..60usize);
        let mut src = String::new();
        // Half the cases get a plausible module wrapper so the soup lands
        // inside item/statement parsing instead of dying at `module`.
        let wrapped = case % 2 == 0;
        if wrapped {
            src.push_str("module m (input a, output y);\n");
        }
        for _ in 0..len {
            src.push_str(TOKENS[rng.gen_range(0..TOKENS.len())]);
            src.push(if rng.next_u32() & 7 == 0 { '\n' } else { ' ' });
        }
        if wrapped {
            src.push_str("\nendmodule\n");
        }
        // Must return, not panic; errors are expected and unremarkable.
        let _ = full_pipeline(&src, "m");
    }
}

// ---- generator 2: mutation of valid designs ----

/// The smallest catalog sources: cheap to elaborate thousands of times in
/// a debug build, yet they exercise every front-end feature (parameters,
/// hierarchy, memories, case statements, replication).
fn small_catalog() -> Vec<(String, String)> {
    let mut designs: Vec<_> = sns_designs::catalog()
        .into_iter()
        .map(|d| (d.verilog, d.top))
        .collect();
    designs.sort_by_key(|(v, _)| v.len());
    designs.truncate(8);
    designs
}

#[test]
fn mutated_catalog_designs_never_panic() {
    let designs = small_catalog();
    let mut rng = StdRng::seed_from_u64(0x00AD_BEEF);
    for case in 0..3000usize {
        let (source, top) = &designs[case % designs.len()];
        let mut bytes = source.clone().into_bytes();
        // 1–3 single-byte edits drawn from printable ASCII: most mutants
        // still lex, many still parse, some still elaborate — exactly the
        // near-valid inputs that reach deep pipeline states.
        let edits = 1 + (rng.next_u32() % 3) as usize;
        for _ in 0..edits {
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] = 0x20 + (rng.next_u32() % 0x5f) as u8;
        }
        match String::from_utf8(bytes) {
            Ok(src) => {
                let _ = full_pipeline(&src, top);
            }
            Err(_) => continue, // catalog sources are ASCII; unreachable
        }
    }
}

// ---- generator 3: truncation sweeps ----

#[test]
fn truncated_catalog_sources_never_panic() {
    let designs = small_catalog();
    let mut done = 0usize;
    for (source, top) in &designs {
        // Stride chosen so the 8 designs together contribute ~2500 cuts.
        let stride = (source.len() / 320).max(1);
        let mut cut = 0usize;
        while cut < source.len() {
            if source.is_char_boundary(cut) {
                let _ = full_pipeline(&source[..cut], top);
                done += 1;
            }
            cut += stride;
        }
    }
    assert!(done >= 2000, "expected ≥ 2000 truncation cases, got {done}");
}

// ---- generator 4: deep nesting and resource amplification ----

fn expect_too_deep(src: &str) {
    match parse_source(src) {
        Err(NetlistError::TooDeep { limit, .. }) => assert_eq!(limit, MAX_DEPTH),
        other => panic!("expected TooDeep, got {other:?}"),
    }
}

#[test]
fn deep_nesting_is_rejected_not_fatal() {
    // Parenthesis nesting, the canonical stack-overflow reproducer from
    // the issue — including one ~100k-level monster.
    for n in [(MAX_DEPTH + 1) as usize, 1_000, 10_000, 100_000] {
        let src = format!(
            "module m (input a, output y); assign y = {}a{}; endmodule",
            "(".repeat(n),
            ")".repeat(n)
        );
        expect_too_deep(&src);
    }
    // Every other recursive construct, swept across depths for ~600 cases.
    for n in (130..430usize).step_by(2) {
        let shapes = [
            format!("assign y = {}a;", "~".repeat(n)),
            format!("assign y = {}a{};", "{2{".repeat(n), "}}".repeat(n)),
            format!("assign y = {}a;", "a ? a : ".repeat(n)),
            format!("assign y = a{};", " ^ a".repeat(n)),
            format!("always @(*) {}y = a;", "if (a) ".repeat(n)),
            format!("always @(*) {}y = a;{}", "begin ".repeat(n), " end".repeat(n)),
        ];
        let shape = &shapes[n % shapes.len()];
        expect_too_deep(&format!("module m (input a, output y); reg y; {shape} endmodule"));
    }
    // Nesting *below* the bound still works after all that.
    let ok = format!(
        "module m (input a, output y); assign y = {}a{}; endmodule",
        "(".repeat(100),
        ")".repeat(100)
    );
    assert!(full_pipeline(&ok, "m").is_ok());
}

#[test]
fn amplification_is_rejected_before_allocation() {
    let cases = [
        // One replication token asking for gigabytes of cells.
        "module m (input x, output [7:0] y); assign y = {100000000{x}}; endmodule",
        // Nested replication: each factor is individually modest.
        "module m (input x, output [7:0] y); assign y = {60000{{60000{x}}}}; endmodule",
        // Net width far past any budget.
        "module m (input x, output y); wire [100000000:0] w; assign y = x; endmodule",
        // Width smuggled in via a parameter expression.
        "module m (input x, output y); parameter P = 1 << 30; wire [P:0] w; assign y = x; endmodule",
        // Memory depth amplification.
        "module m (input clk, input x, output y); reg [7:0] mem [0:100000000]; assign y = x; endmodule",
    ];
    for (i, src) in cases.iter().enumerate() {
        let design = parse_source(src).unwrap_or_else(|e| panic!("case {i} must parse: {e}"));
        let err = elaborate_with_limits(&design, "m", fuzz_limits())
            .expect_err("amplifying source must be rejected");
        assert!(err.is_budget() || matches!(err, NetlistError::Elab { .. }), "case {i}: {err}");
    }
    // And a sweep of randomized replication factors around the budget.
    let mut rng = StdRng::seed_from_u64(0xA3F1);
    for _ in 0..60 {
        let n = rng.gen_range(4_097..2_000_000u32);
        let src = format!("module m (input x, output [7:0] y); assign y = {{{n}{{x}}}}; endmodule");
        let design = parse_source(&src).expect("replication source parses");
        let err = elaborate_with_limits(&design, "m", fuzz_limits())
            .expect_err("over-budget replication must be rejected");
        assert!(err.is_budget(), "n={n}: {err}");
    }
}

/// After absorbing adversarial input, the front-end still produces the
/// same netlist for the same valid source — no hidden global state.
#[test]
fn valid_designs_survive_the_corpus_bit_identically() {
    let designs = small_catalog();
    let (source, top) = &designs[0];
    let before = full_pipeline(source, top).expect("catalog design elaborates");
    let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF);
    for _ in 0..200 {
        let len = rng.gen_range(1..40usize);
        let mut soup = String::new();
        for _ in 0..len {
            soup.push_str(TOKENS[rng.gen_range(0..TOKENS.len())]);
            soup.push(' ');
        }
        let _ = full_pipeline(&soup, "m");
    }
    let after = full_pipeline(source, top).expect("catalog design still elaborates");
    assert_eq!(before, after);
}
