//! A cycle-accurate two-state netlist simulator.
//!
//! Interprets an elaborated [`Netlist`] directly: combinational cells are
//! evaluated in topological order, flip-flops latch on [`Simulator::step`].
//! This is the semantic ground truth for the elaborator (the test suites
//! simulate generated designs and check functional behaviour) and a handy
//! debugging tool for users of the crate.
//!
//! Limitations (by design): two-state values (no `x`/`z`), nets up to 128
//! bits (wider designs — e.g. very wide accelerator buses — are rejected
//! at construction), arithmetic right shift behaves logically (the
//! elaborator does not track signedness).
//!
//! # Example
//!
//! ```rust
//! use sns_netlist::{parse_and_elaborate, Simulator};
//!
//! # fn main() -> Result<(), sns_netlist::NetlistError> {
//! let nl = parse_and_elaborate(
//!     "module mac (input clk, input [7:0] a, b, output [15:0] y);
//!          reg [15:0] acc;
//!          always @(posedge clk) acc <= acc + a * b;
//!          assign y = acc;
//!      endmodule",
//!     "mac",
//! )?;
//! let mut sim = Simulator::new(&nl)?;
//! sim.set_input("a", 3)?;
//! sim.set_input("b", 5)?;
//! sim.step()?; // acc <- 0 + 15
//! sim.step()?; // acc <- 15 + 15
//! assert_eq!(sim.output("y")?, 30);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::netlist::{Cell, CellId, CellKind, NetId, Netlist, PortDir};

/// Maximum net width the simulator supports.
const MAX_SIM_WIDTH: u32 = 128;

/// A two-state netlist interpreter.
#[derive(Debug)]
pub struct Simulator<'a> {
    nl: &'a Netlist,
    /// Combinational cells in evaluation order (registers excluded).
    comb_order: Vec<CellId>,
    /// Register cells (evaluated at the clock edge).
    regs: Vec<CellId>,
    /// Current value of every net, masked to its width.
    values: Vec<u128>,
    /// Input port name → net.
    inputs: HashMap<String, NetId>,
    /// Output port name → net.
    outputs: HashMap<String, NetId>,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator for `nl`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Elab`] if any net is wider than 128 bits
    /// (unsimulatable with scalar values) — cost analysis still works on
    /// such designs, only simulation is unavailable.
    pub fn new(nl: &'a Netlist) -> Result<Self, NetlistError> {
        for (id, net) in nl.nets_enumerated() {
            if net.width > MAX_SIM_WIDTH {
                return Err(NetlistError::elab(format!(
                    "net {:?} ({}) is {} bits wide; the simulator supports at most {MAX_SIM_WIDTH}",
                    id,
                    net.name.as_deref().unwrap_or("<anon>"),
                    net.width
                )));
            }
        }
        let mut comb_order = Vec::new();
        let mut regs = Vec::new();
        // Kahn topological order over combinational cells, with register
        // outputs and primary inputs as sources.
        let driver = nl.driver_map();
        let readers = nl.reader_map();
        let mut indegree = vec![0u32; nl.cell_count()];
        let mut ready: Vec<CellId> = Vec::new();
        for (cid, cell) in nl.cells_enumerated() {
            if cell.kind == CellKind::Dff {
                regs.push(cid);
                continue;
            }
            let deg = cell
                .inputs
                .iter()
                .filter(|n| driver.get(n).is_some_and(|&d| nl.cell(d).kind != CellKind::Dff))
                .count() as u32;
            indegree[cid.0 as usize] = deg;
            if deg == 0 {
                ready.push(cid);
            }
        }
        let mut head = 0;
        while head < ready.len() {
            let cid = ready[head];
            head += 1;
            comb_order.push(cid);
            if let Some(consumers) = readers.get(&nl.cell(cid).output) {
                for &r in consumers {
                    if nl.cell(r).kind == CellKind::Dff {
                        continue;
                    }
                    let d = &mut indegree[r.0 as usize];
                    if *d > 0 {
                        *d -= 1;
                        if *d == 0 {
                            ready.push(r);
                        }
                    }
                }
            }
        }
        let comb_total = nl.cells().filter(|c| c.kind != CellKind::Dff).count();
        if comb_order.len() != comb_total {
            return Err(NetlistError::elab(
                "combinational cycle detected; the design is not simulatable",
            ));
        }
        let mut inputs = HashMap::new();
        let mut outputs = HashMap::new();
        for p in nl.ports() {
            match p.dir {
                PortDir::Input => inputs.insert(p.name.clone(), p.net),
                PortDir::Output => outputs.insert(p.name.clone(), p.net),
            };
        }
        Ok(Simulator {
            nl,
            comb_order,
            regs,
            values: vec![0; nl.net_count()],
            inputs,
            outputs,
        })
    }

    fn mask(width: u32) -> u128 {
        if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        }
    }

    /// Drives an input port.
    ///
    /// # Errors
    ///
    /// Returns an error if the port does not exist.
    pub fn set_input(&mut self, name: &str, value: u128) -> Result<(), NetlistError> {
        let &net = self
            .inputs
            .get(name)
            .ok_or_else(|| NetlistError::elab(format!("no input port `{name}`")))?;
        self.values[net.0 as usize] = value & Self::mask(self.nl.net(net).width);
        Ok(())
    }

    /// Reads an output port (after [`Simulator::eval`] or
    /// [`Simulator::step`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the port does not exist.
    pub fn output(&self, name: &str) -> Result<u128, NetlistError> {
        let &net = self
            .outputs
            .get(name)
            .ok_or_else(|| NetlistError::elab(format!("no output port `{name}`")))?;
        Ok(self.values[net.0 as usize])
    }

    /// Reads any named net (hierarchical names work: `u0.acc`).
    pub fn peek(&self, name: &str) -> Option<u128> {
        self.nl
            .nets_enumerated()
            .find(|(_, n)| n.name.as_deref() == Some(name))
            .map(|(id, _)| self.values[id.0 as usize])
    }

    /// Propagates combinational logic with the current inputs and
    /// register states.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; the `Result` is reserved.
    pub fn eval(&mut self) -> Result<(), NetlistError> {
        for &cid in &self.comb_order {
            let cell = self.nl.cell(cid);
            let v = self.eval_cell(cell);
            let w = self.nl.net(cell.output).width;
            self.values[cell.output.0 as usize] = v & Self::mask(w);
        }
        Ok(())
    }

    /// One clock cycle: combinational propagate, then all registers latch
    /// their D inputs simultaneously.
    ///
    /// # Errors
    ///
    /// See [`Simulator::eval`].
    pub fn step(&mut self) -> Result<(), NetlistError> {
        self.eval()?;
        let next: Vec<(NetId, u128)> = self
            .regs
            .iter()
            .map(|&cid| {
                let cell = self.nl.cell(cid);
                let d = self.values[cell.inputs[0].0 as usize];
                (cell.output, d & Self::mask(self.nl.net(cell.output).width))
            })
            .collect();
        for (net, v) in next {
            self.values[net.0 as usize] = v;
        }
        self.eval()
    }

    /// Resets all registers (and nets) to zero.
    pub fn reset_state(&mut self) {
        for v in &mut self.values {
            *v = 0;
        }
    }

    fn eval_cell(&self, cell: &Cell) -> u128 {
        let inv = |i: usize| self.values[cell.inputs[i].0 as usize];
        let in_w = |i: usize| self.nl.net(cell.inputs[i]).width;
        match cell.kind {
            CellKind::Const => cell.attr as u128,
            CellKind::Buf => inv(0),
            CellKind::Slice => inv(0) >> cell.attr.min(127) as u32,
            CellKind::Concat => {
                let mut v: u128 = 0;
                let mut off = 0u32;
                for (i, _) in cell.inputs.iter().enumerate() {
                    if off < 128 {
                        v |= (inv(i) & Self::mask(in_w(i))) << off;
                    }
                    off += in_w(i);
                }
                v
            }
            CellKind::Replicate => {
                let w = in_w(0);
                let x = inv(0) & Self::mask(w);
                let mut v: u128 = 0;
                let mut off = 0u32;
                for _ in 0..cell.attr.max(1) {
                    if off < 128 {
                        v |= x << off;
                    }
                    off += w;
                }
                v
            }
            CellKind::Not => !inv(0),
            CellKind::And => inv(0) & inv(1),
            CellKind::Or => inv(0) | inv(1),
            CellKind::Xor => inv(0) ^ inv(1),
            CellKind::Xnor => !(inv(0) ^ inv(1)),
            CellKind::Mux => {
                if inv(0) & 1 == 1 {
                    inv(2)
                } else {
                    inv(1)
                }
            }
            CellKind::Add => inv(0).wrapping_add(inv(1)),
            CellKind::Sub => inv(0).wrapping_sub(inv(1)),
            CellKind::Mul => inv(0).wrapping_mul(inv(1)),
            // Division by zero follows the hardware the labels are priced
            // on: vsynth expands Div/Mod into a restoring-array divider
            // whose trial subtraction never borrows when the divisor is 0,
            // yielding an all-ones quotient and the dividend as remainder.
            // The simulator must agree bit-for-bit (sns-conformance
            // cross-checks the two layers on random stimulus).
            CellKind::Div => inv(0).checked_div(inv(1)).unwrap_or(u128::MAX),
            CellKind::Mod => inv(0).checked_rem(inv(1)).unwrap_or(inv(0)),
            CellKind::Shl => {
                let s = inv(1).min(127) as u32;
                inv(0) << s
            }
            CellKind::Shr => {
                let s = inv(1).min(127) as u32;
                (inv(0) & Self::mask(in_w(0))) >> s
            }
            CellKind::Eq => {
                let w = in_w(0).max(in_w(1));
                let m = Self::mask(w);
                ((inv(0) & m) == (inv(1) & m)) as u128
            }
            CellKind::Lgt => {
                let w = in_w(0).max(in_w(1));
                let m = Self::mask(w);
                ((inv(0) & m) < (inv(1) & m)) as u128
            }
            CellKind::ReduceAnd => {
                let w = in_w(0);
                ((inv(0) & Self::mask(w)) == Self::mask(w)) as u128
            }
            CellKind::ReduceOr => ((inv(0) & Self::mask(in_w(0))) != 0) as u128,
            CellKind::ReduceXor => {
                ((inv(0) & Self::mask(in_w(0))).count_ones() % 2) as u128
            }
            // Registers latch in step(), not eval(); eval() only visits
            // combinational cells, so a Dff here means the caller walked the
            // wrong cell set. Pass D through rather than aborting — the
            // simulator runs inside the serving path and must not panic.
            CellKind::Dff => inv(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_elaborate;

    fn sim_of<'a>(nl: &'a Netlist) -> Simulator<'a> {
        Simulator::new(nl).expect("simulatable")
    }

    #[test]
    fn alu_operations_compute_correctly() {
        let nl = parse_and_elaborate(
            "module alu (input [7:0] a, b, input [3:0] op, output reg [7:0] y);
                 always @(*) begin
                     case (op)
                         4'd0: y = a + b;
                         4'd1: y = a - b;
                         4'd2: y = a & b;
                         4'd3: y = a | b;
                         4'd4: y = a ^ b;
                         4'd5: y = a << b[2:0];
                         4'd6: y = a >> b[2:0];
                         4'd7: y = (a < b) ? 8'd1 : 8'd0;
                         4'd8: y = (a > b) ? 8'd1 : 8'd0;
                         4'd9: y = a * b;
                         4'd10: y = a / ((b == 8'd0) ? 8'd1 : b);
                         default: y = a;
                     endcase
                 end
             endmodule",
            "alu",
        )
        .unwrap();
        let mut sim = sim_of(&nl);
        let cases: Vec<(u128, u128, u128, u128)> = vec![
            (200, 100, 0, 44),  // 300 wraps to 44
            (7, 9, 1, 254),     // 7-9 wraps
            (0b1100, 0b1010, 2, 0b1000),
            (0b1100, 0b1010, 3, 0b1110),
            (0b1100, 0b1010, 4, 0b0110),
            (3, 2, 5, 12),
            (200, 3, 6, 25),
            (3, 9, 7, 1),
            (9, 3, 7, 0),
            (9, 3, 8, 1),  // a > b
            (3, 9, 8, 0),
            (12, 12, 9, 144),
            (100, 7, 10, 14),
        ];
        for (a, b, op, expect) in cases {
            sim.set_input("a", a).unwrap();
            sim.set_input("b", b).unwrap();
            sim.set_input("op", op).unwrap();
            sim.eval().unwrap();
            assert_eq!(sim.output("y").unwrap(), expect, "a={a} b={b} op={op}");
        }
    }

    #[test]
    fn counter_counts_and_resets() {
        let nl = parse_and_elaborate(
            "module ctr (input clk, input rst, output [7:0] y);
                 reg [7:0] c;
                 always @(posedge clk) begin
                     if (rst) c <= 8'd0;
                     else c <= c + 8'd1;
                 end
                 assign y = c;
             endmodule",
            "ctr",
        )
        .unwrap();
        let mut sim = sim_of(&nl);
        sim.set_input("rst", 0).unwrap();
        for i in 1..=5u128 {
            sim.step().unwrap();
            assert_eq!(sim.output("y").unwrap(), i);
        }
        sim.set_input("rst", 1).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.output("y").unwrap(), 0);
    }

    #[test]
    fn memory_write_then_read() {
        let nl = parse_and_elaborate(
            "module m (input clk, input we, input [1:0] wa, ra, input [7:0] wd, output [7:0] rd);
                 reg [7:0] mem [0:3];
                 always @(posedge clk) if (we) mem[wa] <= wd;
                 assign rd = mem[ra];
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = sim_of(&nl);
        for (addr, data) in [(0u128, 17u128), (1, 34), (2, 51), (3, 68)] {
            sim.set_input("we", 1).unwrap();
            sim.set_input("wa", addr).unwrap();
            sim.set_input("wd", data).unwrap();
            sim.step().unwrap();
        }
        sim.set_input("we", 0).unwrap();
        for (addr, data) in [(0u128, 17u128), (1, 34), (2, 51), (3, 68)] {
            sim.set_input("ra", addr).unwrap();
            sim.eval().unwrap();
            assert_eq!(sim.output("rd").unwrap(), data, "addr {addr}");
        }
    }

    #[test]
    fn division_by_zero_matches_gate_level_divider() {
        // Minimized from the sns-conformance differential oracle
        // (tests/corpus/div_by_zero.v): a restoring-array divider returns
        // an all-ones quotient and the dividend as remainder when the
        // divisor is zero; the simulator used to return 0 for both.
        let nl = parse_and_elaborate(
            "module top (input [3:0] a, b, output [3:0] q, r);
                 assign q = a / b;
                 assign r = a % b;
             endmodule",
            "top",
        )
        .unwrap();
        let mut sim = sim_of(&nl);
        for (a, b, q, r) in [
            (13u128, 3u128, 4u128, 1u128),
            (13, 0, 15, 13),
            (0, 0, 15, 0),
            (7, 0, 15, 7),
        ] {
            sim.set_input("a", a).unwrap();
            sim.set_input("b", b).unwrap();
            sim.eval().unwrap();
            assert_eq!(sim.output("q").unwrap(), q, "a={a} b={b}");
            assert_eq!(sim.output("r").unwrap(), r, "a={a} b={b}");
        }
    }

    #[test]
    fn concat_lvalue_carries_out() {
        let nl = parse_and_elaborate(
            "module m (input [7:0] a, b, output [7:0] s, output c);
                 assign {c, s} = a + b;
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = sim_of(&nl);
        sim.set_input("a", 200).unwrap();
        sim.set_input("b", 100).unwrap();
        sim.eval().unwrap();
        assert_eq!(sim.output("s").unwrap(), 44);
        assert_eq!(sim.output("c").unwrap(), 1);
    }

    #[test]
    fn hierarchy_simulates_and_peeks() {
        let src = "
            module addsub (input [7:0] x, y, input sel, output [7:0] r);
                assign r = sel ? (x - y) : (x + y);
            endmodule
            module top (input clk, input [7:0] p, q, input mode, output [7:0] o);
                wire [7:0] t;
                addsub u0 (.x(p), .y(q), .sel(mode), .r(t));
                reg [7:0] hold;
                always @(posedge clk) hold <= t;
                assign o = hold;
            endmodule";
        let nl = parse_and_elaborate(src, "top").unwrap();
        let mut sim = sim_of(&nl);
        sim.set_input("p", 40).unwrap();
        sim.set_input("q", 2).unwrap();
        sim.set_input("mode", 1).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.output("o").unwrap(), 38);
        assert_eq!(sim.peek("hold"), Some(38));
    }

    #[test]
    fn fir_impulse_response_matches_coefficients() {
        // A 4-tap FIR from the designs crate family, checked by impulse.
        let nl = parse_and_elaborate(
            "module fir (input clk, input [7:0] x, output [15:0] y);
                 reg [7:0] d0, d1, d2, d3;
                 always @(posedge clk) begin
                     d0 <= x;
                     d1 <= d0;
                     d2 <= d1;
                     d3 <= d2;
                 end
                 assign y = d0 * 16'd3 + d1 * 16'd5 + d2 * 16'd7 + d3 * 16'd11;
             endmodule",
            "fir",
        )
        .unwrap();
        let mut sim = sim_of(&nl);
        sim.set_input("x", 1).unwrap();
        sim.step().unwrap();
        sim.set_input("x", 0).unwrap();
        let mut response = vec![sim.output("y").unwrap()];
        for _ in 0..3 {
            sim.step().unwrap();
            response.push(sim.output("y").unwrap());
        }
        assert_eq!(response, vec![3, 5, 7, 11]);
    }

    #[test]
    fn reductions_and_replication() {
        let nl = parse_and_elaborate(
            "module m (input [3:0] a, output all_set, any_set, parity, output [7:0] rep);
                 assign all_set = &a;
                 assign any_set = |a;
                 assign parity = ^a;
                 assign rep = {2{a}};
             endmodule",
            "m",
        )
        .unwrap();
        let mut sim = sim_of(&nl);
        for (a, all, any, par) in [(0b1111u128, 1u128, 1u128, 0u128), (0b0000, 0, 0, 0), (0b0110, 0, 1, 0), (0b0100, 0, 1, 1)] {
            sim.set_input("a", a).unwrap();
            sim.eval().unwrap();
            assert_eq!(sim.output("all_set").unwrap(), all, "a={a:b}");
            assert_eq!(sim.output("any_set").unwrap(), any);
            assert_eq!(sim.output("parity").unwrap(), par);
            assert_eq!(sim.output("rep").unwrap(), a | (a << 4));
        }
    }

    #[test]
    fn wide_nets_are_rejected() {
        let nl = parse_and_elaborate(
            "module w (input [199:0] a, output [199:0] y); assign y = a; endmodule",
            "w",
        )
        .unwrap();
        assert!(Simulator::new(&nl).is_err());
    }

    #[test]
    fn unknown_ports_error() {
        let nl = parse_and_elaborate("module m (input a, output y); assign y = a; endmodule", "m")
            .unwrap();
        let mut sim = sim_of(&nl);
        assert!(sim.set_input("nope", 1).is_err());
        assert!(sim.output("nada").is_err());
    }
}
