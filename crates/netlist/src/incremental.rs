//! Hierarchy-first incremental elaboration.
//!
//! The flat elaborator ([`crate::elaborate::elaborate`]) inlines every
//! instance in place, so a one-line edit to a leaf module re-elaborates
//! the entire design. This module keeps the hierarchy first-class: each
//! `(module, transitive content hash, resolved parameters, input-binding
//! shape)` combination elaborates once into a relocatable *unit* — a
//! fragment netlist with placeholder nets standing in for the instance's
//! bound inputs — and a [`ModuleElabCache`] reuses units across designs
//! and requests. An edit invalidates exactly the modules whose own hash
//! changed plus their transitive instantiators (their transitive hash
//! changes too, so their keys miss); everything else splices from cache.
//!
//! # Bit-exactness contract
//!
//! [`elaborate_incremental`] produces a [`Netlist`] **identical** (by
//! `==`) to what [`crate::elaborate::elaborate`] produces for the same
//! design: same net ids, same cell order, same hierarchical names. This
//! holds because
//!
//! * a unit's fragment is built by the same [`ModuleCtx`] code that the
//!   flat path runs, with a relative (empty) prefix and placeholder nets
//!   whose widths are recorded in the cache key — so the fragment's nets
//!   and cells are created in exactly inline order, and
//! * [`Netlist::splice_fragment`] appends the fragment at the same
//!   net/cell ids inline elaboration would have used, prepending the
//!   instance prefix to every name.
//!
//! Resource-budget decisions replay exactly too: the flat path checks the
//! cell budget at every emission granule against the *whole-design* count,
//! so units record the maximum fragment-relative count observed at any
//! checkpoint during their construction ([`ModuleUnit::max_checkpoint`]),
//! and splicing re-evaluates `base + max_checkpoint` against the budget.
//! Instantiation-depth errors replay the same way via the maximum relative
//! depth at which the subtree enters an instance. On *failing* inputs the
//! two paths agree on the error **kind** (budget vs semantic), though
//! messages may name a different hierarchical prefix.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::ast::{Design, Dir, Instance, Module};
use crate::elaborate::{ElabLimits, ModuleCtx};
use crate::error::NetlistError;
use crate::hash::{design_hashes, Fnv128, ModHash};
use crate::netlist::{NetId, Netlist};

/// Identity of one elaboration unit. Two instantiations share a unit —
/// and therefore an elaborated body — exactly when all fields agree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct UnitKey {
    /// Module definition name.
    module: String,
    /// Transitive content hash of the module (covers its own AST plus
    /// every module it transitively instantiates, whitespace/comment
    /// insensitive). See [`crate::hash`].
    trans: [u64; 2],
    /// Resolved parameter environment, sorted by name. Captures the
    /// parameter bindings of the instantiation, not just the overrides:
    /// defaults that depend on overridden parameters resolve here.
    params: Vec<(String, i64)>,
    /// Per input port (in port order): `Some(width)` of the bound parent
    /// net, or `None` for an unconnected input. Port-binding widths feed
    /// `adapt`, so they shape the fragment.
    shape: Vec<Option<u32>>,
    /// Elaboration budgets in force during the build — a unit built under
    /// one budget must not satisfy a lookup under another.
    max_cells: usize,
    max_net_bits: u32,
    max_replication: u64,
}

impl UnitKey {
    /// A 128-bit digest of the key, used to compare units across
    /// elaborations in [`InstanceRecord`]s without retaining the key.
    fn digest(&self) -> [u64; 2] {
        let mut h = Fnv128::new();
        h.str(&self.module);
        h.u64(self.trans[0]);
        h.u64(self.trans[1]);
        h.usize(self.params.len());
        for (name, v) in &self.params {
            h.str(name);
            h.i64(*v);
        }
        h.usize(self.shape.len());
        for s in &self.shape {
            match s {
                None => h.tag(0),
                Some(w) => {
                    h.tag(1);
                    h.u64(*w as u64);
                }
            }
        }
        h.usize(self.max_cells);
        h.u64(self.max_net_bits as u64);
        h.u64(self.max_replication);
        h.finish()
    }
}

/// One cached elaboration unit: a relocatable fragment of the module's
/// body plus the metadata needed to splice it as if it had been inlined.
#[derive(Debug)]
pub(crate) struct ModuleUnit {
    /// The fragment netlist. Nets `0..n_ph` are placeholders for the
    /// instance's bound inputs (in port order); all other nets and every
    /// cell belong to the module body, in inline elaboration order.
    frag: Netlist,
    /// Number of leading placeholder nets.
    n_ph: usize,
    /// Output port name → fragment net carrying it.
    outputs: Vec<(String, NetId)>,
    /// Records for instances nested inside this unit, with paths and cell
    /// ranges relative to the fragment.
    subs: Vec<InstanceRecord>,
    /// Maximum fragment-relative cell count observed at any budget
    /// checkpoint while the unit was built (`None` if the subtree never
    /// checkpoints). Splicing at `base` reproduces the flat path's budget
    /// decision by testing `base + max_checkpoint` against the budget.
    max_checkpoint: Option<u64>,
    /// Maximum depth, relative to this unit's root (root body = 0), at
    /// which the subtree enters [`ModuleCtx::instance_preamble`]. Splicing
    /// under a parent at depth `d` reproduces the flat path's depth error
    /// iff `d + 1 + max_inst_depth_rel > 64`.
    max_inst_depth_rel: Option<u32>,
}

/// One spliced instance in an elaborated design: its hierarchical path,
/// module, unit identity, and the half-open range of cells its body
/// occupies in the flat netlist. Ranges of nested instances are contained
/// in their ancestors' ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceRecord {
    /// Hierarchical instance path (e.g. `"u0.sub"`), without the top.
    pub path: String,
    /// Instantiated module definition name.
    pub module: String,
    /// Digest of the instance's elaboration-unit key: equal digests mean
    /// the instance elaborated from an identical unit (same transitive
    /// content, parameters, and binding shape).
    pub unit: [u64; 2],
    /// Index of the first cell of the instance body.
    pub cell_start: u32,
    /// One past the last cell of the instance body.
    pub cell_end: u32,
}

/// Where the cells of an incrementally elaborated design came from:
/// one [`InstanceRecord`] per instance, in splice order (parents before
/// their nested instances). Cells outside every record belong to the top
/// module's own body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ElabReport {
    /// Per-instance records, parents first.
    pub records: Vec<InstanceRecord>,
}

impl ElabReport {
    /// Records whose cell range is not contained in any other record —
    /// the top-level instances of the design.
    pub fn top_level(&self) -> impl Iterator<Item = &InstanceRecord> {
        self.records.iter().filter(|r| !r.path.contains('.'))
    }
}

// ---------------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------------

struct CacheInner {
    map: HashMap<UnitKey, Arc<ModuleUnit>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<UnitKey>,
    cap: Option<usize>,
}

/// A bounded, thread-safe cache of elaboration units, shared across
/// designs and requests.
///
/// Counter discipline (mirrors `sns-core`'s `PathPredictionCache`):
/// counting happens at *insert* time — a fresh insert is a miss, a lookup
/// hit or an insert that finds the key already present (two threads built
/// the same unit concurrently) is a hit — so the reconciliation invariant
/// `len == misses − evictions` holds under concurrency.
pub struct ModuleElabCache {
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for ModuleElabCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModuleElabCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .field("invalidations", &self.invalidations())
            .finish()
    }
}

impl Default for ModuleElabCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl ModuleElabCache {
    /// Default unit capacity.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a cache bounded to `cap` units.
    pub fn new(cap: usize) -> Self {
        ModuleElabCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                cap: Some(cap),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Creates an unbounded cache.
    pub fn unbounded() -> Self {
        let cache = Self::new(0);
        cache.set_capacity(None);
        cache
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        // A poisoned lock only means another thread panicked mid-access;
        // the map itself is always structurally valid.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Changes the unit bound (`None` = unbounded), evicting FIFO if the
    /// cache is over the new bound.
    pub fn set_capacity(&self, cap: Option<usize>) {
        let mut g = self.lock();
        g.cap = cap;
        let evicted = Self::evict_to_cap(&mut g);
        drop(g);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    fn evict_to_cap(g: &mut CacheInner) -> u64 {
        let mut evicted = 0;
        if let Some(cap) = g.cap {
            while g.map.len() > cap {
                match g.order.pop_front() {
                    Some(old) => {
                        if g.map.remove(&old).is_some() {
                            evicted += 1;
                        }
                    }
                    None => break,
                }
            }
        }
        evicted
    }

    fn lookup(&self, key: &UnitKey) -> Option<Arc<ModuleUnit>> {
        let found = self.lock().map.get(key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts a freshly built unit, returning the canonical `Arc` (the
    /// existing one if another thread inserted the same key first).
    fn insert(&self, key: UnitKey, unit: Arc<ModuleUnit>) -> Arc<ModuleUnit> {
        let mut g = self.lock();
        if let Some(existing) = g.map.get(&key) {
            let existing = existing.clone();
            drop(g);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return existing;
        }
        g.order.push_back(key.clone());
        g.map.insert(key, unit.clone());
        let evicted = Self::evict_to_cap(&mut g);
        drop(g);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        unit
    }

    /// Units currently cached.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unit bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.lock().cap
    }

    /// Unit reuses (lookup hits plus concurrent duplicate builds).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Fresh unit builds inserted.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Units evicted by the bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Modules reported invalidated by content-hash change (counted by
    /// callers via [`ModuleElabCache::note_invalidations`]; invalidation
    /// itself is implicit — a changed hash is a different key).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Records that `n` modules were invalidated by a content change.
    pub fn note_invalidations(&self, n: u64) {
        self.invalidations.fetch_add(n, Ordering::Relaxed);
    }

    /// Drops every cached unit (counters are retained).
    pub fn clear(&self) {
        let mut g = self.lock();
        let evicted = g.map.len() as u64;
        g.map.clear();
        g.order.clear();
        drop(g);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Per-build bookkeeping: records and replay metadata for the unit under
/// construction.
#[derive(Default)]
struct BuildFrame {
    records: Vec<InstanceRecord>,
    max_checkpoint: Option<u64>,
    max_depth_rel: Option<u32>,
    /// Absolute instantiation depth of this fragment's root body. Fragment
    /// `ModuleCtx` depths are relative, so the flat path's recursion guard
    /// is re-anchored against `base + relative depth`.
    base: u32,
}

#[derive(Default)]
struct EngineState {
    /// Stack of in-flight fragment builds (innermost last). Empty while
    /// elaborating the top module body into the real netlist.
    frames: Vec<BuildFrame>,
    /// Records spliced directly into the real netlist.
    top: Vec<InstanceRecord>,
}

/// Drives one incremental elaboration: owns the design's content hashes,
/// points at the shared unit cache, and tracks the fragment-build stack.
/// Threaded through [`ModuleCtx`] as `Option<&IncEngine>`.
pub(crate) struct IncEngine<'d> {
    cache: &'d ModuleElabCache,
    hashes: HashMap<String, ModHash>,
    state: Mutex<EngineState>,
}

impl<'d> IncEngine<'d> {
    fn new(design: &Design, cache: &'d ModuleElabCache) -> Self {
        IncEngine { cache, hashes: design_hashes(design), state: Mutex::new(EngineState::default()) }
    }

    fn lock(&self) -> MutexGuard<'_, EngineState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Called from [`ModuleCtx::check_cells`]: while a fragment is being
    /// built, every budget checkpoint (a fragment-relative cell count) is
    /// folded into the innermost frame's maximum.
    pub(crate) fn record_checkpoint(&self, count: u64) {
        let mut g = self.lock();
        if let Some(frame) = g.frames.last_mut() {
            frame.max_checkpoint = Some(frame.max_checkpoint.map_or(count, |m| m.max(count)));
        }
    }

    /// Records that an instance is being entered at (frame-relative)
    /// `depth`, for depth-error replay.
    fn record_inst_depth(&self, depth: u32) {
        let mut g = self.lock();
        if let Some(frame) = g.frames.last_mut() {
            frame.max_depth_rel = Some(frame.max_depth_rel.map_or(depth, |m| m.max(depth)));
        }
    }

    fn in_frame(&self) -> bool {
        !self.lock().frames.is_empty()
    }

    /// Absolute instantiation depth of the innermost fragment root body
    /// (0 outside any build — top-module depths are already absolute).
    fn depth_base(&self) -> u32 {
        self.lock().frames.last().map(|f| f.base).unwrap_or(0)
    }

    fn push_frame(&self, base: u32) {
        self.lock().frames.push(BuildFrame { base, ..BuildFrame::default() });
    }

    fn pop_frame(&self) -> BuildFrame {
        self.lock().frames.pop().unwrap_or_default()
    }

    /// Folds a spliced unit's replay metadata into the innermost frame:
    /// checkpoints inside the sub-subtree happen at `base + count`, and
    /// instance entries at `depth + 1 + rel`.
    fn absorb(&self, base: u64, depth: u32, unit: &ModuleUnit) {
        let mut g = self.lock();
        if let Some(frame) = g.frames.last_mut() {
            if let Some(m) = unit.max_checkpoint {
                let v = base + m;
                frame.max_checkpoint = Some(frame.max_checkpoint.map_or(v, |c| c.max(v)));
            }
            if let Some(r) = unit.max_inst_depth_rel {
                let v = depth + 1 + r;
                frame.max_depth_rel = Some(frame.max_depth_rel.map_or(v, |c| c.max(v)));
            }
        }
    }

    fn emit_records(&self, records: Vec<InstanceRecord>) {
        let mut g = self.lock();
        match g.frames.last_mut() {
            Some(frame) => frame.records.extend(records),
            None => g.top.extend(records),
        }
    }

    fn take_top_records(&self) -> Vec<InstanceRecord> {
        std::mem::take(&mut self.lock().top)
    }
}

// ---------------------------------------------------------------------------
// The incremental instance path
// ---------------------------------------------------------------------------

/// The incremental replacement for the flat instance body: runs the exact
/// flat preamble, then splices the instance's elaboration unit (building
/// and caching it on miss) instead of inlining the child.
pub(crate) fn elab_instance_inc<'a>(
    ctx: &mut ModuleCtx<'a, '_>,
    inst: &Instance,
    engine: &'a IncEngine<'a>,
) -> Result<(), NetlistError> {
    engine.record_inst_depth(ctx.depth);
    // Fragment depths are relative; replay the flat recursion guard against
    // the absolute depth so recursive hierarchies terminate during builds.
    let abs_depth = engine.depth_base() + ctx.depth;
    if abs_depth > 64 {
        return Err(ctx.err("instantiation depth exceeds 64 (recursive hierarchy?)"));
    }
    let (child, overrides, bindings, outputs) = ctx.instance_preamble(inst)?;
    let child_prefix = format!("{}{}.", ctx.prefix, inst.name);

    // Resolve the child's full parameter environment without touching the
    // netlist (bind_params only evaluates constants).
    let params = {
        let mut scratch = Netlist::new("");
        let mut tmp =
            ModuleCtx::new(ctx.design, &mut scratch, child_prefix.clone(), ctx.depth + 1, ctx.limits);
        tmp.bind_params(child, &overrides)?;
        let mut params: Vec<(String, i64)> = tmp.params.into_iter().collect();
        params.sort();
        params
    };

    // The binding shape: per input port, the width of the bound parent net.
    let mut shape: Vec<Option<u32>> = Vec::new();
    let mut bound: Vec<NetId> = Vec::new();
    for p in &child.ports {
        if p.dir == Dir::Input {
            match bindings.get(&p.name) {
                Some(&net) => {
                    shape.push(Some(ctx.nl.net(net).width));
                    bound.push(net);
                }
                None => shape.push(None),
            }
        }
    }

    let key = UnitKey {
        module: inst.module.clone(),
        trans: engine.hashes.get(&inst.module).map(|h| h.trans).unwrap_or([0, 0]),
        params,
        shape,
        max_cells: ctx.limits.max_cells,
        max_net_bits: ctx.limits.max_net_bits,
        max_replication: ctx.limits.max_replication,
    };
    let digest = key.digest();

    let unit = match engine.cache.lookup(&key) {
        Some(unit) => unit,
        None => {
            let built = build_unit(ctx, inst, engine, child, &overrides, &key.shape, abs_depth + 1)?;
            engine.cache.insert(key, built)
        }
    };

    let base = ctx.nl.cell_count() as u64;
    if engine.in_frame() {
        engine.absorb(base, ctx.depth, &unit);
    } else {
        // Splicing into the real netlist: replay the flat path's depth and
        // budget decisions with the absolute base now known.
        if let Some(r) = unit.max_inst_depth_rel {
            if ctx.depth as u64 + 1 + r as u64 > 64 {
                return Err(ctx.err("instantiation depth exceeds 64 (recursive hierarchy?)"));
            }
        }
        if let Some(m) = unit.max_checkpoint {
            if base + m > ctx.limits.max_cells as u64 {
                return Err(NetlistError::too_large(format!(
                    "{}cell count exceeds SNS_MAX_CELLS = {}",
                    ctx.prefix, ctx.limits.max_cells
                )));
            }
        }
    }

    let (net_base, cell_start) = ctx.nl.splice_fragment(&unit.frag, unit.n_ph, &bound, &child_prefix);

    let path = format!("{}{}", ctx.prefix, inst.name);
    let mut records = Vec::with_capacity(1 + unit.subs.len());
    records.push(InstanceRecord {
        path: path.clone(),
        module: inst.module.clone(),
        unit: digest,
        cell_start,
        cell_end: ctx.nl.cell_count() as u32,
    });
    for s in &unit.subs {
        records.push(InstanceRecord {
            path: format!("{path}.{}", s.path),
            module: s.module.clone(),
            unit: s.unit,
            cell_start: cell_start + s.cell_start,
            cell_end: cell_start + s.cell_end,
        });
    }
    engine.emit_records(records);

    // Connect child outputs to parent lvalues, exactly as the flat path.
    let to_abs = |frag_net: NetId| -> NetId {
        let k = frag_net.0 as usize;
        if k < unit.n_ph {
            bound.get(k).copied().unwrap_or(frag_net)
        } else {
            NetId(net_base + (k - unit.n_ph) as u32)
        }
    };
    for (port_name, lv) in outputs {
        let frag_net = unit
            .outputs
            .iter()
            .find(|(name, _)| name == &port_name)
            .map(|&(_, net)| net)
            .ok_or_else(|| {
                NetlistError::elab(format!(
                    "{}`{}` has no declared output `{port_name}`",
                    ctx.prefix, inst.module
                ))
            })?;
        let abs = to_abs(frag_net);
        ctx.drive_lvalue(&lv, abs)?;
    }
    Ok(())
}

/// Builds the elaboration unit for one instance shape: placeholder nets
/// for the bound inputs, then the module body elaborated by the ordinary
/// [`ModuleCtx`] machinery at a relative prefix and depth.
fn build_unit<'a>(
    ctx: &ModuleCtx<'a, '_>,
    inst: &Instance,
    engine: &'a IncEngine<'a>,
    child: &Module,
    overrides: &HashMap<String, i64>,
    shape: &[Option<u32>],
    abs_base: u32,
) -> Result<Arc<ModuleUnit>, NetlistError> {
    engine.push_frame(abs_base);
    let result = (|| {
        let mut frag = Netlist::new(inst.module.clone());
        let mut ph: HashMap<String, NetId> = HashMap::new();
        let mut n_ph = 0usize;
        let mut shape_it = shape.iter();
        for p in &child.ports {
            if p.dir == Dir::Input {
                if let Some(Some(width)) = shape_it.next() {
                    let id = frag.add_net(*width, None);
                    ph.insert(p.name.clone(), id);
                    n_ph += 1;
                }
            }
        }
        let mut cctx = ModuleCtx::new(ctx.design, &mut frag, String::new(), 0, ctx.limits);
        cctx.inc = Some(engine);
        cctx.bind_params(child, overrides)?;
        cctx.declare_ports(child, Some(&ph))?;
        cctx.run(child)?;
        let outputs: Vec<(String, NetId)> = child
            .ports
            .iter()
            .filter(|p| p.dir == Dir::Output)
            .filter_map(|p| cctx.signals.get(&p.name).map(|s| (p.name.clone(), s.net)))
            .collect();
        drop(cctx);
        Ok((frag, n_ph, outputs))
    })();
    // Pop the frame whether or not the build succeeded (failed builds are
    // not cached; the error propagates, as it does on the flat path).
    let frame = engine.pop_frame();
    let (frag, n_ph, outputs) = result?;
    Ok(Arc::new(ModuleUnit {
        frag,
        n_ph,
        outputs,
        subs: frame.records,
        max_checkpoint: frame.max_checkpoint,
        max_inst_depth_rel: frame.max_depth_rel,
    }))
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// [`elaborate_incremental`] with explicit resource budgets.
///
/// # Errors
///
/// Exactly the failure conditions of
/// [`crate::elaborate::elaborate_with_limits`] (the two paths agree on
/// success/failure and on the error kind; see the module docs).
pub fn elaborate_incremental_with_limits(
    design: &Design,
    top: &str,
    cache: &ModuleElabCache,
    limits: ElabLimits,
) -> Result<(Netlist, ElabReport), NetlistError> {
    let module = design
        .module(top)
        .ok_or_else(|| NetlistError::UnknownTop { name: top.to_string() })?;
    let engine = IncEngine::new(design, cache);
    let mut nl = Netlist::new(top);
    let mut ctx = ModuleCtx::new(design, &mut nl, String::new(), 0, limits);
    ctx.inc = Some(&engine);
    ctx.bind_params(module, &HashMap::new())?;
    ctx.declare_ports(module, None)?;
    ctx.run(module)?;
    nl.validate().map_err(NetlistError::elab)?;
    let records = engine.take_top_records();
    Ok((nl, ElabReport { records }))
}

/// Elaborates `top` through the per-module unit cache, producing a netlist
/// **bit-identical** to [`crate::elaborate::elaborate`] plus an
/// [`ElabReport`] mapping cell ranges back to the instance hierarchy.
/// Budgets come from the environment, as on the flat path.
///
/// # Errors
///
/// See [`elaborate_incremental_with_limits`].
pub fn elaborate_incremental(
    design: &Design,
    top: &str,
    cache: &ModuleElabCache,
) -> Result<(Netlist, ElabReport), NetlistError> {
    elaborate_incremental_with_limits(design, top, cache, ElabLimits::from_env())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::{elaborate, elaborate_with_limits};
    use crate::parser::parse_source;

    /// Asserts cold- and warm-cache incremental elaboration both equal the
    /// flat netlist, and returns the report of the warm run.
    fn assert_inc_eq(src: &str, top: &str) -> ElabReport {
        let design = parse_source(src).unwrap();
        let flat = elaborate(&design, top).unwrap();
        let cache = ModuleElabCache::default();
        let (cold, _) = elaborate_incremental(&design, top, &cache).unwrap();
        assert_eq!(flat, cold, "cold-cache incremental != flat for `{top}`");
        let (warm, report) = elaborate_incremental(&design, top, &cache).unwrap();
        assert_eq!(flat, warm, "warm-cache incremental != flat for `{top}`");
        report
    }

    const HIER: &str = "
        module leaf #(parameter W = 4) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] y);
            assign y = (a & b) + (a ^ b);
        endmodule
        module mid #(parameter W = 4) (input clk, input [W-1:0] a, input [W-1:0] b,
                                       output [W-1:0] y);
            wire [W-1:0] t;
            reg [W-1:0] r;
            leaf #(.W(W)) u0 (.a(a), .b(b), .y(t));
            always @(posedge clk) r <= t;
            assign y = r;
        endmodule
        module top (input clk, input [7:0] p, input [7:0] q, output [7:0] r, output [3:0] s);
            wire [3:0] narrow;
            mid #(.W(8)) m8 (.clk(clk), .a(p), .b(q), .y(r));
            mid #(.W(4)) m4 (.clk(clk), .a(p[3:0]), .b(narrow), .y(s));
            leaf u (.a(p[3:0]), .b(q[7:4]), .y(narrow));
        endmodule";

    #[test]
    fn incremental_matches_flat_without_hierarchy() {
        let report = assert_inc_eq(
            "module mac (input clk, input [7:0] a, input [7:0] b, output [15:0] out);
                 reg [15:0] acc;
                 always @(posedge clk) acc <= acc + a * b;
                 assign out = acc;
             endmodule",
            "mac",
        );
        assert!(report.records.is_empty());
    }

    #[test]
    fn incremental_matches_flat_on_parameterized_hierarchy() {
        let report = assert_inc_eq(HIER, "top");
        // 3 direct instances + 1 leaf nested in each of the two mids.
        assert_eq!(report.records.len(), 5);
        assert_eq!(report.top_level().count(), 3);
        let m8 = report.records.iter().find(|r| r.path == "m8").unwrap();
        let m8_leaf = report.records.iter().find(|r| r.path == "m8.u0").unwrap();
        assert!(m8.cell_start <= m8_leaf.cell_start && m8_leaf.cell_end <= m8.cell_end);
        // The two `mid` instances have different parameters → different units.
        let m4 = report.records.iter().find(|r| r.path == "m4").unwrap();
        assert_ne!(m8.unit, m4.unit);
        // ...but the 4-bit leaves (m4.u0 and the direct `u`) share a unit.
        let m4_leaf = report.records.iter().find(|r| r.path == "m4.u0").unwrap();
        let u = report.records.iter().find(|r| r.path == "u").unwrap();
        assert_eq!(m4_leaf.unit, u.unit);
    }

    #[test]
    fn incremental_matches_flat_with_memories_and_partials() {
        assert_inc_eq(
            "module store (input clk, input we, input [2:0] addr, input [7:0] d,
                           output [7:0] q);
                 reg [7:0] mem [0:7];
                 always @(posedge clk) if (we) mem[addr] <= d;
                 assign q = mem[addr];
             endmodule
             module top (input clk, input we, input [2:0] addr, input [7:0] d,
                         output [15:0] y);
                 wire [7:0] q;
                 store s (.clk(clk), .we(we), .addr(addr), .d(d), .q(q));
                 assign y[7:0] = q;
                 assign y[15:8] = ~q;
             endmodule",
            "top",
        );
    }

    #[test]
    fn incremental_matches_flat_with_odd_bindings() {
        // Unconnected inputs, width-mismatched bindings (both directions),
        // an output into a concat lvalue, and a positional connection.
        assert_inc_eq(
            "module pass (input [7:0] a, input [7:0] b, output [7:0] y, output [7:0] z);
                 assign y = a + b;
                 assign z = a - b;
             endmodule
             module top (input [3:0] p, input [11:0] q, output [15:0] y);
                 pass u (p, .b(q), .y({y[15:12], y[11:8]}), .z(y[7:0]));
             endmodule",
            "top",
        );
        assert_inc_eq(
            "module pass (input [7:0] a, input [7:0] b, output [7:0] y);
                 assign y = a & b;
             endmodule
             module top (input [7:0] p, output [7:0] y);
                 pass u (.a(p), .y(y));
             endmodule",
            "top",
        );
    }

    #[test]
    fn shared_units_are_reused_across_designs() {
        let leaf = "module leaf (input [3:0] a, input [3:0] b, output [3:0] y);
                        assign y = (a & b) + (a ^ b);
                    endmodule";
        let design_a = parse_source(&format!(
            "{leaf} module ta (input [3:0] x, output [3:0] y); leaf u (.a(x), .b(x), .y(y)); endmodule"
        ))
        .unwrap();
        // design_b differs in whitespace/comments inside leaf — the unit
        // must still be shared (content hashing is AST-level).
        let leaf_b = "module   leaf(input [3:0] a, /* c */ input [3:0] b,
                          output [3:0] y);
                          assign y=(a&b)+(a^b); // same body
                      endmodule";
        let design_b = parse_source(&format!(
            "{leaf_b} module tb (input [3:0] p, input [3:0] q, output [3:0] y);
                 leaf v (.a(p), .b(q), .y(y));
             endmodule"
        ))
        .unwrap();
        let cache = ModuleElabCache::default();
        elaborate_incremental(&design_a, "ta", &cache).unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);
        let (nl_b, _) = elaborate_incremental(&design_b, "tb", &cache).unwrap();
        assert_eq!(cache.misses(), 1, "identical leaf content must not rebuild");
        assert_eq!(cache.hits(), 1);
        assert_eq!(nl_b, elaborate(&design_b, "tb").unwrap());
    }

    #[test]
    fn body_edits_invalidate_only_changed_subtrees() {
        let mid_top = "
            module mid (input [3:0] a, output [3:0] y); leaf u (.a(a), .y(y)); endmodule
            module top (input [3:0] a, output [3:0] y); mid m (.a(a), .y(y)); endmodule";
        let v1 = parse_source(&format!(
            "module leaf (input [3:0] a, output [3:0] y); assign y = a; endmodule {mid_top}"
        ))
        .unwrap();
        let v2 = parse_source(&format!(
            "module leaf (input [3:0] a, output [3:0] y); assign y = ~a; endmodule {mid_top}"
        ))
        .unwrap();
        let cache = ModuleElabCache::default();
        elaborate_incremental(&v1, "top", &cache).unwrap();
        assert_eq!(cache.misses(), 2); // mid + leaf
        let (nl2, _) = elaborate_incremental(&v2, "top", &cache).unwrap();
        // The leaf changed → both leaf and mid rebuild (transitive hash).
        assert_eq!(cache.misses(), 4);
        assert_eq!(nl2, elaborate(&v2, "top").unwrap());
        // Re-running v1 hits everything.
        let before = cache.misses();
        elaborate_incremental(&v1, "top", &cache).unwrap();
        assert_eq!(cache.misses(), before);
    }

    #[test]
    fn counters_reconcile_under_capacity_pressure() {
        let cache = ModuleElabCache::new(2);
        for w in 1..=6u32 {
            let src = format!(
                "module leaf #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
                     assign y = ~a;
                 endmodule
                 module top (input [{hi}:0] x, output [{hi}:0] y);
                     leaf #(.W({w})) u (.a(x), .y(y));
                 endmodule",
                hi = w - 1
            );
            let design = parse_source(&src).unwrap();
            elaborate_incremental(&design, "top", &cache).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.len() as u64, cache.misses() - cache.evictions());
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn budget_errors_replay_from_cache() {
        let src = "
            module fat (input [7:0] a, output [7:0] y);
                assign y = ((a + 8'd1) * (a + 8'd2)) ^ ((a - 8'd3) & (a | 8'd4));
            endmodule
            module top (input [7:0] p, output [7:0] y0, output [7:0] y1);
                fat u0 (.a(p), .y(y0));
                fat u1 (.a(y0), .y(y1));
            endmodule";
        let design = parse_source(src).unwrap();
        let tight = ElabLimits { max_cells: 12, ..ElabLimits::default() };
        let flat = elaborate_with_limits(&design, "top", tight);
        assert!(matches!(flat, Err(NetlistError::TooLarge { .. })));
        let cache = ModuleElabCache::default();
        for _ in 0..2 {
            // Cold then warm: both must reproduce the budget error.
            let inc = elaborate_incremental_with_limits(&design, "top", &cache, tight);
            assert!(matches!(inc, Err(NetlistError::TooLarge { .. })));
        }
        // And the loose-budget elaboration is unaffected (distinct keys).
        let loose = elaborate_incremental(&design, "top", &cache).unwrap().0;
        assert_eq!(loose, elaborate(&design, "top").unwrap());
    }

    #[test]
    fn depth_errors_replay_from_cache() {
        let src = "
            module a (input x, output y); b u (.x(x), .y(y)); endmodule
            module b (input x, output y); a u (.x(x), .y(y)); endmodule
            module top (input x, output y); a u (.x(x), .y(y)); endmodule";
        let design = parse_source(src).unwrap();
        assert!(elaborate(&design, "top").is_err());
        let cache = ModuleElabCache::default();
        for _ in 0..2 {
            assert!(elaborate_incremental(&design, "top", &cache).is_err());
        }
    }

    #[test]
    fn unbounded_and_clear_and_capacity() {
        let cache = ModuleElabCache::unbounded();
        assert_eq!(cache.capacity(), None);
        let design = parse_source(
            "module leaf (input x, output y); assign y = ~x; endmodule
             module top (input x, output y); leaf u (.x(x), .y(y)); endmodule",
        )
        .unwrap();
        elaborate_incremental(&design, "top", &cache).unwrap();
        assert_eq!(cache.len(), 1);
        cache.set_capacity(Some(0));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.len() as u64, cache.misses() - cache.evictions());
        cache.note_invalidations(3);
        assert_eq!(cache.invalidations(), 3);
        cache.clear();
        assert!(cache.is_empty());
    }
}
