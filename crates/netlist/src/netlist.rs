//! The flat, coarse-grained netlist produced by elaboration.
//!
//! A [`Netlist`] is a set of [`Net`]s (typed buses with a width) connected by
//! [`Cell`]s (functional units). Cells correspond 1:1 with the coarse RTL
//! cells Yosys produces before technology mapping — the representation SNS's
//! GraphIR is built from.

use std::collections::HashMap;
use std::fmt;

/// Index of a [`Net`] within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Index of a [`Cell`] within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// Direction of a top-level port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside the design.
    Input,
    /// Observed from outside the design.
    Output,
}

/// A top-level port binding a name/direction to a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// The port's source-level name.
    pub name: String,
    /// Input or output.
    pub dir: PortDir,
    /// The net carrying the port's value.
    pub net: NetId,
}

/// A bus in the netlist. Every net has a fixed bit width and at most one
/// driver (a cell output, a top-level input port, or a constant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Bit width (≥ 1).
    pub width: u32,
    /// Best-effort hierarchical source name, for diagnostics and path
    /// provenance (`None` for anonymous intermediate nets).
    pub name: Option<String>,
}

/// The functional type of a cell.
///
/// The first group corresponds directly to the SNS vocabulary of Table 1;
/// the `Slice`/`Concat`/`Const`/`Buf` pseudo-cells represent pure wiring and
/// are skipped (collapsed into edges) when building GraphIR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// D-flip-flop: inputs `[d]`, output `q`.
    Dff,
    /// 2:1 multiplexer: inputs `[sel, a, b]` (sel selects `b` when true).
    Mux,
    /// Bitwise NOT.
    Not,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise XNOR (mapped to the `xor` vocabulary entry).
    Xnor,
    /// Parametrizable left shift.
    Shl,
    /// Parametrizable right shift (logical or arithmetic).
    Shr,
    /// AND-reduction to 1 bit.
    ReduceAnd,
    /// OR-reduction to 1 bit.
    ReduceOr,
    /// XOR-reduction to 1 bit.
    ReduceXor,
    /// Adder.
    Add,
    /// Subtractor (vocabulary-equivalent to `add`, per Table 1).
    Sub,
    /// Multiplier.
    Mul,
    /// Equality comparator (`==`; `!=` is `Eq` + `Not`).
    Eq,
    /// Magnitude comparator (`<`, `>`, `<=`, `>=`).
    Lgt,
    /// Divider.
    Div,
    /// Modulus.
    Mod,
    // ---- wiring pseudo-cells (no logic, no area) ----
    /// Part select: passes bits `[lsb .. lsb+width)` of its input through.
    Slice,
    /// Concatenation of its inputs (LSB-first input order).
    Concat,
    /// Replication of its single input.
    Replicate,
    /// A constant driver; carries no incoming edges.
    Const,
    /// A plain buffer/rename.
    Buf,
}

impl CellKind {
    /// Whether this kind is pure wiring (collapsed when building GraphIR and
    /// free in the virtual synthesizer).
    pub fn is_wiring(self) -> bool {
        matches!(
            self,
            CellKind::Slice
                | CellKind::Concat
                | CellKind::Replicate
                | CellKind::Const
                | CellKind::Buf
        )
    }

    /// Whether this cell is sequential (breaks combinational paths).
    pub fn is_sequential(self) -> bool {
        self == CellKind::Dff
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Dff => "dff",
            CellKind::Mux => "mux",
            CellKind::Not => "not",
            CellKind::And => "and",
            CellKind::Or => "or",
            CellKind::Xor => "xor",
            CellKind::Xnor => "xnor",
            CellKind::Shl => "shl",
            CellKind::Shr => "shr",
            CellKind::ReduceAnd => "reduce_and",
            CellKind::ReduceOr => "reduce_or",
            CellKind::ReduceXor => "reduce_xor",
            CellKind::Add => "add",
            CellKind::Sub => "sub",
            CellKind::Mul => "mul",
            CellKind::Eq => "eq",
            CellKind::Lgt => "lgt",
            CellKind::Div => "div",
            CellKind::Mod => "mod",
            CellKind::Slice => "slice",
            CellKind::Concat => "concat",
            CellKind::Replicate => "replicate",
            CellKind::Const => "const",
            CellKind::Buf => "buf",
        };
        f.write_str(s)
    }
}

/// A functional unit instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The functional type.
    pub kind: CellKind,
    /// Input nets, in kind-specific order.
    pub inputs: Vec<NetId>,
    /// The single output net this cell drives.
    pub output: NetId,
    /// Hierarchical instance name (diagnostics / path provenance).
    pub name: String,
    /// For [`CellKind::Const`], the constant value; for [`CellKind::Slice`],
    /// the LSB offset; for [`CellKind::Replicate`], the count. `0` otherwise.
    pub attr: u64,
}

/// A flat elaborated design.
///
/// # Example
///
/// ```rust
/// use sns_netlist::parse_and_elaborate;
///
/// # fn main() -> Result<(), sns_netlist::NetlistError> {
/// let nl = parse_and_elaborate(
///     "module m (input [7:0] a, b, output [7:0] y); assign y = a + b; endmodule",
///     "m",
/// )?;
/// assert_eq!(nl.port_count(), 3);
/// assert_eq!(nl.logic_cell_count(), 1); // the adder
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    ports: Vec<Port>,
}

impl Netlist {
    /// Creates an empty netlist with the given top-level name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist { name: name.into(), nets: Vec::new(), cells: Vec::new(), ports: Vec::new() }
    }

    /// The top module's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a net and returns its id.
    pub fn add_net(&mut self, width: u32, name: Option<String>) -> NetId {
        debug_assert!(width >= 1, "nets must be at least 1 bit wide");
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { width, name });
        id
    }

    /// Adds a cell and returns its id.
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(cell);
        id
    }

    /// Registers a top-level port.
    pub fn add_port(&mut self, name: impl Into<String>, dir: PortDir, net: NetId) {
        self.ports.push(Port { name: name.into(), dir, net });
    }

    /// Looks up a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids are only minted by this netlist).
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Looks up a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// Iterates over all cells.
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter()
    }

    /// Iterates over all cells together with their ids.
    pub fn cells_enumerated(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells.iter().enumerate().map(|(i, c)| (CellId(i as u32), c))
    }

    /// Iterates over all nets together with their ids.
    pub fn nets_enumerated(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i as u32), n))
    }

    /// The top-level ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Number of top-level ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Total number of cells, including wiring pseudo-cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of real logic cells (wiring pseudo-cells excluded).
    pub fn logic_cell_count(&self) -> usize {
        self.cells.iter().filter(|c| !c.kind.is_wiring()).count()
    }

    /// Builds a map from each net to the cell driving it, if any.
    pub fn driver_map(&self) -> HashMap<NetId, CellId> {
        let mut m = HashMap::with_capacity(self.cells.len());
        for (id, c) in self.cells_enumerated() {
            m.insert(c.output, id);
        }
        m
    }

    /// Builds a map from each net to the cells reading it.
    pub fn reader_map(&self) -> HashMap<NetId, Vec<CellId>> {
        let mut m: HashMap<NetId, Vec<CellId>> = HashMap::new();
        for (id, c) in self.cells_enumerated() {
            for &input in &c.inputs {
                m.entry(input).or_default().push(id);
            }
        }
        m
    }

    /// Splices a relocatable module fragment into this netlist.
    ///
    /// The fragment's first `n_ph` nets are *placeholders* standing in for
    /// parent nets (the instance's bound input ports, in port order); they
    /// are not copied — references to placeholder `k` are rewritten to
    /// `bound[k]`. Every other fragment net is appended, so the k-th
    /// non-placeholder net lands at id `net_base + k`, which is exactly
    /// where inline elaboration of the same module body would have put it.
    /// All fragment cells are appended in order, and `prefix` (the
    /// instance's hierarchical prefix) is prepended to every copied net and
    /// cell name, reproducing inline elaboration's naming byte for byte.
    ///
    /// Returns `(net_base, cell_start)`: the id of the first copied net and
    /// the index of the first copied cell.
    pub(crate) fn splice_fragment(
        &mut self,
        frag: &Netlist,
        n_ph: usize,
        bound: &[NetId],
        prefix: &str,
    ) -> (u32, u32) {
        let net_base = self.nets.len() as u32;
        let cell_start = self.cells.len() as u32;
        let map = |id: NetId| -> NetId {
            let k = id.0 as usize;
            if k < n_ph {
                // Invariant: bound.len() == n_ph (both derive from the
                // unit's input-binding shape); stay total regardless.
                bound.get(k).copied().unwrap_or(id)
            } else {
                NetId(net_base + (k - n_ph) as u32)
            }
        };
        for net in frag.nets.iter().skip(n_ph) {
            self.nets.push(Net {
                width: net.width,
                name: net.name.as_ref().map(|n| format!("{prefix}{n}")),
            });
        }
        for cell in &frag.cells {
            self.cells.push(Cell {
                kind: cell.kind,
                inputs: cell.inputs.iter().map(|&n| map(n)).collect(),
                output: map(cell.output),
                name: format!("{prefix}{}", cell.name),
                attr: cell.attr,
            });
        }
        (net_base, cell_start)
    }

    /// Checks structural invariants: every net has at most one driver, cell
    /// connections are in range, and every cell has the arity its kind
    /// requires.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut driver: Vec<Option<usize>> = vec![None; self.nets.len()];
        for (i, c) in self.cells.iter().enumerate() {
            for &n in c.inputs.iter().chain(std::iter::once(&c.output)) {
                if n.0 as usize >= self.nets.len() {
                    return Err(format!("cell `{}` references out-of-range net {:?}", c.name, n));
                }
            }
            let out = c.output.0 as usize;
            if let Some(prev) = driver[out] {
                return Err(format!(
                    "net {:?} driven by both cell #{prev} and cell #{i} (`{}`)",
                    c.output, c.name
                ));
            }
            driver[out] = Some(i);
            let arity_ok = match c.kind {
                CellKind::Dff | CellKind::Not | CellKind::Buf | CellKind::Slice
                | CellKind::Replicate => c.inputs.len() == 1,
                CellKind::ReduceAnd | CellKind::ReduceOr | CellKind::ReduceXor => {
                    c.inputs.len() == 1
                }
                CellKind::Mux => c.inputs.len() == 3,
                CellKind::Const => c.inputs.is_empty(),
                CellKind::Concat => !c.inputs.is_empty(),
                _ => c.inputs.len() == 2,
            };
            if !arity_ok {
                return Err(format!(
                    "cell `{}` of kind {} has arity {}",
                    c.name,
                    c.kind,
                    c.inputs.len()
                ));
            }
        }
        for p in &self.ports {
            if p.net.0 as usize >= self.nets.len() {
                return Err(format!("port `{}` references out-of-range net", p.name));
            }
            if p.dir == PortDir::Input {
                if let Some(d) = driver[p.net.0 as usize] {
                    return Err(format!(
                        "input port `{}` is also driven by cell #{d}",
                        p.name
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist `{}`: {} nets, {} cells ({} logic), {} ports",
            self.name,
            self.nets.len(),
            self.cells.len(),
            self.logic_cell_count(),
            self.ports.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_net(8, Some("a".into()));
        let b = nl.add_net(8, Some("b".into()));
        let y = nl.add_net(8, Some("y".into()));
        nl.add_port("a", PortDir::Input, a);
        nl.add_port("b", PortDir::Input, b);
        nl.add_port("y", PortDir::Output, y);
        nl.add_cell(Cell { kind: CellKind::Add, inputs: vec![a, b], output: y, name: "u".into(), attr: 0 });
        nl
    }

    #[test]
    fn construction_and_counts() {
        let nl = tiny();
        assert_eq!(nl.net_count(), 3);
        assert_eq!(nl.cell_count(), 1);
        assert_eq!(nl.logic_cell_count(), 1);
        assert!(nl.validate().is_ok());
        assert!(nl.to_string().contains("netlist `t`"));
    }

    #[test]
    fn driver_and_reader_maps() {
        let nl = tiny();
        let d = nl.driver_map();
        assert_eq!(d.len(), 1);
        assert_eq!(d[&NetId(2)], CellId(0));
        let r = nl.reader_map();
        assert_eq!(r[&NetId(0)], vec![CellId(0)]);
    }

    #[test]
    fn validate_rejects_double_driver() {
        let mut nl = tiny();
        let a = NetId(0);
        let y = NetId(2);
        nl.add_cell(Cell { kind: CellKind::Buf, inputs: vec![a], output: y, name: "dup".into(), attr: 0 });
        assert!(nl.validate().unwrap_err().contains("driven by both"));
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net(1, None);
        let y = nl.add_net(1, None);
        nl.add_cell(Cell { kind: CellKind::Mux, inputs: vec![a], output: y, name: "m".into(), attr: 0 });
        assert!(nl.validate().unwrap_err().contains("arity"));
    }

    #[test]
    fn validate_rejects_driven_input_port() {
        let mut nl = tiny();
        let extra = nl.add_net(8, None);
        nl.add_cell(Cell {
            kind: CellKind::Buf,
            inputs: vec![extra],
            output: NetId(0),
            name: "bad".into(),
            attr: 0,
        });
        assert!(nl.validate().unwrap_err().contains("input port"));
    }

    #[test]
    fn wiring_classification() {
        assert!(CellKind::Concat.is_wiring());
        assert!(CellKind::Const.is_wiring());
        assert!(!CellKind::Add.is_wiring());
        assert!(CellKind::Dff.is_sequential());
        assert!(!CellKind::Mux.is_sequential());
    }

    #[test]
    fn display_names_match_yosys_conventions() {
        assert_eq!(CellKind::ReduceXor.to_string(), "reduce_xor");
        assert_eq!(CellKind::Dff.to_string(), "dff");
    }
}
