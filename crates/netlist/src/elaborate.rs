//! Elaboration: AST → flat [`Netlist`].
//!
//! The elaborator performs the same job as Yosys's `hierarchy`, `proc` and
//! `memory` passes combined, at the coarse-cell level SNS consumes:
//!
//! * parameters are evaluated and substituted (hierarchy is flattened, with
//!   instance names used as prefixes),
//! * expressions become functional cells with Verilog-style
//!   context-determined widths,
//! * clocked `always` blocks become D-flip-flops whose `D` inputs are mux
//!   chains encoding the block's conditional structure,
//! * combinational `always` blocks become mux logic,
//! * memories (`reg [..] m [0:N]`) become per-entry flip-flops with a write
//!   decoder and balanced mux read trees.

use std::collections::{BTreeMap, HashMap};

use crate::ast::{
    Always, BinOp, Connection, Decl, Design, Dir, Expr, Instance, Item, LValue, Module, Range,
    Stmt, UnOp,
};
use crate::error::NetlistError;
use crate::netlist::{Cell, CellKind, NetId, Netlist, PortDir};

/// Maximum memory depth the elaborator will expand into flip-flops.
const MAX_MEM_DEPTH: u64 = 65536;

/// Resource budgets enforced while a design elaborates.
///
/// The front-end accepts untrusted source (`sns-serve` feeds network
/// Verilog straight into [`elaborate`]), and elaboration *amplifies*:
/// `{100000000{x}}`, `wire [100000000:0]`, deep parameterized hierarchies
/// and wide memories can turn a few hundred bytes of source into gigabytes
/// of netlist. Each budget is checked **before** the corresponding
/// allocation and failures surface as [`NetlistError::TooLarge`], which
/// `sns-serve` maps to HTTP 422.
///
/// [`ElabLimits::from_env`] reads the `SNS_MAX_CELLS`, `SNS_MAX_NET_BITS`
/// and `SNS_MAX_REPLICATION` environment variables so deployments can
/// tighten (or relax) the budgets without recompiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElabLimits {
    /// Maximum number of cells in the elaborated netlist
    /// (`SNS_MAX_CELLS`, default 4,000,000). Checked as cells are
    /// emitted, so elaboration stops shortly after crossing the budget
    /// instead of allocating everything first.
    pub max_cells: usize,
    /// Maximum width in bits of any single net (`SNS_MAX_NET_BITS`,
    /// default 65,536). Bounds ranges, concatenations, replications and
    /// part selects.
    pub max_net_bits: u32,
    /// Maximum `{N{e}}` replication count (`SNS_MAX_REPLICATION`,
    /// default 65,536).
    pub max_replication: u64,
}

impl ElabLimits {
    /// Default cell budget.
    pub const DEFAULT_MAX_CELLS: usize = 4_000_000;
    /// Default net-width budget in bits.
    pub const DEFAULT_MAX_NET_BITS: u32 = 65_536;
    /// Default replication-count budget.
    pub const DEFAULT_MAX_REPLICATION: u64 = 65_536;

    /// Builds limits from `SNS_MAX_CELLS` / `SNS_MAX_NET_BITS` /
    /// `SNS_MAX_REPLICATION`, falling back to the defaults when a
    /// variable is unset, unparsable, or zero.
    pub fn from_env() -> Self {
        fn read(name: &str, default: u64) -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
                .filter(|&v| v > 0)
                .unwrap_or(default)
        }
        ElabLimits {
            max_cells: read("SNS_MAX_CELLS", Self::DEFAULT_MAX_CELLS as u64) as usize,
            max_net_bits: read("SNS_MAX_NET_BITS", Self::DEFAULT_MAX_NET_BITS as u64)
                .min(u32::MAX as u64) as u32,
            max_replication: read("SNS_MAX_REPLICATION", Self::DEFAULT_MAX_REPLICATION),
        }
    }
}

impl Default for ElabLimits {
    fn default() -> Self {
        ElabLimits {
            max_cells: Self::DEFAULT_MAX_CELLS,
            max_net_bits: Self::DEFAULT_MAX_NET_BITS,
            max_replication: Self::DEFAULT_MAX_REPLICATION,
        }
    }
}

/// Elaborates `top` (and everything it instantiates) from a parsed design
/// into a flat [`Netlist`], with budgets taken from the environment
/// (see [`ElabLimits::from_env`]).
///
/// # Errors
///
/// Returns [`NetlistError::UnknownTop`] if `top` is not defined,
/// [`NetlistError::Elab`] for semantic problems (unknown identifiers,
/// non-constant contexts that require constants, arity/width mismatches,
/// unsupported constructs), or [`NetlistError::TooLarge`] when the design
/// exceeds a resource budget.
pub fn elaborate(design: &Design, top: &str) -> Result<Netlist, NetlistError> {
    elaborate_with_limits(design, top, ElabLimits::from_env())
}

/// [`elaborate`] with explicit resource budgets.
pub fn elaborate_with_limits(
    design: &Design,
    top: &str,
    limits: ElabLimits,
) -> Result<Netlist, NetlistError> {
    let module = design
        .module(top)
        .ok_or_else(|| NetlistError::UnknownTop { name: top.to_string() })?;
    let mut nl = Netlist::new(top);
    let mut ctx = ModuleCtx::new(design, &mut nl, String::new(), 0, limits);
    // Evaluate top-level parameters with defaults only.
    ctx.bind_params(module, &HashMap::new())?;
    ctx.declare_ports(module, None)?;
    ctx.run(module)?;
    nl.validate().map_err(NetlistError::elab)?;
    Ok(nl)
}

/// Information about a declared scalar signal.
#[derive(Debug, Clone)]
pub(crate) struct Signal {
    pub(crate) net: NetId,
    pub(crate) width: u32,
}

/// Information about a declared memory.
#[derive(Debug, Clone)]
struct Memory {
    /// Q-side net of each entry (created at declaration).
    entries: Vec<NetId>,
    width: u32,
    /// Pending writes: (condition, address net, data net).
    writes: Vec<(Option<NetId>, NetId, NetId)>,
    /// Whether any expression read the memory.
    read: bool,
    /// Clock presence: true once a clocked write was seen.
    clocked: bool,
}

/// Per-module-instance elaboration context writing into a shared netlist.
pub(crate) struct ModuleCtx<'a, 'n> {
    pub(crate) design: &'a Design,
    pub(crate) nl: &'n mut Netlist,
    pub(crate) prefix: String,
    pub(crate) depth: u32,
    pub(crate) params: HashMap<String, i64>,
    pub(crate) signals: HashMap<String, Signal>,
    memories: BTreeMap<String, Memory>,
    /// Partial drivers for signals assigned via bit/part selects:
    /// signal name → list of (lsb, width, value net).
    partial: BTreeMap<String, Vec<(u32, u32, NetId)>>,
    fresh: u32,
    pub(crate) limits: ElabLimits,
    /// When set, instances elaborate through the per-module unit cache
    /// (see [`crate::incremental`]) instead of inline, and budget
    /// checkpoints are reported to the engine so cached units replay the
    /// flat path's budget decisions exactly.
    pub(crate) inc: Option<&'a crate::incremental::IncEngine<'a>>,
}

impl<'a, 'n> ModuleCtx<'a, 'n> {
    pub(crate) fn new(
        design: &'a Design,
        nl: &'n mut Netlist,
        prefix: String,
        depth: u32,
        limits: ElabLimits,
    ) -> Self {
        ModuleCtx {
            design,
            nl,
            prefix,
            depth,
            params: HashMap::new(),
            signals: HashMap::new(),
            memories: BTreeMap::new(),
            partial: BTreeMap::new(),
            fresh: 0,
            limits,
            inc: None,
        }
    }

    pub(crate) fn err(&self, msg: impl std::fmt::Display) -> NetlistError {
        NetlistError::elab(format!("{}{}", self.prefix, msg))
    }

    /// Fails with [`NetlistError::TooLarge`] once the shared netlist grows
    /// past the cell budget. Called at every emission granule (module
    /// item, statement, memory entry) so runaway amplification stops
    /// within one granule of crossing the budget.
    pub(crate) fn check_cells(&self) -> Result<(), NetlistError> {
        if let Some(engine) = self.inc {
            engine.record_checkpoint(self.nl.cell_count() as u64);
        }
        if self.nl.cell_count() > self.limits.max_cells {
            return Err(NetlistError::too_large(format!(
                "{}cell count exceeds SNS_MAX_CELLS = {}",
                self.prefix, self.limits.max_cells
            )));
        }
        Ok(())
    }

    /// Validates a prospective net width (in bits) against the budget,
    /// *before* the net is allocated.
    fn check_width(&self, bits: u64, what: &str) -> Result<u32, NetlistError> {
        if bits > self.limits.max_net_bits as u64 {
            return Err(NetlistError::too_large(format!(
                "{}{what} width {bits} exceeds SNS_MAX_NET_BITS = {}",
                self.prefix, self.limits.max_net_bits
            )));
        }
        Ok(bits as u32)
    }

    fn fresh_name(&mut self, hint: &str) -> String {
        self.fresh += 1;
        format!("{}${}{}", self.prefix, hint, self.fresh)
    }

    fn new_net(&mut self, width: u32, hint: &str) -> NetId {
        let name = self.fresh_name(hint);
        self.nl.add_net(width, Some(name))
    }

    fn cell1(&mut self, kind: CellKind, a: NetId, out_width: u32, hint: &str) -> NetId {
        let out = self.new_net(out_width, hint);
        let name = self.fresh_name(hint);
        self.nl.add_cell(Cell { kind, inputs: vec![a], output: out, name, attr: 0 });
        out
    }

    fn cell2(&mut self, kind: CellKind, a: NetId, b: NetId, out_width: u32, hint: &str) -> NetId {
        let out = self.new_net(out_width, hint);
        let name = self.fresh_name(hint);
        self.nl.add_cell(Cell { kind, inputs: vec![a, b], output: out, name, attr: 0 });
        out
    }

    fn mux(&mut self, sel: NetId, a_when_false: NetId, b_when_true: NetId, width: u32) -> NetId {
        let out = self.new_net(width, "mux");
        let name = self.fresh_name("mux");
        self.nl.add_cell(Cell {
            kind: CellKind::Mux,
            inputs: vec![sel, a_when_false, b_when_true],
            output: out,
            name,
            attr: 0,
        });
        out
    }

    fn mk_const(&mut self, value: u64, width: u32) -> NetId {
        let out = self.new_net(width, "const");
        let name = self.fresh_name("const");
        self.nl.add_cell(Cell { kind: CellKind::Const, inputs: vec![], output: out, name, attr: value });
        out
    }

    /// Slices `[lsb .. lsb+width)` out of `net`.
    fn slice(&mut self, net: NetId, lsb: u32, width: u32) -> NetId {
        let out = self.new_net(width, "slice");
        let name = self.fresh_name("slice");
        self.nl.add_cell(Cell { kind: CellKind::Slice, inputs: vec![net], output: out, name, attr: lsb as u64 });
        out
    }

    /// Zero-extends or truncates `net` to exactly `width` bits.
    fn adapt(&mut self, net: NetId, width: u32) -> NetId {
        let have = self.nl.net(net).width;
        if have == width {
            net
        } else if have > width {
            self.slice(net, 0, width)
        } else {
            let pad = self.mk_const(0, width - have);
            let out = self.new_net(width, "zext");
            let name = self.fresh_name("zext");
            self.nl.add_cell(Cell {
                kind: CellKind::Concat,
                inputs: vec![net, pad], // LSB-first
                output: out,
                name,
                attr: 0,
            });
            out
        }
    }

    /// Reduces a (possibly multi-bit) net to a 1-bit truthiness value.
    fn boolify(&mut self, net: NetId) -> NetId {
        if self.nl.net(net).width == 1 {
            net
        } else {
            self.cell1(CellKind::ReduceOr, net, 1, "bool")
        }
    }

    // ---- parameters and constant evaluation ----

    pub(crate) fn bind_params(
        &mut self,
        module: &Module,
        overrides: &HashMap<String, i64>,
    ) -> Result<(), NetlistError> {
        for p in &module.params {
            let value = match overrides.get(&p.name) {
                Some(&v) if !p.local => v,
                _ => self.eval_const(&p.default)?,
            };
            self.params.insert(p.name.clone(), value);
        }
        Ok(())
    }

    fn eval_const(&self, e: &Expr) -> Result<i64, NetlistError> {
        match e {
            Expr::Number { value, .. } => Ok(*value as i64),
            Expr::Ident(name) => self
                .params
                .get(name)
                .copied()
                .ok_or_else(|| self.err(format_args!("`{name}` is not a constant parameter"))),
            Expr::Unary(op, a) => {
                let a = self.eval_const(a)?;
                Ok(match op {
                    UnOp::Neg => {
                        a.checked_neg().ok_or_else(|| self.err("constant negation overflows"))?
                    }
                    UnOp::Not => !a,
                    UnOp::LNot => (a == 0) as i64,
                    _ => return Err(self.err("reduction operators are not constant-foldable")),
                })
            }
            Expr::Binary(op, a, b) => {
                let a = self.eval_const(a)?;
                let b = self.eval_const(b)?;
                // All arithmetic is checked: parameter expressions come from
                // untrusted source, and a debug-build overflow panic would
                // abort the process.
                let overflow = || self.err("constant expression overflows");
                Ok(match op {
                    BinOp::Add => a.checked_add(b).ok_or_else(overflow)?,
                    BinOp::Sub => a.checked_sub(b).ok_or_else(overflow)?,
                    BinOp::Mul => a.checked_mul(b).ok_or_else(overflow)?,
                    BinOp::Div => {
                        if b == 0 {
                            return Err(self.err("constant division by zero"));
                        }
                        a.checked_div(b).ok_or_else(overflow)?
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            return Err(self.err("constant modulo by zero"));
                        }
                        a.checked_rem(b).ok_or_else(overflow)?
                    }
                    BinOp::Shl | BinOp::Shr | BinOp::AShr => {
                        if !(0..64).contains(&b) {
                            return Err(self.err(format_args!(
                                "constant shift amount {b} out of range"
                            )));
                        }
                        if *op == BinOp::Shl {
                            a << b
                        } else {
                            a >> b
                        }
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Xnor => !(a ^ b),
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Gt => (a > b) as i64,
                    BinOp::Ge => (a >= b) as i64,
                    BinOp::LAnd => ((a != 0) && (b != 0)) as i64,
                    BinOp::LOr => ((a != 0) || (b != 0)) as i64,
                })
            }
            Expr::Ternary(c, a, b) => {
                Ok(if self.eval_const(c)? != 0 { self.eval_const(a)? } else { self.eval_const(b)? })
            }
            _ => Err(self.err("expression is not constant")),
        }
    }

    fn range_width(&self, r: &Option<Range>) -> Result<u32, NetlistError> {
        match r {
            None => Ok(1),
            Some(r) => {
                let msb = self.eval_const(&r.msb)?;
                let lsb = self.eval_const(&r.lsb)?;
                if lsb != 0 || msb < 0 {
                    return Err(self.err(format_args!("only [N:0] ranges are supported, got [{msb}:{lsb}]")));
                }
                self.check_width(msb as u64 + 1, "range")
            }
        }
    }

    // ---- declarations ----

    fn declare_signal(&mut self, name: &str, width: u32) -> Result<NetId, NetlistError> {
        if self.signals.contains_key(name) || self.memories.contains_key(name) {
            return Err(self.err(format_args!("`{name}` declared twice")));
        }
        let full = format!("{}{}", self.prefix, name);
        let net = self.nl.add_net(width, Some(full));
        self.signals.insert(name.to_string(), Signal { net, width });
        Ok(net)
    }

    /// Declares ports. For the top module (`bindings == None`), nets are
    /// registered as [`Netlist`] ports; for child instances, input ports are
    /// bound to parent nets.
    pub(crate) fn declare_ports(
        &mut self,
        module: &Module,
        bindings: Option<&HashMap<String, NetId>>,
    ) -> Result<(), NetlistError> {
        for p in &module.ports {
            let width = self.range_width(&p.range)?;
            match bindings {
                None => {
                    let net = self.declare_signal(&p.name, width)?;
                    let dir = match p.dir {
                        Dir::Input => PortDir::Input,
                        Dir::Output => PortDir::Output,
                    };
                    self.nl.add_port(p.name.clone(), dir, net);
                }
                Some(map) => match (p.dir, map.get(&p.name)) {
                    (Dir::Input, Some(&parent_net)) => {
                        let adapted = self.adapt(parent_net, width);
                        self.signals.insert(p.name.clone(), Signal { net: adapted, width });
                    }
                    (Dir::Input, None) => {
                        // Unconnected input: tie to zero.
                        let zero = self.mk_const(0, width);
                        self.signals.insert(p.name.clone(), Signal { net: zero, width });
                    }
                    (Dir::Output, _) => {
                        // Child output gets its own net; the instance logic
                        // in the parent connects it onwards.
                        self.declare_signal(&p.name, width)?;
                    }
                },
            }
        }
        Ok(())
    }

    fn declare_item_decls(&mut self, module: &Module) -> Result<(), NetlistError> {
        for item in &module.items {
            if let Item::Decl(d) = item {
                self.declare_decl(d)?;
            }
        }
        Ok(())
    }

    fn declare_decl(&mut self, d: &Decl) -> Result<(), NetlistError> {
        let width = self.range_width(&d.range)?;
        for n in &d.names {
            match &n.mem_range {
                None => {
                    self.declare_signal(&n.name, width)?;
                }
                Some(r) => {
                    let lo = self.eval_const(&r.msb)?.min(self.eval_const(&r.lsb)?);
                    let hi = self.eval_const(&r.msb)?.max(self.eval_const(&r.lsb)?);
                    // hi >= lo by construction; the span can still overflow
                    // (e.g. [i64::MAX : i64::MIN]), so stay in checked math.
                    let depth = hi
                        .checked_sub(lo)
                        .and_then(|d| d.checked_add(1))
                        .map(|d| d as u64)
                        .unwrap_or(u64::MAX);
                    if depth > MAX_MEM_DEPTH {
                        return Err(NetlistError::too_large(format!(
                            "{}memory `{}` depth {depth} exceeds the supported maximum {MAX_MEM_DEPTH}",
                            self.prefix, n.name
                        )));
                    }
                    let mut entries = Vec::with_capacity(depth as usize);
                    for i in 0..depth {
                        let full = format!("{}{}[{}]", self.prefix, n.name, i);
                        entries.push(self.nl.add_net(width, Some(full)));
                    }
                    self.memories.insert(
                        n.name.clone(),
                        Memory { entries, width, writes: Vec::new(), read: false, clocked: false },
                    );
                }
            }
        }
        Ok(())
    }

    // ---- top-level drive of a module body ----

    pub(crate) fn run(&mut self, module: &Module) -> Result<(), NetlistError> {
        self.declare_item_decls(module)?;
        for item in &module.items {
            self.check_cells()?;
            match item {
                Item::Decl(d) => {
                    // Initializers are sugar for continuous assigns.
                    for n in &d.names {
                        if let Some(init) = &n.init {
                            let lhs = LValue::Ident(n.name.clone());
                            self.elab_assign(&lhs, init)?;
                        }
                    }
                }
                Item::Assign { lhs, rhs } => self.elab_assign(lhs, rhs)?,
                Item::Always(a) => self.elab_always(a)?,
                Item::Instance(inst) => self.elab_instance(inst)?,
            }
        }
        self.finish_memories()?;
        self.finish_partials()?;
        Ok(())
    }

    // ---- expressions ----

    /// Self-determined width of an expression.
    fn sdw(&self, e: &Expr) -> Result<u32, NetlistError> {
        Ok(match e {
            Expr::Ident(name) => {
                if let Some(s) = self.signals.get(name) {
                    s.width
                } else if let Some(&v) = self.params.get(name) {
                    (64 - (v.unsigned_abs()).leading_zeros()).max(1)
                } else {
                    return Err(self.err(format_args!("unknown identifier `{name}`")));
                }
            }
            Expr::Number { value, width } => {
                width.unwrap_or_else(|| (64 - value.leading_zeros()).max(1))
            }
            Expr::Unary(op, a) => match op {
                UnOp::Not | UnOp::Neg => self.sdw(a)?,
                _ => 1,
            },
            Expr::Binary(op, a, b) => match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                | BinOp::LAnd | BinOp::LOr => 1,
                BinOp::Shl | BinOp::Shr | BinOp::AShr => self.sdw(a)?,
                _ => self.sdw(a)?.max(self.sdw(b)?),
            },
            Expr::Ternary(_, a, b) => self.sdw(a)?.max(self.sdw(b)?),
            Expr::BitSelect(base, _) => {
                if let Expr::Ident(name) = base.as_ref() {
                    if let Some(m) = self.memories.get(name) {
                        return Ok(m.width);
                    }
                }
                1
            }
            Expr::PartSelect(_, msb, lsb) => {
                let msb = self.eval_const(msb)?;
                let lsb = self.eval_const(lsb)?;
                if msb < lsb || lsb < 0 {
                    return Err(self.err("part select with msb < lsb"));
                }
                self.check_width((msb - lsb) as u64 + 1, "part select")?
            }
            Expr::Concat(parts) => {
                let mut w = 0u64;
                for p in parts {
                    w += self.sdw(p)? as u64;
                }
                self.check_width(w, "concatenation")?
            }
            Expr::Replicate(n, inner) => {
                let n = self.replication_count(n)?;
                let bits = n.saturating_mul(self.sdw(inner)? as u64);
                self.check_width(bits, "replication")?
            }
        })
    }

    /// Evaluates and validates a `{N{e}}` replication count.
    fn replication_count(&self, n: &Expr) -> Result<u64, NetlistError> {
        let n = self.eval_const(n)?;
        if n <= 0 {
            return Err(self.err("replication count must be positive"));
        }
        if n as u64 > self.limits.max_replication {
            return Err(NetlistError::too_large(format!(
                "{}replication count {n} exceeds SNS_MAX_REPLICATION = {}",
                self.prefix, self.limits.max_replication
            )));
        }
        Ok(n as u64)
    }

    /// Elaborates `e` to a net of exactly `ctx_width` bits (Verilog
    /// context-determined widths; `shadow` carries blocking-assignment
    /// values inside procedural blocks).
    fn elab_expr(
        &mut self,
        e: &Expr,
        ctx_width: u32,
        shadow: &BTreeMap<String, NetId>,
    ) -> Result<NetId, NetlistError> {
        let net = self.elab_expr_inner(e, ctx_width, shadow)?;
        Ok(self.adapt(net, ctx_width))
    }

    fn elab_expr_inner(
        &mut self,
        e: &Expr,
        ctx_width: u32,
        shadow: &BTreeMap<String, NetId>,
    ) -> Result<NetId, NetlistError> {
        match e {
            Expr::Ident(name) => {
                if let Some(&n) = shadow.get(name) {
                    return Ok(n);
                }
                if let Some(s) = self.signals.get(name) {
                    return Ok(s.net);
                }
                if let Some(&v) = self.params.get(name) {
                    let w = (64 - (v.unsigned_abs()).leading_zeros()).max(1);
                    return Ok(self.mk_const(v as u64, w.max(1)));
                }
                Err(self.err(format_args!("unknown identifier `{name}`")))
            }
            Expr::Number { value, width } => {
                let w = width.unwrap_or_else(|| (64 - value.leading_zeros()).max(1));
                Ok(self.mk_const(*value, w))
            }
            Expr::Unary(op, a) => {
                let aw = self.sdw(a)?;
                match op {
                    UnOp::Not => {
                        let w = ctx_width.max(aw);
                        let an = self.elab_expr(a, w, shadow)?;
                        Ok(self.cell1(CellKind::Not, an, w, "not"))
                    }
                    UnOp::Neg => {
                        // -a  =>  0 - a
                        let w = ctx_width.max(aw);
                        let an = self.elab_expr(a, w, shadow)?;
                        let zero = self.mk_const(0, w);
                        Ok(self.cell2(CellKind::Sub, zero, an, w, "neg"))
                    }
                    UnOp::LNot => {
                        let an = self.elab_expr(a, aw, shadow)?;
                        let b = self.boolify(an);
                        Ok(self.cell1(CellKind::Not, b, 1, "lnot"))
                    }
                    UnOp::RedAnd => {
                        let an = self.elab_expr(a, aw, shadow)?;
                        Ok(self.cell1(CellKind::ReduceAnd, an, 1, "rand"))
                    }
                    UnOp::RedOr => {
                        let an = self.elab_expr(a, aw, shadow)?;
                        Ok(self.cell1(CellKind::ReduceOr, an, 1, "ror"))
                    }
                    UnOp::RedXor => {
                        let an = self.elab_expr(a, aw, shadow)?;
                        Ok(self.cell1(CellKind::ReduceXor, an, 1, "rxor"))
                    }
                    UnOp::RedNand => {
                        let an = self.elab_expr(a, aw, shadow)?;
                        let r = self.cell1(CellKind::ReduceAnd, an, 1, "rnand");
                        Ok(self.cell1(CellKind::Not, r, 1, "rnand_n"))
                    }
                    UnOp::RedNor => {
                        let an = self.elab_expr(a, aw, shadow)?;
                        let r = self.cell1(CellKind::ReduceOr, an, 1, "rnor");
                        Ok(self.cell1(CellKind::Not, r, 1, "rnor_n"))
                    }
                    UnOp::RedXnor => {
                        let an = self.elab_expr(a, aw, shadow)?;
                        let r = self.cell1(CellKind::ReduceXor, an, 1, "rxnor");
                        Ok(self.cell1(CellKind::Not, r, 1, "rxnor_n"))
                    }
                }
            }
            Expr::Binary(op, a, b) => {
                let aw = self.sdw(a)?;
                let bw = self.sdw(b)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
                    | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Xnor => {
                        let w = ctx_width.max(aw).max(bw);
                        let an = self.elab_expr(a, w, shadow)?;
                        let bn = self.elab_expr(b, w, shadow)?;
                        let kind = match op {
                            BinOp::Add => CellKind::Add,
                            BinOp::Sub => CellKind::Sub,
                            BinOp::Mul => CellKind::Mul,
                            BinOp::Div => CellKind::Div,
                            BinOp::Mod => CellKind::Mod,
                            BinOp::And => CellKind::And,
                            BinOp::Or => CellKind::Or,
                            BinOp::Xor => CellKind::Xor,
                            BinOp::Xnor => CellKind::Xnor,
                            // The enclosing arm lists exactly the operators
                            // above; stay total rather than trusting that
                            // the two lists never drift apart.
                            _ => {
                                return Err(self.err(format_args!(
                                    "operator {op:?} has no arithmetic cell lowering"
                                )))
                            }
                        };
                        Ok(self.cell2(kind, an, bn, w, "bin"))
                    }
                    BinOp::Shl | BinOp::Shr | BinOp::AShr => {
                        let w = ctx_width.max(aw);
                        let an = self.elab_expr(a, w, shadow)?;
                        let bn = self.elab_expr(b, bw, shadow)?;
                        let kind = if *op == BinOp::Shl { CellKind::Shl } else { CellKind::Shr };
                        Ok(self.cell2(kind, an, bn, w, "sh"))
                    }
                    BinOp::Eq | BinOp::Ne => {
                        let w = aw.max(bw);
                        let an = self.elab_expr(a, w, shadow)?;
                        let bn = self.elab_expr(b, w, shadow)?;
                        let eq = self.cell2(CellKind::Eq, an, bn, 1, "eq");
                        if *op == BinOp::Eq {
                            Ok(eq)
                        } else {
                            Ok(self.cell1(CellKind::Not, eq, 1, "ne"))
                        }
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        // Normalize everything onto a strict less-than cell
                        // (`Lgt` computes in0 < in1): a>b is b<a, a<=b is
                        // !(b<a), a>=b is !(a<b).
                        let w = aw.max(bw);
                        let an = self.elab_expr(a, w, shadow)?;
                        let bn = self.elab_expr(b, w, shadow)?;
                        let (x, y) = match op {
                            BinOp::Lt | BinOp::Ge => (an, bn),
                            _ => (bn, an),
                        };
                        let lgt = self.cell2(CellKind::Lgt, x, y, 1, "lgt");
                        match op {
                            BinOp::Lt | BinOp::Gt => Ok(lgt),
                            _ => Ok(self.cell1(CellKind::Not, lgt, 1, "lge")),
                        }
                    }
                    BinOp::LAnd | BinOp::LOr => {
                        let an = self.elab_expr(a, aw, shadow)?;
                        let bn = self.elab_expr(b, bw, shadow)?;
                        let ab = self.boolify(an);
                        let bb = self.boolify(bn);
                        let kind = if *op == BinOp::LAnd { CellKind::And } else { CellKind::Or };
                        Ok(self.cell2(kind, ab, bb, 1, "log"))
                    }
                }
            }
            Expr::Ternary(c, a, b) => {
                let cw = self.sdw(c)?;
                let cn = self.elab_expr(c, cw, shadow)?;
                let sel = self.boolify(cn);
                let w = ctx_width.max(self.sdw(a)?).max(self.sdw(b)?);
                let an = self.elab_expr(a, w, shadow)?;
                let bn = self.elab_expr(b, w, shadow)?;
                // sel true selects the `then` value.
                Ok(self.mux(sel, bn, an, w))
            }
            Expr::BitSelect(base, index) => {
                if let Expr::Ident(name) = base.as_ref() {
                    if self.memories.contains_key(name) {
                        return self.elab_mem_read(name, index, shadow);
                    }
                }
                match self.eval_const(index) {
                    Ok(i) => {
                        let bw = self.sdw(base)?;
                        let bn = self.elab_expr(base, bw, shadow)?;
                        if i < 0 || i >= bw as i64 {
                            return Err(self.err(format_args!("bit select index {i} out of range")));
                        }
                        Ok(self.slice(bn, i as u32, 1))
                    }
                    Err(_) => {
                        // Variable bit select => shift right then take bit 0.
                        let bw = self.sdw(base)?;
                        let bn = self.elab_expr(base, bw, shadow)?;
                        let iw = self.sdw(index)?;
                        let ix = self.elab_expr(index, iw, shadow)?;
                        let shifted = self.cell2(CellKind::Shr, bn, ix, bw, "vbit");
                        Ok(self.slice(shifted, 0, 1))
                    }
                }
            }
            Expr::PartSelect(base, msb, lsb) => {
                let msb = self.eval_const(msb)?;
                let lsb = self.eval_const(lsb)?;
                if msb < lsb || lsb < 0 {
                    return Err(self.err("invalid part select bounds"));
                }
                let bw = self.sdw(base)?;
                let bn = self.elab_expr(base, bw, shadow)?;
                // Compare in i64: `msb as u32` would wrap for a huge msb
                // and sail past the range check.
                if msb >= bw as i64 {
                    return Err(self.err(format_args!("part select [{msb}:{lsb}] out of range")));
                }
                Ok(self.slice(bn, lsb as u32, (msb - lsb + 1) as u32))
            }
            Expr::Concat(parts) => {
                // Verilog concatenation is MSB-first in source; our concat
                // cell is LSB-first, so reverse.
                let mut nets = Vec::with_capacity(parts.len());
                let mut total = 0u64;
                for p in parts.iter().rev() {
                    let w = self.sdw(p)?;
                    nets.push(self.elab_expr(p, w, shadow)?);
                    total += w as u64;
                }
                let total = self.check_width(total, "concatenation")?;
                let out = self.new_net(total, "cat");
                let name = self.fresh_name("cat");
                self.nl.add_cell(Cell { kind: CellKind::Concat, inputs: nets, output: out, name, attr: 0 });
                Ok(out)
            }
            Expr::Replicate(n, inner) => {
                let n = self.replication_count(n)?;
                let w = self.sdw(inner)?;
                // Reject before allocating: the output net (and everything
                // downstream) would be n * w bits wide.
                let out_w =
                    self.check_width(n.saturating_mul(w as u64), "replication")?;
                let inn = self.elab_expr(inner, w, shadow)?;
                let out = self.new_net(out_w, "rep");
                let name = self.fresh_name("rep");
                self.nl.add_cell(Cell {
                    kind: CellKind::Replicate,
                    inputs: vec![inn],
                    output: out,
                    name,
                    attr: n,
                });
                Ok(out)
            }
        }
    }

    /// Balanced mux read tree over a memory's entries.
    fn elab_mem_read(
        &mut self,
        name: &str,
        index: &Expr,
        shadow: &BTreeMap<String, NetId>,
    ) -> Result<NetId, NetlistError> {
        let (entries, width) = match self.memories.get_mut(name) {
            Some(m) => {
                m.read = true;
                (m.entries.clone(), m.width)
            }
            // Callers dispatch here only for declared memories; stay total
            // anyway — this runs on untrusted input.
            None => {
                return Err(self.err(format_args!("`{name}` is not a declared memory")));
            }
        };
        let iw = self.sdw(index)?;
        let ix = self.elab_expr(index, iw, shadow)?;
        let addr_bits = (usize::BITS - (entries.len() - 1).leading_zeros()).max(1);
        let ix = self.adapt(ix, addr_bits);
        Ok(self.mux_tree(&entries, ix, addr_bits as usize, width))
    }

    fn mux_tree(&mut self, entries: &[NetId], addr: NetId, nbits: usize, width: u32) -> NetId {
        if entries.len() == 1 {
            return entries[0];
        }
        let bit = nbits - 1;
        let half = 1usize << bit;
        let (lo, hi) = entries.split_at(half.min(entries.len()));
        let lo_net = self.mux_tree(lo, addr, bit.max(1), width);
        if hi.is_empty() {
            return lo_net;
        }
        let hi_net = self.mux_tree(hi, addr, bit.max(1), width);
        let sel = self.slice(addr, bit as u32, 1);
        self.mux(sel, lo_net, hi_net, width)
    }

    // ---- continuous assigns ----

    fn elab_assign(&mut self, lhs: &LValue, rhs: &Expr) -> Result<(), NetlistError> {
        let shadow = BTreeMap::new();
        let w = self.lvalue_width(lhs)?;
        let value = self.elab_expr(rhs, w, &shadow)?;
        self.drive_lvalue(lhs, value)
    }

    fn lvalue_width(&self, lhs: &LValue) -> Result<u32, NetlistError> {
        Ok(match lhs {
            LValue::Ident(name) => {
                if let Some(s) = self.signals.get(name) {
                    s.width
                } else if let Some(m) = self.memories.get(name) {
                    m.width
                } else {
                    return Err(self.err(format_args!("unknown assignment target `{name}`")));
                }
            }
            LValue::BitSelect(name, _) => {
                if let Some(m) = self.memories.get(name) {
                    m.width
                } else {
                    1
                }
            }
            LValue::PartSelect(_, msb, lsb) => {
                let msb = self.eval_const(msb)?;
                let lsb = self.eval_const(lsb)?;
                if msb < lsb || lsb < 0 {
                    return Err(self.err("part select with msb < lsb"));
                }
                self.check_width((msb - lsb) as u64 + 1, "part select")?
            }
            LValue::Concat(parts) => {
                let mut w = 0u64;
                for p in parts {
                    w += self.lvalue_width(p)? as u64;
                }
                self.check_width(w, "concatenation")?
            }
        })
    }

    /// Drives a continuous-assignment target from `value`.
    pub(crate) fn drive_lvalue(&mut self, lhs: &LValue, value: NetId) -> Result<(), NetlistError> {
        match lhs {
            LValue::Ident(name) => {
                let sig = self
                    .signals
                    .get(name)
                    .ok_or_else(|| self.err(format_args!("unknown assignment target `{name}`")))?
                    .clone();
                let v = self.adapt(value, sig.width);
                let cname = self.fresh_name("drv");
                self.nl.add_cell(Cell {
                    kind: CellKind::Buf,
                    inputs: vec![v],
                    output: sig.net,
                    name: cname,
                    attr: 0,
                });
                Ok(())
            }
            LValue::BitSelect(name, index) => {
                if self.memories.contains_key(name) {
                    return Err(self.err("continuous assignment to a memory entry is unsupported"));
                }
                let i = self.eval_const(index)?;
                self.record_partial(name, i, 1, value)
            }
            LValue::PartSelect(name, msb, lsb) => {
                let msb = self.eval_const(msb)?;
                let lsb = self.eval_const(lsb)?;
                if msb < lsb {
                    return Err(self.err("part select with msb < lsb"));
                }
                let w = msb.checked_sub(lsb).and_then(|d| d.checked_add(1)).unwrap_or(i64::MAX);
                self.record_partial(name, lsb, w, value)
            }
            LValue::Concat(parts) => {
                // Source order is MSB-first: the first part takes the top bits.
                let mut offset = self.lvalue_width(lhs)?;
                for p in parts {
                    let w = self.lvalue_width(p)?;
                    offset -= w;
                    let piece = self.slice(value, offset, w);
                    self.drive_lvalue(p, piece)?;
                }
                Ok(())
            }
        }
    }

    /// Records a bit/part-select driver after validating the select
    /// against the target's declared width. Bounds arrive as `i64`
    /// straight from constant evaluation — a negative or oversized index
    /// must error here, not wrap during the final stitch.
    fn record_partial(
        &mut self,
        name: &str,
        lsb: i64,
        width: i64,
        value: NetId,
    ) -> Result<(), NetlistError> {
        let sig_width = match self.signals.get(name) {
            Some(s) => s.width as i64,
            None => return Err(self.err(format_args!("unknown assignment target `{name}`"))),
        };
        let in_range = lsb >= 0
            && width >= 1
            && matches!(lsb.checked_add(width), Some(end) if end <= sig_width);
        if !in_range {
            return Err(self.err(format_args!(
                "select assignment to `{name}` is out of range for its {sig_width}-bit width"
            )));
        }
        let v = self.adapt(value, width as u32);
        self.partial.entry(name.to_string()).or_default().push((lsb as u32, width as u32, v));
        Ok(())
    }

    /// Stitches partial (bit/part-select) drivers into whole-signal drivers.
    fn finish_partials(&mut self) -> Result<(), NetlistError> {
        let partial = std::mem::take(&mut self.partial);
        for (name, mut pieces) in partial {
            // `record_partial` only accepts declared signals, but keep the
            // lookup total rather than trusting that invariant forever.
            let sig = self
                .signals
                .get(&name)
                .cloned()
                .ok_or_else(|| self.err(format_args!("unknown assignment target `{name}`")))?;
            pieces.sort_by_key(|&(lsb, _, _)| lsb);
            let mut inputs = Vec::new();
            let mut cursor = 0;
            for (lsb, w, net) in pieces {
                if lsb < cursor {
                    return Err(self.err(format_args!("overlapping part assignments to `{name}`")));
                }
                if lsb > cursor {
                    let pad = self.mk_const(0, lsb - cursor);
                    inputs.push(pad);
                }
                inputs.push(net);
                cursor = lsb + w;
            }
            if cursor < sig.width {
                let pad = self.mk_const(0, sig.width - cursor);
                inputs.push(pad);
            }
            let cname = self.fresh_name("stitch");
            self.nl.add_cell(Cell {
                kind: CellKind::Concat,
                inputs,
                output: sig.net,
                name: cname,
                attr: 0,
            });
        }
        Ok(())
    }

    // ---- always blocks ----

    fn elab_always(&mut self, a: &Always) -> Result<(), NetlistError> {
        // `env` maps each assigned scalar target to its computed next value;
        // `shadow` lets blocking assignments be read back within the block.
        let mut env: BTreeMap<String, NetId> = BTreeMap::new();
        let mut shadow: BTreeMap<String, NetId> = BTreeMap::new();
        let clocked = a.clock.is_some();
        self.elab_stmt(&a.body, None, &mut env, &mut shadow, clocked)?;

        for (name, value) in env {
            let sig = self
                .signals
                .get(&name)
                .ok_or_else(|| self.err(format_args!("unknown procedural target `{name}`")))?
                .clone();
            let v = self.adapt(value, sig.width);
            // Registers carry the signal's hierarchical name so users can
            // address them (e.g. per-register activity coefficients).
            let cname = if clocked {
                format!("{}{}", self.prefix, name)
            } else {
                self.fresh_name("comb")
            };
            let kind = if clocked { CellKind::Dff } else { CellKind::Buf };
            self.nl.add_cell(Cell { kind, inputs: vec![v], output: sig.net, name: cname, attr: 0 });
        }
        if clocked {
            for m in self.memories.values_mut() {
                if !m.writes.is_empty() {
                    m.clocked = true;
                }
            }
        }
        Ok(())
    }

    /// Walks a statement under an optional 1-bit condition, threading the
    /// per-target next-value environment.
    fn elab_stmt(
        &mut self,
        s: &Stmt,
        cond: Option<NetId>,
        env: &mut BTreeMap<String, NetId>,
        shadow: &mut BTreeMap<String, NetId>,
        clocked: bool,
    ) -> Result<(), NetlistError> {
        self.check_cells()?;
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Block(stmts) => {
                for st in stmts {
                    self.elab_stmt(st, cond, env, shadow, clocked)?;
                }
                Ok(())
            }
            Stmt::Assign { lhs, rhs, nonblocking } => {
                self.elab_proc_assign(lhs, rhs, cond, env, shadow, clocked, *nonblocking)
            }
            Stmt::If { cond: c, then_s, else_s } => {
                let cw = self.sdw(c)?;
                let cn = self.elab_expr(c, cw, shadow)?;
                let cb = self.boolify(cn);
                let then_cond = self.and_opt(cond, cb);
                self.elab_stmt(then_s, Some(then_cond), env, shadow, clocked)?;
                if let Some(e) = else_s {
                    let ncb = self.cell1(CellKind::Not, cb, 1, "else");
                    let else_cond = self.and_opt(cond, ncb);
                    self.elab_stmt(e, Some(else_cond), env, shadow, clocked)?;
                }
                Ok(())
            }
            Stmt::Case { subject, arms, default } => {
                let sw = self.sdw(subject)?;
                let sn = self.elab_expr(subject, sw, shadow)?;
                let mut not_any: Option<NetId> = None;
                for (labels, body) in arms {
                    let mut arm_hit: Option<NetId> = None;
                    for label in labels {
                        let ln = self.elab_expr(label, sw, shadow)?;
                        let hit = self.cell2(CellKind::Eq, sn, ln, 1, "case_eq");
                        arm_hit = Some(match arm_hit {
                            None => hit,
                            Some(prev) => self.cell2(CellKind::Or, prev, hit, 1, "case_or"),
                        });
                    }
                    // The grammar requires at least one label per arm, but
                    // this path runs on untrusted input — stay total.
                    let hit = match arm_hit {
                        Some(h) => h,
                        None => return Err(self.err("case arm has no labels")),
                    };
                    let branch_cond = self.and_opt(cond, hit);
                    self.elab_stmt(body, Some(branch_cond), env, shadow, clocked)?;
                    let nh = self.cell1(CellKind::Not, hit, 1, "case_miss");
                    not_any = Some(match not_any {
                        None => nh,
                        Some(prev) => self.cell2(CellKind::And, prev, nh, 1, "case_nand"),
                    });
                }
                if let Some(d) = default {
                    let dc = match not_any {
                        None => cond,
                        Some(na) => Some(self.and_opt(cond, na)),
                    };
                    self.elab_stmt(d, dc, env, shadow, clocked)?;
                }
                Ok(())
            }
        }
    }

    fn and_opt(&mut self, a: Option<NetId>, b: NetId) -> NetId {
        match a {
            None => b,
            Some(a) => self.cell2(CellKind::And, a, b, 1, "cand"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn elab_proc_assign(
        &mut self,
        lhs: &LValue,
        rhs: &Expr,
        cond: Option<NetId>,
        env: &mut BTreeMap<String, NetId>,
        shadow: &mut BTreeMap<String, NetId>,
        clocked: bool,
        nonblocking: bool,
    ) -> Result<(), NetlistError> {
        match lhs {
            LValue::BitSelect(name, index) if self.memories.contains_key(name) => {
                // Memory write.
                if !clocked {
                    return Err(self.err("memory writes are only supported in clocked blocks"));
                }
                let width = match self.memories.get(name) {
                    Some(m) => m.width,
                    None => return Err(self.err(format_args!("`{name}` is not a declared memory"))),
                };
                let data = self.elab_expr(rhs, width, shadow)?;
                let iw = self.sdw(index)?;
                let addr = self.elab_expr(index, iw, shadow)?;
                match self.memories.get_mut(name) {
                    Some(m) => m.writes.push((cond, addr, data)),
                    None => return Err(self.err(format_args!("`{name}` is not a declared memory"))),
                }
                Ok(())
            }
            LValue::Ident(name) => {
                let sig = self
                    .signals
                    .get(name)
                    .ok_or_else(|| self.err(format_args!("unknown procedural target `{name}`")))?
                    .clone();
                let value = self.elab_expr(rhs, sig.width, shadow)?;
                let base = env.get(name).copied().unwrap_or(if clocked {
                    sig.net // hold the previous Q value
                } else {
                    // Combinational default: zero (full case/else coverage
                    // overrides this; see crate docs on latch avoidance).
                    self.mk_const(0, sig.width)
                });
                let next = match cond {
                    None => value,
                    Some(c) => self.mux(c, base, value, sig.width),
                };
                env.insert(name.clone(), next);
                // Only blocking assignments are visible to later reads in
                // the same block; nonblocking reads keep the old value.
                if !nonblocking {
                    shadow.insert(name.clone(), next);
                }
                Ok(())
            }
            LValue::BitSelect(..) | LValue::PartSelect(..) => {
                // Procedural part assignment: read-modify-write on the env.
                // Bounds stay in i64 until validated against the target's
                // width: untrusted source can ask for `q[-1]` or
                // `q[1<<40 : 0]`, and an unchecked cast would wrap.
                let (name, lsb, w) = match lhs {
                    LValue::BitSelect(name, i) => (name.clone(), self.eval_const(i)?, 1i64),
                    LValue::PartSelect(name, msb, lsb) => {
                        let m = self.eval_const(msb)?;
                        let l = self.eval_const(lsb)?;
                        if m < l {
                            return Err(self.err("part select with msb < lsb"));
                        }
                        let w =
                            m.checked_sub(l).and_then(|d| d.checked_add(1)).unwrap_or(i64::MAX);
                        (name.clone(), l, w)
                    }
                    // This arm only sees the two select shapes; stay total.
                    _ => return Err(self.err("unsupported procedural assignment target")),
                };
                let sig = self
                    .signals
                    .get(&name)
                    .ok_or_else(|| self.err(format_args!("unknown procedural target `{name}`")))?
                    .clone();
                let in_range = lsb >= 0
                    && w >= 1
                    && matches!(lsb.checked_add(w), Some(end) if end <= sig.width as i64);
                if !in_range {
                    return Err(self.err(format_args!(
                        "select assignment to `{name}` is out of range for its {}-bit width",
                        sig.width
                    )));
                }
                let (lsb, w) = (lsb as u32, w as u32);
                let cur = env.get(&name).copied().unwrap_or(sig.net);
                let value = self.elab_expr(rhs, w, &*shadow)?;
                let mut parts: Vec<NetId> = Vec::new();
                if lsb > 0 {
                    parts.push(self.slice(cur, 0, lsb));
                }
                parts.push(value);
                if lsb + w < sig.width {
                    parts.push(self.slice(cur, lsb + w, sig.width - lsb - w));
                }
                let out = self.new_net(sig.width, "ins");
                let cname = self.fresh_name("ins");
                self.nl.add_cell(Cell {
                    kind: CellKind::Concat,
                    inputs: parts,
                    output: out,
                    name: cname,
                    attr: 0,
                });
                let next = match cond {
                    None => out,
                    Some(c) => {
                        let base = env.get(&name).copied().unwrap_or(sig.net);
                        self.mux(c, base, out, sig.width)
                    }
                };
                env.insert(name.clone(), next);
                if !nonblocking {
                    shadow.insert(name.clone(), next);
                }
                Ok(())
            }
            LValue::Concat(parts) => {
                // Split the rhs and assign each piece (MSB-first source order).
                let total = self.lvalue_width(lhs)?;
                let value = self.elab_expr(rhs, total, shadow)?;
                let mut offset = total;
                for p in parts {
                    let w = self.lvalue_width(p)?;
                    offset -= w;
                    let piece = self.slice(value, offset, w);
                    // Wrap the piece as a fake rhs identifier-free assignment:
                    // reuse the Ident/part paths by recursing with a synthetic
                    // expression is awkward, so handle Ident directly here.
                    match p {
                        LValue::Ident(name) => {
                            let sig = self
                                .signals
                                .get(name)
                                .ok_or_else(|| {
                                    self.err(format_args!("unknown procedural target `{name}`"))
                                })?
                                .clone();
                            let v = self.adapt(piece, sig.width);
                            let base = env.get(name).copied().unwrap_or(if clocked {
                                sig.net
                            } else {
                                self.mk_const(0, sig.width)
                            });
                            let next = match cond {
                                None => v,
                                Some(c) => self.mux(c, base, v, sig.width),
                            };
                            env.insert(name.clone(), next);
                            if !nonblocking {
                                shadow.insert(name.clone(), next);
                            }
                        }
                        _ => {
                            return Err(
                                self.err("nested selects inside procedural concat lvalues are unsupported")
                            );
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Builds per-entry flip-flops and write decoders for every memory.
    fn finish_memories(&mut self) -> Result<(), NetlistError> {
        let names: Vec<String> = self.memories.keys().cloned().collect();
        for name in names {
            let Some(m) = self.memories.get(&name).cloned() else { continue };
            if m.writes.is_empty() {
                if m.read {
                    // Read-only memory without initialization: tie entries low.
                    for (i, &q) in m.entries.iter().enumerate() {
                        let z = self.mk_const(0, m.width);
                        let cname = format!("{}{}[{}]$tie", self.prefix, name, i);
                        self.nl.add_cell(Cell {
                            kind: CellKind::Buf,
                            inputs: vec![z],
                            output: q,
                            name: cname,
                            attr: 0,
                        });
                    }
                }
                continue;
            }
            let addr_width = self.nl.net(m.writes[0].1).width;
            for (i, &q) in m.entries.iter().enumerate() {
                // Each entry emits a decoder + mux chain + DFF; a deep
                // memory with many writes is a cell amplifier, so budget-
                // check per entry.
                self.check_cells()?;
                let mut d = q; // default: hold
                for &(cond, addr, data) in &m.writes {
                    let idx = self.mk_const(i as u64, addr_width);
                    let addr_a = self.adapt(addr, addr_width);
                    let hit = self.cell2(CellKind::Eq, addr_a, idx, 1, "wr_eq");
                    let we = match cond {
                        None => hit,
                        Some(c) => self.cell2(CellKind::And, c, hit, 1, "wr_en"),
                    };
                    d = self.mux(we, d, data, m.width);
                }
                let cname = format!("{}{}[{}]$dff", self.prefix, name, i);
                self.nl.add_cell(Cell {
                    kind: CellKind::Dff,
                    inputs: vec![d],
                    output: q,
                    name: cname,
                    attr: 0,
                });
            }
        }
        Ok(())
    }

    // ---- instances ----

    fn elab_instance(&mut self, inst: &Instance) -> Result<(), NetlistError> {
        if let Some(engine) = self.inc {
            return crate::incremental::elab_instance_inc(self, inst, engine);
        }
        let (child, overrides, bindings, outputs) = self.instance_preamble(inst)?;

        // Elaborate the child into the same netlist.
        let child_prefix = format!("{}{}.", self.prefix, inst.name);
        let output_nets: Vec<(NetId, LValue)> = {
            let mut cctx =
                ModuleCtx::new(self.design, self.nl, child_prefix, self.depth + 1, self.limits);
            cctx.bind_params(child, &overrides)?;
            cctx.declare_ports(child, Some(&bindings))?;
            cctx.run(child)?;
            let mut nets = Vec::with_capacity(outputs.len());
            for (port_name, lv) in outputs {
                // Every output port was declared by `declare_ports` above;
                // keep the lookup total all the same.
                let net = match cctx.signals.get(&port_name) {
                    Some(s) => s.net,
                    None => {
                        return Err(NetlistError::elab(format!(
                            "{}`{}` has no declared output `{port_name}`",
                            self.prefix, inst.module
                        )))
                    }
                };
                nets.push((net, lv));
            }
            nets
        };

        // Connect child outputs to parent lvalues.
        for (child_net, lv) in output_nets {
            self.drive_lvalue(&lv, child_net)?;
        }
        Ok(())
    }

    /// The instance steps shared by the flat and incremental paths: depth
    /// check, module lookup, parameter-override evaluation, connection
    /// normalization, input-expression elaboration (into the *parent*
    /// context), and output-lvalue collection. Everything up to — but not
    /// including — elaborating the child body.
    pub(crate) fn instance_preamble(
        &mut self,
        inst: &Instance,
    ) -> Result<InstancePreamble<'a>, NetlistError> {
        if self.depth > 64 {
            return Err(self.err("instantiation depth exceeds 64 (recursive hierarchy?)"));
        }
        let child = self
            .design
            .module(&inst.module)
            .ok_or_else(|| self.err(format_args!("unknown module `{}`", inst.module)))?;

        // Evaluate parameter overrides in the parent context.
        let mut overrides = HashMap::new();
        for (pname, pexpr) in &inst.params {
            overrides.insert(pname.clone(), self.eval_const(pexpr)?);
        }

        // Normalize connections to (port_name, Option<Expr>).
        let mut named: Vec<(String, Option<Expr>)> = Vec::new();
        for conn in &inst.conns {
            match conn {
                Connection::Named(port, expr) => named.push((port.clone(), expr.clone())),
                Connection::Positional(i, expr) => {
                    let port = child.ports.get(*i).ok_or_else(|| {
                        self.err(format_args!(
                            "positional connection {i} out of range for `{}`",
                            inst.module
                        ))
                    })?;
                    named.push((port.name.clone(), Some(expr.clone())));
                }
            }
        }

        // Evaluate input connections in the parent, collect output targets.
        let shadow = BTreeMap::new();
        let mut bindings: HashMap<String, NetId> = HashMap::new();
        let mut outputs: Vec<(String, LValue)> = Vec::new();
        for (port_name, expr) in named {
            let pdecl = child.ports.iter().find(|p| p.name == port_name).ok_or_else(|| {
                self.err(format_args!("`{}` has no port `{port_name}`", inst.module))
            })?;
            match pdecl.dir {
                Dir::Input => {
                    if let Some(e) = expr {
                        let w = self.sdw(&e)?;
                        let net = self.elab_expr(&e, w, &shadow)?;
                        bindings.insert(port_name, net);
                    }
                }
                Dir::Output => {
                    if let Some(e) = expr {
                        let lv = expr_as_lvalue(&e).ok_or_else(|| {
                            self.err(format_args!(
                                "output port `{port_name}` must connect to an assignable expression"
                            ))
                        })?;
                        outputs.push((port_name, lv));
                    }
                }
            }
        }

        Ok((child, overrides, bindings, outputs))
    }
}

/// What [`ModuleCtx::instance_preamble`] produces: the child module
/// definition, the evaluated parameter overrides, the input-port → parent-net
/// bindings, and the (output port, parent lvalue) connection list.
pub(crate) type InstancePreamble<'m> =
    (&'m Module, HashMap<String, i64>, HashMap<String, NetId>, Vec<(String, LValue)>);

/// Interprets an expression used as an instance output connection as an
/// lvalue (identifier, bit/part select, or concat of those).
fn expr_as_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Ident(n) => Some(LValue::Ident(n.clone())),
        Expr::BitSelect(base, i) => {
            if let Expr::Ident(n) = base.as_ref() {
                Some(LValue::BitSelect(n.clone(), (**i).clone()))
            } else {
                None
            }
        }
        Expr::PartSelect(base, m, l) => {
            if let Expr::Ident(n) = base.as_ref() {
                Some(LValue::PartSelect(n.clone(), (**m).clone(), (**l).clone()))
            } else {
                None
            }
        }
        Expr::Concat(parts) => {
            let lvs: Option<Vec<_>> = parts.iter().map(expr_as_lvalue).collect();
            Some(LValue::Concat(lvs?))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_elaborate;
    use crate::parser::parse_source;

    fn kinds(nl: &Netlist) -> Vec<CellKind> {
        let mut v: Vec<CellKind> = nl.cells().map(|c| c.kind).filter(|k| !k.is_wiring()).collect();
        v.sort();
        v
    }

    fn count(nl: &Netlist, kind: CellKind) -> usize {
        nl.cells().filter(|c| c.kind == kind).count()
    }

    #[test]
    fn mac_example_matches_paper_figure_2() {
        // The paper's Figure 2: 8-bit multiply-add into a 16-bit register.
        let nl = parse_and_elaborate(
            "module mac (input clk, input [7:0] a, input [7:0] b, output [15:0] out);
                 reg [15:0] acc;
                 always @(posedge clk) acc <= acc + a * b;
                 assign out = acc;
             endmodule",
            "mac",
        )
        .unwrap();
        assert_eq!(count(&nl, CellKind::Mul), 1);
        assert_eq!(count(&nl, CellKind::Add), 1);
        assert_eq!(count(&nl, CellKind::Dff), 1);
        // The multiplier is context-extended to 16 bits, as in the paper.
        let mul = nl.cells().find(|c| c.kind == CellKind::Mul).unwrap();
        assert_eq!(nl.net(mul.output).width, 16);
    }

    #[test]
    fn width_rules_zero_extend_and_truncate() {
        let nl = parse_and_elaborate(
            "module m (input [3:0] a, input [7:0] b, output [5:0] y);
                 assign y = a + b;
             endmodule",
            "m",
        )
        .unwrap();
        let add = nl.cells().find(|c| c.kind == CellKind::Add).unwrap();
        assert_eq!(nl.net(add.output).width, 8); // max(ctx=6, 4, 8)
        nl.validate().unwrap();
    }

    #[test]
    fn parameters_propagate_through_hierarchy() {
        let src = "
            module add2 #(parameter W = 4) (input [W-1:0] a, b, output [W-1:0] y);
                assign y = a + b;
            endmodule
            module top (input [15:0] p, q, output [15:0] r);
                add2 #(.W(16)) u (.a(p), .b(q), .y(r));
            endmodule";
        let nl = parse_and_elaborate(src, "top").unwrap();
        let add = nl.cells().find(|c| c.kind == CellKind::Add).unwrap();
        assert_eq!(nl.net(add.output).width, 16);
    }

    #[test]
    fn if_else_builds_mux_into_dff() {
        let nl = parse_and_elaborate(
            "module m (input clk, input rst, input [3:0] d, output reg [3:0] q);
                 always @(posedge clk) begin
                     if (rst) q <= 4'd0;
                     else q <= d;
                 end
             endmodule",
            "m",
        )
        .unwrap();
        assert_eq!(count(&nl, CellKind::Dff), 1);
        assert!(count(&nl, CellKind::Mux) >= 1);
        nl.validate().unwrap();
    }

    #[test]
    fn comb_always_with_case_produces_eq_and_mux() {
        let nl = parse_and_elaborate(
            "module m (input [1:0] s, input [3:0] a, b, c, output reg [3:0] y);
                 always @(*) begin
                     case (s)
                         2'd0: y = a;
                         2'd1: y = b;
                         default: y = c;
                     endcase
                 end
             endmodule",
            "m",
        )
        .unwrap();
        assert_eq!(count(&nl, CellKind::Dff), 0);
        assert!(count(&nl, CellKind::Eq) >= 2);
        assert!(count(&nl, CellKind::Mux) >= 2);
    }

    #[test]
    fn memory_becomes_dffs_with_decoder_and_mux_tree() {
        let nl = parse_and_elaborate(
            "module m (input clk, input we, input [1:0] wa, ra, input [7:0] wd, output [7:0] rd);
                 reg [7:0] mem [0:3];
                 always @(posedge clk) if (we) mem[wa] <= wd;
                 assign rd = mem[ra];
             endmodule",
            "m",
        )
        .unwrap();
        assert_eq!(count(&nl, CellKind::Dff), 4);
        assert!(count(&nl, CellKind::Eq) >= 4); // write decoder
        assert!(count(&nl, CellKind::Mux) >= 4 + 3); // write muxes + read tree
        nl.validate().unwrap();
    }

    #[test]
    fn shifts_and_comparisons_lower_to_expected_cells() {
        let nl = parse_and_elaborate(
            "module m (input [7:0] a, b, output [7:0] s, output lt, ge, ne);
                 assign s = a << b[2:0];
                 assign lt = a < b;
                 assign ge = a >= b;
                 assign ne = a != b;
             endmodule",
            "m",
        )
        .unwrap();
        assert_eq!(count(&nl, CellKind::Shl), 1);
        assert_eq!(count(&nl, CellKind::Lgt), 2);
        assert_eq!(count(&nl, CellKind::Eq), 1);
        assert!(count(&nl, CellKind::Not) >= 2); // for >= and !=
    }

    #[test]
    fn logical_ops_boolify_operands() {
        let nl = parse_and_elaborate(
            "module m (input [7:0] a, b, output y);
                 assign y = a && !b;
             endmodule",
            "m",
        )
        .unwrap();
        assert!(count(&nl, CellKind::ReduceOr) >= 2);
        assert_eq!(count(&nl, CellKind::And), 1);
    }

    #[test]
    fn concat_lvalue_splits_adder_carry() {
        let nl = parse_and_elaborate(
            "module m (input [7:0] a, b, output [7:0] s, output c);
                 assign {c, s} = a + b;
             endmodule",
            "m",
        )
        .unwrap();
        assert_eq!(count(&nl, CellKind::Add), 1);
        let add = nl.cells().find(|c| c.kind == CellKind::Add).unwrap();
        assert_eq!(nl.net(add.output).width, 9);
        nl.validate().unwrap();
    }

    #[test]
    fn unknown_identifier_is_an_error() {
        let err = parse_and_elaborate(
            "module m (input a, output y); assign y = nonexistent; endmodule",
            "m",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown identifier"));
    }

    #[test]
    fn unknown_top_is_an_error() {
        let d = parse_source("module m (input a); endmodule").unwrap();
        assert!(matches!(elaborate(&d, "zzz"), Err(NetlistError::UnknownTop { .. })));
    }

    #[test]
    fn hierarchical_names_are_prefixed() {
        let src = "
            module leaf (input [3:0] a, output [3:0] y);
                assign y = ~a;
            endmodule
            module top (input [3:0] p, output [3:0] q);
                leaf u0 (.a(p), .y(q));
            endmodule";
        let nl = parse_and_elaborate(src, "top").unwrap();
        assert!(nl
            .cells()
            .any(|c| c.kind == CellKind::Not && c.name.starts_with("u0.")));
    }

    #[test]
    fn blocking_assign_chains_within_comb_block() {
        let nl = parse_and_elaborate(
            "module m (input [7:0] a, output reg [7:0] y);
                 reg [7:0] t;
                 always @(*) begin
                     t = a + 8'd1;
                     y = t * 8'd2;
                 end
             endmodule",
            "m",
        )
        .unwrap();
        // `y` must read the freshly-computed t (mul fed by add).
        let driver = nl.driver_map();
        let mul = nl.cells().find(|c| c.kind == CellKind::Mul).unwrap();
        let feeds_mul = mul.inputs.iter().any(|&n| {
            let mut n = n;
            // Walk through wiring cells back to the add.
            for _ in 0..8 {
                match driver.get(&n).map(|&cid| nl.cell(cid)) {
                    Some(c) if c.kind == CellKind::Add => return true,
                    Some(c) if c.kind.is_wiring() && !c.inputs.is_empty() => n = c.inputs[0],
                    _ => return false,
                }
            }
            false
        });
        assert!(feeds_mul, "mul should consume the blocking-assigned add result");
    }

    #[test]
    fn ternary_produces_mux() {
        let nl = parse_and_elaborate(
            "module m (input s, input [3:0] a, b, output [3:0] y);
                 assign y = s ? a : b;
             endmodule",
            "m",
        )
        .unwrap();
        assert_eq!(count(&nl, CellKind::Mux), 1);
    }

    #[test]
    fn replication_and_variable_bitselect() {
        let nl = parse_and_elaborate(
            "module m (input [7:0] a, input [2:0] i, output [15:0] y, output b);
                 assign y = {2{a}};
                 assign b = a[i];
             endmodule",
            "m",
        )
        .unwrap();
        assert_eq!(count(&nl, CellKind::Replicate), 1);
        assert_eq!(count(&nl, CellKind::Shr), 1);
        nl.validate().unwrap();
    }

    // ---- regression tests for the former panic sites ----
    //
    // Each converted site gets (a) a minimal source exercising the code
    // path it guards, proving the conversion kept the functional behavior,
    // and (b) where the path is input-reachable, an adversarial variant
    // asserting a structured error instead of a panic/abort.

    #[test]
    fn site_binop_lowering_stays_total_for_every_arithmetic_operator() {
        // elaborate.rs formerly hit `unreachable!()` if the operator list
        // in the match drifted from the enclosing arm.
        for op in ["+", "-", "*", "/", "%", "&", "|", "^", "~^"] {
            let nl = parse_and_elaborate(
                &format!(
                    "module m (input [7:0] a, b, output [7:0] y); assign y = a {op} b; endmodule"
                ),
                "m",
            )
            .unwrap_or_else(|e| panic!("operator {op}: {e}"));
            nl.validate().unwrap();
        }
    }

    #[test]
    fn site_mem_read_lookup_is_total() {
        // Former `expect("checked by caller")` in elab_mem_read.
        let nl = parse_and_elaborate(
            "module m (input clk, input [1:0] ra, wa, input [7:0] wd, output [7:0] rd);
                 reg [7:0] mem [0:3];
                 always @(posedge clk) mem[wa] <= wd;
                 assign rd = mem[ra];
             endmodule",
            "m",
        )
        .unwrap();
        assert_eq!(count(&nl, CellKind::Dff), 4);
    }

    #[test]
    fn site_finish_partials_rejects_out_of_range_selects() {
        // Former `expect("validated at record time")` in finish_partials;
        // record_partial now also bounds-checks, so a negative or
        // oversized select errors instead of wrapping to a huge u32.
        parse_and_elaborate(
            "module m (input [3:0] a, b, output [7:0] y);
                 assign y[3:0] = a;
                 assign y[7:4] = b;
             endmodule",
            "m",
        )
        .unwrap();
        for bad in ["y[8:1] = a", "y[-1] = a", "y[-4:-8] = a"] {
            let err = parse_and_elaborate(
                &format!("module m (input [3:0] a, output [7:0] y); assign {bad}; endmodule"),
                "m",
            )
            .unwrap_err();
            assert!(matches!(err, NetlistError::Elab { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn site_case_arm_label_accumulation_is_total() {
        // Former `expect("case arm has at least one label")`.
        let nl = parse_and_elaborate(
            "module m (input [1:0] s, output reg y);
                 always @(*) case (s)
                     2'd0, 2'd1: y = 1'b1;
                     default: y = 1'b0;
                 endcase
             endmodule",
            "m",
        )
        .unwrap();
        assert!(count(&nl, CellKind::Eq) >= 2);
    }

    #[test]
    fn site_memory_write_outside_clocked_block_errors() {
        // Former `expect("guarded")` on the write push; the surrounding
        // path also rejects combinational memory writes.
        let err = parse_and_elaborate(
            "module m (input [1:0] wa, input [7:0] wd, output y);
                 reg [7:0] mem [0:3];
                 always @(*) mem[wa] = wd;
                 assign y = mem[0][0];
             endmodule",
            "m",
        )
        .unwrap_err();
        assert!(err.to_string().contains("clocked"), "{err}");
    }

    #[test]
    fn site_procedural_selects_validate_bounds() {
        // Former `unreachable!()` in the procedural select arm; the
        // rewritten path keeps bounds in i64 until validated.
        parse_and_elaborate(
            "module m (input clk, input [3:0] d, output reg [7:0] q);
                 always @(posedge clk) begin
                     q[3:0] <= d;
                     q[7] <= d[0];
                 end
             endmodule",
            "m",
        )
        .unwrap();
        for bad in ["q[100] <= d[0]", "q[-1] <= d[0]", "q[9:2] <= d"] {
            let err = parse_and_elaborate(
                &format!(
                    "module m (input clk, input [3:0] d, output reg [7:0] q);
                         always @(posedge clk) {bad};
                     endmodule"
                ),
                "m",
            )
            .unwrap_err();
            assert!(matches!(err, NetlistError::Elab { .. }), "{bad}: {err}");
        }
    }

    // ---- resource budgets ----

    #[test]
    fn huge_replication_is_rejected_before_allocation() {
        let err = parse_and_elaborate(
            "module m (input x, output [7:0] y); assign y = {100000000{x}}; endmodule",
            "m",
        )
        .unwrap_err();
        assert!(err.is_budget(), "{err}");
        // Nested replication whose product (not count) exceeds the budget.
        let err = parse_and_elaborate(
            "module m (input x, output [7:0] y); assign y = {60000{{60000{x}}}}; endmodule",
            "m",
        )
        .unwrap_err();
        assert!(err.is_budget(), "{err}");
    }

    #[test]
    fn huge_net_and_memory_widths_are_rejected() {
        let err = parse_and_elaborate(
            "module m (input a, output y); wire [100000000:0] w; assign y = a; endmodule",
            "m",
        )
        .unwrap_err();
        assert!(err.is_budget(), "{err}");
        let err = parse_and_elaborate(
            "module m (input a, output y);
                 parameter P = 1 << 62;
                 wire [P:0] w;
                 assign y = a;
             endmodule",
            "m",
        )
        .unwrap_err();
        assert!(err.is_budget(), "{err}");
        let err = parse_and_elaborate(
            "module m (input a, output y); reg [7:0] mem [0:10000000]; assign y = a; endmodule",
            "m",
        )
        .unwrap_err();
        assert!(err.is_budget(), "{err}");
    }

    #[test]
    fn constant_overflow_is_an_error_not_a_panic() {
        for (expr, what) in [
            ("9223372036854775807 + 1", "overflow"),
            ("9223372036854775807 * 2", "overflow"),
            ("1 << 70", "shift"),
            ("1 >> 100", "shift"),
            ("-9223372036854775807 - 2", "overflow"),
        ] {
            let err = parse_and_elaborate(
                &format!("module m (input a, output y); parameter P = {expr}; wire [P:0] w; assign y = a; endmodule"),
                "m",
            )
            .unwrap_err();
            assert!(matches!(err, NetlistError::Elab { .. }), "{what}: {err}");
        }
    }

    #[test]
    fn cell_budget_stops_hierarchy_amplification_during_emission() {
        // Each level instantiates the next twice: exponential blowup that
        // must be stopped as cells are emitted, not after.
        let levels = 40;
        let mut src = String::from("module m0 (input a, output y); assign y = ~a; endmodule\n");
        for i in 1..=levels {
            src.push_str(&format!(
                "module m{i} (input a, output y);
                     wire y1, y2;
                     m{} u1 (.a(a), .y(y1));
                     m{} u2 (.a(a), .y(y2));
                     assign y = y1 ^ y2;
                 endmodule\n",
                i - 1,
                i - 1
            ));
        }
        let design = parse_source(&src).unwrap();
        let limits = ElabLimits { max_cells: 10_000, ..ElabLimits::default() };
        let err = elaborate_with_limits(&design, &format!("m{levels}"), limits).unwrap_err();
        assert!(err.is_budget(), "{err}");
    }

    #[test]
    fn limits_default_and_from_env_fallbacks() {
        // The budget env vars are unset under `cargo test`, so from_env
        // returns the documented defaults.
        assert_eq!(ElabLimits::from_env(), ElabLimits::default());
        assert_eq!(ElabLimits::default().max_cells, ElabLimits::DEFAULT_MAX_CELLS);
        // Within budget, designs elaborate unchanged under explicit limits.
        let d = parse_source(
            "module m (input [3:0] a, b, output [3:0] y); assign y = a + b; endmodule",
        )
        .unwrap();
        let nl = elaborate_with_limits(&d, "m", ElabLimits::default()).unwrap();
        assert_eq!(count(&nl, CellKind::Add), 1);
    }

    #[test]
    fn netlist_has_no_combinational_multiple_drivers() {
        // A design mixing all constructs should still validate.
        let src = "
            module alu (input [7:0] a, b, input [1:0] op, output reg [7:0] y);
                always @(*) begin
                    case (op)
                        2'd0: y = a + b;
                        2'd1: y = a - b;
                        2'd2: y = a & b;
                        default: y = a ^ b;
                    endcase
                end
            endmodule
            module top (input clk, input [7:0] x, input [1:0] op, output [7:0] r);
                wire [7:0] t;
                reg [7:0] h;
                alu u (.a(x), .b(h), .op(op), .y(t));
                always @(posedge clk) h <= t;
                assign r = h;
            endmodule";
        let nl = parse_and_elaborate(src, "top").unwrap();
        nl.validate().unwrap();
        assert_eq!(count(&nl, CellKind::Dff), 1);
        assert!(kinds(&nl).contains(&CellKind::Sub));
    }
}
