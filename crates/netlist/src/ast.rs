//! Abstract syntax tree for the supported Verilog subset.
//!
//! The AST is deliberately close to the source: widths are unevaluated
//! constant expressions (so `parameter`-dependent ranges survive until
//! elaboration), and statements keep their nesting structure.

/// A parsed source file: an ordered collection of module definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// The modules, in definition order.
    pub modules: Vec<Module>,
}

impl Design {
    /// Finds a module definition by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// One `module ... endmodule` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// The module's name.
    pub name: String,
    /// ANSI-style port declarations, in order.
    pub ports: Vec<PortDecl>,
    /// `parameter`/`localparam` declarations, in order.
    pub params: Vec<ParamDecl>,
    /// Body items, in order.
    pub items: Vec<Item>,
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// An ANSI port declaration, e.g. `input wire [7:0] a`.
#[derive(Debug, Clone, PartialEq)]
pub struct PortDecl {
    /// Port direction.
    pub dir: Dir,
    /// Port name.
    pub name: String,
    /// Packed range, if any (msb downto lsb). `None` means 1 bit.
    pub range: Option<Range>,
    /// Whether the port was declared `reg` (affects elaboration of
    /// procedural assignments to it).
    pub is_reg: bool,
}

/// A `parameter NAME = expr` (or `localparam`) declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Default value expression (constant).
    pub default: Expr,
    /// `localparam` cannot be overridden at instantiation.
    pub local: bool,
}

/// A packed range `[msb:lsb]`, both bounds constant expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    /// Most-significant bit index expression.
    pub msb: Expr,
    /// Least-significant bit index expression.
    pub lsb: Expr,
}

/// A body item inside a module.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `wire`/`reg` declaration, possibly a memory (`reg [7:0] m [0:255]`),
    /// possibly with an initializer expression (`wire [3:0] x = a + b`).
    Decl(Decl),
    /// `assign lhs = rhs;`
    Assign {
        /// Left-hand side (identifier, bit/part select, or concatenation).
        lhs: LValue,
        /// Right-hand side expression.
        rhs: Expr,
    },
    /// An `always` block.
    Always(Always),
    /// A module instantiation.
    Instance(Instance),
}

/// A net/variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// `reg` (true) or `wire` (false).
    pub is_reg: bool,
    /// Packed range, `None` for 1 bit.
    pub range: Option<Range>,
    /// Declared names with optional unpacked (memory) dimension and
    /// optional initializer.
    pub names: Vec<DeclName>,
}

/// One name inside a declaration item.
#[derive(Debug, Clone, PartialEq)]
pub struct DeclName {
    /// The declared identifier.
    pub name: String,
    /// Unpacked dimension for memories: `[lo:hi]` → entry index range.
    pub mem_range: Option<Range>,
    /// `wire x = expr;` initializer (sugar for a continuous assign).
    pub init: Option<Expr>,
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Always {
    /// Sensitivity: `Some(clock_name)` for `@(posedge clk ...)`, `None`
    /// for combinational `@(*)`.
    pub clock: Option<String>,
    /// The statement body.
    pub body: Stmt,
}

/// A module instantiation, e.g. `adder #(.W(8)) u0 (.a(x), .y(z));`.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Name of the instantiated module definition.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// Parameter overrides, `(param_name, value_expr)`.
    pub params: Vec<(String, Expr)>,
    /// Port connections. Named form keeps the port name; positional
    /// connections are stored with the 0-based position.
    pub conns: Vec<Connection>,
}

/// A port connection on an instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Connection {
    /// `.port(expr)`; `expr` is `None` for an unconnected `.port()`.
    Named(String, Option<Expr>),
    /// Positional connection (index, expr).
    Positional(usize, Expr),
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin ... end`
    Block(Vec<Stmt>),
    /// Blocking (`=`) or nonblocking (`<=`) assignment.
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Value expression.
        rhs: Expr,
        /// True for `<=`.
        nonblocking: bool,
    },
    /// `if (cond) then_s [else else_s]`
    If {
        /// Condition expression.
        cond: Expr,
        /// Taken branch.
        then_s: Box<Stmt>,
        /// Else branch, if present.
        else_s: Option<Box<Stmt>>,
    },
    /// `case (subject) ... endcase`
    Case {
        /// The expression being matched.
        subject: Expr,
        /// `(match values, body)` arms; an arm may have several labels.
        arms: Vec<(Vec<Expr>, Stmt)>,
        /// `default:` body, if present.
        default: Option<Box<Stmt>>,
    },
    /// Empty statement (`;`).
    Empty,
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A whole identifier.
    Ident(String),
    /// Single-bit select `x[i]` (index may be non-constant for memories).
    BitSelect(String, Expr),
    /// Constant part select `x[msb:lsb]`.
    PartSelect(String, Expr, Expr),
    /// Concatenation of lvalues `{a, b[3:0]}`.
    Concat(Vec<LValue>),
}

/// Binary operators, in source form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~^` / `^~`
    Xnor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    AShr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `~`
    Not,
    /// `-`
    Neg,
    /// `!`
    LNot,
    /// `&`
    RedAnd,
    /// `|`
    RedOr,
    /// `^`
    RedXor,
    /// `~&`
    RedNand,
    /// `~|`
    RedNor,
    /// `~^`
    RedXnor,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Identifier reference.
    Ident(String),
    /// Integer literal with optional explicit width.
    Number {
        /// The value.
        value: u64,
        /// Explicit width, if sized.
        width: Option<u32>,
    },
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Ternary `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Bit select `x[i]` (also memory read when `x` is a memory).
    BitSelect(Box<Expr>, Box<Expr>),
    /// Part select `x[msb:lsb]` with constant bounds.
    PartSelect(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Concatenation `{a, b, c}`.
    Concat(Vec<Expr>),
    /// Replication `{n{expr}}`.
    Replicate(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for an unsized number literal.
    pub fn num(value: u64) -> Self {
        Expr::Number { value, width: None }
    }

    /// Convenience constructor for an identifier reference.
    pub fn ident(name: impl Into<String>) -> Self {
        Expr::Ident(name.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_module_lookup() {
        let d = Design {
            modules: vec![Module {
                name: "m".into(),
                ports: vec![],
                params: vec![],
                items: vec![],
            }],
        };
        assert!(d.module("m").is_some());
        assert!(d.module("nope").is_none());
    }

    #[test]
    fn expr_constructors() {
        assert_eq!(Expr::num(3), Expr::Number { value: 3, width: None });
        assert_eq!(Expr::ident("a"), Expr::Ident("a".into()));
    }
}
