//! Lexer for the supported Verilog subset.
//!
//! Produces a flat token stream with source locations. Comments (`//` and
//! `/* */`) and whitespace are skipped. Number literals support plain decimal
//! (`42`) and sized/based forms (`8'hFF`, `4'b1010`, `16'd100`, `6'o17`).

use crate::error::{Loc, NetlistError};

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`module`, `clk`, ...). Keywords are
    /// distinguished by the parser.
    Ident(String),
    /// An integer literal with an optional explicit width.
    ///
    /// `8'hFF` lexes as `Number { value: 255, width: Some(8) }`; a plain
    /// `42` has `width: None` (context determines its width).
    Number {
        /// The literal's value (64-bit; widths above 64 are rejected).
        value: u64,
        /// Explicit bit width, if the literal was sized.
        width: Option<u32>,
    },
    /// Punctuation or operator, stored as the exact source text
    /// (e.g. `"<<"`, `"=="`, `"("`).
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A token together with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts in the source.
    pub loc: Loc,
}

/// All multi-character punctuation, longest first so maximal-munch works.
const PUNCTS: &[&str] = &[
    ">>>", "<<<", "===", "!==", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "~&", "~|", "~^",
    "^~", "+:", "-:", "(", ")", "[", "]", "{", "}", ";", ",", ".", ":", "#", "@", "?", "=", "+",
    "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
];

/// A streaming lexer over Verilog source text.
///
/// # Example
///
/// ```rust
/// use sns_netlist::{Lexer, TokenKind};
///
/// # fn main() -> Result<(), sns_netlist::NetlistError> {
/// let tokens = Lexer::new("assign y = a + 8'hFF;").lex_all()?;
/// assert_eq!(tokens[0].kind, TokenKind::Ident("assign".into()));
/// assert_eq!(tokens[5].kind, TokenKind::Number { value: 255, width: Some(8) });
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer { src: source.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    /// Lexes the entire input into a token vector terminated by
    /// [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Lex`] on unexpected characters or malformed
    /// literals.
    pub fn lex_all(mut self) -> Result<Vec<Token>, NetlistError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn loc(&self) -> Loc {
        Loc { line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), NetlistError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.loc();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(NetlistError::lex(start, "unterminated block comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, NetlistError> {
        self.skip_trivia()?;
        let loc = self.loc();
        let Some(c) = self.peek() else {
            return Ok(Token { kind: TokenKind::Eof, loc });
        };

        if c.is_ascii_alphabetic() || c == b'_' || c == b'\\' {
            return Ok(Token { kind: self.lex_ident(), loc });
        }
        if c.is_ascii_digit() || c == b'\'' {
            return Ok(Token { kind: self.lex_number(loc)?, loc });
        }
        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                for _ in 0..p.len() {
                    self.bump();
                }
                return Ok(Token { kind: TokenKind::Punct(p), loc });
            }
        }
        Err(NetlistError::lex(loc, format!("unexpected character `{}`", c as char)))
    }

    fn lex_ident(&mut self) -> TokenKind {
        let escaped = self.peek() == Some(b'\\');
        if escaped {
            self.bump();
            // Escaped identifiers run until whitespace.
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_whitespace() {
                    break;
                }
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("").to_string();
            return TokenKind::Ident(text);
        }
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'$' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("").to_string();
        TokenKind::Ident(text)
    }

    fn lex_digits(&mut self, radix: u32, loc: Loc) -> Result<u64, NetlistError> {
        let mut value: u64 = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            if c == b'_' {
                self.bump();
                continue;
            }
            let d = (c as char).to_digit(radix);
            match d {
                Some(d) => {
                    any = true;
                    value = value
                        .checked_mul(radix as u64)
                        .and_then(|v| v.checked_add(d as u64))
                        .ok_or_else(|| NetlistError::lex(loc, "integer literal overflows 64 bits"))?;
                    self.bump();
                }
                None => break,
            }
        }
        if !any {
            return Err(NetlistError::lex(loc, "expected digits in literal"));
        }
        Ok(value)
    }

    fn lex_number(&mut self, loc: Loc) -> Result<TokenKind, NetlistError> {
        // Optional leading decimal size (e.g. the `8` in `8'hFF`).
        let mut width: Option<u32> = None;
        if self.peek() != Some(b'\'') {
            let v = self.lex_digits(10, loc)?;
            if self.peek() != Some(b'\'') {
                return Ok(TokenKind::Number { value: v, width: None });
            }
            if v == 0 || v > 64 {
                return Err(NetlistError::lex(loc, format!("unsupported literal width {v}")));
            }
            width = Some(v as u32);
        }
        // Based literal.
        self.bump(); // consume '
        let base = self.bump().ok_or_else(|| NetlistError::lex(loc, "truncated based literal"))?;
        let radix = match base.to_ascii_lowercase() {
            b'h' => 16,
            b'd' => 10,
            b'o' => 8,
            b'b' => 2,
            other => {
                return Err(NetlistError::lex(
                    loc,
                    format!("unknown base `{}` in literal", other as char),
                ));
            }
        };
        let value = self.lex_digits(radix, loc)?;
        if let Some(w) = width {
            if w < 64 && value >= (1u64 << w) {
                return Err(NetlistError::lex(
                    loc,
                    format!("literal value {value} does not fit in {w} bits"),
                ));
            }
        }
        Ok(TokenKind::Number { value, width })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).lex_all().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_identifiers_and_punct() {
        let k = kinds("module m (input a);");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("module".into()),
                TokenKind::Ident("m".into()),
                TokenKind::Punct("("),
                TokenKind::Ident("input".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Punct(")"),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_based_numbers() {
        assert_eq!(kinds("8'hFF")[0], TokenKind::Number { value: 255, width: Some(8) });
        assert_eq!(kinds("4'b1010")[0], TokenKind::Number { value: 10, width: Some(4) });
        assert_eq!(kinds("16'd1000")[0], TokenKind::Number { value: 1000, width: Some(16) });
        assert_eq!(kinds("6'o17")[0], TokenKind::Number { value: 15, width: Some(6) });
        assert_eq!(kinds("'h20")[0], TokenKind::Number { value: 32, width: None });
        assert_eq!(kinds("12_000")[0], TokenKind::Number { value: 12000, width: None });
    }

    #[test]
    fn rejects_overflowing_sized_literal() {
        let err = Lexer::new("4'hFF").lex_all().unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn maximal_munch_operators() {
        let k = kinds("a <= b >>> 2 != c");
        assert_eq!(k[1], TokenKind::Punct("<="));
        assert_eq!(k[3], TokenKind::Punct(">>>"));
        assert_eq!(k[5], TokenKind::Punct("!="));
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = Lexer::new("// line\n/* block\n */ x").lex_all().unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[0].loc.line, 3);
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(Lexer::new("/* oops").lex_all().is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Lexer::new("a ` b").lex_all().is_err());
    }
}
