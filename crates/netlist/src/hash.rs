//! Structural content hashing for module definitions.
//!
//! The incremental elaboration cache (see [`crate::incremental`]) keys
//! module bodies by *content*, not by source text: hashing walks the
//! parsed AST, so two sources that differ only in whitespace, comments,
//! or token spelling that the lexer normalizes away produce the same
//! hash. Anything that changes elaboration — port lists, parameter
//! defaults, body items, expression structure — changes the hash.
//!
//! Two hashes are computed per module:
//!
//! * the **own** hash covers exactly one module definition;
//! * the **transitive** hash additionally folds in the transitive hashes
//!   of every module the body instantiates, so editing a leaf module
//!   changes the transitive hash of every ancestor. Key equality on the
//!   transitive hash therefore gives "this whole subtree is unchanged"
//!   for free, which is what lets cached elaborations be reused safely.
//!
//! Hashes are 128 bits (two FNV-1a streams with distinct offset bases):
//! wide enough that accidental collisions across a realistic design
//! corpus are not a practical concern (the conformance suite checks a
//! catalog + 1000 generated designs for collisions).
//!
//! Recursion over expressions is safe: the parser caps AST nesting at
//! [`crate::parser::MAX_DEPTH`], so hashing depth is bounded too.

use std::collections::HashMap;

use crate::ast::{
    Always, Connection, Decl, Design, Dir, Expr, Item, LValue, Module, Range, Stmt,
};

/// The content hashes of one module definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModHash {
    /// Hash of this module definition alone.
    pub own: [u64; 2],
    /// Hash of this module plus every transitively instantiated module.
    pub trans: [u64; 2],
}

/// A 128-bit FNV-1a accumulator (two independent 64-bit streams).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv128 {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv128 {
    pub(crate) fn new() -> Self {
        // Stream A uses the standard FNV-1a offset basis; stream B a
        // distinct constant so the two streams decorrelate.
        Fnv128 { a: 0xcbf2_9ce4_8422_2325, b: 0x6c62_272e_07bb_0142 }
    }

    pub(crate) fn byte(&mut self, x: u8) {
        self.a = (self.a ^ x as u64).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ x as u64).wrapping_mul(FNV_PRIME.wrapping_add(2));
    }

    pub(crate) fn u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.byte(byte);
        }
    }

    pub(crate) fn i64(&mut self, x: i64) {
        self.u64(x as u64);
    }

    pub(crate) fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }

    pub(crate) fn str(&mut self, s: &str) {
        // Length prefix keeps ("ab","c") distinct from ("a","bc").
        self.usize(s.len());
        for byte in s.as_bytes() {
            self.byte(*byte);
        }
    }

    pub(crate) fn tag(&mut self, t: u8) {
        self.byte(t);
    }

    pub(crate) fn finish(self) -> [u64; 2] {
        [self.a, self.b]
    }
}

/// FNV-128 over raw bytes: the same double-stream accumulator the module
/// content hashes use, exposed for callers that key on opaque byte
/// content rather than an AST — e.g. the `sns-serve` consistent-hash
/// replica router, which keys requests on design/base-token content so
/// identical designs always land on the same replica's caches.
pub fn fnv128_bytes(bytes: &[u8]) -> [u64; 2] {
    let mut h = Fnv128::new();
    for &b in bytes {
        h.byte(b);
    }
    h.finish()
}

/// FNV-1a over a name, used by the sampler for order keys too.
pub fn fnv64_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.as_bytes() {
        h = (h ^ *byte as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes one module definition (its own content only).
pub fn module_hash(m: &Module) -> [u64; 2] {
    let mut h = Fnv128::new();
    hash_module(&mut h, m);
    h.finish()
}

/// Computes own + transitive hashes for every module in a design.
///
/// A module that instantiates an undefined module, or participates in an
/// instantiation cycle, still gets a well-defined transitive hash (a
/// marker is mixed in); elaboration reports the real error later.
pub fn design_hashes(design: &Design) -> HashMap<String, ModHash> {
    let own: HashMap<&str, [u64; 2]> =
        design.modules.iter().map(|m| (m.name.as_str(), module_hash(m))).collect();
    // Direct instantiation edges, per module, sorted + deduped so the
    // transitive hash depends on the set of children, not on body order
    // (body order is already covered by the own hash).
    let mut children: HashMap<&str, Vec<&str>> = HashMap::new();
    for m in &design.modules {
        let mut c: Vec<&str> = m
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Instance(inst) => Some(inst.module.as_str()),
                _ => None,
            })
            .collect();
        c.sort_unstable();
        c.dedup();
        children.insert(m.name.as_str(), c);
    }

    // Iterative DFS with a visiting set: cycles and missing definitions
    // mix a marker instead of recursing forever.
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Visiting,
        Done,
    }
    let mut trans: HashMap<&str, [u64; 2]> = HashMap::new();
    let mut state: HashMap<&str, State> = HashMap::new();
    for root in design.modules.iter().map(|m| m.name.as_str()) {
        if state.get(root) == Some(&State::Done) {
            continue;
        }
        // (module, next child index) explicit stack.
        let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
        state.insert(root, State::Visiting);
        while let Some(&mut (name, ref mut idx)) = stack.last_mut() {
            let kids = children.get(name).map(Vec::as_slice).unwrap_or(&[]);
            if *idx < kids.len() {
                let kid = kids[*idx];
                *idx += 1;
                match state.get(kid) {
                    Some(State::Done) | Some(State::Visiting) => {}
                    None if own.contains_key(kid) => {
                        state.insert(kid, State::Visiting);
                        stack.push((kid, 0));
                    }
                    None => {}
                }
            } else {
                let mut h = Fnv128::new();
                h.tag(0xA0);
                match own.get(name) {
                    Some(o) => {
                        h.u64(o[0]);
                        h.u64(o[1]);
                    }
                    None => h.tag(0xFF),
                }
                for kid in kids {
                    h.str(kid);
                    match (state.get(kid), trans.get(kid)) {
                        (_, Some(t)) => {
                            h.u64(t[0]);
                            h.u64(t[1]);
                        }
                        (Some(State::Visiting), None) => h.tag(0xC1), // cycle marker
                        _ => h.tag(0xFE), // missing definition marker
                    }
                }
                trans.insert(name, h.finish());
                state.insert(name, State::Done);
                stack.pop();
            }
        }
    }

    design
        .modules
        .iter()
        .map(|m| {
            let name = m.name.as_str();
            let t = trans.get(name).copied().unwrap_or([0, 0]);
            (m.name.clone(), ModHash { own: own.get(name).copied().unwrap_or([0, 0]), trans: t })
        })
        .collect()
}

fn hash_module(h: &mut Fnv128, m: &Module) {
    h.tag(1);
    h.str(&m.name);
    h.usize(m.ports.len());
    for p in &m.ports {
        h.tag(match p.dir {
            Dir::Input => 2,
            Dir::Output => 3,
        });
        h.str(&p.name);
        hash_opt_range(h, &p.range);
        h.tag(p.is_reg as u8);
    }
    h.usize(m.params.len());
    for p in &m.params {
        h.tag(4);
        h.str(&p.name);
        hash_expr(h, &p.default);
        h.tag(p.local as u8);
    }
    h.usize(m.items.len());
    for item in &m.items {
        hash_item(h, item);
    }
}

fn hash_opt_range(h: &mut Fnv128, r: &Option<Range>) {
    match r {
        None => h.tag(5),
        Some(r) => {
            h.tag(6);
            hash_expr(h, &r.msb);
            hash_expr(h, &r.lsb);
        }
    }
}

fn hash_item(h: &mut Fnv128, item: &Item) {
    match item {
        Item::Decl(d) => {
            h.tag(10);
            hash_decl(h, d);
        }
        Item::Assign { lhs, rhs } => {
            h.tag(11);
            hash_lvalue(h, lhs);
            hash_expr(h, rhs);
        }
        Item::Always(a) => {
            h.tag(12);
            hash_always(h, a);
        }
        Item::Instance(inst) => {
            h.tag(13);
            h.str(&inst.module);
            h.str(&inst.name);
            h.usize(inst.params.len());
            for (name, e) in &inst.params {
                h.str(name);
                hash_expr(h, e);
            }
            h.usize(inst.conns.len());
            for conn in &inst.conns {
                match conn {
                    Connection::Named(port, e) => {
                        h.tag(14);
                        h.str(port);
                        match e {
                            None => h.tag(15),
                            Some(e) => {
                                h.tag(16);
                                hash_expr(h, e);
                            }
                        }
                    }
                    Connection::Positional(i, e) => {
                        h.tag(17);
                        h.usize(*i);
                        hash_expr(h, e);
                    }
                }
            }
        }
    }
}

fn hash_decl(h: &mut Fnv128, d: &Decl) {
    h.tag(d.is_reg as u8);
    hash_opt_range(h, &d.range);
    h.usize(d.names.len());
    for n in &d.names {
        h.str(&n.name);
        hash_opt_range(h, &n.mem_range);
        match &n.init {
            None => h.tag(18),
            Some(e) => {
                h.tag(19);
                hash_expr(h, e);
            }
        }
    }
}

fn hash_always(h: &mut Fnv128, a: &Always) {
    match &a.clock {
        None => h.tag(20),
        Some(c) => {
            h.tag(21);
            h.str(c);
        }
    }
    hash_stmt(h, &a.body);
}

fn hash_stmt(h: &mut Fnv128, s: &Stmt) {
    match s {
        Stmt::Block(stmts) => {
            h.tag(30);
            h.usize(stmts.len());
            for s in stmts {
                hash_stmt(h, s);
            }
        }
        Stmt::Assign { lhs, rhs, nonblocking } => {
            h.tag(31);
            hash_lvalue(h, lhs);
            hash_expr(h, rhs);
            h.tag(*nonblocking as u8);
        }
        Stmt::If { cond, then_s, else_s } => {
            h.tag(32);
            hash_expr(h, cond);
            hash_stmt(h, then_s);
            match else_s {
                None => h.tag(33),
                Some(e) => {
                    h.tag(34);
                    hash_stmt(h, e);
                }
            }
        }
        Stmt::Case { subject, arms, default } => {
            h.tag(35);
            hash_expr(h, subject);
            h.usize(arms.len());
            for (labels, body) in arms {
                h.usize(labels.len());
                for l in labels {
                    hash_expr(h, l);
                }
                hash_stmt(h, body);
            }
            match default {
                None => h.tag(36),
                Some(d) => {
                    h.tag(37);
                    hash_stmt(h, d);
                }
            }
        }
        Stmt::Empty => h.tag(38),
    }
}

fn hash_lvalue(h: &mut Fnv128, lv: &LValue) {
    match lv {
        LValue::Ident(n) => {
            h.tag(40);
            h.str(n);
        }
        LValue::BitSelect(n, i) => {
            h.tag(41);
            h.str(n);
            hash_expr(h, i);
        }
        LValue::PartSelect(n, m, l) => {
            h.tag(42);
            h.str(n);
            hash_expr(h, m);
            hash_expr(h, l);
        }
        LValue::Concat(parts) => {
            h.tag(43);
            h.usize(parts.len());
            for p in parts {
                hash_lvalue(h, p);
            }
        }
    }
}

fn hash_expr(h: &mut Fnv128, e: &Expr) {
    match e {
        Expr::Ident(n) => {
            h.tag(50);
            h.str(n);
        }
        Expr::Number { value, width } => {
            h.tag(51);
            h.u64(*value);
            match width {
                None => h.tag(52),
                Some(w) => {
                    h.tag(53);
                    h.u64(*w as u64);
                }
            }
        }
        Expr::Unary(op, a) => {
            h.tag(54);
            h.tag(*op as u8);
            hash_expr(h, a);
        }
        Expr::Binary(op, a, b) => {
            h.tag(55);
            h.tag(*op as u8);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::Ternary(c, a, b) => {
            h.tag(56);
            hash_expr(h, c);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::BitSelect(base, i) => {
            h.tag(57);
            hash_expr(h, base);
            hash_expr(h, i);
        }
        Expr::PartSelect(base, m, l) => {
            h.tag(58);
            hash_expr(h, base);
            hash_expr(h, m);
            hash_expr(h, l);
        }
        Expr::Concat(parts) => {
            h.tag(59);
            h.usize(parts.len());
            for p in parts {
                hash_expr(h, p);
            }
        }
        Expr::Replicate(n, inner) => {
            h.tag(60);
            hash_expr(h, n);
            hash_expr(h, inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn hashes_of(src: &str) -> HashMap<String, ModHash> {
        design_hashes(&parse_source(src).unwrap())
    }

    #[test]
    fn whitespace_and_comments_do_not_change_the_hash() {
        let a = hashes_of(
            "module m (input [3:0] a, output [3:0] y);\n    assign y = a + 4'd1;\nendmodule",
        );
        let b = hashes_of(
            "// a comment\nmodule   m(input [3:0] a,\n\n output [3:0] y); /* block\ncomment */ assign y=a+4'd1; endmodule",
        );
        assert_eq!(a.get("m"), b.get("m"));
    }

    #[test]
    fn body_changes_change_the_hash() {
        let a = hashes_of("module m (input [3:0] a, output [3:0] y); assign y = a + 4'd1; endmodule");
        let b = hashes_of("module m (input [3:0] a, output [3:0] y); assign y = a + 4'd2; endmodule");
        assert_ne!(a.get("m").unwrap().own, b.get("m").unwrap().own);
    }

    #[test]
    fn leaf_edit_invalidates_every_ancestor_transitively() {
        let base = "module mid (input [3:0] a, output [3:0] y); leaf u (.a(a), .y(y)); endmodule
                    module top (input [3:0] a, output [3:0] y); mid m (.a(a), .y(y)); endmodule";
        let a = hashes_of(&format!(
            "module leaf (input [3:0] a, output [3:0] y); assign y = a; endmodule {base}"
        ));
        let b = hashes_of(&format!(
            "module leaf (input [3:0] a, output [3:0] y); assign y = ~a; endmodule {base}"
        ));
        // Own hashes of the untouched ancestors agree; transitive hashes
        // all differ because the leaf changed.
        assert_eq!(a.get("mid").unwrap().own, b.get("mid").unwrap().own);
        assert_eq!(a.get("top").unwrap().own, b.get("top").unwrap().own);
        assert_ne!(a.get("leaf").unwrap().trans, b.get("leaf").unwrap().trans);
        assert_ne!(a.get("mid").unwrap().trans, b.get("mid").unwrap().trans);
        assert_ne!(a.get("top").unwrap().trans, b.get("top").unwrap().trans);
    }

    #[test]
    fn instantiation_cycles_and_missing_children_terminate() {
        // `a` instantiates `b` instantiates `a`; `c` instantiates nothing
        // that exists. Hashing must terminate with distinct stable values.
        let h = hashes_of(
            "module a (input x, output y); b u (.x(x), .y(y)); endmodule
             module b (input x, output y); a u (.x(x), .y(y)); endmodule
             module c (input x, output y); ghost u (.x(x), .y(y)); endmodule",
        );
        assert_eq!(h.len(), 3);
        let vals: std::collections::HashSet<[u64; 2]> =
            h.values().map(|m| m.trans).collect();
        assert_eq!(vals.len(), 3, "distinct modules hash distinctly: {h:?}");
    }

    #[test]
    fn shared_submodules_hash_identically_across_designs() {
        let a = hashes_of(
            "module leaf (input x, output y); assign y = x; endmodule
             module top1 (input x, output y); leaf u (.x(x), .y(y)); endmodule",
        );
        let b = hashes_of(
            "module leaf (input x, output y); assign y = x; endmodule
             module top2 (input x, output y); leaf u (.x(x), .y(y)); leaf v (.x(y)); endmodule",
        );
        assert_eq!(a.get("leaf"), b.get("leaf"));
    }
}
