//! Error types for the Verilog front-end.

use std::fmt;

/// A source location (1-based line and column) attached to diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The error type returned by every fallible operation in this crate.
///
/// # Example
///
/// ```rust
/// use sns_netlist::parse_and_elaborate;
///
/// let err = parse_and_elaborate("module m (input a;", "m").unwrap_err();
/// assert!(err.to_string().contains("parse error"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A lexical error: an unexpected character or malformed literal.
    Lex {
        /// Location of the offending character.
        loc: Loc,
        /// Description of the problem.
        msg: String,
    },
    /// A syntactic error while parsing.
    Parse {
        /// Location of the offending token.
        loc: Loc,
        /// Description of the problem.
        msg: String,
    },
    /// A semantic error during elaboration (unknown names, bad widths,
    /// multiple drivers, unsupported constructs, ...).
    Elab {
        /// Human-readable description, including the module it occurred in.
        msg: String,
    },
    /// The requested top module was not found in the parsed design.
    UnknownTop {
        /// The module name that was requested.
        name: String,
    },
    /// Nesting exceeded the parser's recursion bound.
    ///
    /// Emitted instead of overflowing the stack on adversarial input such
    /// as `((((…))))` — the front-end accepts untrusted network Verilog,
    /// so unbounded recursion would be a remote crash.
    TooDeep {
        /// Location where the bound was exceeded.
        loc: Loc,
        /// The nesting bound that was exceeded.
        limit: u32,
    },
    /// Elaboration would exceed a resource budget (cell count, net width,
    /// replication count, memory depth).
    ///
    /// Emitted *before* the offending allocation so one small request
    /// cannot amplify into gigabytes of netlist. The message carries the
    /// hierarchical module prefix where the budget tripped.
    TooLarge {
        /// Description including the budget and the offending quantity.
        msg: String,
    },
}

impl NetlistError {
    /// Creates a lexical error at `loc`.
    pub fn lex(loc: Loc, msg: impl Into<String>) -> Self {
        NetlistError::Lex { loc, msg: msg.into() }
    }

    /// Creates a parse error at `loc`.
    pub fn parse(loc: Loc, msg: impl Into<String>) -> Self {
        NetlistError::Parse { loc, msg: msg.into() }
    }

    /// Creates an elaboration error.
    pub fn elab(msg: impl Into<String>) -> Self {
        NetlistError::Elab { msg: msg.into() }
    }

    /// Creates a nesting-bound error at `loc`.
    pub fn too_deep(loc: Loc, limit: u32) -> Self {
        NetlistError::TooDeep { loc, limit }
    }

    /// Creates a resource-budget error.
    pub fn too_large(msg: impl Into<String>) -> Self {
        NetlistError::TooLarge { msg: msg.into() }
    }

    /// True for errors that mean "the input asked for more resources than
    /// the configured budgets allow" (as opposed to malformed input).
    ///
    /// `sns-serve` maps these to HTTP 422 rather than 400: the source may
    /// be perfectly legal Verilog that simply exceeds the deployment's
    /// `SNS_MAX_CELLS` / `SNS_MAX_NET_BITS` limits.
    pub fn is_budget(&self) -> bool {
        matches!(self, NetlistError::TooLarge { .. })
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Lex { loc, msg } => write!(f, "lex error at {loc}: {msg}"),
            NetlistError::Parse { loc, msg } => write!(f, "parse error at {loc}: {msg}"),
            NetlistError::Elab { msg } => write!(f, "elaboration error: {msg}"),
            NetlistError::UnknownTop { name } => {
                write!(f, "top module `{name}` is not defined in the source")
            }
            NetlistError::TooDeep { loc, limit } => {
                write!(f, "nesting at {loc} exceeds the maximum depth of {limit}")
            }
            NetlistError::TooLarge { msg } => write!(f, "resource budget exceeded: {msg}"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = NetlistError::lex(Loc { line: 3, col: 7 }, "bad char `$`");
        assert_eq!(e.to_string(), "lex error at 3:7: bad char `$`");
        let e = NetlistError::parse(Loc { line: 1, col: 1 }, "expected `module`");
        assert!(e.to_string().contains("parse error at 1:1"));
        let e = NetlistError::elab("unknown identifier `x`");
        assert!(e.to_string().contains("elaboration error"));
        let e = NetlistError::UnknownTop { name: "top".into() };
        assert!(e.to_string().contains("`top`"));
        let e = NetlistError::too_deep(Loc { line: 2, col: 9 }, 128);
        assert_eq!(e.to_string(), "nesting at 2:9 exceeds the maximum depth of 128");
        let e = NetlistError::too_large("replication count 100000000 exceeds 65536");
        assert!(e.to_string().starts_with("resource budget exceeded:"));
    }

    #[test]
    fn only_too_large_is_a_budget_error() {
        assert!(NetlistError::too_large("x").is_budget());
        assert!(!NetlistError::too_deep(Loc::default(), 128).is_budget());
        assert!(!NetlistError::elab("x").is_budget());
        assert!(!NetlistError::parse(Loc::default(), "x").is_budget());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
