//! Recursive-descent parser for the supported Verilog subset.
//!
//! # Supported language
//!
//! * `module name #(parameter P = expr, ...) (ANSI port list); ... endmodule`
//! * `parameter` / `localparam` declarations in the body
//! * `wire` / `reg` declarations with packed ranges, multiple names,
//!   memories (`reg [7:0] m [0:255];`), and `wire x = expr;` initializers
//! * `assign lvalue = expr;` with identifier / bit-select / part-select /
//!   concatenation lvalues
//! * `always @(posedge clk)`, `always @(posedge clk or posedge rst)`, and
//!   `always @(*)` (or `always @*`) blocks containing `begin..end`, `if` /
//!   `else`, `case` / `endcase`, blocking and nonblocking assignments
//! * module instantiation with `#(.P(v))` parameter overrides and named or
//!   positional port connections
//! * the full synthesizable operator set with standard precedence, sized and
//!   unsized literals, concatenation `{a,b}` and replication `{4{x}}`
//!
//! Unsupported constructs (tasks, functions, generate, initial blocks,
//! four-state literals, delays) produce parse errors — the `sns-designs`
//! generators deliberately stay within the subset.

use crate::ast::*;
use crate::error::{Loc, NetlistError};
use crate::lexer::{Lexer, Token, TokenKind};

/// Parses Verilog source text into a [`Design`] (a list of modules).
///
/// # Errors
///
/// Returns [`NetlistError::Lex`] or [`NetlistError::Parse`] describing the
/// first problem encountered, with a 1-based source location.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), sns_netlist::NetlistError> {
/// let design = sns_netlist::parse_source(
///     "module inv (input a, output y); assign y = ~a; endmodule",
/// )?;
/// assert_eq!(design.modules.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_source(source: &str) -> Result<Design, NetlistError> {
    let tokens = Lexer::new(source).lex_all()?;
    Parser::new(tokens).parse_design()
}

/// Maximum nesting depth for expressions, statements, and lvalues.
///
/// The parser is recursive-descent and the AST it produces is walked
/// recursively by the elaborator (and dropped recursively by Rust), so
/// unbounded nesting in untrusted source — `((((…))))`, `~~~~…x`,
/// `begin begin …` — would overflow the stack and abort the process.
/// The counter below tracks the depth of the AST under construction
/// (nesting *and* left-leaning operator chains, which deepen the tree
/// without deepening parser recursion) and fails with
/// [`NetlistError::TooDeep`] past this bound. The value mirrors
/// `sns_rt::json::MAX_DEPTH`; real generated designs stay far below it.
pub const MAX_DEPTH: u32 = 128;

const KEYWORDS: &[&str] = &[
    "module", "endmodule", "input", "output", "inout", "wire", "reg", "assign", "always",
    "posedge", "negedge", "begin", "end", "if", "else", "case", "endcase", "default", "parameter",
    "localparam", "or",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current AST nesting depth; see [`MAX_DEPTH`].
    depth: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, depth: 0 }
    }

    /// Charges one level of AST depth, erroring past [`MAX_DEPTH`].
    ///
    /// Callers that open a subtree (`parse_expr`, `parse_stmt`,
    /// `parse_lvalue`) save `self.depth` on entry and restore it on exit;
    /// chain producers (binary/unary/postfix loops) charge per link and
    /// rely on the enclosing expression's restore.
    fn descend(&mut self) -> Result<(), NetlistError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(NetlistError::too_deep(self.loc(), MAX_DEPTH));
        }
        Ok(())
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn loc(&self) -> Loc {
        self.peek().loc
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p)
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), NetlistError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(NetlistError::parse(
                self.loc(),
                format!("expected `{p}`, found {}", describe(&self.peek().kind)),
            ))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), NetlistError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(NetlistError::parse(
                self.loc(),
                format!("expected `{kw}`, found {}", describe(&self.peek().kind)),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, NetlistError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(NetlistError::parse(
                self.loc(),
                format!("expected identifier, found {}", describe(other)),
            )),
        }
    }

    fn parse_design(&mut self) -> Result<Design, NetlistError> {
        let mut modules = Vec::new();
        while !matches!(self.peek().kind, TokenKind::Eof) {
            modules.push(self.parse_module()?);
        }
        Ok(Design { modules })
    }

    fn parse_module(&mut self) -> Result<Module, NetlistError> {
        self.expect_kw("module")?;
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        // Optional `#(parameter P = e, ...)` header.
        if self.eat_punct("#") {
            self.expect_punct("(")?;
            loop {
                self.eat_kw("parameter");
                let pname = self.expect_ident()?;
                self.expect_punct("=")?;
                let default = self.parse_expr()?;
                params.push(ParamDecl { name: pname, default, local: false });
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        // ANSI port list.
        let mut ports = Vec::new();
        self.expect_punct("(")?;
        if !self.at_punct(")") {
            let mut dir = None;
            let mut range = None;
            let mut is_reg = false;
            loop {
                if self.eat_kw("input") {
                    dir = Some(Dir::Input);
                    is_reg = false;
                    range = None;
                } else if self.eat_kw("output") {
                    dir = Some(Dir::Output);
                    is_reg = false;
                    range = None;
                } else if self.eat_kw("inout") {
                    return Err(NetlistError::parse(self.loc(), "`inout` ports are unsupported"));
                }
                if self.eat_kw("wire") {
                    is_reg = false;
                }
                if self.eat_kw("reg") {
                    is_reg = true;
                }
                if self.at_punct("[") {
                    range = Some(self.parse_range()?);
                }
                let pname = self.expect_ident()?;
                let dir = dir.ok_or_else(|| {
                    NetlistError::parse(self.loc(), "port is missing a direction")
                })?;
                ports.push(PortDecl { dir, name: pname, range: range.clone(), is_reg });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        self.expect_punct(";")?;

        let mut items = Vec::new();
        while !self.at_kw("endmodule") {
            if matches!(self.peek().kind, TokenKind::Eof) {
                return Err(NetlistError::parse(self.loc(), "unexpected end of file in module"));
            }
            if self.at_kw("parameter") || self.at_kw("localparam") {
                let local = self.at_kw("localparam");
                self.bump();
                loop {
                    let pname = self.expect_ident()?;
                    self.expect_punct("=")?;
                    let default = self.parse_expr()?;
                    params.push(ParamDecl { name: pname, default, local });
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(";")?;
            } else {
                items.push(self.parse_item()?);
            }
        }
        self.expect_kw("endmodule")?;
        Ok(Module { name, ports, params, items })
    }

    fn parse_range(&mut self) -> Result<Range, NetlistError> {
        self.expect_punct("[")?;
        let msb = self.parse_expr()?;
        self.expect_punct(":")?;
        let lsb = self.parse_expr()?;
        self.expect_punct("]")?;
        Ok(Range { msb, lsb })
    }

    fn parse_item(&mut self) -> Result<Item, NetlistError> {
        if self.at_kw("wire") || self.at_kw("reg") {
            return self.parse_decl().map(Item::Decl);
        }
        if self.eat_kw("assign") {
            let lhs = self.parse_lvalue()?;
            self.expect_punct("=")?;
            let rhs = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Item::Assign { lhs, rhs });
        }
        if self.eat_kw("always") {
            return self.parse_always().map(Item::Always);
        }
        // Otherwise: a module instantiation `Type [#(...)] name (conns);`
        self.parse_instance().map(Item::Instance)
    }

    fn parse_decl(&mut self) -> Result<Decl, NetlistError> {
        let is_reg = self.at_kw("reg");
        self.bump(); // wire|reg
        self.eat_kw("signed"); // tolerated and ignored
        let range = if self.at_punct("[") { Some(self.parse_range()?) } else { None };
        let mut names = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let mem_range = if self.at_punct("[") { Some(self.parse_range()?) } else { None };
            let init = if self.eat_punct("=") { Some(self.parse_expr()?) } else { None };
            names.push(DeclName { name, mem_range, init });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        Ok(Decl { is_reg, range, names })
    }

    fn parse_always(&mut self) -> Result<Always, NetlistError> {
        self.expect_punct("@")?;
        let clock = if self.eat_punct("*") {
            None
        } else {
            self.expect_punct("(")?;
            let mut clock = None;
            if self.eat_punct("*") {
                self.expect_punct(")")?;
                let body = self.parse_stmt()?;
                return Ok(Always { clock: None, body });
            }
            loop {
                if self.eat_kw("posedge") || self.eat_kw("negedge") {
                    let sig = self.expect_ident()?;
                    // The first edge signal is taken as the clock; further
                    // `or posedge rst` terms are treated as synchronous for
                    // graph-construction purposes (see crate docs).
                    if clock.is_none() {
                        clock = Some(sig);
                    }
                } else {
                    // Level-sensitive list (`@(a or b)`) => combinational.
                    self.expect_ident()?;
                }
                if !(self.eat_kw("or") || self.eat_punct(",")) {
                    break;
                }
            }
            self.expect_punct(")")?;
            clock
        };
        let body = self.parse_stmt()?;
        Ok(Always { clock, body })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, NetlistError> {
        let saved = self.depth;
        self.descend()?;
        let r = self.parse_stmt_inner();
        self.depth = saved;
        r
    }

    fn parse_stmt_inner(&mut self) -> Result<Stmt, NetlistError> {
        if self.eat_kw("begin") {
            // Optional `: label`.
            if self.eat_punct(":") {
                self.expect_ident()?;
            }
            let mut stmts = Vec::new();
            while !self.at_kw("end") {
                if matches!(self.peek().kind, TokenKind::Eof) {
                    return Err(NetlistError::parse(self.loc(), "unexpected EOF in begin/end"));
                }
                stmts.push(self.parse_stmt()?);
            }
            self.expect_kw("end")?;
            return Ok(Stmt::Block(stmts));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then_s = Box::new(self.parse_stmt()?);
            let else_s =
                if self.eat_kw("else") { Some(Box::new(self.parse_stmt()?)) } else { None };
            return Ok(Stmt::If { cond, then_s, else_s });
        }
        if self.eat_kw("case") {
            self.expect_punct("(")?;
            let subject = self.parse_expr()?;
            self.expect_punct(")")?;
            let mut arms = Vec::new();
            let mut default = None;
            while !self.at_kw("endcase") {
                if matches!(self.peek().kind, TokenKind::Eof) {
                    return Err(NetlistError::parse(self.loc(), "unexpected EOF in case"));
                }
                if self.eat_kw("default") {
                    self.eat_punct(":");
                    default = Some(Box::new(self.parse_stmt()?));
                } else {
                    let mut labels = vec![self.parse_expr()?];
                    while self.eat_punct(",") {
                        labels.push(self.parse_expr()?);
                    }
                    self.expect_punct(":")?;
                    let body = self.parse_stmt()?;
                    arms.push((labels, body));
                }
            }
            self.expect_kw("endcase")?;
            return Ok(Stmt::Case { subject, arms, default });
        }
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        // Assignment.
        let lhs = self.parse_lvalue()?;
        let nonblocking = if self.eat_punct("<=") {
            true
        } else {
            self.expect_punct("=")?;
            false
        };
        let rhs = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign { lhs, rhs, nonblocking })
    }

    fn parse_lvalue(&mut self) -> Result<LValue, NetlistError> {
        let saved = self.depth;
        self.descend()?;
        let r = self.parse_lvalue_inner();
        self.depth = saved;
        r
    }

    fn parse_lvalue_inner(&mut self) -> Result<LValue, NetlistError> {
        if self.eat_punct("{") {
            let mut parts = vec![self.parse_lvalue()?];
            while self.eat_punct(",") {
                parts.push(self.parse_lvalue()?);
            }
            self.expect_punct("}")?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.expect_ident()?;
        if self.eat_punct("[") {
            let a = self.parse_expr()?;
            if self.eat_punct(":") {
                let b = self.parse_expr()?;
                self.expect_punct("]")?;
                return Ok(LValue::PartSelect(name, a, b));
            }
            self.expect_punct("]")?;
            return Ok(LValue::BitSelect(name, a));
        }
        Ok(LValue::Ident(name))
    }

    fn parse_instance(&mut self) -> Result<Instance, NetlistError> {
        let module = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat_punct("#") {
            self.expect_punct("(")?;
            loop {
                self.expect_punct(".")?;
                let pname = self.expect_ident()?;
                self.expect_punct("(")?;
                let value = self.parse_expr()?;
                self.expect_punct(")")?;
                params.push((pname, value));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut conns = Vec::new();
        if !self.at_punct(")") {
            let mut index = 0usize;
            loop {
                if self.eat_punct(".") {
                    let port = self.expect_ident()?;
                    self.expect_punct("(")?;
                    let expr = if self.at_punct(")") { None } else { Some(self.parse_expr()?) };
                    self.expect_punct(")")?;
                    conns.push(Connection::Named(port, expr));
                } else {
                    let expr = self.parse_expr()?;
                    conns.push(Connection::Positional(index, expr));
                }
                index += 1;
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        self.expect_punct(";")?;
        Ok(Instance { module, name, params, conns })
    }

    // ---- Expressions (precedence climbing) ----

    fn parse_expr(&mut self) -> Result<Expr, NetlistError> {
        let saved = self.depth;
        self.descend()?;
        let r = self.parse_ternary();
        self.depth = saved;
        r
    }

    fn parse_ternary(&mut self) -> Result<Expr, NetlistError> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct("?") {
            // Arms go through `parse_expr` so ternary chains charge depth.
            let a = self.parse_expr()?;
            self.expect_punct(":")?;
            let b = self.parse_expr()?;
            return Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)));
        }
        Ok(cond)
    }

    /// Binds tighter as the level increases; standard Verilog precedence.
    fn binop(&self) -> Option<(BinOp, u8)> {
        let TokenKind::Punct(p) = &self.peek().kind else { return None };
        Some(match *p {
            "||" => (BinOp::LOr, 0),
            "&&" => (BinOp::LAnd, 1),
            "|" => (BinOp::Or, 2),
            "^" => (BinOp::Xor, 3),
            "~^" | "^~" => (BinOp::Xnor, 3),
            "&" => (BinOp::And, 4),
            "==" => (BinOp::Eq, 5),
            "!=" => (BinOp::Ne, 5),
            "<" => (BinOp::Lt, 6),
            "<=" => (BinOp::Le, 6),
            ">" => (BinOp::Gt, 6),
            ">=" => (BinOp::Ge, 6),
            "<<" => (BinOp::Shl, 7),
            ">>" => (BinOp::Shr, 7),
            ">>>" => (BinOp::AShr, 7),
            "+" => (BinOp::Add, 8),
            "-" => (BinOp::Sub, 8),
            "*" => (BinOp::Mul, 9),
            "/" => (BinOp::Div, 9),
            "%" => (BinOp::Mod, 9),
            _ => return None,
        })
    }

    /// Precedence climbing (one recursion per *consumed* operator, not a
    /// fixed ladder of one frame per precedence level). The flat shape
    /// matters for robustness: untrusted input gets to nest expressions
    /// [`MAX_DEPTH`] deep, and the ladder's ~11 frames per nesting level
    /// came close to the 2 MiB thread-stack limit in debug builds.
    fn parse_binary(&mut self, min_level: u8) -> Result<Expr, NetlistError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, lvl)) = self.binop() {
            if lvl < min_level {
                break;
            }
            self.bump();
            // Each operator deepens the tree one level (left-nesting for
            // chains, right recursion for tighter-binding ops).
            self.descend()?;
            let rhs = self.parse_binary(lvl + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, NetlistError> {
        let op = match &self.peek().kind {
            TokenKind::Punct("~") => Some(UnOp::Not),
            TokenKind::Punct("-") => Some(UnOp::Neg),
            TokenKind::Punct("!") => Some(UnOp::LNot),
            TokenKind::Punct("&") => Some(UnOp::RedAnd),
            TokenKind::Punct("|") => Some(UnOp::RedOr),
            TokenKind::Punct("^") => Some(UnOp::RedXor),
            TokenKind::Punct("~&") => Some(UnOp::RedNand),
            TokenKind::Punct("~|") => Some(UnOp::RedNor),
            TokenKind::Punct("~^") => Some(UnOp::RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            self.descend()?;
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary(op, Box::new(inner)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, NetlistError> {
        let mut e = self.parse_primary()?;
        while self.at_punct("[") {
            self.bump();
            self.descend()?;
            let a = self.parse_expr()?;
            if self.eat_punct(":") {
                let b = self.parse_expr()?;
                self.expect_punct("]")?;
                e = Expr::PartSelect(Box::new(e), Box::new(a), Box::new(b));
            } else {
                self.expect_punct("]")?;
                e = Expr::BitSelect(Box::new(e), Box::new(a));
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, NetlistError> {
        match self.peek().kind.clone() {
            TokenKind::Number { value, width } => {
                self.bump();
                Ok(Expr::Number { value, width })
            }
            TokenKind::Ident(ref s) if !KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                self.bump();
                Ok(Expr::Ident(s))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Punct("{") => {
                self.bump();
                let first = self.parse_expr()?;
                // Replication `{n{e}}`.
                if self.at_punct("{") {
                    self.bump();
                    let inner = self.parse_expr()?;
                    self.expect_punct("}")?;
                    self.expect_punct("}")?;
                    return Ok(Expr::Replicate(Box::new(first), Box::new(inner)));
                }
                let mut parts = vec![first];
                while self.eat_punct(",") {
                    parts.push(self.parse_expr()?);
                }
                self.expect_punct("}")?;
                Ok(Expr::Concat(parts))
            }
            ref other => Err(NetlistError::parse(
                self.loc(),
                format!("expected expression, found {}", describe(other)),
            )),
        }
    }
}

fn describe(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Ident(s) => format!("`{s}`"),
        TokenKind::Number { value, .. } => format!("number `{value}`"),
        TokenKind::Punct(p) => format!("`{p}`"),
        TokenKind::Eof => "end of file".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Module {
        let d = parse_source(src).unwrap();
        assert_eq!(d.modules.len(), 1);
        d.modules.into_iter().next().unwrap()
    }

    #[test]
    fn parses_ports_with_ranges() {
        let m = parse_one(
            "module m (input clk, input [7:0] a, b, output reg [15:0] q); endmodule",
        );
        assert_eq!(m.ports.len(), 4);
        assert_eq!(m.ports[0].name, "clk");
        assert!(m.ports[0].range.is_none());
        assert_eq!(m.ports[1].dir, Dir::Input);
        assert!(m.ports[2].range.is_some()); // `b` inherits [7:0]
        assert!(m.ports[3].is_reg);
        assert_eq!(m.ports[3].dir, Dir::Output);
    }

    #[test]
    fn parses_parameters_header_and_body() {
        let m = parse_one(
            "module m #(parameter W = 8, parameter D = W*2) (input [W-1:0] a);
                 localparam HALF = W / 2;
             endmodule",
        );
        assert_eq!(m.params.len(), 3);
        assert!(m.params[2].local);
    }

    #[test]
    fn parses_assign_and_expressions() {
        let m = parse_one(
            "module m (input [7:0] a, b, output [7:0] y);
                 assign y = (a + b) * 2 > 8'h10 ? a & ~b : {4'b0, a[7:4]};
             endmodule",
        );
        let Item::Assign { rhs, .. } = &m.items[0] else { panic!("expected assign") };
        assert!(matches!(rhs, Expr::Ternary(..)));
    }

    #[test]
    fn precedence_mul_over_add() {
        let m = parse_one("module m (input a, output y); assign y = a + a * a; endmodule");
        let Item::Assign { rhs, .. } = &m.items[0] else { panic!() };
        let Expr::Binary(BinOp::Add, _, r) = rhs else { panic!("expected top-level add") };
        assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_always_clocked_with_reset() {
        let m = parse_one(
            "module m (input clk, input rst, input [3:0] d, output reg [3:0] q);
                 always @(posedge clk or posedge rst) begin
                     if (rst) q <= 4'd0;
                     else q <= d;
                 end
             endmodule",
        );
        let Item::Always(a) = &m.items[0] else { panic!() };
        assert_eq!(a.clock.as_deref(), Some("clk"));
        assert!(matches!(a.body, Stmt::Block(_)));
    }

    #[test]
    fn parses_comb_always_with_case() {
        let m = parse_one(
            "module m (input [1:0] s, output reg [3:0] y);
                 always @(*) begin
                     case (s)
                         2'd0: y = 4'd1;
                         2'd1, 2'd2: y = 4'd2;
                         default: y = 4'd0;
                     endcase
                 end
             endmodule",
        );
        let Item::Always(a) = &m.items[0] else { panic!() };
        assert!(a.clock.is_none());
        let Stmt::Block(b) = &a.body else { panic!() };
        let Stmt::Case { arms, default, .. } = &b[0] else { panic!() };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].0.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn parses_memory_declarations() {
        let m = parse_one(
            "module m (input clk); reg [7:0] mem [0:255]; wire [7:0] x = 8'd3, y; endmodule",
        );
        let Item::Decl(d) = &m.items[0] else { panic!() };
        assert!(d.is_reg);
        assert!(d.names[0].mem_range.is_some());
        let Item::Decl(d2) = &m.items[1] else { panic!() };
        assert!(d2.names[0].init.is_some());
        assert!(d2.names[1].init.is_none());
    }

    #[test]
    fn parses_instances_named_and_positional() {
        let m = parse_one(
            "module top (input [7:0] a, output [7:0] y);
                 wire [7:0] t;
                 child #(.W(8)) u0 (.a(a), .y(t));
                 child u1 (t, y);
             endmodule",
        );
        let Item::Instance(i0) = &m.items[1] else { panic!() };
        assert_eq!(i0.module, "child");
        assert_eq!(i0.params.len(), 1);
        assert!(matches!(i0.conns[0], Connection::Named(..)));
        let Item::Instance(i1) = &m.items[2] else { panic!() };
        assert!(matches!(i1.conns[1], Connection::Positional(1, _)));
    }

    #[test]
    fn parses_replication_and_concat() {
        let m = parse_one(
            "module m (input [3:0] a, output [15:0] y); assign y = {{2{a}}, a, 4'b0}; endmodule",
        );
        let Item::Assign { rhs, .. } = &m.items[0] else { panic!() };
        let Expr::Concat(parts) = rhs else { panic!() };
        assert_eq!(parts.len(), 3);
        assert!(matches!(parts[0], Expr::Replicate(..)));
    }

    #[test]
    fn reports_error_locations() {
        let err = parse_source("module m (input a;\nendmodule").unwrap_err();
        let NetlistError::Parse { loc, .. } = err else { panic!("expected parse error") };
        assert_eq!(loc.line, 1);
    }

    #[test]
    fn rejects_keyword_as_identifier() {
        assert!(parse_source("module module (input a); endmodule").is_err());
    }

    #[test]
    fn parses_multiple_modules() {
        let d = parse_source(
            "module a (input x); endmodule
             module b (input x); endmodule",
        )
        .unwrap();
        assert_eq!(d.modules.len(), 2);
        assert!(d.module("a").is_some() && d.module("b").is_some());
    }

    #[test]
    fn unary_reductions_parse() {
        let m = parse_one("module m (input [7:0] a, output y); assign y = &a ^ |a; endmodule");
        let Item::Assign { rhs, .. } = &m.items[0] else { panic!() };
        assert!(matches!(rhs, Expr::Binary(BinOp::Xor, _, _)));
    }

    fn assert_too_deep(src: &str) {
        let err = parse_source(src).unwrap_err();
        assert!(
            matches!(err, NetlistError::TooDeep { limit: MAX_DEPTH, .. }),
            "expected TooDeep, got: {err}"
        );
    }

    #[test]
    fn deep_parens_error_instead_of_overflowing_the_stack() {
        for n in [MAX_DEPTH as usize + 1, 10_000, 200_000] {
            let src = format!(
                "module m (input a, output y); assign y = {}a{}; endmodule",
                "(".repeat(n),
                ")".repeat(n)
            );
            assert_too_deep(&src);
        }
    }

    #[test]
    fn nesting_well_below_the_limit_parses() {
        let n = 100;
        let src = format!(
            "module m (input a, output y); assign y = {}a{}; endmodule",
            "(".repeat(n),
            ")".repeat(n)
        );
        parse_source(&src).expect("100 nested parens are legal");
    }

    #[test]
    fn deep_chains_of_every_shape_are_bounded() {
        let n = 10_000;
        // Unary chain: parser recursion plus a deep AST.
        assert_too_deep(&format!(
            "module m (input a, output y); assign y = {}a; endmodule",
            "~".repeat(n)
        ));
        // Replication nesting.
        assert_too_deep(&format!(
            "module m (input a, output y); assign y = {}a{}; endmodule",
            "{2{".repeat(n),
            "}}".repeat(n)
        ));
        // Ternary chain (right-leaning).
        assert_too_deep(&format!(
            "module m (input a, output y); assign y = {}a; endmodule",
            "a ? a : ".repeat(n)
        ));
        // Binary chain: built iteratively, but left-nests the AST — the
        // elaborator and Drop would recurse over it.
        assert_too_deep(&format!(
            "module m (input a, output y); assign y = a{}; endmodule",
            " ^ a".repeat(n)
        ));
        // Postfix select chain.
        assert_too_deep(&format!(
            "module m (input a, output y); assign y = a{}; endmodule",
            "[0]".repeat(n)
        ));
        // Statement nesting.
        assert_too_deep(&format!(
            "module m (input c, output reg y); always @(*) {}y = c; endmodule",
            "if (c) ".repeat(n)
        ));
        assert_too_deep(&format!(
            "module m (input c, output reg y); always @(*) {}y = c; {}endmodule",
            "begin ".repeat(n),
            "end ".repeat(n)
        ));
        // Lvalue concat nesting.
        assert_too_deep(&format!(
            "module m (input c, output y); assign {}y{} = c; endmodule",
            "{".repeat(n),
            "}".repeat(n)
        ));
    }

    #[test]
    fn depth_resets_between_statements_and_items() {
        // Many siblings, each modestly nested: depth must not accumulate
        // across statements, expressions, or module items.
        let stmt = format!("y = {}c{};", "(".repeat(60), ")".repeat(60));
        let src = format!(
            "module m (input c, output reg y); always @(*) begin {} end endmodule",
            stmt.repeat(50)
        );
        parse_source(&src).expect("sibling statements share no depth budget");
    }

    #[test]
    fn lvalue_concat_parses() {
        let m = parse_one(
            "module m (input [8:0] s, output [7:0] y, output c);
                 assign {c, y} = s;
             endmodule",
        );
        let Item::Assign { lhs, .. } = &m.items[0] else { panic!() };
        assert!(matches!(lhs, LValue::Concat(v) if v.len() == 2));
    }
}
