//! # sns-netlist
//!
//! A self-contained Verilog-subset front-end for SNS ("SNS's not a
//! Synthesizer", ISCA 2022). This crate stands in for the Yosys flow the
//! paper uses: it parses synthesizable Verilog source text and elaborates it
//! into a flat, coarse-grained functional [`Netlist`] whose cells match the
//! vocabulary of the paper's Table 1 (adders, multipliers, multiplexers,
//! D-flip-flops, ...).
//!
//! The pipeline is:
//!
//! ```text
//! Verilog source --lexer--> tokens --parser--> AST --elaborator--> Netlist
//! ```
//!
//! # Example
//!
//! ```rust
//! use sns_netlist::parse_and_elaborate;
//!
//! # fn main() -> Result<(), sns_netlist::NetlistError> {
//! let src = r#"
//!     module mac (input clk, input [7:0] a, input [7:0] b, output [15:0] y);
//!         reg [15:0] acc;
//!         always @(posedge clk) acc <= acc + a * b;
//!         assign y = acc;
//!     endmodule
//! "#;
//! let netlist = parse_and_elaborate(src, "mac")?;
//! assert!(netlist.cells().any(|c| c.kind == sns_netlist::CellKind::Mul));
//! assert!(netlist.cells().any(|c| c.kind == sns_netlist::CellKind::Dff));
//! # Ok(())
//! # }
//! ```
//!
//! The supported language subset is documented on [`parser`]; it is rich
//! enough to express every design generator in `sns-designs` (hierarchical
//! modules with parameters, clocked and combinational `always` blocks,
//! memories, case statements, concatenation/replication, the full
//! synthesizable operator set).
//!
//! # Untrusted input
//!
//! The whole front-end is *total* on arbitrary byte strings: every input
//! returns `Ok` or a structured [`NetlistError`] — it never panics,
//! overflows the stack, or allocates unboundedly. Nesting is capped at
//! [`parser::MAX_DEPTH`] ([`NetlistError::TooDeep`]), and elaboration
//! enforces configurable resource budgets ([`elaborate::ElabLimits`];
//! `SNS_MAX_CELLS`, `SNS_MAX_NET_BITS`, `SNS_MAX_REPLICATION`) that
//! reject amplifying constructs such as `{100000000{x}}` with
//! [`NetlistError::TooLarge`] *before* allocating
//! (`crates/netlist/tests/adversarial.rs` is the enforcing fuzz suite).

pub mod ast;
pub mod elaborate;
pub mod error;
pub mod hash;
pub mod incremental;
pub mod lexer;
pub mod netlist;
pub mod parser;
pub mod sim;

pub use elaborate::{elaborate, elaborate_with_limits, ElabLimits};
pub use error::NetlistError;
pub use hash::{design_hashes, module_hash, ModHash};
pub use incremental::{
    elaborate_incremental, elaborate_incremental_with_limits, ElabReport, InstanceRecord,
    ModuleElabCache,
};
pub use lexer::{Lexer, Token, TokenKind};
pub use netlist::{Cell, CellId, CellKind, Net, NetId, Netlist, Port, PortDir};
pub use parser::parse_source;
pub use sim::Simulator;

/// Parses Verilog source text and elaborates the module named `top` (and the
/// full hierarchy below it) into a flat [`Netlist`].
///
/// This is the main entry point of the crate and is the direct analogue of
/// running `yosys -p "read_verilog; hierarchy -top <top>"` in the paper's
/// flow.
///
/// # Errors
///
/// Returns a [`NetlistError`] if the source fails to lex/parse, if `top` is
/// not defined, or if elaboration finds a semantic problem (unknown
/// identifiers, width mismatches in contexts that require exact widths,
/// multiply-driven nets, ...).
///
/// # Example
///
/// ```rust
/// # use sns_netlist::parse_and_elaborate;
/// # fn main() -> Result<(), sns_netlist::NetlistError> {
/// let src = "module buf8 (input [7:0] a, output [7:0] y); assign y = a; endmodule";
/// let nl = parse_and_elaborate(src, "buf8")?;
/// assert_eq!(nl.name(), "buf8");
/// # Ok(())
/// # }
/// ```
pub fn parse_and_elaborate(source: &str, top: &str) -> Result<Netlist, NetlistError> {
    let design = parse_source(source)?;
    elaborate(&design, top)
}
