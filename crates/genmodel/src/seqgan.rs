//! SeqGAN (§4.2.2): a sequence GAN for circuit paths.
//!
//! Following Yu et al. (2017): a recurrent generator produces token
//! sequences; a recurrent discriminator scores real vs. generated; the
//! generator is trained with the REINFORCE policy gradient using the
//! discriminator's probability as the reward. The generator is MLE
//! pre-trained on the real paths first, as in the original recipe.
//!
//! Scale note: the reference SeqGAN trains with batch 2048 for 130 epochs
//! (the paper's Table 6); [`SeqGanConfig::fast`] keeps the same algorithm
//! at a CI-friendly scale, and [`SeqGanConfig::paper`] carries the Table 6
//! values. Rollouts use the terminal reward for every step (Monte-Carlo
//! rollout count of 1), the cheapest faithful variant.

use std::collections::HashSet;

use sns_rt::rng::StdRng;

use sns_nn::{
    bce_with_logits_loss, softmax_cross_entropy, Adam, Embedding, Grads, Gru, Linear, Mat,
    Optimizer, ParamRegistry,
};

/// Hyperparameters for SeqGAN training.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqGanConfig {
    /// Embedding width.
    pub embed: usize,
    /// GRU hidden width.
    pub hidden: usize,
    /// MLE pre-training epochs over the real set.
    pub pretrain_epochs: usize,
    /// Adversarial rounds (each: G policy-gradient steps + D steps).
    pub adversarial_rounds: usize,
    /// Generated sequences per generator update.
    pub g_batch: usize,
    /// Real+fake pairs per discriminator update.
    pub d_batch: usize,
    /// Learning rate (Table 6: 0.01 for SeqGAN).
    pub lr: f32,
    /// Maximum generated length.
    pub max_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SeqGanConfig {
    /// The paper's Table 6 hyperparameters (batch 2048, lr 0.01, 130
    /// epochs split between pre-training and adversarial rounds).
    pub fn paper() -> Self {
        SeqGanConfig {
            embed: 32,
            hidden: 64,
            pretrain_epochs: 80,
            adversarial_rounds: 50,
            g_batch: 2048,
            d_batch: 2048,
            lr: 0.01,
            max_len: 64,
            seed: 0x5E9A,
        }
    }

    /// The same algorithm at CI scale.
    pub fn fast() -> Self {
        SeqGanConfig {
            pretrain_epochs: 40,
            adversarial_rounds: 6,
            g_batch: 48,
            d_batch: 48,
            ..SeqGanConfig::paper()
        }
    }
}

/// Diagnostics from a training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeqGanStats {
    /// MLE pre-training loss per epoch.
    pub pretrain_loss: Vec<f32>,
    /// Discriminator BCE per adversarial round.
    pub d_loss: Vec<f32>,
    /// Mean generator reward (discriminator probability) per round.
    pub g_reward: Vec<f32>,
}

/// The SeqGAN: generator + discriminator over a token vocabulary.
#[derive(Debug)]
pub struct SeqGan {
    vocab: usize,
    cfg: SeqGanConfig,
    // Generator.
    g_reg: ParamRegistry,
    g_emb: Embedding,
    g_gru: Gru,
    g_out: Linear, // hidden -> vocab+1 (END = vocab)
    // Discriminator.
    d_reg: ParamRegistry,
    d_emb: Embedding,
    d_gru: Gru,
    d_out: Linear, // hidden -> 1
}

impl SeqGan {
    /// Creates an untrained SeqGAN over `vocab` tokens.
    pub fn new(vocab: usize, cfg: SeqGanConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut g_reg = ParamRegistry::new();
        // Generator input vocabulary has a START token (id = vocab).
        let g_emb = Embedding::new(&mut g_reg, vocab + 1, cfg.embed, &mut rng);
        let g_gru = Gru::new(&mut g_reg, cfg.embed, cfg.hidden, &mut rng);
        let g_out = Linear::new(&mut g_reg, cfg.hidden, vocab + 1, &mut rng);
        let mut d_reg = ParamRegistry::new();
        let d_emb = Embedding::new(&mut d_reg, vocab + 1, cfg.embed, &mut rng);
        let d_gru = Gru::new(&mut d_reg, cfg.embed, cfg.hidden, &mut rng);
        let d_out = Linear::new(&mut d_reg, cfg.hidden, 1, &mut rng);
        SeqGan { vocab, cfg, g_reg, g_emb, g_gru, g_out, d_reg, d_emb, d_gru, d_out }
    }

    /// The token vocabulary size (excluding START/END).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    fn start_id(&self) -> usize {
        self.vocab
    }

    fn end_id(&self) -> usize {
        self.vocab
    }

    /// Generator logits for each next-token position given the teacher
    /// sequence `[START, t0, t1, ...]`.
    fn g_logits(&self, input_ids: &[usize]) -> (Mat, sns_nn::EmbeddingCtx, sns_nn::GruCtx, sns_nn::LinearCtx) {
        let (emb, ectx) = self.g_emb.forward(input_ids);
        let (hs, gctx) = self.g_gru.forward(&emb);
        let (logits, lctx) = self.g_out.forward(&hs);
        (logits, ectx, gctx, lctx)
    }

    /// One MLE step over a batch of real sequences; returns the mean CE.
    fn mle_step(&mut self, batch: &[&Vec<usize>], opt: &mut Adam) -> f32 {
        let mut grads = Grads::new(&self.g_reg);
        let mut loss_sum = 0.0;
        for seq in batch {
            let mut input = Vec::with_capacity(seq.len() + 1);
            input.push(self.start_id());
            input.extend_from_slice(seq);
            let targets: Vec<usize> = seq.iter().copied().chain([self.end_id()]).collect();
            let (logits, ectx, gctx, lctx) = self.g_logits(&input);
            let (loss, dlogits) = softmax_cross_entropy(&logits, &targets);
            loss_sum += loss;
            let dh = self.g_out.backward(&lctx, &dlogits, &mut grads);
            let demb = self.g_gru.backward(&gctx, &dh, &mut grads);
            self.g_emb.backward(&ectx, &demb, &mut grads);
        }
        grads.scale(1.0 / batch.len().max(1) as f32);
        grads.clip_global_norm(5.0);
        opt.step_visit(&grads, |f| {
            self.g_emb.visit_mut(f);
            self.g_gru.visit_mut(f);
            self.g_out.visit_mut(f);
        });
        loss_sum / batch.len().max(1) as f32
    }

    /// Generator logits without backward contexts — the sampling loop
    /// calls this once per generated token, so skipping the BPTT clones
    /// matters (bit-identical to [`g_logits`](Self::g_logits)).
    fn g_logits_infer(&self, input_ids: &[usize]) -> Mat {
        let emb = self.g_emb.infer(input_ids);
        let hs = self.g_gru.infer(&emb);
        self.g_out.infer(&hs)
    }

    /// Samples a sequence from the generator.
    pub fn sample(&self, rng: &mut StdRng, temperature: f32) -> Vec<usize> {
        let mut ids = vec![self.start_id()];
        let mut out = Vec::new();
        for _ in 0..self.cfg.max_len {
            let logits = self.g_logits_infer(&ids);
            let last = logits.rows_slice(logits.rows() - 1, logits.rows());
            let scaled = last.scale(1.0 / temperature.max(1e-3));
            let probs = scaled.softmax_rows();
            let mut x: f32 = rng.gen();
            let mut tok = self.end_id();
            for (t, &p) in probs.row(0).iter().enumerate() {
                if x < p {
                    tok = t;
                    break;
                }
                x -= p;
            }
            if tok == self.end_id() {
                break;
            }
            out.push(tok);
            ids.push(tok);
        }
        out
    }

    /// Discriminator probability that `seq` is real. Scoring-only, so it
    /// runs the ctx-free inference paths — no BPTT context clones for a
    /// value that is immediately discarded (bit-identical to the training
    /// forwards).
    pub fn discriminate(&self, seq: &[usize]) -> f32 {
        if seq.is_empty() {
            return 0.0;
        }
        let emb = self.d_emb.infer(seq);
        let hs = self.d_gru.infer(&emb);
        let last = hs.rows_slice(hs.rows() - 1, hs.rows());
        let logit = self.d_out.infer(&last);
        sns_nn::act::sigmoid(logit.get(0, 0))
    }

    fn d_step(&mut self, real: &[&Vec<usize>], fake: &[Vec<usize>], opt: &mut Adam) -> f32 {
        let mut grads = Grads::new(&self.d_reg);
        let mut loss_sum = 0.0;
        let mut n = 0;
        for (seq, label) in real
            .iter()
            .map(|s| (s.as_slice(), 1.0f32))
            .chain(fake.iter().filter(|s| !s.is_empty()).map(|s| (s.as_slice(), 0.0f32)))
        {
            let (emb, ectx) = self.d_emb.forward(seq);
            let (hs, gctx) = self.d_gru.forward(&emb);
            let t = hs.rows();
            let last = hs.rows_slice(t - 1, t);
            let (logit, lctx) = self.d_out.forward(&last);
            let (loss, dlogit) = bce_with_logits_loss(&logit, &Mat::from_rows(&[&[label]]));
            loss_sum += loss;
            n += 1;
            let dlast = self.d_out.backward(&lctx, &dlogit, &mut grads);
            let mut dhs = Mat::zeros(t, hs.cols());
            dhs.row_mut(t - 1).copy_from_slice(dlast.row(0));
            let demb = self.d_gru.backward(&gctx, &dhs, &mut grads);
            self.d_emb.backward(&ectx, &demb, &mut grads);
        }
        grads.scale(1.0 / n.max(1) as f32);
        grads.clip_global_norm(5.0);
        opt.step_visit(&grads, |f| {
            self.d_emb.visit_mut(f);
            self.d_gru.visit_mut(f);
            self.d_out.visit_mut(f);
        });
        loss_sum / n.max(1) as f32
    }

    /// One REINFORCE step: sample sequences, reward each with the
    /// discriminator, ascend the policy gradient. Returns the mean reward.
    fn g_policy_step(&mut self, rng: &mut StdRng, opt: &mut Adam) -> f32 {
        let samples: Vec<Vec<usize>> =
            (0..self.cfg.g_batch).map(|_| self.sample(rng, 1.0)).collect();
        let rewards: Vec<f32> = samples.iter().map(|s| self.discriminate(s)).collect();
        let baseline: f32 = rewards.iter().sum::<f32>() / rewards.len().max(1) as f32;
        let mut grads = Grads::new(&self.g_reg);
        let mut used = 0;
        for (seq, &r) in samples.iter().zip(&rewards) {
            if seq.is_empty() {
                continue;
            }
            used += 1;
            let advantage = r - baseline;
            let mut input = Vec::with_capacity(seq.len() + 1);
            input.push(self.start_id());
            input.extend_from_slice(seq);
            let targets: Vec<usize> = seq.iter().copied().chain([self.end_id()]).collect();
            let (logits, ectx, gctx, lctx) = self.g_logits(&input);
            // ∇ of −advantage · log π(token): reuse CE gradient scaled by
            // the advantage (REINFORCE with the mean-reward baseline).
            let (_, dlogits) = softmax_cross_entropy(&logits, &targets);
            let dlogits = dlogits.scale(advantage);
            let dh = self.g_out.backward(&lctx, &dlogits, &mut grads);
            let demb = self.g_gru.backward(&gctx, &dh, &mut grads);
            self.g_emb.backward(&ectx, &demb, &mut grads);
        }
        if used > 0 {
            grads.scale(1.0 / used as f32);
            grads.clip_global_norm(5.0);
            opt.step_visit(&grads, |f| {
                self.g_emb.visit_mut(f);
                self.g_gru.visit_mut(f);
                self.g_out.visit_mut(f);
            });
        }
        baseline
    }

    /// Runs the full SeqGAN recipe on `real` paths.
    ///
    /// # Panics
    ///
    /// Panics if `real` is empty or contains an out-of-vocabulary token.
    pub fn train(&mut self, real: &[Vec<usize>]) -> SeqGanStats {
        assert!(!real.is_empty(), "SeqGAN needs real sequences to train on");
        for s in real {
            for &t in s {
                assert!(t < self.vocab, "token {t} out of vocabulary {}", self.vocab);
            }
        }
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let mut g_opt = Adam::new(self.cfg.lr);
        let mut d_opt = Adam::new(self.cfg.lr);
        let mut stats = SeqGanStats::default();

        // 1) MLE pre-training.
        for _ in 0..self.cfg.pretrain_epochs {
            let batch: Vec<&Vec<usize>> = (0..self.cfg.g_batch.min(real.len()))
                .map(|_| &real[rng.gen_range(0..real.len())])
                .collect();
            stats.pretrain_loss.push(self.mle_step(&batch, &mut g_opt));
        }
        // 2) Adversarial rounds.
        for _ in 0..self.cfg.adversarial_rounds {
            let fake: Vec<Vec<usize>> =
                (0..self.cfg.d_batch).map(|_| self.sample(&mut rng, 1.0)).collect();
            let real_batch: Vec<&Vec<usize>> = (0..self.cfg.d_batch.min(real.len()))
                .map(|_| &real[rng.gen_range(0..real.len())])
                .collect();
            stats.d_loss.push(self.d_step(&real_batch, &fake, &mut d_opt));
            stats.g_reward.push(self.g_policy_step(&mut rng, &mut g_opt));
        }
        stats
    }

    /// Generates up to `count` unique sequences not in `exclude`.
    pub fn generate_unique(
        &self,
        rng: &mut StdRng,
        count: usize,
        exclude: &HashSet<Vec<usize>>,
    ) -> Vec<Vec<usize>> {
        let mut seen = exclude.clone();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count.saturating_mul(50) {
            if out.len() >= count {
                break;
            }
            let s = self.sample(rng, 1.0);
            if s.len() >= 2 && seen.insert(s.clone()) {
                out.push(s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy corpus with strong structure: 0 (1 2)* 3.
    fn corpus() -> Vec<Vec<usize>> {
        let mut v = Vec::new();
        for reps in 1..=4 {
            let mut s = vec![0usize];
            for _ in 0..reps {
                s.push(1);
                s.push(2);
            }
            s.push(3);
            v.push(s);
        }
        v
    }

    fn tiny_cfg() -> SeqGanConfig {
        SeqGanConfig {
            embed: 8,
            hidden: 16,
            pretrain_epochs: 30,
            adversarial_rounds: 2,
            g_batch: 8,
            d_batch: 8,
            lr: 0.02,
            max_len: 16,
            seed: 4,
        }
    }

    #[test]
    fn pretraining_reduces_mle_loss() {
        let mut gan = SeqGan::new(4, tiny_cfg());
        let stats = gan.train(&corpus());
        let first = stats.pretrain_loss[0];
        let last = *stats.pretrain_loss.last().unwrap();
        assert!(last < first * 0.8, "MLE loss {first} -> {last}");
    }

    #[test]
    fn generator_learns_corpus_statistics() {
        let mut gan = SeqGan::new(4, tiny_cfg());
        gan.train(&corpus());
        let mut rng = StdRng::seed_from_u64(10);
        let mut starts_with_zero = 0;
        let n = 30;
        for _ in 0..n {
            let s = gan.sample(&mut rng, 0.5);
            if s.first() == Some(&0) {
                starts_with_zero += 1;
            }
        }
        assert!(starts_with_zero > n / 2, "only {starts_with_zero}/{n} start with 0");
    }

    #[test]
    fn discriminator_output_is_a_probability() {
        let gan = SeqGan::new(4, tiny_cfg());
        let p = gan.discriminate(&[0, 1, 2, 3]);
        assert!((0.0..=1.0).contains(&p));
        assert_eq!(gan.discriminate(&[]), 0.0);
    }

    #[test]
    fn adversarial_stats_are_recorded() {
        let mut gan = SeqGan::new(4, tiny_cfg());
        let stats = gan.train(&corpus());
        assert_eq!(stats.d_loss.len(), 2);
        assert_eq!(stats.g_reward.len(), 2);
        assert!(stats.g_reward.iter().all(|r| (0.0..=1.0).contains(r)));
    }

    #[test]
    fn unique_generation_avoids_excluded() {
        let mut gan = SeqGan::new(4, tiny_cfg());
        gan.train(&corpus());
        let exclude: HashSet<Vec<usize>> = corpus().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(2);
        let out = gan.generate_unique(&mut rng, 5, &exclude);
        for s in &out {
            assert!(!exclude.contains(s));
        }
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_token_panics() {
        let mut gan = SeqGan::new(3, tiny_cfg());
        let _ = gan.train(&[vec![0, 7]]);
    }
}
