//! First-order Markov-chain path generator (§4.2.1).

use std::collections::HashSet;

use sns_rt::rng::StdRng;

/// A first-order Markov chain over token ids with virtual START/END
/// states and Laplace smoothing.
///
/// "The transition matrix stores the conditional probability of the next
/// vertex given the current vertex" — trained by counting adjacent pairs
/// in real sampled paths.
///
/// # Example
///
/// ```rust
/// use sns_genmodel::MarkovChain;
///
/// let real: Vec<Vec<usize>> = vec![vec![0, 2, 3, 1], vec![0, 2, 4, 1]];
/// let mc = MarkovChain::fit(5, &real, 0.01);
/// let mut rng = sns_rt::rng::StdRng::seed_from_u64(1);
/// let path = mc.generate(&mut rng, 16);
/// assert!(!path.is_empty());
/// assert!(path.iter().all(|&t| t < 5));
/// ```
#[derive(Debug, Clone)]
pub struct MarkovChain {
    vocab: usize,
    /// Row-major `(vocab+1) x (vocab+1)` transition probabilities; state
    /// `vocab` is START on the row axis and END on the column axis.
    probs: Vec<f64>,
}

impl MarkovChain {
    /// Fits the transition matrix on `paths` (token ids `< vocab`), with
    /// Laplace smoothing `alpha` (0 disables smoothing).
    ///
    /// # Panics
    ///
    /// Panics if `vocab == 0` or any token id is out of range.
    pub fn fit(vocab: usize, paths: &[Vec<usize>], alpha: f64) -> Self {
        assert!(vocab > 0, "empty vocabulary");
        let n = vocab + 1;
        let mut counts = vec![alpha; n * n];
        for p in paths {
            let mut prev = vocab; // START
            for &t in p {
                assert!(t < vocab, "token {t} out of vocabulary {vocab}");
                counts[prev * n + t] += 1.0;
                prev = t;
            }
            counts[prev * n + vocab] += 1.0; // END
        }
        // Normalize rows.
        let mut probs = counts;
        for r in 0..n {
            let row = &mut probs[r * n..(r + 1) * n];
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            } else {
                // Unseen state: uniform over END to guarantee termination.
                row[vocab] = 1.0;
            }
        }
        MarkovChain { vocab, probs }
    }

    /// The vocabulary size the chain was fitted with.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The transition probability from `from` to `to` (use `vocab` for
    /// START on `from` and END on `to`).
    ///
    /// # Panics
    ///
    /// Panics if either index exceeds `vocab`.
    pub fn prob(&self, from: usize, to: usize) -> f64 {
        let n = self.vocab + 1;
        assert!(from < n && to < n, "state out of range");
        self.probs[from * n + to]
    }

    /// Samples one path (may be empty if END is drawn immediately); always
    /// terminates within `max_len` tokens.
    pub fn generate(&self, rng: &mut StdRng, max_len: usize) -> Vec<usize> {
        let n = self.vocab + 1;
        let mut out = Vec::new();
        let mut state = self.vocab; // START
        while out.len() < max_len {
            let row = &self.probs[state * n..(state + 1) * n];
            let mut x: f64 = rng.gen();
            let mut next = self.vocab;
            for (t, &p) in row.iter().enumerate() {
                if x < p {
                    next = t;
                    break;
                }
                x -= p;
            }
            if next == self.vocab {
                break; // END
            }
            out.push(next);
            state = next;
        }
        out
    }

    /// Generates up to `count` *unique* paths not present in `exclude`,
    /// giving up after `count * 50` attempts (scarce chains may not have
    /// enough entropy).
    pub fn generate_unique(
        &self,
        rng: &mut StdRng,
        count: usize,
        max_len: usize,
        exclude: &HashSet<Vec<usize>>,
    ) -> Vec<Vec<usize>> {
        let mut seen = exclude.clone();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count.saturating_mul(50) {
            if out.len() >= count {
                break;
            }
            let p = self.generate(rng, max_len);
            if p.len() >= 2 && seen.insert(p.clone()) {
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> MarkovChain {
        // Deterministic training corpus: 0 -> 1 -> 2 always.
        let paths = vec![vec![0, 1, 2]; 10];
        MarkovChain::fit(3, &paths, 0.0)
    }

    #[test]
    fn learns_deterministic_transitions() {
        let mc = chain();
        assert!((mc.prob(0, 1) - 1.0).abs() < 1e-12);
        assert!((mc.prob(1, 2) - 1.0).abs() < 1e-12);
        assert!((mc.prob(3, 0) - 1.0).abs() < 1e-12); // START -> 0
        assert!((mc.prob(2, 3) - 1.0).abs() < 1e-12); // 2 -> END
    }

    #[test]
    fn generates_the_learned_path() {
        let mc = chain();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(mc.generate(&mut rng, 16), vec![0, 1, 2]);
    }

    #[test]
    fn smoothing_spreads_probability() {
        let paths = vec![vec![0, 1]; 5];
        let mc = MarkovChain::fit(3, &paths, 1.0);
        assert!(mc.prob(0, 2) > 0.0);
        assert!(mc.prob(0, 1) > mc.prob(0, 2));
    }

    #[test]
    fn rows_are_distributions() {
        let mc = MarkovChain::fit(4, &[vec![0, 1, 2, 3], vec![3, 2, 1]], 0.5);
        for from in 0..=4 {
            let s: f64 = (0..=4).map(|to| mc.prob(from, to)).sum();
            assert!((s - 1.0).abs() < 1e-9, "row {from} sums to {s}");
        }
    }

    #[test]
    fn generation_respects_max_len() {
        // A chain that loops 0 -> 0 forever.
        let mc = MarkovChain::fit(1, &[vec![0; 100]], 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(mc.generate(&mut rng, 8).len() <= 8);
    }

    #[test]
    fn unique_generation_excludes_training_paths() {
        let paths: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![0, 2, 1], vec![1, 0, 2]];
        let mc = MarkovChain::fit(3, &paths, 0.3);
        let mut rng = StdRng::seed_from_u64(9);
        let exclude: HashSet<Vec<usize>> = paths.into_iter().collect();
        let generated = mc.generate_unique(&mut rng, 10, 8, &exclude);
        for g in &generated {
            assert!(!exclude.contains(g), "{g:?} is a training path");
            assert!(g.len() >= 2);
        }
        let set: HashSet<_> = generated.iter().cloned().collect();
        assert_eq!(set.len(), generated.len(), "duplicates in output");
    }

    #[test]
    fn unseen_state_terminates() {
        // Token 2 never appears in training; smoothing off.
        let mc = MarkovChain::fit(3, &[vec![0, 1]], 0.0);
        assert!((mc.prob(2, 3) - 1.0).abs() < 1e-12);
    }
}
