//! First-order Markov-chain path generator (§4.2.1).

use std::collections::HashSet;

use sns_rt::rng::StdRng;

/// A first-order Markov chain over token ids with virtual START/END
/// states and Laplace smoothing.
///
/// "The transition matrix stores the conditional probability of the next
/// vertex given the current vertex" — trained by counting adjacent pairs
/// in real sampled paths.
///
/// # Example
///
/// ```rust
/// use sns_genmodel::MarkovChain;
///
/// let real: Vec<Vec<usize>> = vec![vec![0, 2, 3, 1], vec![0, 2, 4, 1]];
/// let mc = MarkovChain::fit(5, &real, 0.01);
/// let mut rng = sns_rt::rng::StdRng::seed_from_u64(1);
/// let path = mc.generate(&mut rng, 16);
/// assert!(!path.is_empty());
/// assert!(path.iter().all(|&t| t < 5));
/// ```
#[derive(Debug, Clone)]
pub struct MarkovChain {
    vocab: usize,
    /// Row-major `(vocab+1) x (vocab+1)` transition probabilities; state
    /// `vocab` is START on the row axis and END on the column axis.
    probs: Vec<f64>,
}

impl MarkovChain {
    /// Fits the transition matrix on `paths` (token ids `< vocab`), with
    /// Laplace smoothing `alpha` (0 disables smoothing).
    ///
    /// # Panics
    ///
    /// Panics if `vocab == 0` or any token id is out of range.
    pub fn fit(vocab: usize, paths: &[Vec<usize>], alpha: f64) -> Self {
        assert!(vocab > 0, "empty vocabulary");
        let n = vocab + 1;
        let mut counts = vec![0.0; n * n];
        for p in paths {
            let mut prev = vocab; // START
            for &t in p {
                assert!(t < vocab, "token {t} out of vocabulary {vocab}");
                counts[prev * n + t] += 1.0;
                prev = t;
            }
            counts[prev * n + vocab] += 1.0; // END
        }
        Self::from_counts(vocab, &counts, alpha)
    }

    /// Builds the chain from a raw `(vocab+1) x (vocab+1)` row-major
    /// transition-count matrix (row `vocab` is START, column `vocab` is
    /// END), adding Laplace smoothing `alpha` and normalizing rows. This
    /// is the constructor online learners ([`MarkovArm`]) use to rebuild
    /// the chain from incrementally maintained counts.
    ///
    /// # Panics
    ///
    /// Panics if `vocab == 0` or `counts.len() != (vocab+1)^2`.
    pub fn from_counts(vocab: usize, counts: &[f64], alpha: f64) -> Self {
        assert!(vocab > 0, "empty vocabulary");
        let n = vocab + 1;
        assert!(counts.len() == n * n, "counts must be (vocab+1)^2");
        let mut probs: Vec<f64> = counts.iter().map(|&c| c + alpha).collect();
        for r in 0..n {
            let row = &mut probs[r * n..(r + 1) * n];
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            } else {
                // Unseen state: uniform over END to guarantee termination.
                row[vocab] = 1.0;
            }
        }
        MarkovChain { vocab, probs }
    }

    /// The vocabulary size the chain was fitted with.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The transition probability from `from` to `to` (use `vocab` for
    /// START on `from` and END on `to`).
    ///
    /// # Panics
    ///
    /// Panics if either index exceeds `vocab`.
    pub fn prob(&self, from: usize, to: usize) -> f64 {
        let n = self.vocab + 1;
        assert!(from < n && to < n, "state out of range");
        self.probs[from * n + to]
    }

    /// Samples one path (may be empty if END is drawn immediately); always
    /// terminates within `max_len` tokens.
    pub fn generate(&self, rng: &mut StdRng, max_len: usize) -> Vec<usize> {
        let n = self.vocab + 1;
        let mut out = Vec::new();
        let mut state = self.vocab; // START
        while out.len() < max_len {
            let row = &self.probs[state * n..(state + 1) * n];
            let mut x: f64 = rng.gen();
            let mut next = self.vocab;
            for (t, &p) in row.iter().enumerate() {
                if x < p {
                    next = t;
                    break;
                }
                x -= p;
            }
            if next == self.vocab {
                break; // END
            }
            out.push(next);
            state = next;
        }
        out
    }

    /// Generates up to `count` *unique* paths not present in `exclude`,
    /// giving up after `count * 50` attempts (scarce chains may not have
    /// enough entropy).
    pub fn generate_unique(
        &self,
        rng: &mut StdRng,
        count: usize,
        max_len: usize,
        exclude: &HashSet<Vec<usize>>,
    ) -> Vec<Vec<usize>> {
        let mut seen = exclude.clone();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count.saturating_mul(50) {
            if out.len() >= count {
                break;
            }
            let p = self.generate(rng, max_len);
            if p.len() >= 2 && seen.insert(p.clone()) {
                out.push(p);
            }
        }
        out
    }
}

/// An *online* Markov generator arm for the self-training daemon.
///
/// [`MarkovChain::fit`] is a batch constructor; the label factory instead
/// streams sampled paths in as designs are labeled and periodically draws
/// synthetic paths biased toward the transition statistics seen so far.
/// `MarkovArm` keeps the raw transition counts incrementally
/// ([`observe`](Self::observe)) and rebuilds the normalized chain lazily,
/// only when generation is requested after new observations — so
/// observing is O(path length) and generation amortizes the O(vocab²)
/// normalization across a whole batch.
///
/// Determinism: counts depend only on the multiset of observed
/// transitions (addition of whole counts is exact in f64 well past any
/// realistic corpus size), and generation consumes a caller-provided
/// seeded [`StdRng`], so identical observation sequences + seeds yield
/// identical paths regardless of when the lazy rebuild happens.
#[derive(Debug, Clone)]
pub struct MarkovArm {
    vocab: usize,
    alpha: f64,
    counts: Vec<f64>,
    observed: usize,
    chain: Option<MarkovChain>,
}

impl MarkovArm {
    /// Creates an empty arm over `vocab` token ids with Laplace smoothing
    /// `alpha` applied at (re)build time.
    ///
    /// # Panics
    ///
    /// Panics if `vocab == 0`.
    pub fn new(vocab: usize, alpha: f64) -> Self {
        assert!(vocab > 0, "empty vocabulary");
        let n = vocab + 1;
        MarkovArm { vocab, alpha, counts: vec![0.0; n * n], observed: 0, chain: None }
    }

    /// Folds one real path's transitions into the counts. Tokens `>= vocab`
    /// are skipped (the arm observes whatever subset of the path falls in
    /// its vocabulary) and an empty path is a no-op.
    pub fn observe(&mut self, path: &[usize]) {
        if path.is_empty() {
            return;
        }
        let n = self.vocab + 1;
        let mut prev = self.vocab; // START
        let mut any = false;
        for &t in path {
            if t >= self.vocab {
                continue;
            }
            self.counts[prev * n + t] += 1.0;
            prev = t;
            any = true;
        }
        if !any {
            return;
        }
        self.counts[prev * n + self.vocab] += 1.0; // END
        self.observed += 1;
        self.chain = None; // stale: rebuild lazily on next generate
    }

    /// Number of paths folded in so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// The vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Draws up to `count` unique synthetic paths (each ≥ 2 tokens, none in
    /// `exclude`), rebuilding the normalized chain first if observations
    /// arrived since the last call. Returns an empty vector until at least
    /// one path has been observed — the daemon treats that as "arm not
    /// warmed up yet" rather than sampling from pure smoothing noise.
    pub fn generate_batch(
        &mut self,
        rng: &mut StdRng,
        count: usize,
        max_len: usize,
        exclude: &HashSet<Vec<usize>>,
    ) -> Vec<Vec<usize>> {
        if self.observed == 0 || count == 0 {
            return Vec::new();
        }
        if self.chain.is_none() {
            self.chain = Some(MarkovChain::from_counts(self.vocab, &self.counts, self.alpha));
        }
        match &self.chain {
            Some(chain) => chain.generate_unique(rng, count, max_len, exclude),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> MarkovChain {
        // Deterministic training corpus: 0 -> 1 -> 2 always.
        let paths = vec![vec![0, 1, 2]; 10];
        MarkovChain::fit(3, &paths, 0.0)
    }

    #[test]
    fn learns_deterministic_transitions() {
        let mc = chain();
        assert!((mc.prob(0, 1) - 1.0).abs() < 1e-12);
        assert!((mc.prob(1, 2) - 1.0).abs() < 1e-12);
        assert!((mc.prob(3, 0) - 1.0).abs() < 1e-12); // START -> 0
        assert!((mc.prob(2, 3) - 1.0).abs() < 1e-12); // 2 -> END
    }

    #[test]
    fn generates_the_learned_path() {
        let mc = chain();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(mc.generate(&mut rng, 16), vec![0, 1, 2]);
    }

    #[test]
    fn smoothing_spreads_probability() {
        let paths = vec![vec![0, 1]; 5];
        let mc = MarkovChain::fit(3, &paths, 1.0);
        assert!(mc.prob(0, 2) > 0.0);
        assert!(mc.prob(0, 1) > mc.prob(0, 2));
    }

    #[test]
    fn rows_are_distributions() {
        let mc = MarkovChain::fit(4, &[vec![0, 1, 2, 3], vec![3, 2, 1]], 0.5);
        for from in 0..=4 {
            let s: f64 = (0..=4).map(|to| mc.prob(from, to)).sum();
            assert!((s - 1.0).abs() < 1e-9, "row {from} sums to {s}");
        }
    }

    #[test]
    fn generation_respects_max_len() {
        // A chain that loops 0 -> 0 forever.
        let mc = MarkovChain::fit(1, &[vec![0; 100]], 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(mc.generate(&mut rng, 8).len() <= 8);
    }

    #[test]
    fn unique_generation_excludes_training_paths() {
        let paths: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![0, 2, 1], vec![1, 0, 2]];
        let mc = MarkovChain::fit(3, &paths, 0.3);
        let mut rng = StdRng::seed_from_u64(9);
        let exclude: HashSet<Vec<usize>> = paths.into_iter().collect();
        let generated = mc.generate_unique(&mut rng, 10, 8, &exclude);
        for g in &generated {
            assert!(!exclude.contains(g), "{g:?} is a training path");
            assert!(g.len() >= 2);
        }
        let set: HashSet<_> = generated.iter().cloned().collect();
        assert_eq!(set.len(), generated.len(), "duplicates in output");
    }

    #[test]
    fn unseen_state_terminates() {
        // Token 2 never appears in training; smoothing off.
        let mc = MarkovChain::fit(3, &[vec![0, 1]], 0.0);
        assert!((mc.prob(2, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_counts_matches_fit() {
        let paths = vec![vec![0, 1, 2], vec![0, 2, 1], vec![1, 0, 2]];
        let fitted = MarkovChain::fit(3, &paths, 0.25);
        let n = 4;
        let mut counts = vec![0.0; n * n];
        for p in &paths {
            let mut prev = 3;
            for &t in p {
                counts[prev * n + t] += 1.0;
                prev = t;
            }
            counts[prev * n + 3] += 1.0;
        }
        let rebuilt = MarkovChain::from_counts(3, &counts, 0.25);
        for from in 0..n {
            for to in 0..n {
                assert_eq!(
                    fitted.prob(from, to).to_bits(),
                    rebuilt.prob(from, to).to_bits(),
                    "prob({from},{to}) differs"
                );
            }
        }
    }

    #[test]
    fn arm_is_cold_until_observed() {
        let mut arm = MarkovArm::new(4, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(arm.generate_batch(&mut rng, 8, 8, &HashSet::new()).is_empty());
        arm.observe(&[]); // no-op
        arm.observe(&[9, 10]); // all out of vocab: still cold
        assert_eq!(arm.observed(), 0);
        assert!(arm.generate_batch(&mut rng, 8, 8, &HashSet::new()).is_empty());
    }

    #[test]
    fn arm_matches_batch_fit_generation() {
        // Observing paths one at a time must produce the exact chain that
        // a batch fit on the same corpus produces.
        let paths = vec![vec![0, 1, 2], vec![0, 2, 1], vec![1, 0, 2], vec![2, 1, 0]];
        let mut arm = MarkovArm::new(3, 0.3);
        for p in &paths {
            arm.observe(p);
        }
        assert_eq!(arm.observed(), paths.len());
        let exclude: HashSet<Vec<usize>> = paths.iter().cloned().collect();
        let mut rng_a = StdRng::seed_from_u64(42);
        let from_arm = arm.generate_batch(&mut rng_a, 6, 8, &exclude);
        let batch = MarkovChain::fit(3, &paths, 0.3);
        let mut rng_b = StdRng::seed_from_u64(42);
        let from_fit = batch.generate_unique(&mut rng_b, 6, 8, &exclude);
        assert_eq!(from_arm, from_fit);
        assert!(!from_arm.is_empty());
    }

    #[test]
    fn arm_rebuild_is_lazy_and_deterministic() {
        // Interleaving observe/generate must not change what a given
        // observation set generates for a given seed.
        let mut interleaved = MarkovArm::new(3, 0.2);
        interleaved.observe(&[0, 1, 2]);
        let mut warmup_rng = StdRng::seed_from_u64(1);
        let _ = interleaved.generate_batch(&mut warmup_rng, 2, 8, &HashSet::new());
        interleaved.observe(&[2, 1, 0]);

        let mut direct = MarkovArm::new(3, 0.2);
        direct.observe(&[0, 1, 2]);
        direct.observe(&[2, 1, 0]);

        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        assert_eq!(
            interleaved.generate_batch(&mut rng_a, 4, 8, &HashSet::new()),
            direct.generate_batch(&mut rng_b, 4, 8, &HashSet::new()),
        );
    }
}
