//! # sns-genmodel
//!
//! Generative models for circuit-path data augmentation (§4.2 of the SNS
//! paper). Real hardware designs are scarce, so SNS augments the ~684
//! directly-sampled complete circuit paths with ~4096 synthetic ones from
//! two generators:
//!
//! * [`MarkovChain`] — a first-order transition-matrix model (§4.2.1),
//!   "simple and effective", noisier and less biased;
//! * [`SeqGan`] — a sequence GAN (Yu et al. 2017, §4.2.2): a GRU generator
//!   MLE-pretrained on real paths and then trained adversarially with
//!   REINFORCE against a GRU discriminator, producing longer, more
//!   coherent paths.
//!
//! Both generate token-id sequences over the GraphIR vocabulary;
//! [`PathValidator`] filters them down to plausible *complete* circuit
//! paths (terminal endpoints, non-terminal interior).

pub mod markov;
pub mod seqgan;
pub mod validate;

pub use markov::{MarkovArm, MarkovChain};
pub use seqgan::{SeqGan, SeqGanConfig, SeqGanStats};
pub use validate::PathValidator;
