//! Filtering generated sequences down to plausible complete circuit paths.

use sns_graphir::Vocab;

/// Validates that a token sequence is a plausible *complete circuit path*:
/// at least two tokens, terminal (io/dff) endpoints, non-terminal interior.
///
/// Generated sequences that fail are discarded before labeling — the same
/// structural constraint Algorithm 1 guarantees for directly-sampled paths.
///
/// # Example
///
/// ```rust
/// use sns_genmodel::PathValidator;
/// use sns_graphir::{Vocab, Vertex, VocabType};
///
/// let vocab = Vocab::new();
/// let v = PathValidator::new(&vocab);
/// let io8 = vocab.token_id(Vertex::new(VocabType::Io, 8)).unwrap();
/// let mul16 = vocab.token_id(Vertex::new(VocabType::Mul, 16)).unwrap();
/// let dff16 = vocab.token_id(Vertex::new(VocabType::Dff, 16)).unwrap();
/// assert!(v.is_complete_path(&[io8, mul16, dff16]));
/// assert!(!v.is_complete_path(&[mul16, dff16]));     // starts mid-logic
/// assert!(!v.is_complete_path(&[io8, dff16, dff16])); // terminal interior
/// ```
#[derive(Debug, Clone)]
pub struct PathValidator {
    terminal: Vec<bool>,
}

impl PathValidator {
    /// Builds a validator for a vocabulary.
    pub fn new(vocab: &Vocab) -> Self {
        let terminal = vocab.iter().map(|v| v.vtype.is_terminal()).collect();
        PathValidator { terminal }
    }

    /// Whether `tokens` forms a structurally valid complete circuit path.
    /// Out-of-range ids fail validation.
    pub fn is_complete_path(&self, tokens: &[usize]) -> bool {
        if tokens.len() < 2 {
            return false;
        }
        if tokens.iter().any(|&t| t >= self.terminal.len()) {
            return false;
        }
        let first = self.terminal[tokens[0]];
        let last = self.terminal[*tokens.last().expect("len >= 2")];
        if !first || !last {
            return false;
        }
        tokens[1..tokens.len() - 1].iter().all(|&t| !self.terminal[t])
    }

    /// Retains only the valid complete paths from `candidates`.
    pub fn filter(&self, candidates: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        candidates.into_iter().filter(|c| self.is_complete_path(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_graphir::{Vertex, VocabType};

    fn ids() -> (PathValidator, usize, usize, usize) {
        let vocab = Vocab::new();
        let v = PathValidator::new(&vocab);
        let io = vocab.token_id(Vertex::new(VocabType::Io, 8)).unwrap();
        let add = vocab.token_id(Vertex::new(VocabType::Add, 16)).unwrap();
        let dff = vocab.token_id(Vertex::new(VocabType::Dff, 16)).unwrap();
        (v, io, add, dff)
    }

    #[test]
    fn accepts_proper_paths() {
        let (v, io, add, dff) = ids();
        assert!(v.is_complete_path(&[io, add, dff]));
        assert!(v.is_complete_path(&[dff, add, add, io]));
        assert!(v.is_complete_path(&[dff, dff])); // direct register-to-register
    }

    #[test]
    fn rejects_malformed_paths() {
        let (v, io, add, dff) = ids();
        assert!(!v.is_complete_path(&[]));
        assert!(!v.is_complete_path(&[io]));
        assert!(!v.is_complete_path(&[add, add, dff]));
        assert!(!v.is_complete_path(&[io, add, add]));
        assert!(!v.is_complete_path(&[io, dff, io]));
        assert!(!v.is_complete_path(&[io, 9999, dff]));
    }

    #[test]
    fn filter_keeps_only_valid() {
        let (v, io, add, dff) = ids();
        let out = v.filter(vec![vec![io, add, dff], vec![add], vec![dff, io]]);
        assert_eq!(out.len(), 2);
    }
}
