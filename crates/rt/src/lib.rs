//! # sns-rt
//!
//! The hermetic runtime substrate of the SNS workspace. Everything the
//! other crates used to pull from crates.io lives here, implemented on
//! `std` alone so the whole workspace builds offline:
//!
//! * [`rng`] — a seedable xoshiro256** PRNG with the narrow `StdRng`-style
//!   surface the codebase uses (`seed_from_u64`, `gen_range`, uniform and
//!   normal draws, `shuffle`).
//! * [`json`] — a small JSON value type plus parser and printer, used for
//!   model serialization (`sns-nn`, `sns-circuitformer`, `sns-core`).
//! * [`pool`] — a scoped thread pool with order-preserving `par_map`
//!   primitives, used by training minibatches, dataset labeling, and the
//!   parallel path-inference hot path. Thread count defaults honour the
//!   `SNS_THREADS` environment variable.
//! * [`net`] — readiness-based I/O on `poll(2)` (poll sets, a self-pipe
//!   waker, non-blocking fd control), the substrate under the
//!   `sns-serve` event-driven reactor. Unix-only.
//! * [`fsx`] — atomic file writes (temp + `rename(2)`), the publication
//!   protocol for the on-disk model zoo shared by the training daemon
//!   and serving processes.

pub mod fsx;
pub mod json;
pub mod net;
pub mod pool;
pub mod rng;

pub use json::{parse as parse_json, Json, JsonError};
pub use pool::{default_threads, par_map, par_map_chunks};
pub use rng::{SliceRandom, StdRng};
