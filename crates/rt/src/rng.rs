//! A seedable pseudo-random number generator.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded by expanding a
//! `u64` through SplitMix64 — the same construction `rand`'s
//! `SeedableRng::seed_from_u64` uses for small seeds. The API mirrors the
//! narrow slice of `rand` the workspace historically consumed, so call
//! sites read identically: `StdRng::seed_from_u64`, `gen`, `gen_range`,
//! and `SliceRandom::shuffle`.
//!
//! Streams are fully deterministic for a given seed, on every platform.
//! (They are *not* bit-compatible with the `rand` crate's `StdRng` —
//! seeded results changed once at the migration and are stable from now
//! on.)

use std::ops::Range;

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace PRNG: xoshiro256** with SplitMix64 seeding.
///
/// # Example
///
/// ```rust
/// use sns_rt::rng::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let x: f32 = rng.gen();
/// assert!((0.0..1.0).contains(&x));
/// let i = rng.gen_range(0..10usize);
/// assert!(i < 10);
/// // Same seed, same stream.
/// let mut rng2 = StdRng::seed_from_u64(42);
/// let y: f32 = rng2.gen();
/// assert_eq!(x, y);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = splitmix64(&mut sm);
        }
        // All-zero state is the one degenerate case; SplitMix64 cannot
        // produce four zeros from any seed, but keep the guard explicit.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw over the type's unit interval (`[0, 1)` for floats).
    #[inline]
    pub fn gen<T: Uniform01>(&mut self) -> T {
        T::uniform01(self)
    }

    /// A uniform draw from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// A draw from N(0, `std`²) via Box–Muller.
    pub fn normal_f32(&mut self, std: f32) -> f32 {
        let u1: f32 = self.gen_range(1e-7f32..1.0);
        let u2: f32 = self.gen_range(0.0f32..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
    }

    /// A uniform index in `0..n` without modulo bias (Lemire's method,
    /// simplified to the multiply-high reduction — bias is < 2⁻⁶⁴·n,
    /// unobservable at the workspace's scales and fully deterministic).
    #[inline]
    fn index(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// An index drawn with probability proportional to `weights[i]`.
    ///
    /// Zero-weight entries are never picked.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "pick_weighted needs a positive total weight");
        let mut r = self.index(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = w as u64;
            if r < w {
                return i;
            }
            r -= w;
        }
        weights.len() - 1
    }
}

/// Types with a canonical uniform draw (`[0, 1)` for floats).
pub trait Uniform01 {
    /// Draws one value.
    fn uniform01(rng: &mut StdRng) -> Self;
}

impl Uniform01 for f32 {
    #[inline]
    fn uniform01(rng: &mut StdRng) -> f32 {
        // 24 mantissa bits → exact dyadic rationals in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Uniform01 for f64 {
    #[inline]
    fn uniform01(rng: &mut StdRng) -> f64 {
        // 53 mantissa bits → exact dyadic rationals in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform01 for bool {
    #[inline]
    fn uniform01(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types drawable uniformly from a half-open `Range`.
pub trait RangeSample: Sized {
    /// Draws one value from `range`.
    fn sample_range(rng: &mut StdRng, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample_int {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range in gen_range");
                // Widen through i128/u128 so signed spans cannot overflow.
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + rng.index(span) as i128) as $t
            }
        }
    )*};
}

impl_range_sample_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl RangeSample for f32 {
    #[inline]
    fn sample_range(rng: &mut StdRng, range: Range<f32>) -> f32 {
        assert!(range.start < range.end, "empty range in gen_range");
        let u: f32 = rng.gen();
        // Clamp guards the rare rounding of lo + u·(hi−lo) up to hi.
        (range.start + u * (range.end - range.start)).min(f32_prev(range.end))
    }
}

impl RangeSample for f64 {
    #[inline]
    fn sample_range(rng: &mut StdRng, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range in gen_range");
        let u: f64 = rng.gen();
        (range.start + u * (range.end - range.start)).min(f64_prev(range.end))
    }
}

/// The largest f32 strictly below `x` (for finite, non-minimal `x`).
fn f32_prev(x: f32) -> f32 {
    f32::from_bits(if x > 0.0 { x.to_bits() - 1 } else { (x.to_bits() | 0x8000_0000) + 1 })
}

/// The largest f64 strictly below `x` (for finite, non-minimal `x`).
fn f64_prev(x: f64) -> f64 {
    f64::from_bits(if x > 0.0 {
        x.to_bits() - 1
    } else {
        (x.to_bits() | 0x8000_0000_0000_0000) + 1
    })
}

/// In-place slice randomization, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle, deterministic for a given generator state.
    fn shuffle(&mut self, rng: &mut StdRng);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.index((i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.index(self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let s = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&s));
            let f = rng.gen_range(-0.25f32..0.25);
            assert!((-0.25..0.25).contains(&f), "{f}");
            let d = rng.gen_range(1e-7f64..1.0);
            assert!((1e-7..1.0).contains(&d), "{d}");
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn shuffle_permutes_and_is_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_picks_members() {
        let v = [10, 20, 30];
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn normal_draws_have_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal_f32(2.0)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(31);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn pick_weighted_tracks_weights_and_skips_zeros() {
        let mut rng = StdRng::seed_from_u64(37);
        let weights = [3, 0, 1];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[0] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        // Deterministic for a given state.
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.pick_weighted(&[1, 2, 3]), b.pick_weighted(&[1, 2, 3]));
        }
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn pick_weighted_rejects_zero_total() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.pick_weighted(&[0, 0]);
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
