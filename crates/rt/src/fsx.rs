//! Atomic file writes for on-disk artifacts readers may open mid-write.
//!
//! The model zoo (`sns-core::model_io`) is a directory shared between a
//! training daemon appending checkpoints and serving processes loading
//! them on `/admin/reload` / SIGHUP. Readers must never observe a
//! half-written weights file or manifest, so every write goes through
//! the classic temp-file-then-rename protocol: `rename(2)` within one
//! directory is atomic on POSIX, so a concurrent reader sees either the
//! old bytes or the new bytes, never a mixture.

use std::io::Write;
use std::path::Path;

/// Writes `bytes` to `path` atomically: the data lands in a sibling
/// temporary file first (same directory, so the rename cannot cross a
/// filesystem boundary) and is renamed over `path` only after a
/// successful full write.
///
/// The temporary name is derived from the destination file name plus the
/// process id, so concurrent writers in different processes do not
/// trample each other's staging files (last rename wins, atomically).
///
/// # Errors
///
/// Returns the underlying I/O error; on failure the destination is
/// untouched and the staging file is removed on a best-effort basis.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("write_atomic: path {} has no file name", path.display()),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp_name = format!(".{file_name}.tmp.{}", std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let write_all = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Push the bytes to the device before the rename publishes them,
        // so a crash cannot leave the final name pointing at a hole.
        f.sync_all()
    })();
    if let Err(e) = write_all {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("sns_fsx_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let d = tmp_dir("basic");
        let p = d.join("file.json");
        write_atomic(&p, b"one").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"one");
        write_atomic(&p, b"two").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"two");
        // No staging litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&d)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "staging files left: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_directory_is_an_error_not_a_panic() {
        let p = std::env::temp_dir().join("sns_fsx_no_such_dir").join("x").join("file");
        assert!(write_atomic(&p, b"data").is_err());
    }

    #[test]
    fn bare_file_name_is_an_error_free_zone() {
        // A path with no file name is rejected cleanly.
        assert!(write_atomic(Path::new("/"), b"data").is_err());
    }
}
