//! A small JSON value type with a parser and printer.
//!
//! This replaces `serde`/`serde_json` for the workspace's model
//! serialization. The printer emits the same shapes serde's derive would
//! (objects with field order preserved, tuples as arrays), so files
//! written before the migration still load. Numbers round-trip exactly:
//! integers are kept as `i64`/`u64`, floats print with Rust's
//! shortest-round-trip formatting.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64` (all negative integers land here).
    Int(i64),
    /// A non-negative integer exceeding `i64::MAX`.
    UInt(u64),
    /// Any number written with a fraction or exponent.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when printing.
    Obj(Vec<(String, Json)>),
}

/// A parse or extraction error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    // ---- constructors ----

    /// An object builder preserving field order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array of f32s (stored exactly, as f64 is a superset of f32).
    pub fn from_f32_slice(values: &[f32]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v as f64)).collect())
    }

    // ---- accessors ----

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, found {}", other.kind())),
        }
    }

    /// The numeric value as f64 (any numeric variant).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::UInt(u) => Ok(*u as f64),
            Json::Num(n) => Ok(*n),
            other => err(format!("expected number, found {}", other.kind())),
        }
    }

    /// The numeric value as f32.
    pub fn as_f32(&self) -> Result<f32, JsonError> {
        Ok(self.as_f64()? as f32)
    }

    /// The numeric value as u64; floats must be exact integers.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Int(i) if *i >= 0 => Ok(*i as u64),
            Json::UInt(u) => Ok(*u),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Ok(*n as u64)
            }
            other => err(format!("expected unsigned integer, found {}", other.print())),
        }
    }

    /// The numeric value as usize.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        usize::try_from(self.as_u64()?).map_err(|_| JsonError("integer overflows usize".into()))
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, found {}", other.kind())),
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => err(format!("expected array, found {}", other.kind())),
        }
    }

    /// A fixed-length `[f32; N]` from an array of numbers.
    pub fn as_f32_array<const N: usize>(&self) -> Result<[f32; N], JsonError> {
        let arr = self.as_arr()?;
        if arr.len() != N {
            return err(format!("expected array of {N} numbers, found {}", arr.len()));
        }
        let mut out = [0.0f32; N];
        for (o, v) in out.iter_mut().zip(arr) {
            *o = v.as_f32()?;
        }
        Ok(out)
    }

    /// A `Vec<f32>` from an array of numbers.
    pub fn as_f32_vec(&self) -> Result<Vec<f32>, JsonError> {
        self.as_arr()?.iter().map(|v| v.as_f32()).collect()
    }

    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError(format!("missing field `{key}`"))),
            other => err(format!("expected object, found {}", other.kind())),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::UInt(_) | Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    // ---- printing ----

    /// Serializes to compact JSON text.
    pub fn print(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes to indented JSON text (2-space indent, trailing
    /// newline) — for snapshot files and anything a human diffs. Parses
    /// back to the same value as [`print`](Self::print), bit for bit.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            leaf => leaf.write(out),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(n) => write_f64(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_f64(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; serde_json errors here, we print null like
        // browsers do. Model files never contain non-finite values.
        out.push_str("null");
        return;
    }
    // `{}` on f64 is the shortest string that parses back to the same
    // value; add a decimal point so the token re-parses as a float.
    let s = format!("{n}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

/// Maximum container nesting depth the parser accepts.
///
/// The parser is recursive, so without a bound an adversarial document
/// like `"[".repeat(1 << 20)` would overflow the stack instead of
/// returning an error. 128 is far deeper than any model file and keeps
/// the recursion worst case at a few kilobytes of stack.
pub const MAX_DEPTH: usize = 128;

/// Parses a JSON document.
///
/// Total on arbitrary input: any string either parses or returns an
/// error — malformed syntax, truncation, nesting deeper than
/// [`MAX_DEPTH`], and numbers outside the finite `f64` range are all
/// reported as [`JsonError`]s, never panics.
///
/// # Errors
///
/// Returns a [`JsonError`] naming the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Handle UTF-16 surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 1; // past the backslash; hex4 skips the `u`
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        // High surrogate not followed by a
                                        // low surrogate — unpaired, invalid.
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return err("invalid \\u escape"),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        self.pos += 1; // past the `u`
        if self.pos + 4 > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError("invalid \\u escape".into()))?;
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| JsonError("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        match text.parse::<f64>() {
            // JSON has no Inf/NaN, and a non-finite value would not
            // survive a round-trip (the printer writes `null`), so
            // overflowing literals like `1e999` are rejected rather than
            // saturated.
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            Ok(_) => err(format!("number out of f64 range at byte {start}")),
            Err(_) => err(format!("invalid number at byte {start}")),
        }
    }
}

/// Sorts object keys recursively — handy for order-insensitive equality
/// in tests.
pub fn normalized(v: &Json) -> Json {
    match v {
        Json::Obj(fields) => {
            let map: BTreeMap<String, Json> =
                fields.iter().map(|(k, v)| (k.clone(), normalized(v))).collect();
            Json::Obj(map.into_iter().collect())
        }
        Json::Arr(items) => Json::Arr(items.iter().map(normalized).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "1e-9", "\"hi\""] {
            let v = parse(text).unwrap();
            let back = parse(&v.print()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn integers_parse_exactly() {
        assert_eq!(parse("9007199254740993").unwrap().as_u64().unwrap(), 9007199254740993);
        assert_eq!(parse("18446744073709551615").unwrap().as_u64().unwrap(), u64::MAX);
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
    }

    #[test]
    fn f32_values_survive_the_f64_detour() {
        for &v in &[1e-4f32, 0.1, std::f32::consts::PI, -7.25e-12, 3.4e38, f32::MIN_POSITIVE] {
            let j = Json::Num(v as f64);
            let back = parse(&j.print()).unwrap().as_f32().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"tensors":[["linear3x2.w",3,2,[0.5,-1.0,2.25,0.0,1e-7,9.0]]],"ok":true}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.print()).unwrap(), v);
        let tensors = v.get("tensors").unwrap().as_arr().unwrap();
        let first = tensors[0].as_arr().unwrap();
        assert_eq!(first[0].as_str().unwrap(), "linear3x2.w");
        assert_eq!(first[1].as_usize().unwrap(), 3);
        assert_eq!(first[3].as_f32_vec().unwrap().len(), 6);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1F600}𝄞";
        let v = Json::Str(s.to_string());
        assert_eq!(parse(&v.print()).unwrap().as_str().unwrap(), s);
        // Surrogate-pair escapes parse too.
        assert_eq!(parse(r#""😀""#).unwrap().as_str().unwrap(), "😀");
    }

    #[test]
    fn garbage_is_rejected() {
        for text in ["{not json", "[1,", "\"open", "{\"a\":}", "12x", "", "[1] trailing"] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn missing_fields_are_named() {
        let v = parse(r#"{"a":1}"#).unwrap();
        let e = v.get("b").unwrap_err();
        assert!(e.0.contains("`b`"), "{e}");
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" {\n\t\"a\" : [ 1 , 2 ] ,\r\n \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn normalized_sorts_keys() {
        let a = parse(r#"{"b":1,"a":{"d":2,"c":3}}"#).unwrap();
        let b = parse(r#"{"a":{"c":3,"d":2},"b":1}"#).unwrap();
        assert_eq!(normalized(&a), normalized(&b));
    }
}
