//! Readiness-based I/O primitives on `poll(2)` — the hermetic substrate
//! under the `sns-serve` reactor.
//!
//! Like the rest of `sns-rt`, this module replaces what other stacks
//! would pull from crates.io (`mio`, `polling`) with a thin layer over
//! what the platform already links: `std` links libc, libc exports
//! `poll`, `pipe` and `fcntl`, and that is everything a single-threaded
//! readiness loop needs.
//!
//! * [`poll`] — wait for readiness on a set of [`PollFd`]s with an
//!   optional timeout.
//! * [`Waker`] — a self-pipe that other threads write one byte into to
//!   make a blocked [`poll`] return (the classic self-pipe trick).
//! * [`Interest`] constants ([`POLLIN`], [`POLLOUT`]) and the error
//!   revents ([`POLLERR`], [`POLLHUP`], [`POLLNVAL`]).
//!
//! Everything here is Unix-only (`#[cfg(unix)]`); the workspace targets
//! Linux containers and the `sns-serve` signal handling is already
//! Unix-gated the same way.

#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Readable interest / readiness (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable interest / readiness (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition readiness (output only).
pub const POLLERR: i16 = 0x008;
/// Peer hang-up readiness (output only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd readiness (output only).
pub const POLLNVAL: i16 = 0x020;

/// One entry in a [`poll`] set, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events (filled in by [`poll`]).
    pub revents: i16,
}

impl PollFd {
    /// A new entry watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// Whether any of `mask`'s bits came back in `revents`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the fd reported an error/hangup condition. `POLLHUP`
    /// alone is *not* included: a half-closed peer still delivers its
    /// final bytes through `POLLIN` reads first.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

mod sys {
    use std::ffi::{c_int, c_ulong};

    extern "C" {
        pub fn poll(fds: *mut super::PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;
}

/// Waits until at least one entry in `fds` is ready, an error condition
/// is pending, or `timeout` elapses (`None` = wait forever). Returns the
/// number of entries with non-zero `revents` (0 on timeout).
///
/// `EINTR` is retried internally with the timeout re-derived, so callers
/// never observe spurious interrupted-syscall errors.
///
/// # Errors
///
/// Any `poll(2)` failure other than `EINTR` (e.g. `EINVAL` for an
/// oversized set) is returned as the corresponding [`io::Error`].
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let deadline = timeout.map(|t| std::time::Instant::now() + t);
    loop {
        let timeout_ms: i32 = match deadline {
            None => -1,
            Some(d) => {
                let left = d.saturating_duration_since(std::time::Instant::now());
                // Round up so a 0.5ms remainder never busy-spins.
                i32::try_from(left.as_millis().saturating_add(1)).unwrap_or(i32::MAX)
            }
        };
        let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            return Ok(0);
        }
    }
}

/// Puts a raw fd into non-blocking mode (used for the listener, accepted
/// sockets, and the waker pipe ends).
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// A self-pipe waker: [`wake`](Self::wake) from any thread makes a
/// [`poll`] that includes [`fd`](Self::fd) with [`POLLIN`] return
/// immediately. Both pipe ends are non-blocking, so `wake` never blocks
/// even if the reactor has not drained for a while (the pipe simply
/// stays full — one pending byte is enough to level-trigger `POLLIN`).
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Creates the pipe pair.
    ///
    /// # Errors
    ///
    /// Returns the OS error if `pipe(2)` or `fcntl(2)` fails (fd
    /// exhaustion, essentially).
    pub fn new() -> io::Result<Waker> {
        let mut fds: [std::ffi::c_int; 2] = [-1, -1];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let waker = Waker { read_fd: fds[0], write_fd: fds[1] };
        set_nonblocking(waker.read_fd)?;
        set_nonblocking(waker.write_fd)?;
        Ok(waker)
    }

    /// The fd to include (with [`POLLIN`]) in the reactor's poll set.
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the poller. Safe and non-blocking from any thread; a full
    /// pipe (reactor busy) is fine — the pending bytes already guarantee
    /// the next poll returns immediately.
    pub fn wake(&self) {
        let byte = [1u8];
        // EAGAIN (pipe full) and EINTR both leave a wake already pending.
        unsafe { sys::write(self.write_fd, byte.as_ptr(), 1) };
    }

    /// Drains all pending wake bytes; call once per poll iteration when
    /// the waker fd reported readable.
    pub fn drain(&self) {
        let mut scratch = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.read_fd, scratch.as_mut_ptr(), scratch.len()) };
            if n <= 0 {
                return; // empty (EAGAIN), closed, or interrupted — all done
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

// Both ends are plain fds used via syscalls only.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn poll_times_out_on_idle_fds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let start = Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn poll_sees_an_incoming_connection_and_readable_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();

        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));

        let (mut server_side, _) = listener.accept().unwrap();
        client.write_all(b"hi").unwrap();
        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN | POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN), "bytes pending");
        assert!(fds[0].ready(POLLOUT), "fresh socket is writable");
        let mut buf = [0u8; 2];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn waker_wakes_a_blocked_poll_and_drains() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        // Nothing pending yet.
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(10))).unwrap(), 0);

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
        });
        let start = Instant::now();
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(start.elapsed() < Duration::from_secs(4), "woke early, not by timeout");
        t.join().unwrap();

        waker.drain();
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(10))).unwrap(), 0, "drained");
    }

    #[test]
    fn waker_survives_many_wakes_without_blocking() {
        let waker = Waker::new().unwrap();
        // Far beyond the pipe capacity: wake() must never block or fail.
        for _ in 0..100_000 {
            waker.wake();
        }
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(100))).unwrap(), 1);
        waker.drain();
    }

    #[test]
    fn set_nonblocking_makes_reads_return_wouldblock() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        set_nonblocking(server_side.as_raw_fd()).unwrap();
        let mut buf = [0u8; 8];
        match server_side.read(&mut buf) {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            Ok(n) => panic!("expected WouldBlock, read {n} bytes"),
        }
    }
}
