//! Scoped data-parallelism on `std::thread` alone.
//!
//! Two order-preserving primitives cover every parallel site in the
//! workspace:
//!
//! * [`par_map`] — map a function over items with dynamic (work-stealing)
//!   scheduling; results come back in input order, so callers observe
//!   exactly the serial semantics.
//! * [`par_map_chunks`] — map over contiguous chunks, for callers that
//!   reduce per-worker state (e.g. private gradient buffers).
//!
//! Thread counts default to [`default_threads`], which honours the
//! `SNS_THREADS` environment variable.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The default worker count: `SNS_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism, capped at 16.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SNS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

/// Worker count for the virtual synthesizer's internal parallelism:
/// `SNS_SYNTH_THREADS` if set to a positive integer, otherwise
/// [`default_threads`]. Split out from the inference knob so a serving
/// deployment can give synthesis (label generation, conformance soaks) a
/// different budget than model inference. Synthesis results are
/// bit-identical at any value — this is purely a throughput knob.
pub fn synth_threads() -> usize {
    if let Ok(v) = std::env::var("SNS_SYNTH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    default_threads()
}

/// The default inference batch size: `SNS_BATCH` if set to a positive
/// integer, otherwise 32.
///
/// This is the number of sequences packed into one batched Circuitformer
/// forward pass. Predictions are bit-identical at any value (batching is
/// per-row / per-span exact), so it is purely a throughput knob.
pub fn default_batch() -> usize {
    if let Ok(v) = std::env::var("SNS_BATCH") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    32
}

/// Maps `f` over `items` on up to `threads` workers, returning results in
/// input order.
///
/// Items are claimed one at a time from a shared counter, so uneven item
/// costs (long vs. short circuit paths) balance automatically. With
/// `threads <= 1`, runs inline with no thread machinery at all — callers
/// get identical results either way as long as `f` is pure.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut got: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        got.push((i, f(&items[i])));
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_map worker panicked")).collect()
    });
    let mut indexed: Vec<(usize, R)> =
        per_worker.drain(..).flatten().collect();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Splits `items` into at most `threads` contiguous chunks and maps `f`
/// over each chunk on its own worker, returning per-chunk results in
/// chunk order.
///
/// The chunking is a pure function of `(items.len(), threads)`, so a
/// caller that merges the per-chunk results with an associative,
/// commutative-enough operation (summed gradients, concatenation) gets
/// results independent of scheduling.
pub fn par_map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> =
            items.chunks(chunk).map(|part| s.spawn(|| f(part))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map_chunks worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let parallel = par_map(&items, threads, |&x| x * x);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], 8, |&x| x + 1), vec![6]);
    }

    #[test]
    fn par_map_balances_uneven_work() {
        // One expensive item among many cheap ones; just assert
        // correctness (scheduling is an implementation detail).
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 4, |&x| {
            if x == 0 {
                (0..200_000u64).fold(0, |a, b| a ^ b) + x
            } else {
                x
            }
        });
        assert_eq!(out[1..], items[1..]);
    }

    #[test]
    fn par_map_chunks_covers_every_item_once() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 5, 16] {
            let sums = par_map_chunks(&items, threads, |part| part.iter().sum::<usize>());
            assert!(sums.len() <= threads.max(1));
            assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        }
    }

    #[test]
    fn chunk_concatenation_matches_serial() {
        let items: Vec<i32> = (0..57).collect();
        let chunks = par_map_chunks(&items, 4, |part| {
            part.iter().map(|&x| x * 2).collect::<Vec<_>>()
        });
        let flat: Vec<i32> = chunks.into_iter().flatten().collect();
        let serial: Vec<i32> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(flat, serial);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn default_batch_is_positive() {
        assert!(default_batch() >= 1);
    }
}
