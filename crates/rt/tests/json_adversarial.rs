//! Adversarial tests for `sns_rt::json` — the parsing substrate of the
//! `sns-serve` HTTP daemon, where every byte comes from an untrusted
//! network peer. The parser must be *total*: any input either parses or
//! returns a `JsonError`; it must never panic, overflow the stack, or
//! accept a value that does not survive a round-trip.
//!
//! All fuzz loops are seeded (`sns_rt::rng::StdRng`), so failures
//! reproduce exactly.

use sns_rt::json::{normalized, parse, Json, MAX_DEPTH};
use sns_rt::rng::StdRng;

// ---- generators ----

/// A random JSON value with bounded depth and size.
fn gen_value(rng: &mut StdRng, depth: usize) -> Json {
    let choice = if depth == 0 { rng.gen_range(0..6usize) } else { rng.gen_range(0..8usize) };
    match choice {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u32() & 1 == 0),
        2 => Json::Int(rng.next_u64() as i64),
        3 => Json::UInt((i64::MAX as u64).wrapping_add(rng.next_u64() % (1 << 40))),
        4 => gen_finite_num(rng),
        5 => Json::Str(gen_string(rng)),
        6 => {
            let n = rng.gen_range(0..4usize);
            Json::Arr((0..n).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..4usize);
            Json::Obj((0..n).map(|i| (format!("k{i}_{}", gen_string(rng)), gen_value(rng, depth - 1))).collect())
        }
    }
}

/// A finite f64 spanning many magnitudes (subnormals through 1e300).
fn gen_finite_num(rng: &mut StdRng) -> Json {
    loop {
        let bits = rng.next_u64();
        let v = f64::from_bits(bits);
        if v.is_finite() {
            return Json::Num(v);
        }
    }
}

/// A string mixing ASCII, quotes, backslashes, control chars, and
/// multi-byte scalars.
fn gen_string(rng: &mut StdRng) -> String {
    let n = rng.gen_range(0..12usize);
    (0..n)
        .map(|_| match rng.gen_range(0..8u32) {
            0 => '"',
            1 => '\\',
            2 => char::from_u32(rng.gen_range(0..0x20u32)).unwrap(),
            3 => '😀',
            4 => '𝄞',
            5 => char::from_u32(0x7f).unwrap(),
            _ => char::from_u32(rng.gen_range(0x20..0x7fu32)).unwrap(),
        })
        .collect()
}

// ---- round-trip property ----

#[test]
fn generated_values_round_trip_exactly() {
    let mut rng = StdRng::seed_from_u64(0x5EED_1504);
    for i in 0..2000 {
        let v = gen_value(&mut rng, 5);
        let text = v.print();
        let back = parse(&text).unwrap_or_else(|e| panic!("iter {i}: {e}\n{text}"));
        assert_eq!(back, v, "iter {i}: round-trip drift\n{text}");
    }
}

#[test]
fn pretty_printing_round_trips_exactly_too() {
    // The golden-snapshot files are written with `pretty()`; it must
    // parse back to the identical value (same f64 bits) as `print()`.
    let mut rng = StdRng::seed_from_u64(0x9E77_40BE);
    for i in 0..500 {
        let v = gen_value(&mut rng, 5);
        let text = v.pretty();
        let back = parse(&text).unwrap_or_else(|e| panic!("iter {i}: {e}\n{text}"));
        assert_eq!(back, v, "iter {i}: pretty round-trip drift\n{text}");
    }
}

#[test]
fn printed_objects_round_trip_through_normalization() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..200 {
        let v = gen_value(&mut rng, 4);
        let n = normalized(&v);
        // Normalization is idempotent and print-stable.
        assert_eq!(normalized(&n), n);
        assert_eq!(parse(&n.print()).unwrap(), n);
    }
}

// ---- truncation ----

#[test]
fn every_prefix_of_a_valid_document_errors_cleanly() {
    let mut rng = StdRng::seed_from_u64(0x7A11);
    for _ in 0..50 {
        let text = gen_value(&mut rng, 4).print();
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let prefix = &text[..cut];
            // Must return (ok for prefixes that happen to be valid JSON,
            // err otherwise) — never panic. The full document parses, so
            // the empty prefix at least must error.
            let _ = parse(prefix);
        }
        assert!(parse("").is_err());
    }
}

#[test]
fn truncated_escapes_and_literals_error() {
    for text in [
        "\"\\", "\"\\u", "\"\\u12", "\"\\uD83D", "\"\\uD83D\\u", "nul", "tru", "fals", "-",
        "1e", "1e+", "0.", "[", "[1", "[1,", "{", "{\"", "{\"a\"", "{\"a\":", "{\"a\":1,",
    ] {
        // `1e` / `1e+` / `0.` are lenient-parsed by Rust's f64 parser or
        // rejected — either way no panic; structural truncations must err.
        let _ = parse(text);
    }
    for text in ["[", "[1,", "{", "{\"a\":", "\"\\u12", "nul"] {
        assert!(parse(text).is_err(), "{text:?}");
    }
}

// ---- deep nesting ----

#[test]
fn pathological_nesting_errors_instead_of_overflowing_the_stack() {
    for unit in ["[", "{\"k\":"] {
        for n in [MAX_DEPTH + 1, 10_000, 1_000_000] {
            let doc = unit.repeat(n);
            let e = parse(&doc).unwrap_err();
            assert!(e.0.contains("nesting"), "{unit:?} x{n}: {e}");
        }
    }
}

#[test]
fn nesting_up_to_the_limit_parses() {
    let doc = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
    parse(&doc).expect("MAX_DEPTH nesting is legal");
    let over = format!("{}0{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
    assert!(parse(&over).is_err());
}

// ---- huge numbers ----

#[test]
fn out_of_range_numbers_are_rejected_not_saturated() {
    for text in ["1e999", "-1e999", "1e308e5", "9e99999999"] {
        let r = parse(text);
        match r {
            Err(_) => {}
            Ok(v) => panic!("{text} parsed as {v:?}"),
        }
    }
    // A 400-digit integer exceeds u64 and f64 range → clean error.
    let huge = "9".repeat(400);
    assert!(parse(&huge).is_err());
    // Near the edge of f64 range still parses and round-trips.
    let v = parse("1e308").unwrap();
    assert_eq!(parse(&v.print()).unwrap(), v);
    // u64::MAX + 1 falls back to f64 (inexact but finite, still accepted).
    assert!(parse("18446744073709551616").is_ok());
}

// ---- invalid escapes / surrogates ----

#[test]
fn invalid_escapes_error_cleanly() {
    for text in [
        r#""\x41""#,        // unknown escape
        r#""\uD800""#,      // lone high surrogate
        r#""\uDC00""#,      // lone low surrogate
        r#""\uD800\uD800""#, // high followed by high
        r#""\uD800\n""#,    // high surrogate then non-\u escape
        r#""\uZZZZ""#,      // non-hex digits
        r#""\u00""#,        // short hex run
        "\"\\",             // backslash at EOF
    ] {
        assert!(parse(text).is_err(), "{text:?} should fail");
    }
    // Paired surrogates remain fine.
    assert_eq!(parse(r#""😀""#).unwrap().as_str().unwrap(), "😀");
}

// ---- duplicate keys ----

#[test]
fn duplicate_keys_parse_deterministically_first_wins_on_get() {
    let v = parse(r#"{"a":1,"b":2,"a":3}"#).unwrap();
    // The document parses (insertion order preserved, duplicates kept —
    // printing reproduces the input), and `get` deterministically returns
    // the first occurrence.
    assert_eq!(v.get("a").unwrap().as_f64().unwrap(), 1.0);
    assert_eq!(v.print(), r#"{"a":1,"b":2,"a":3}"#);
}

// ---- byte-soup fuzz ----

#[test]
fn random_token_soup_never_panics() {
    const TOKENS: &[&str] = &[
        "{", "}", "[", "]", ",", ":", "\"", "\\", "null", "true", "false", "-", "+", ".",
        "e", "E", "0", "17", "9e9", "\"a\"", "\\u", "\\uD800", " ", "\n", "\t", "\u{1F600}",
        "\u{0}", "x",
    ];
    let mut rng = StdRng::seed_from_u64(0xF22E);
    for _ in 0..5000 {
        let n = rng.gen_range(0..24usize);
        let doc: String = (0..n).map(|_| TOKENS[rng.gen_range(0..TOKENS.len())]).collect();
        let _ = parse(&doc); // must return, never panic
    }
}

#[test]
fn mutated_valid_documents_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xD00D);
    for _ in 0..500 {
        let mut text = gen_value(&mut rng, 4).print().into_bytes();
        if text.is_empty() {
            continue;
        }
        for _ in 0..3 {
            let i = rng.gen_range(0..text.len());
            text[i] = (rng.next_u32() & 0x7f) as u8; // keep it ASCII → valid UTF-8
        }
        if let Ok(s) = String::from_utf8(text) {
            let _ = parse(&s);
        }
    }
}
