//! Label normalization for the regression targets.
//!
//! Timing, area and power span several orders of magnitude across paths
//! (and designs — Figure 6's axes are log-scale), so the Circuitformer and
//! the Aggregation MLP are trained in standardized log space.

use sns_rt::json::{Json, JsonError};

/// A per-dimension `ln → standardize` transform over the three targets
/// (timing, area, power).
///
/// # Example
///
/// ```rust
/// use sns_circuitformer::LabelScaler;
///
/// let labels = vec![[100.0, 10.0, 0.01], [1000.0, 500.0, 0.5], [250.0, 50.0, 0.05]];
/// let scaler = LabelScaler::fit(&labels);
/// let z = scaler.transform([100.0, 10.0, 0.01]);
/// let back = scaler.inverse(z);
/// for (a, b) in back.iter().zip([100.0, 10.0, 0.01]) {
///     assert!((a - b).abs() / b < 1e-4);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LabelScaler {
    mean: [f32; 3],
    std: [f32; 3],
}

/// Floor added before the log so zero labels stay finite.
const EPS: f64 = 1e-9;

impl LabelScaler {
    /// Fits the transform on raw `[timing, area, power]` labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn fit(labels: &[[f64; 3]]) -> Self {
        assert!(!labels.is_empty(), "cannot fit a scaler on no labels");
        let n = labels.len() as f64;
        let mut mean = [0.0f64; 3];
        for l in labels {
            for d in 0..3 {
                mean[d] += (l[d] + EPS).ln();
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = [0.0f64; 3];
        for l in labels {
            for d in 0..3 {
                let z = (l[d] + EPS).ln() - mean[d];
                var[d] += z * z;
            }
        }
        let mut std = [0.0f32; 3];
        for d in 0..3 {
            std[d] = ((var[d] / n).sqrt() as f32).max(1e-4);
        }
        LabelScaler { mean: [mean[0] as f32, mean[1] as f32, mean[2] as f32], std }
    }

    /// Raw label → normalized log space.
    pub fn transform(&self, raw: [f64; 3]) -> [f32; 3] {
        let mut out = [0.0f32; 3];
        for d in 0..3 {
            out[d] = (((raw[d] + EPS).ln() as f32) - self.mean[d]) / self.std[d];
        }
        out
    }

    /// Normalized log space → raw label.
    pub fn inverse(&self, z: [f32; 3]) -> [f64; 3] {
        let mut out = [0.0f64; 3];
        for d in 0..3 {
            out[d] = self.inverse_dim(d, z[d]);
        }
        out
    }

    /// Transforms a single dimension (0 = timing, 1 = area, 2 = power).
    ///
    /// # Panics
    ///
    /// Panics if `dim >= 3`.
    pub fn transform_dim(&self, dim: usize, raw: f64) -> f32 {
        (((raw + EPS).ln() as f32) - self.mean[dim]) / self.std[dim]
    }

    /// Inverts a single dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= 3`.
    pub fn inverse_dim(&self, dim: usize, z: f32) -> f64 {
        ((z * self.std[dim] + self.mean[dim]) as f64).exp() - EPS
    }

    /// The JSON form (`{"mean":[...],"std":[...]}` — the same shape the
    /// serde derive used to emit, so old model files still load).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mean", Json::from_f32_slice(&self.mean)),
            ("std", Json::from_f32_slice(&self.std)),
        ])
    }

    /// Reconstructs a scaler from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns the first missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(LabelScaler {
            mean: v.get("mean")?.as_f32_array::<3>()?,
            std: v.get("std")?.as_f32_array::<3>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_standardizes_the_fit_set() {
        let labels: Vec<[f64; 3]> =
            (1..=100).map(|i| [i as f64 * 10.0, i as f64, i as f64 * 0.001]).collect();
        let s = LabelScaler::fit(&labels);
        let mut mean = [0.0f32; 3];
        for l in &labels {
            let z = s.transform(*l);
            for d in 0..3 {
                mean[d] += z[d];
            }
        }
        for d in 0..3 {
            assert!((mean[d] / 100.0).abs() < 1e-3, "dim {d} mean {}", mean[d] / 100.0);
        }
    }

    #[test]
    fn round_trip_is_accurate() {
        let labels = vec![[400.0, 10.0, 0.01], [1200.0, 99.0, 0.2], [77.0, 3.0, 0.004]];
        let s = LabelScaler::fit(&labels);
        for l in &labels {
            let back = s.inverse(s.transform(*l));
            for d in 0..3 {
                assert!((back[d] - l[d]).abs() / l[d] < 1e-3, "dim {d}");
            }
        }
    }

    #[test]
    fn zero_labels_stay_finite() {
        let s = LabelScaler::fit(&[[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]);
        let z = s.transform([0.0, 0.0, 0.0]);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn json_round_trip() {
        let s = LabelScaler::fit(&[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]);
        let json = s.to_json().print();
        let back = LabelScaler::from_json(&sns_rt::json::parse(&json).unwrap()).unwrap();
        assert_eq!(s, back);
        // The serde-era field layout is preserved.
        assert!(json.starts_with(r#"{"mean":["#), "{json}");
    }

    #[test]
    #[should_panic(expected = "no labels")]
    fn empty_fit_panics() {
        let _ = LabelScaler::fit(&[]);
    }
}
