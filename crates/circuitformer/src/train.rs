//! Circuitformer training (Table 6 row 1: Adam, batch 128, lr 0.001,
//! 256 epochs), with data-parallel minibatches on `sns_rt::pool`.

use sns_rt::rng::{SliceRandom, StdRng};

use sns_nn::{Adam, Grads, Mat, Optimizer};

use crate::Circuitformer;

/// One training example: a token sequence and its normalized targets.
pub type Example = (Vec<usize>, [f32; 3]);

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Worker threads for the data-parallel gradient computation.
    pub threads: usize,
    /// Global gradient-norm clip (0 disables).
    pub clip: f32,
}

impl TrainConfig {
    /// The paper's Table 6 schedule.
    pub fn paper() -> Self {
        TrainConfig { epochs: 256, batch_size: 128, lr: 1e-3, seed: 42, threads: default_threads(), clip: 1.0 }
    }

    /// A reduced schedule for CI and quick benchmarks (same optimizer and
    /// batch size, fewer epochs).
    pub fn fast() -> Self {
        TrainConfig { epochs: 24, ..TrainConfig::paper() }
    }
}

fn default_threads() -> usize {
    sns_rt::pool::default_threads()
}

/// Loss statistics for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean training MSE (normalized log space).
    pub train_loss: f32,
    /// Mean validation MSE.
    pub val_loss: f32,
}

/// Per-epoch training history — the data behind the paper's Figure 5.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainHistory {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainHistory {
    /// The final epoch's stats.
    pub fn last(&self) -> Option<EpochStats> {
        self.epochs.last().copied()
    }
}

/// Mean MSE of the model over a dataset (no gradient).
pub fn evaluate(model: &Circuitformer, data: &[Example]) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (tokens, target) in data {
        let out = model.predict_raw(tokens);
        let pred = Mat::from_rows(&[&out]);
        let tgt = Mat::from_rows(&[&target[..]]);
        let (l, _) = sns_nn::mse_loss(&pred, &tgt);
        total += l as f64;
    }
    (total / data.len() as f64) as f32
}

/// Trains `model` in place, returning per-epoch train/validation losses.
///
/// Minibatches are split across `config.threads` workers; each worker
/// accumulates into a private gradient buffer and the buffers are merged
/// before the Adam step, so results are independent of the thread count.
pub fn train(
    model: &mut Circuitformer,
    train_set: &[Example],
    val_set: &[Example],
    config: &TrainConfig,
) -> TrainHistory {
    assert!(!train_set.is_empty(), "empty training set");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.lr);
    let mut order: Vec<usize> = (0..train_set.len()).collect();
    let mut history = TrainHistory::default();

    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut seen = 0usize;
        for batch in order.chunks(config.batch_size) {
            let (grads, loss_sum) = batch_gradients(model, train_set, batch, config.threads);
            let mut grads = grads;
            grads.scale(1.0 / batch.len() as f32);
            if config.clip > 0.0 {
                grads.clip_global_norm(config.clip);
            }
            opt.step_visit(&grads, |f| model.visit_mut(f));
            epoch_loss += loss_sum as f64;
            seen += batch.len();
        }
        history.epochs.push(EpochStats {
            train_loss: (epoch_loss / seen.max(1) as f64) as f32,
            val_loss: evaluate(model, val_set),
        });
    }
    history
}

/// Computes summed gradients and loss for one minibatch, in parallel.
fn batch_gradients(
    model: &Circuitformer,
    data: &[Example],
    batch: &[usize],
    threads: usize,
) -> (Grads, f32) {
    let threads = threads.max(1).min(batch.len().max(1));
    if threads == 1 {
        return worker(model, data, batch);
    }
    let results =
        sns_rt::pool::par_map_chunks(batch, threads, |part| worker(model, data, part));
    let mut iter = results.into_iter();
    let (mut grads, mut loss) = iter.next().expect("at least one worker");
    for (g, l) in iter {
        grads.merge(&g);
        loss += l;
    }
    (grads, loss)
}

fn worker(model: &Circuitformer, data: &[Example], part: &[usize]) -> (Grads, f32) {
    let mut grads = Grads::new(model.registry());
    let mut loss_sum = 0.0f32;
    for &i in part {
        let (tokens, target) = &data[i];
        let (out, ctx) = model.forward(tokens);
        let pred = Mat::from_rows(&[&out]);
        let tgt = Mat::from_rows(&[&target[..]]);
        let (l, dl) = sns_nn::mse_loss(&pred, &tgt);
        loss_sum += l;
        model.backward(&ctx, [dl.get(0, 0), dl.get(0, 1), dl.get(0, 2)], &mut grads);
    }
    (grads, loss_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitformerConfig;

    fn tiny_model() -> Circuitformer {
        let mut rng = StdRng::seed_from_u64(1);
        Circuitformer::new(
            CircuitformerConfig { dim: 32, ffn_dim: 64, max_len: 32, ..CircuitformerConfig::fast() },
            &mut rng,
        )
    }

    /// A synthetic order-sensitive task: target depends on both the token
    /// multiset and whether token 1 precedes token 2.
    fn synthetic_data(n: usize, seed: u64) -> Vec<Example> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for _ in 0..n {
            let len = 3 + rng.gen_range(0..5usize);
            let tokens: Vec<usize> =
                (0..len).map(|_| rng.gen_range(0..10usize)).collect();
            let sum: usize = tokens.iter().sum();
            let p1 = tokens.iter().position(|&t| t == 1);
            let p2 = tokens.iter().position(|&t| t == 2);
            let order_bonus = match (p1, p2) {
                (Some(a), Some(b)) if a < b => 1.0,
                _ => 0.0,
            };
            let t0 = sum as f32 / 20.0;
            data.push((tokens, [t0, t0 * 0.5 + order_bonus, order_bonus]));
        }
        data
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = tiny_model();
        let data = synthetic_data(128, 3);
        let (tr, va) = data.split_at(96);
        let cfg = TrainConfig { epochs: 12, batch_size: 16, lr: 3e-3, seed: 9, threads: 2, clip: 1.0 };
        let h = train(&mut m, tr, va, &cfg);
        let first = h.epochs.first().unwrap();
        let last = h.last().unwrap();
        assert!(last.train_loss < first.train_loss * 0.5, "{first:?} -> {last:?}");
        assert!(last.val_loss < first.val_loss, "{first:?} -> {last:?}");
    }

    #[test]
    fn thread_count_does_not_change_the_gradient() {
        let m = tiny_model();
        let data = synthetic_data(16, 5);
        let idx: Vec<usize> = (0..16).collect();
        let (g1, l1) = batch_gradients(&m, &data, &idx, 1);
        let (g4, l4) = batch_gradients(&m, &data, &idx, 4);
        assert!((l1 - l4).abs() < 1e-4);
        // Compare a few buffers.
        let mut max_diff = 0.0f32;
        m.visit(&mut |p| {
            let a = g1.get(p.id);
            let b = g4.get(p.id);
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                max_diff = max_diff.max((x - y).abs());
            }
        });
        assert!(max_diff < 1e-4, "thread-dependent gradients, diff {max_diff}");
    }

    #[test]
    fn evaluate_is_zero_free_of_data() {
        let m = tiny_model();
        assert_eq!(evaluate(&m, &[]), 0.0);
    }

    #[test]
    fn history_records_every_epoch() {
        let mut m = tiny_model();
        let data = synthetic_data(32, 8);
        let cfg = TrainConfig { epochs: 3, batch_size: 8, lr: 1e-3, seed: 1, threads: 1, clip: 0.0 };
        let h = train(&mut m, &data, &data, &cfg);
        assert_eq!(h.epochs.len(), 3);
    }
}
