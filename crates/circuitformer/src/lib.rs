//! # sns-circuitformer
//!
//! The *Circuitformer* (§3.3 of the SNS paper): a lightweight Transformer
//! that regresses the physical characteristics (timing, area, power) of a
//! complete circuit path from its token sequence.
//!
//! Architecture, following the paper's Table 2:
//!
//! | hyperparameter        | Circuitformer |
//! |-----------------------|---------------|
//! | vocabulary            | 79 (+1 CLS)   |
//! | hidden layers         | 2             |
//! | attention heads       | 2             |
//! | embedding size        | 128           |
//! | maximum input size    | 512           |
//! | total parameters      | ≈ 1.4 M       |
//!
//! The model is a pre-LN Transformer encoder with learned positional
//! embeddings; a CLS token is prepended and its final representation feeds
//! a small regression head producing the three targets in normalized log
//! space (see [`LabelScaler`]).
//!
//! # Example
//!
//! ```rust
//! use sns_circuitformer::{Circuitformer, CircuitformerConfig};
//!
//! let mut rng = sns_rt::rng::StdRng::seed_from_u64(0);
//! let model = Circuitformer::new(CircuitformerConfig::fast(), &mut rng);
//! let out = model.predict_raw(&[3, 40, 44, 9]); // token ids of a path
//! assert_eq!(out.len(), 3); // timing, area, power (normalized log space)
//! ```

pub mod scaler;
pub mod train;

pub use scaler::LabelScaler;
pub use train::{train, EpochStats, TrainConfig, TrainHistory};

use sns_rt::rng::StdRng;

use sns_nn::{
    save_params, load_params, Embedding, Gelu, Grads, LayerNorm, Linear, Mat, ModelState,
    PackedAttention, PackedLinear, Param, ParamRegistry, QuantMode, SeqSpan,
};

/// Hyperparameters of the Circuitformer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitformerConfig {
    /// Vocabulary size *excluding* the CLS token (79 for Table 1).
    pub vocab: usize,
    /// Model width (embedding vector size).
    pub dim: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Encoder layers.
    pub layers: usize,
    /// Feed-forward inner width.
    pub ffn_dim: usize,
    /// Maximum input length (positions in the positional table).
    pub max_len: usize,
}

impl CircuitformerConfig {
    /// The paper's Table 2 configuration (≈ 1.4 M parameters).
    pub fn paper() -> Self {
        CircuitformerConfig { vocab: 79, dim: 128, heads: 2, layers: 2, ffn_dim: 2304, max_len: 512 }
    }

    /// A reduced feed-forward width for fast CI/bench runs. Same depth,
    /// heads and width — only the FFN inner size shrinks.
    pub fn fast() -> Self {
        CircuitformerConfig { ffn_dim: 512, ..CircuitformerConfig::paper() }
    }
}

/// One pre-LN encoder block.
#[derive(Debug, Clone)]
struct Block {
    ln1: LayerNorm,
    attn: sns_nn::MultiHeadAttention,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
}

#[derive(Debug)]
struct BlockCtx {
    ln1: sns_nn::LayerNormCtx,
    attn: sns_nn::AttentionCtx,
    ln2: sns_nn::LayerNormCtx,
    ff1: sns_nn::LinearCtx,
    gelu: sns_nn::act::ActCtx,
    ff2: sns_nn::LinearCtx,
}

impl Block {
    fn new(reg: &mut ParamRegistry, cfg: &CircuitformerConfig, rng: &mut StdRng) -> Self {
        Block {
            ln1: LayerNorm::new(reg, cfg.dim),
            attn: sns_nn::MultiHeadAttention::new(reg, cfg.dim, cfg.heads, rng),
            ln2: LayerNorm::new(reg, cfg.dim),
            ff1: Linear::new(reg, cfg.dim, cfg.ffn_dim, rng),
            ff2: Linear::new(reg, cfg.ffn_dim, cfg.dim, rng),
        }
    }

    fn forward(&self, x: &Mat) -> (Mat, BlockCtx) {
        let (n1, ln1) = self.ln1.forward(x);
        let (a, attn) = self.attn.forward(&n1);
        let x1 = x.add(&a);
        let (n2, ln2) = self.ln2.forward(&x1);
        let (h, ff1) = self.ff1.forward(&n2);
        let (g, gelu) = Gelu.forward(&h);
        let (f, ff2) = self.ff2.forward(&g);
        let y = x1.add(&f);
        (y, BlockCtx { ln1, attn, ln2, ff1, gelu, ff2 })
    }

    /// Inference-only forward over a packed batch described by `spans`.
    ///
    /// Every sub-layer is row-wise except attention, which is evaluated
    /// per span, so each packed sequence's rows come out bit-identical to
    /// running [`Block::forward`] on that sequence alone. When a prepacked
    /// snapshot is supplied, attention and the FFN run the prepacked
    /// kernels (bit-identical in f32 mode, tolerance-bounded under int8).
    fn infer(&self, x: &Mat, spans: &[SeqSpan], packed: Option<&PackedBlock>) -> Mat {
        let n1 = self.ln1.infer(x);
        let a = match packed {
            Some(p) => p.attn.infer_masked(&n1, spans),
            None => self.attn.infer_masked(&n1, spans),
        };
        let x1 = x.add(&a);
        let n2 = self.ln2.infer(&x1);
        let h = match packed {
            Some(p) => p.ff1.infer(&n2),
            None => self.ff1.infer(&n2),
        };
        let g = Gelu.infer(&h);
        let f = match packed {
            Some(p) => p.ff2.infer(&g),
            None => self.ff2.infer(&g),
        };
        x1.add(&f)
    }

    /// Snapshots this block's attention + FFN weights into prepacked form.
    fn prepack(&self, mode: QuantMode) -> PackedBlock {
        PackedBlock {
            attn: PackedAttention::pack(&self.attn, mode),
            ff1: PackedLinear::pack(&self.ff1, mode),
            ff2: PackedLinear::pack(&self.ff2, mode),
        }
    }

    fn backward(&self, ctx: &BlockCtx, dy: &Mat, grads: &mut Grads) -> Mat {
        // y = x1 + ff2(gelu(ff1(ln2(x1))))
        let dg = self.ff2.backward(&ctx.ff2, dy, grads);
        let dh = Gelu.backward(&ctx.gelu, &dg);
        let dn2 = self.ff1.backward(&ctx.ff1, &dh, grads);
        let dx1_ffn = self.ln2.backward(&ctx.ln2, &dn2, grads);
        let dx1 = dy.add(&dx1_ffn);
        // x1 = x + attn(ln1(x))
        let dn1 = self.attn.backward(&ctx.attn, &dx1, grads);
        let dx_attn = self.ln1.backward(&ctx.ln1, &dn1, grads);
        dx1.add(&dx_attn)
    }

    fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.ln1.visit(f);
        self.attn.visit(f);
        self.ln2.visit(f);
        self.ff1.visit(f);
        self.ff2.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_mut(f);
        self.attn.visit_mut(f);
        self.ln2.visit_mut(f);
        self.ff1.visit_mut(f);
        self.ff2.visit_mut(f);
    }
}

/// One encoder block's weights in prepacked, inference-ready form.
#[derive(Debug, Clone)]
struct PackedBlock {
    attn: PackedAttention,
    ff1: PackedLinear,
    ff2: PackedLinear,
}

/// The model's prepacked inference plan: every block's fused-QKV
/// attention and FFN projections plus the first regression-head layer,
/// repacked once into GEMM panel layout. Built at construction/load and
/// after training; dropped whenever parameters are mutated
/// ([`Circuitformer::visit_mut`]) so stale packs can never be consulted —
/// inference falls back to the unpacked (bit-identical) layers until the
/// owner re-packs.
///
/// The quantization `mode` applies to the block layers only; the heads
/// and embeddings always stay f32 (they are a rounding error of the FLOP
/// budget, and the regression head's 3-wide output is the worst possible
/// shape for per-column quantization).
#[derive(Debug, Clone)]
struct PackedPlan {
    blocks: Vec<PackedBlock>,
    head1: PackedLinear,
    mode: QuantMode,
}

impl PackedPlan {
    fn bytes(&self) -> usize {
        self.head1.bytes()
            + self
                .blocks
                .iter()
                .map(|b| b.attn.bytes() + b.ff1.bytes() + b.ff2.bytes())
                .sum::<usize>()
    }
}

/// The Circuitformer model.
#[derive(Debug, Clone)]
pub struct Circuitformer {
    config: CircuitformerConfig,
    registry: ParamRegistry,
    tok: Embedding,
    pos: Embedding,
    blocks: Vec<Block>,
    final_ln: LayerNorm,
    head1: Linear,
    head2: Linear,
    packed: Option<PackedPlan>,
}

/// Saved forward state for [`Circuitformer::backward`].
#[derive(Debug)]
pub struct ForwardCtx {
    tok: sns_nn::EmbeddingCtx,
    pos: sns_nn::EmbeddingCtx,
    blocks: Vec<BlockCtx>,
    final_ln: sns_nn::LayerNormCtx,
    head1: sns_nn::LinearCtx,
    gelu: sns_nn::act::ActCtx,
    head2: sns_nn::LinearCtx,
    seq_len: usize,
}

impl Circuitformer {
    /// Builds a freshly initialized model.
    pub fn new(config: CircuitformerConfig, rng: &mut StdRng) -> Self {
        let mut reg = ParamRegistry::new();
        // +1 vocabulary slot for the CLS token (id = config.vocab).
        let tok = Embedding::new(&mut reg, config.vocab + 1, config.dim, rng);
        let pos = Embedding::new(&mut reg, config.max_len, config.dim, rng);
        let blocks = (0..config.layers).map(|_| Block::new(&mut reg, &config, rng)).collect();
        let final_ln = LayerNorm::new(&mut reg, config.dim);
        let head1 = Linear::new(&mut reg, config.dim, config.dim, rng);
        let head2 = Linear::new(&mut reg, config.dim, 3, rng);
        let mut m = Circuitformer {
            config,
            registry: reg,
            tok,
            pos,
            blocks,
            final_ln,
            head1,
            head2,
            packed: None,
        };
        m.prepack(QuantMode::F32);
        m
    }

    /// Rebuilds the prepacked inference plan under `mode`. Called
    /// automatically by [`new`](Self::new) and [`load`](Self::load) (f32 /
    /// previous mode); call it explicitly after in-place training or to
    /// switch quantization modes.
    pub fn prepack(&mut self, mode: QuantMode) {
        self.packed = Some(PackedPlan {
            blocks: self.blocks.iter().map(|b| b.prepack(mode)).collect(),
            head1: PackedLinear::pack(&self.head1, QuantMode::F32),
            mode,
        });
    }

    /// The quantization mode of the current prepacked plan
    /// ([`QuantMode::F32`] when no plan is live).
    pub fn quant_mode(&self) -> QuantMode {
        self.packed.as_ref().map(|p| p.mode).unwrap_or_default()
    }

    /// Whether a prepacked plan is live (it drops on any parameter
    /// mutation and returns after [`prepack`](Self::prepack)).
    pub fn is_prepacked(&self) -> bool {
        self.packed.is_some()
    }

    /// Resident bytes of the prepacked plan (0 when no plan is live).
    pub fn prepack_bytes(&self) -> usize {
        self.packed.as_ref().map(|p| p.bytes()).unwrap_or(0)
    }

    /// The model configuration.
    pub fn config(&self) -> &CircuitformerConfig {
        &self.config
    }

    /// The parameter registry (needed to allocate [`Grads`] buffers).
    pub fn registry(&self) -> &ParamRegistry {
        &self.registry
    }

    /// Total scalar parameter count (Table 2's "Total #Parameters").
    pub fn parameter_count(&self) -> usize {
        self.registry.scalar_count()
    }

    /// The CLS token id.
    pub fn cls_id(&self) -> usize {
        self.config.vocab
    }

    /// Full forward pass over a token sequence; returns the three
    /// normalized-log-space outputs and the backward context.
    ///
    /// Sequences longer than `max_len - 1` are truncated (the paper's
    /// maximum input size is 512; real circuit paths top out around 500).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains an id ≥ vocab.
    pub fn forward(&self, tokens: &[usize]) -> ([f32; 3], ForwardCtx) {
        assert!(!tokens.is_empty(), "cannot run the Circuitformer on an empty path");
        let take = tokens.len().min(self.config.max_len - 1);
        let mut ids = Vec::with_capacity(take + 1);
        ids.push(self.cls_id());
        ids.extend_from_slice(&tokens[..take]);
        let positions: Vec<usize> = (0..ids.len()).collect();

        let (te, tok_ctx) = self.tok.forward(&ids);
        let (pe, pos_ctx) = self.pos.forward(&positions);
        let mut x = te.add(&pe);
        let mut block_ctxs = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            let (y, c) = b.forward(&x);
            x = y;
            block_ctxs.push(c);
        }
        let (n, final_ln) = self.final_ln.forward(&x);
        let cls = n.rows_slice(0, 1);
        let (h, head1) = self.head1.forward(&cls);
        let (g, gelu) = Gelu.forward(&h);
        let (out, head2) = self.head2.forward(&g);
        let result = [out.get(0, 0), out.get(0, 1), out.get(0, 2)];
        (
            result,
            ForwardCtx {
                tok: tok_ctx,
                pos: pos_ctx,
                blocks: block_ctxs,
                final_ln,
                head1,
                gelu,
                head2,
                seq_len: ids.len(),
            },
        )
    }

    /// Inference-only forward: the three outputs in normalized log space.
    pub fn predict_raw(&self, tokens: &[usize]) -> [f32; 3] {
        self.forward(tokens).0
    }

    /// Batched inference: packs all `paths` (CLS-prefixed, truncated to
    /// `max_len - 1` like [`forward`](Self::forward)) into one `[ΣT, dim]`
    /// matrix and runs a single masked forward pass, so the big FFN and
    /// projection GEMMs see tall batched operands instead of one short
    /// sequence at a time.
    ///
    /// Attention is evaluated per sequence span (block-diagonal), and all
    /// other sub-layers are row-wise, so `predict_batch(&[a, b, ...])[i]`
    /// is **bit-identical** to `predict_raw(paths[i])` for every `i`, at
    /// any batch size or composition.
    ///
    /// # Panics
    ///
    /// Panics if any path is empty or contains an id ≥ vocab.
    pub fn predict_batch(&self, paths: &[&[usize]]) -> Vec<[f32; 3]> {
        if paths.is_empty() {
            return Vec::new();
        }
        let mut ids = Vec::new();
        let mut positions = Vec::new();
        let mut spans = Vec::with_capacity(paths.len());
        for &tokens in paths {
            assert!(!tokens.is_empty(), "cannot run the Circuitformer on an empty path");
            let take = tokens.len().min(self.config.max_len - 1);
            spans.push(SeqSpan::dense(ids.len(), take + 1));
            ids.push(self.cls_id());
            ids.extend_from_slice(&tokens[..take]);
            positions.extend(0..take + 1);
        }
        let te = self.tok.infer(&ids);
        let pe = self.pos.infer(&positions);
        let mut x = te.add(&pe);
        for (i, b) in self.blocks.iter().enumerate() {
            x = b.infer(&x, &spans, self.packed.as_ref().map(|p| &p.blocks[i]));
        }
        let n = self.final_ln.infer(&x);
        // Gather every sequence's CLS row into one [B, dim] head input.
        let mut cls = Mat::zeros(spans.len(), self.config.dim);
        for (i, span) in spans.iter().enumerate() {
            cls.row_mut(i).copy_from_slice(n.row(span.start));
        }
        let h = match &self.packed {
            Some(p) => p.head1.infer(&cls),
            None => self.head1.infer(&cls),
        };
        let g = Gelu.infer(&h);
        let out = self.head2.infer(&g);
        (0..spans.len()).map(|i| [out.get(i, 0), out.get(i, 1), out.get(i, 2)]).collect()
    }

    /// Backpropagates the output gradient, accumulating into `grads`.
    pub fn backward(&self, ctx: &ForwardCtx, d_out: [f32; 3], grads: &mut Grads) {
        let d = Mat::from_rows(&[&d_out]);
        let dg = self.head2.backward(&ctx.head2, &d, grads);
        let dh = Gelu.backward(&ctx.gelu, &dg);
        let dcls = self.head1.backward(&ctx.head1, &dh, grads);
        // Scatter the CLS gradient into a full-sequence gradient.
        let mut dn = Mat::zeros(ctx.seq_len, self.config.dim);
        dn.row_mut(0).copy_from_slice(dcls.row(0));
        let mut dx = self.final_ln.backward(&ctx.final_ln, &dn, grads);
        for (b, c) in self.blocks.iter().zip(&ctx.blocks).rev() {
            dx = b.backward(c, &dx, grads);
        }
        self.tok.backward(&ctx.tok, &dx, grads);
        self.pos.backward(&ctx.pos, &dx, grads);
    }

    /// Visits all parameters.
    pub fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.tok.visit(f);
        self.pos.visit(f);
        for b in &self.blocks {
            b.visit(f);
        }
        self.final_ln.visit(f);
        self.head1.visit(f);
        self.head2.visit(f);
    }

    /// Visits all parameters mutably.
    ///
    /// Any mutable visit drops the prepacked inference plan — the visitor
    /// may rewrite weights (optimizer step, parameter load), and a stale
    /// pack must never be consulted. Re-pack with
    /// [`prepack`](Self::prepack) when mutation is done; until then
    /// inference runs the unpacked (f32, bit-identical) layers.
    pub fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.packed = None;
        self.tok.visit_mut(f);
        self.pos.visit_mut(f);
        for b in &mut self.blocks {
            b.visit_mut(f);
        }
        self.final_ln.visit_mut(f);
        self.head1.visit_mut(f);
        self.head2.visit_mut(f);
    }

    /// Snapshots the parameters.
    pub fn save(&self) -> ModelState {
        save_params(|f| self.visit(f))
    }

    /// Restores parameters from a snapshot and rebuilds the prepacked
    /// plan under the mode that was live before the load (f32 if none).
    ///
    /// # Errors
    ///
    /// Returns an error if the snapshot does not match this architecture
    /// (the plan is left dropped in that case — the parameters may be
    /// partially overwritten, but the unpacked fallback stays coherent
    /// with whatever they now hold).
    pub fn load(&mut self, state: &ModelState) -> Result<(), String> {
        let mode = self.quant_mode();
        load_params(state, |f| self.visit_mut(f))?;
        self.prepack(mode);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Circuitformer {
        let mut rng = StdRng::seed_from_u64(7);
        Circuitformer::new(CircuitformerConfig::fast(), &mut rng)
    }

    #[test]
    fn paper_config_matches_table_2() {
        let cfg = CircuitformerConfig::paper();
        assert_eq!(cfg.vocab, 79);
        assert_eq!(cfg.layers, 2);
        assert_eq!(cfg.heads, 2);
        assert_eq!(cfg.dim, 128);
        assert_eq!(cfg.max_len, 512);
        let mut rng = StdRng::seed_from_u64(0);
        let m = Circuitformer::new(cfg, &mut rng);
        let n = m.parameter_count();
        assert!(
            (1_300_000..1_500_000).contains(&n),
            "paper config should be ≈1.4M parameters, got {n}"
        );
    }

    #[test]
    fn forward_is_deterministic_and_finite() {
        let m = model();
        let a = m.predict_raw(&[1, 2, 3, 4, 5]);
        let b = m.predict_raw(&[1, 2, 3, 4, 5]);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn order_changes_the_prediction() {
        // The §3.3 motivating property: [mul, add] ≠ [add, mul].
        let m = model();
        let a = m.predict_raw(&[3, 40, 44, 9]);
        let b = m.predict_raw(&[3, 44, 40, 9]);
        assert_ne!(a, b, "Circuitformer must be order-sensitive");
    }

    #[test]
    fn long_sequences_are_truncated() {
        let m = model();
        let long = vec![5usize; 600];
        let out = m.predict_raw(&long);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradients_flow_to_every_parameter_tensor() {
        let m = model();
        let mut grads = Grads::new(m.registry());
        let (_, ctx) = m.forward(&[1, 2, 3]);
        m.backward(&ctx, [1.0, -1.0, 0.5], &mut grads);
        let mut zero_tensors = Vec::new();
        m.visit(&mut |p| {
            if grads.get(p.id).norm() == 0.0 {
                zero_tensors.push(p.name.clone());
            }
        });
        // The positional table only gets gradient at used positions; every
        // *tensor* should still be nonzero except none.
        assert!(zero_tensors.is_empty(), "no gradient reached: {zero_tensors:?}");
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let m = model();
        let state = m.save();
        let mut rng = StdRng::seed_from_u64(999);
        let mut m2 = Circuitformer::new(CircuitformerConfig::fast(), &mut rng);
        assert_ne!(m.predict_raw(&[1, 2, 3]), m2.predict_raw(&[1, 2, 3]));
        m2.load(&state).unwrap();
        assert_eq!(m.predict_raw(&[1, 2, 3]), m2.predict_raw(&[1, 2, 3]));
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(1);
        let mut other = Circuitformer::new(
            CircuitformerConfig { ffn_dim: 256, ..CircuitformerConfig::fast() },
            &mut rng,
        );
        assert!(other.load(&m.save()).is_err());
    }

    #[test]
    #[should_panic(expected = "empty path")]
    fn empty_path_panics() {
        let _ = model().predict_raw(&[]);
    }

    #[test]
    fn predict_batch_matches_predict_raw_bitwise() {
        // Random length-mixed batches: every batched output must equal the
        // one-sequence-at-a-time path bit for bit, whatever the batch mix.
        let m = model();
        let mut rng = StdRng::seed_from_u64(2024);
        for round in 0..5 {
            let batch_size = rng.gen_range(1usize..9);
            let paths: Vec<Vec<usize>> = (0..batch_size)
                .map(|_| {
                    let len = rng.gen_range(1usize..40);
                    (0..len).map(|_| rng.gen_range(0usize..79)).collect()
                })
                .collect();
            let refs: Vec<&[usize]> = paths.iter().map(|p| p.as_slice()).collect();
            let batched = m.predict_batch(&refs);
            assert_eq!(batched.len(), batch_size);
            for (i, path) in paths.iter().enumerate() {
                let solo = m.predict_raw(path);
                for d in 0..3 {
                    assert_eq!(
                        batched[i][d].to_bits(),
                        solo[d].to_bits(),
                        "round {round} path {i} dim {d}: batched={} solo={}",
                        batched[i][d],
                        solo[d]
                    );
                }
            }
        }
    }

    #[test]
    fn prepack_lifecycle_tracks_mutation() {
        let mut m = model();
        // new() leaves a live f32 plan with real resident bytes.
        assert!(m.is_prepacked());
        assert_eq!(m.quant_mode(), sns_nn::QuantMode::F32);
        assert!(m.prepack_bytes() > 0);
        let packed_out = m.predict_batch(&[&[1usize, 2, 3][..]]);
        // Any mutable visit drops the plan; the unpacked fallback is
        // bit-identical.
        m.visit_mut(&mut |_| {});
        assert!(!m.is_prepacked());
        assert_eq!(m.prepack_bytes(), 0);
        let unpacked_out = m.predict_batch(&[&[1usize, 2, 3][..]]);
        assert_eq!(packed_out, unpacked_out);
        // Re-packing restores the plan and the outputs.
        m.prepack(sns_nn::QuantMode::F32);
        assert!(m.is_prepacked());
        assert_eq!(m.predict_batch(&[&[1usize, 2, 3][..]]), packed_out);
        // load() re-packs automatically.
        let state = m.save();
        m.visit_mut(&mut |_| {});
        assert!(!m.is_prepacked());
        m.load(&state).unwrap();
        assert!(m.is_prepacked());
        assert_eq!(m.predict_batch(&[&[1usize, 2, 3][..]]), packed_out);
    }

    #[test]
    fn int8_mode_is_deterministic_and_close_to_f32() {
        let mut m = model();
        let paths: Vec<&[usize]> = vec![&[3, 40, 44, 9], &[1, 2, 3], &[7; 30]];
        let f32_out = m.predict_batch(&paths);
        m.prepack(sns_nn::QuantMode::Int8);
        assert_eq!(m.quant_mode(), sns_nn::QuantMode::Int8);
        let q1 = m.predict_batch(&paths);
        let q2 = m.predict_batch(&paths);
        assert_eq!(q1, q2, "int8 inference must be deterministic");
        // Batch-invariance: each path solo under int8 equals its batched row.
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(m.predict_batch(&[p])[0], q1[i], "int8 path {i} batch-variant");
        }
        // Tolerance versus f32 in normalized log space.
        for (i, (qv, fv)) in q1.iter().zip(&f32_out).enumerate() {
            for d in 0..3 {
                let err = (qv[d] - fv[d]).abs();
                assert!(err < 0.35, "path {i} dim {d}: int8 {} vs f32 {}", qv[d], fv[d]);
            }
        }
    }

    #[test]
    fn predict_batch_handles_empty_and_truncated_inputs() {
        let m = model();
        assert!(m.predict_batch(&[]).is_empty());
        // A >max_len path batches identically to its truncated solo run.
        let long = vec![5usize; 600];
        let short = vec![3usize, 40, 44];
        let batched = m.predict_batch(&[&long, &short]);
        assert_eq!(batched[0], m.predict_raw(&long));
        assert_eq!(batched[1], m.predict_raw(&short));
    }
}
