//! Evaluation metrics (§5.1): Root Relative Squared Error and Mean
//! Absolute Error Percentage.

/// Root Relative Squared Error: RMSE normalized by the standard deviation
/// of the ground truth. An RRSE of 1.0 means "no better than predicting
/// the mean"; the paper reports e.g. 0.67 timing RRSE at the 50 % split.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Example
///
/// ```rust
/// use sns_core::rrse;
///
/// // Perfect prediction.
/// assert_eq!(rrse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
/// // Predicting the mean gives exactly 1.0.
/// let truth = [1.0, 2.0, 3.0];
/// let mean = [2.0, 2.0, 2.0];
/// assert!((rrse(&mean, &truth) - 1.0).abs() < 1e-12);
/// ```
pub fn rrse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    assert!(!pred.is_empty(), "cannot compute RRSE of nothing");
    let n = truth.len() as f64;
    let mean = truth.iter().sum::<f64>() / n;
    let num: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    let den: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (num / den).sqrt()
}

/// Mean Absolute Error Percentage: `mean(|pred - truth| / |truth|) × 100`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn maep(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    assert!(!pred.is_empty(), "cannot compute MAEP of nothing");
    let mut total = 0.0;
    for (p, t) in pred.iter().zip(truth) {
        let denom = t.abs().max(1e-12);
        total += (p - t).abs() / denom;
    }
    100.0 * total / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrse_of_scaled_noise_behaves() {
        let truth: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let slightly_off: Vec<f64> = truth.iter().map(|t| t + 1.0).collect();
        let way_off: Vec<f64> = truth.iter().map(|t| t * 2.0).collect();
        assert!(rrse(&slightly_off, &truth) < rrse(&way_off, &truth));
        assert!(rrse(&slightly_off, &truth) < 0.1);
    }

    #[test]
    fn maep_is_a_percentage() {
        assert!((maep(&[110.0], &[100.0]) - 10.0).abs() < 1e-9);
        assert!((maep(&[90.0, 110.0], &[100.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(maep(&[5.0], &[5.0]), 0.0);
    }

    #[test]
    fn rrse_constant_truth_edge_case() {
        assert_eq!(rrse(&[2.0, 2.0], &[2.0, 2.0]), 0.0);
        assert!(rrse(&[1.0, 3.0], &[2.0, 2.0]).is_infinite());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = rrse(&[1.0], &[1.0, 2.0]);
    }
}
