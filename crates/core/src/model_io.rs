//! Saving and loading trained SNS models (JSON via `sns_rt::json`).

use std::fs;
use std::path::Path;

use sns_rt::json::{Json, JsonError};
use sns_rt::rng::StdRng;

use sns_circuitformer::{Circuitformer, CircuitformerConfig, LabelScaler};
use sns_graphir::Vocab;
use sns_nn::{load_params, save_params, ModelState};
use sns_sampler::SampleConfig;

use crate::aggmlp::AggMlp;
use crate::cache::PathPredictionCache;
use crate::predictor::SnsModel;

/// The serialized form of a trained model. The JSON field layout matches
/// what the serde derive used to write, so pre-migration model files
/// still load.
#[derive(Debug, Clone)]
pub struct SavedModel {
    vocab: usize,
    dim: usize,
    heads: usize,
    layers: usize,
    ffn_dim: usize,
    max_len: usize,
    sample_k: u32,
    sample_max_paths: usize,
    sample_max_len: usize,
    sample_seed: u64,
    circuitformer: ModelState,
    path_scaler: LabelScaler,
    design_scaler: LabelScaler,
    corr_scaler: LabelScaler,
    mlps: Vec<ModelState>,
}

impl SavedModel {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("vocab", Json::Int(self.vocab as i64)),
            ("dim", Json::Int(self.dim as i64)),
            ("heads", Json::Int(self.heads as i64)),
            ("layers", Json::Int(self.layers as i64)),
            ("ffn_dim", Json::Int(self.ffn_dim as i64)),
            ("max_len", Json::Int(self.max_len as i64)),
            ("sample_k", Json::Int(self.sample_k as i64)),
            ("sample_max_paths", Json::Int(self.sample_max_paths as i64)),
            ("sample_max_len", Json::Int(self.sample_max_len as i64)),
            ("sample_seed", Json::UInt(self.sample_seed)),
            ("circuitformer", self.circuitformer.to_json()),
            ("path_scaler", self.path_scaler.to_json()),
            ("design_scaler", self.design_scaler.to_json()),
            ("corr_scaler", self.corr_scaler.to_json()),
            ("mlps", Json::Arr(self.mlps.iter().map(|m| m.to_json()).collect())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SavedModel {
            vocab: v.get("vocab")?.as_usize()?,
            dim: v.get("dim")?.as_usize()?,
            heads: v.get("heads")?.as_usize()?,
            layers: v.get("layers")?.as_usize()?,
            ffn_dim: v.get("ffn_dim")?.as_usize()?,
            max_len: v.get("max_len")?.as_usize()?,
            sample_k: u32::try_from(v.get("sample_k")?.as_u64()?)
                .map_err(|_| JsonError("sample_k overflows u32".into()))?,
            sample_max_paths: v.get("sample_max_paths")?.as_usize()?,
            sample_max_len: v.get("sample_max_len")?.as_usize()?,
            sample_seed: v.get("sample_seed")?.as_u64()?,
            circuitformer: ModelState::from_json(v.get("circuitformer")?)?,
            path_scaler: LabelScaler::from_json(v.get("path_scaler")?)?,
            design_scaler: LabelScaler::from_json(v.get("design_scaler")?)?,
            corr_scaler: LabelScaler::from_json(v.get("corr_scaler")?)?,
            mlps: v
                .get("mlps")?
                .as_arr()?
                .iter()
                .map(ModelState::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// Serializes a trained model to JSON at `path`.
///
/// # Errors
///
/// Returns an I/O or serialization error message.
pub fn save_model(model: &SnsModel, path: impl AsRef<Path>) -> Result<(), String> {
    let cfg = model.circuitformer().config().clone();
    let sample = model.sample_config();
    let saved = SavedModel {
        vocab: cfg.vocab,
        dim: cfg.dim,
        heads: cfg.heads,
        layers: cfg.layers,
        ffn_dim: cfg.ffn_dim,
        max_len: cfg.max_len,
        sample_k: sample.k,
        sample_max_paths: sample.max_paths,
        sample_max_len: sample.max_len,
        sample_seed: sample.seed,
        circuitformer: model.circuitformer.save(),
        path_scaler: model.path_scaler.clone(),
        design_scaler: model.design_scaler.clone(),
        corr_scaler: model.corr_scaler.clone(),
        mlps: model.mlps.iter().map(|m| save_params(|f| m.visit(f))).collect(),
    };
    let json = saved.to_json().print();
    fs::write(path, json).map_err(|e| e.to_string())
}

/// Loads a model serialized by [`save_model`].
///
/// # Errors
///
/// Returns an I/O, parse, or shape-mismatch error message.
pub fn load_model(path: impl AsRef<Path>) -> Result<SnsModel, String> {
    let json = fs::read_to_string(path).map_err(|e| e.to_string())?;
    let parsed = sns_rt::json::parse(&json).map_err(|e| e.to_string())?;
    let saved = SavedModel::from_json(&parsed).map_err(|e| e.to_string())?;
    let cfg = CircuitformerConfig {
        vocab: saved.vocab,
        dim: saved.dim,
        heads: saved.heads,
        layers: saved.layers,
        ffn_dim: saved.ffn_dim,
        max_len: saved.max_len,
    };
    let mut rng = StdRng::seed_from_u64(0);
    let mut circuitformer = Circuitformer::new(cfg, &mut rng);
    circuitformer.load(&saved.circuitformer)?;
    if saved.mlps.len() != 3 {
        return Err(format!("expected 3 MLP states, found {}", saved.mlps.len()));
    }
    let vocab = Vocab::new();
    let mut mlps = [
        AggMlp::new(5 + vocab.len(), 0),
        AggMlp::new(5 + vocab.len(), 0),
        AggMlp::new(5 + vocab.len(), 0),
    ];
    for (m, state) in mlps.iter_mut().zip(&saved.mlps) {
        load_params(state, |f| m.visit_mut(f))?;
        m.prepack();
    }
    let sample = SampleConfig {
        k: saved.sample_k,
        max_paths: saved.sample_max_paths,
        max_len: saved.sample_max_len,
        seed: saved.sample_seed,
        dedup: true,
    };
    let mut model = SnsModel {
        circuitformer,
        path_scaler: saved.path_scaler,
        design_scaler: saved.design_scaler,
        corr_scaler: saved.corr_scaler,
        mlps,
        sample,
        vocab,
        cache: PathPredictionCache::new(),
    };
    // The experimental int8 inference gate: consulted exactly once, at
    // model load (per-call env reads would race between threads and make
    // cached predictions mode-ambiguous). Programmatic switching is
    // `SnsModel::set_quant_mode`.
    if std::env::var("SNS_INT8").map(|v| v == "1").unwrap_or(false) {
        model.set_quant_mode(sns_nn::QuantMode::Int8);
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AugmentConfig;
    use crate::train::{train_sns, SnsTrainConfig};
    use sns_circuitformer::TrainConfig;
    use sns_designs::{nonlinear, vector};

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let designs = vec![vector::simd_alu(2, 8), nonlinear::piecewise(4, 8)];
        let mut cfg = SnsTrainConfig::fast();
        cfg.circuitformer = CircuitformerConfig {
            dim: 32,
            ffn_dim: 64,
            max_len: 64,
            ..CircuitformerConfig::fast()
        };
        cfg.cf_train = TrainConfig { epochs: 2, batch_size: 32, threads: 1, ..TrainConfig::fast() };
        cfg.mlp_train = crate::aggmlp::MlpTrainConfig { epochs: 20, ..crate::aggmlp::MlpTrainConfig::fast() };
        cfg.augment = AugmentConfig::none();
        let (model, _) = train_sns(&designs, &cfg);
        let before = model.predict_verilog(&designs[0].verilog, &designs[0].top).unwrap();

        let dir = std::env::temp_dir().join("sns_model_test.json");
        save_model(&model, &dir).unwrap();
        let loaded = load_model(&dir).unwrap();
        let after = loaded.predict_verilog(&designs[0].verilog, &designs[0].top).unwrap();
        assert_eq!(before.timing_ps, after.timing_ps);
        assert_eq!(before.area_um2, after.area_um2);
        assert_eq!(before.power_mw, after.power_mw);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("sns_model_garbage.json");
        std::fs::write(&dir, "{not json").unwrap();
        assert!(load_model(&dir).is_err());
        let _ = std::fs::remove_file(dir);
    }
}
