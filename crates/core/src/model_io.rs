//! Saving and loading trained SNS models (JSON via `sns_rt::json`),
//! plus the **versioned model zoo**: a directory of checkpoints with a
//! manifest carrying model id, technology corner, train-step provenance
//! and an FNV-128 weight hash. The zoo is the hand-off point between the
//! `sns-train` label-factory daemon (writer) and `sns-serve` hot-swap
//! (reader) — all writes go through `sns_rt::fsx::write_atomic`, so a
//! reader never observes a torn manifest or weights file, and every load
//! re-hashes the weight bytes against the manifest so a stale or
//! corrupted checkpoint surfaces as a structured [`ZooError`] instead of
//! ever being served.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use sns_netlist::hash::fnv128_bytes;
use sns_rt::json::{Json, JsonError};
use sns_rt::rng::StdRng;
use sns_vsynth::scaling::TechNode;

use sns_circuitformer::{Circuitformer, CircuitformerConfig, LabelScaler};
use sns_graphir::Vocab;
use sns_nn::{load_params, save_params, ModelState};
use sns_sampler::SampleConfig;

use crate::aggmlp::AggMlp;
use crate::cache::PathPredictionCache;
use crate::predictor::SnsModel;

/// The serialized form of a trained model. The JSON field layout matches
/// what the serde derive used to write, so pre-migration model files
/// still load.
#[derive(Debug, Clone)]
pub struct SavedModel {
    vocab: usize,
    dim: usize,
    heads: usize,
    layers: usize,
    ffn_dim: usize,
    max_len: usize,
    sample_k: u32,
    sample_max_paths: usize,
    sample_max_len: usize,
    sample_seed: u64,
    circuitformer: ModelState,
    path_scaler: LabelScaler,
    design_scaler: LabelScaler,
    corr_scaler: LabelScaler,
    mlps: Vec<ModelState>,
}

impl SavedModel {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("vocab", Json::Int(self.vocab as i64)),
            ("dim", Json::Int(self.dim as i64)),
            ("heads", Json::Int(self.heads as i64)),
            ("layers", Json::Int(self.layers as i64)),
            ("ffn_dim", Json::Int(self.ffn_dim as i64)),
            ("max_len", Json::Int(self.max_len as i64)),
            ("sample_k", Json::Int(self.sample_k as i64)),
            ("sample_max_paths", Json::Int(self.sample_max_paths as i64)),
            ("sample_max_len", Json::Int(self.sample_max_len as i64)),
            ("sample_seed", Json::UInt(self.sample_seed)),
            ("circuitformer", self.circuitformer.to_json()),
            ("path_scaler", self.path_scaler.to_json()),
            ("design_scaler", self.design_scaler.to_json()),
            ("corr_scaler", self.corr_scaler.to_json()),
            ("mlps", Json::Arr(self.mlps.iter().map(|m| m.to_json()).collect())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SavedModel {
            vocab: v.get("vocab")?.as_usize()?,
            dim: v.get("dim")?.as_usize()?,
            heads: v.get("heads")?.as_usize()?,
            layers: v.get("layers")?.as_usize()?,
            ffn_dim: v.get("ffn_dim")?.as_usize()?,
            max_len: v.get("max_len")?.as_usize()?,
            sample_k: u32::try_from(v.get("sample_k")?.as_u64()?)
                .map_err(|_| JsonError("sample_k overflows u32".into()))?,
            sample_max_paths: v.get("sample_max_paths")?.as_usize()?,
            sample_max_len: v.get("sample_max_len")?.as_usize()?,
            sample_seed: v.get("sample_seed")?.as_u64()?,
            circuitformer: ModelState::from_json(v.get("circuitformer")?)?,
            path_scaler: LabelScaler::from_json(v.get("path_scaler")?)?,
            design_scaler: LabelScaler::from_json(v.get("design_scaler")?)?,
            corr_scaler: LabelScaler::from_json(v.get("corr_scaler")?)?,
            mlps: v
                .get("mlps")?
                .as_arr()?
                .iter()
                .map(ModelState::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// Renders `model` into the canonical serialized JSON string — the exact
/// bytes [`save_model`] writes and [`model_weight_hash`] hashes.
fn model_json(model: &SnsModel) -> String {
    let cfg = model.circuitformer().config().clone();
    let sample = model.sample_config();
    let saved = SavedModel {
        vocab: cfg.vocab,
        dim: cfg.dim,
        heads: cfg.heads,
        layers: cfg.layers,
        ffn_dim: cfg.ffn_dim,
        max_len: cfg.max_len,
        sample_k: sample.k,
        sample_max_paths: sample.max_paths,
        sample_max_len: sample.max_len,
        sample_seed: sample.seed,
        circuitformer: model.circuitformer.save(),
        path_scaler: model.path_scaler.clone(),
        design_scaler: model.design_scaler.clone(),
        corr_scaler: model.corr_scaler.clone(),
        mlps: model.mlps.iter().map(|m| save_params(|f| m.visit(f))).collect(),
    };
    saved.to_json().print()
}

/// Rebuilds a runnable [`SnsModel`] from its parsed serialized form.
fn model_from_json(json: &str) -> Result<SnsModel, String> {
    let parsed = sns_rt::json::parse(json).map_err(|e| e.to_string())?;
    let saved = SavedModel::from_json(&parsed).map_err(|e| e.to_string())?;
    let cfg = CircuitformerConfig {
        vocab: saved.vocab,
        dim: saved.dim,
        heads: saved.heads,
        layers: saved.layers,
        ffn_dim: saved.ffn_dim,
        max_len: saved.max_len,
    };
    let mut rng = StdRng::seed_from_u64(0);
    let mut circuitformer = Circuitformer::new(cfg, &mut rng);
    circuitformer.load(&saved.circuitformer)?;
    if saved.mlps.len() != 3 {
        return Err(format!("expected 3 MLP states, found {}", saved.mlps.len()));
    }
    let vocab = Vocab::new();
    let mut mlps = [
        AggMlp::new(5 + vocab.len(), 0),
        AggMlp::new(5 + vocab.len(), 0),
        AggMlp::new(5 + vocab.len(), 0),
    ];
    for (m, state) in mlps.iter_mut().zip(&saved.mlps) {
        load_params(state, |f| m.visit_mut(f))?;
        m.prepack();
    }
    let sample = SampleConfig {
        k: saved.sample_k,
        max_paths: saved.sample_max_paths,
        max_len: saved.sample_max_len,
        seed: saved.sample_seed,
        dedup: true,
    };
    let mut model = SnsModel {
        circuitformer,
        path_scaler: saved.path_scaler,
        design_scaler: saved.design_scaler,
        corr_scaler: saved.corr_scaler,
        mlps,
        sample,
        vocab,
        cache: PathPredictionCache::new(),
    };
    // The experimental int8 inference gate: consulted exactly once, at
    // model load (per-call env reads would race between threads and make
    // cached predictions mode-ambiguous). Programmatic switching is
    // `SnsModel::set_quant_mode`.
    if std::env::var("SNS_INT8").map(|v| v == "1").unwrap_or(false) {
        model.set_quant_mode(sns_nn::QuantMode::Int8);
    }
    Ok(model)
}

/// Serializes a trained model to JSON at `path` (atomically: temp file +
/// rename, so a concurrent reader sees old or new bytes, never a mix).
///
/// # Errors
///
/// Returns an I/O or serialization error message.
pub fn save_model(model: &SnsModel, path: impl AsRef<Path>) -> Result<(), String> {
    let json = model_json(model);
    sns_rt::fsx::write_atomic(path.as_ref(), json.as_bytes()).map_err(|e| e.to_string())
}

/// Loads a model serialized by [`save_model`].
///
/// # Errors
///
/// Returns an I/O, parse, or shape-mismatch error message.
pub fn load_model(path: impl AsRef<Path>) -> Result<SnsModel, String> {
    let json = fs::read_to_string(path).map_err(|e| e.to_string())?;
    model_from_json(&json)
}

/// FNV-128 hash of a model's weights, as 32 lowercase hex digits.
///
/// Hashes the exact serialized bytes [`save_model`] writes, so the hash
/// of an in-memory model equals the hash of its checkpoint file — the
/// invariant the zoo's integrity check and sns-serve's cache keying rely
/// on.
pub fn model_weight_hash(model: &SnsModel) -> String {
    hash_hex(model_json(model).as_bytes())
}

fn hash_hex(bytes: &[u8]) -> String {
    let [a, b] = fnv128_bytes(bytes);
    format!("{a:016x}{b:016x}")
}

/// A structured model-zoo failure. Every variant is a recoverable,
/// reportable condition — zoo operations never panic on bad input, a
/// missing file, or a corrupted manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZooError {
    /// Filesystem-level failure (create, read, write, rename).
    Io(String),
    /// The manifest is missing, unparsable, or structurally invalid.
    Manifest(String),
    /// A manifest entry points at a weights file that does not exist.
    MissingWeights(String),
    /// Weights bytes exist but fail the manifest hash check or do not
    /// deserialize into a runnable model.
    BadWeights(String),
    /// No manifest entry with the requested model id.
    UnknownModel(String),
    /// The zoo has a manifest but zero entries.
    Empty,
}

impl fmt::Display for ZooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZooError::Io(m) => write!(f, "zoo I/O error: {m}"),
            ZooError::Manifest(m) => write!(f, "zoo manifest error: {m}"),
            ZooError::MissingWeights(m) => write!(f, "zoo weights missing: {m}"),
            ZooError::BadWeights(m) => write!(f, "zoo weights invalid: {m}"),
            ZooError::UnknownModel(m) => write!(f, "unknown model id: {m}"),
            ZooError::Empty => write!(f, "zoo manifest has no entries"),
        }
    }
}

/// One checkpoint's manifest record: identity, provenance, and the
/// integrity hash of its weights file.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooEntry {
    /// Unique model id (e.g. `sns-n15-000040`).
    pub id: String,
    /// Weights file name, relative to the zoo directory.
    pub file: String,
    /// FNV-128 of the weights bytes, 32 hex digits ([`model_weight_hash`]).
    pub weight_hash: String,
    /// Technology corner the labels were scaled to, in nanometres
    /// (Stillmaker–Baas scaling; 15 = the paper's FreePDK15 target).
    pub tech_nm: u32,
    /// Fine-tune steps taken when this checkpoint was written.
    pub train_steps: u64,
    /// Designs labeled by vsynth when this checkpoint was written.
    pub labeled_designs: u64,
    /// The daemon seed that produced this lineage.
    pub seed: u64,
}

impl ZooEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("file", Json::Str(self.file.clone())),
            ("weight_hash", Json::Str(self.weight_hash.clone())),
            ("tech_nm", Json::Int(self.tech_nm as i64)),
            ("train_steps", Json::UInt(self.train_steps)),
            ("labeled_designs", Json::UInt(self.labeled_designs)),
            ("seed", Json::UInt(self.seed)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ZooEntry {
            id: v.get("id")?.as_str()?.to_string(),
            file: v.get("file")?.as_str()?.to_string(),
            weight_hash: v.get("weight_hash")?.as_str()?.to_string(),
            tech_nm: u32::try_from(v.get("tech_nm")?.as_u64()?)
                .map_err(|_| JsonError("tech_nm overflows u32".into()))?,
            train_steps: v.get("train_steps")?.as_u64()?,
            labeled_designs: v.get("labeled_designs")?.as_u64()?,
            seed: v.get("seed")?.as_u64()?,
        })
    }

    /// The [`TechNode`] for `tech_nm`, if it names a known node.
    pub fn tech(&self) -> Option<TechNode> {
        TechNode::ALL.into_iter().find(|t| t.nanometres() == self.tech_nm)
    }
}

/// The zoo manifest: an append-ordered list of checkpoints. Serialized
/// as `manifest.json` in the zoo directory; rewritten atomically on
/// every [`save_to_zoo`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ZooManifest {
    /// Checkpoints, oldest first.
    pub entries: Vec<ZooEntry>,
}

/// The manifest file name inside a zoo directory.
pub const ZOO_MANIFEST: &str = "manifest.json";

impl ZooManifest {
    fn to_json(&self) -> Json {
        Json::obj(vec![(
            "models",
            Json::Arr(self.entries.iter().map(|e| e.to_json()).collect()),
        )])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ZooManifest {
            entries: v
                .get("models")?
                .as_arr()?
                .iter()
                .map(ZooEntry::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }

    /// Reads and parses `dir/manifest.json`.
    ///
    /// # Errors
    ///
    /// [`ZooError::Manifest`] when the file is absent or malformed.
    pub fn load(dir: &Path) -> Result<Self, ZooError> {
        let path = dir.join(ZOO_MANIFEST);
        let text = fs::read_to_string(&path)
            .map_err(|e| ZooError::Manifest(format!("{}: {e}", path.display())))?;
        let parsed = sns_rt::json::parse(&text)
            .map_err(|e| ZooError::Manifest(format!("{}: {e}", path.display())))?;
        Self::from_json(&parsed)
            .map_err(|e| ZooError::Manifest(format!("{}: {e}", path.display())))
    }

    /// The newest checkpoint, if any.
    pub fn latest(&self) -> Option<&ZooEntry> {
        self.entries.last()
    }

    /// The checkpoint with the given id, if any.
    pub fn find(&self, id: &str) -> Option<&ZooEntry> {
        self.entries.iter().find(|e| e.id == id)
    }
}

/// Provenance for a checkpoint being written to the zoo.
#[derive(Debug, Clone)]
pub struct ZooCheckpointMeta {
    /// Unique model id; [`save_to_zoo`] rejects duplicates.
    pub id: String,
    /// Technology corner the daemon's labels target.
    pub tech: TechNode,
    /// Fine-tune steps taken so far.
    pub train_steps: u64,
    /// Designs labeled so far.
    pub labeled_designs: u64,
    /// Daemon seed.
    pub seed: u64,
}

/// Writes `model` into the zoo at `dir` (created if absent) and appends
/// its manifest entry: weights first, manifest second, both atomically —
/// so a crash between the two leaves an orphan weights file (harmless)
/// rather than a manifest entry pointing at nothing.
///
/// # Errors
///
/// [`ZooError::Io`] on filesystem failure, [`ZooError::Manifest`] if an
/// existing manifest is unreadable or already contains `meta.id`.
pub fn save_to_zoo(
    model: &SnsModel,
    dir: &Path,
    meta: &ZooCheckpointMeta,
) -> Result<ZooEntry, ZooError> {
    fs::create_dir_all(dir).map_err(|e| ZooError::Io(format!("{}: {e}", dir.display())))?;
    let mut manifest = if dir.join(ZOO_MANIFEST).exists() {
        ZooManifest::load(dir)?
    } else {
        ZooManifest::default()
    };
    if manifest.find(&meta.id).is_some() {
        return Err(ZooError::Manifest(format!("duplicate model id {}", meta.id)));
    }
    let json = model_json(model);
    let entry = ZooEntry {
        id: meta.id.clone(),
        file: format!("{}.json", meta.id),
        weight_hash: hash_hex(json.as_bytes()),
        tech_nm: meta.tech.nanometres(),
        train_steps: meta.train_steps,
        labeled_designs: meta.labeled_designs,
        seed: meta.seed,
    };
    let weights_path = dir.join(&entry.file);
    sns_rt::fsx::write_atomic(&weights_path, json.as_bytes())
        .map_err(|e| ZooError::Io(format!("{}: {e}", weights_path.display())))?;
    manifest.entries.push(entry.clone());
    let manifest_path = dir.join(ZOO_MANIFEST);
    sns_rt::fsx::write_atomic(&manifest_path, manifest.to_json().print().as_bytes())
        .map_err(|e| ZooError::Io(format!("{}: {e}", manifest_path.display())))?;
    Ok(entry)
}

/// Loads a model from the zoo at `dir`: the checkpoint named by `id`, or
/// the newest one when `id` is `None`. The weights bytes are re-hashed
/// against the manifest before deserialization, so silent corruption (or
/// a half-migrated zoo) is caught here rather than served.
///
/// # Errors
///
/// [`ZooError::Manifest`] / [`ZooError::Empty`] / [`ZooError::UnknownModel`]
/// for manifest-level problems, [`ZooError::MissingWeights`] /
/// [`ZooError::BadWeights`] for weights-level ones.
pub fn load_from_zoo(dir: &Path, id: Option<&str>) -> Result<(SnsModel, ZooEntry), ZooError> {
    let manifest = ZooManifest::load(dir)?;
    let entry = match id {
        Some(id) => manifest.find(id).ok_or_else(|| ZooError::UnknownModel(id.to_string()))?,
        None => manifest.latest().ok_or(ZooError::Empty)?,
    }
    .clone();
    let weights_path: PathBuf = dir.join(&entry.file);
    let json = match fs::read_to_string(&weights_path) {
        Ok(j) => j,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(ZooError::MissingWeights(format!("{}", weights_path.display())));
        }
        Err(e) => return Err(ZooError::Io(format!("{}: {e}", weights_path.display()))),
    };
    let actual = hash_hex(json.as_bytes());
    if actual != entry.weight_hash {
        return Err(ZooError::BadWeights(format!(
            "{}: hash {actual} != manifest {}",
            weights_path.display(),
            entry.weight_hash
        )));
    }
    let model = model_from_json(&json)
        .map_err(|e| ZooError::BadWeights(format!("{}: {e}", weights_path.display())))?;
    Ok((model, entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AugmentConfig;
    use crate::train::{train_sns, SnsTrainConfig};
    use sns_circuitformer::TrainConfig;
    use sns_designs::{nonlinear, vector};

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let designs = vec![vector::simd_alu(2, 8), nonlinear::piecewise(4, 8)];
        let mut cfg = SnsTrainConfig::fast();
        cfg.circuitformer = CircuitformerConfig {
            dim: 32,
            ffn_dim: 64,
            max_len: 64,
            ..CircuitformerConfig::fast()
        };
        cfg.cf_train = TrainConfig { epochs: 2, batch_size: 32, threads: 1, ..TrainConfig::fast() };
        cfg.mlp_train = crate::aggmlp::MlpTrainConfig { epochs: 20, ..crate::aggmlp::MlpTrainConfig::fast() };
        cfg.augment = AugmentConfig::none();
        let (model, _) = train_sns(&designs, &cfg);
        let before = model.predict_verilog(&designs[0].verilog, &designs[0].top).unwrap();

        let dir = std::env::temp_dir().join("sns_model_test.json");
        save_model(&model, &dir).unwrap();
        let loaded = load_model(&dir).unwrap();
        let after = loaded.predict_verilog(&designs[0].verilog, &designs[0].top).unwrap();
        assert_eq!(before.timing_ps, after.timing_ps);
        assert_eq!(before.area_um2, after.area_um2);
        assert_eq!(before.power_mw, after.power_mw);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("sns_model_garbage.json");
        std::fs::write(&dir, "{not json").unwrap();
        assert!(load_model(&dir).is_err());
        let _ = std::fs::remove_file(dir);
    }

    fn tiny_model() -> SnsModel {
        let designs = vec![vector::simd_alu(2, 8), nonlinear::piecewise(4, 8)];
        let mut cfg = SnsTrainConfig::fast();
        cfg.circuitformer = CircuitformerConfig {
            dim: 32,
            ffn_dim: 64,
            max_len: 64,
            ..CircuitformerConfig::fast()
        };
        cfg.cf_train = TrainConfig { epochs: 2, batch_size: 32, threads: 1, ..TrainConfig::fast() };
        cfg.mlp_train =
            crate::aggmlp::MlpTrainConfig { epochs: 20, ..crate::aggmlp::MlpTrainConfig::fast() };
        cfg.augment = AugmentConfig::none();
        train_sns(&designs, &cfg).0
    }

    fn zoo_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("sns_zoo_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn zoo_round_trip_three_versions_and_structured_errors() {
        let dir = zoo_dir("rt");
        let mut model = tiny_model();
        // Three genuinely distinct versions: perturbing the sample seed
        // changes the serialized bytes (and therefore the weight hash)
        // without retraining three models.
        let mut hashes = Vec::new();
        for (i, seed) in [1u64, 2, 3].iter().enumerate() {
            model.sample.seed = *seed;
            let meta = ZooCheckpointMeta {
                id: format!("m{i}"),
                tech: TechNode::N15,
                train_steps: i as u64 * 10,
                labeled_designs: i as u64 * 100,
                seed: 7,
            };
            let entry = save_to_zoo(&model, &dir, &meta).unwrap();
            assert_eq!(entry.weight_hash, model_weight_hash(&model));
            assert_eq!(entry.tech(), Some(TechNode::N15));
            hashes.push(entry.weight_hash);
        }
        assert_eq!(hashes.iter().collect::<std::collections::HashSet<_>>().len(), 3);

        let manifest = ZooManifest::load(&dir).unwrap();
        assert_eq!(manifest.entries.len(), 3);
        assert_eq!(manifest.latest().unwrap().id, "m2");
        assert_eq!(manifest.find("m1").unwrap().train_steps, 10);

        // Duplicate ids are rejected.
        let dup = ZooCheckpointMeta {
            id: "m1".into(),
            tech: TechNode::N15,
            train_steps: 0,
            labeled_designs: 0,
            seed: 7,
        };
        assert!(matches!(save_to_zoo(&model, &dir, &dup), Err(ZooError::Manifest(_))));

        // Load by id and by latest; both verify hashes and run.
        let (m1, e1) = load_from_zoo(&dir, Some("m1")).unwrap();
        assert_eq!(e1.id, "m1");
        assert_eq!(m1.sample_config().seed, 2);
        let (latest, el) = load_from_zoo(&dir, None).unwrap();
        assert_eq!(el.id, "m2");
        assert_eq!(latest.sample_config().seed, 3);

        // Unknown id.
        assert!(matches!(load_from_zoo(&dir, Some("nope")), Err(ZooError::UnknownModel(_))));

        // Missing weights: delete m0's file.
        std::fs::remove_file(dir.join("m0.json")).unwrap();
        assert!(matches!(load_from_zoo(&dir, Some("m0")), Err(ZooError::MissingWeights(_))));

        // Corrupted weights: truncate m1's file → hash mismatch.
        std::fs::write(dir.join("m1.json"), "{}").unwrap();
        assert!(matches!(load_from_zoo(&dir, Some("m1")), Err(ZooError::BadWeights(_))));

        // Corrupted manifest.
        std::fs::write(dir.join(ZOO_MANIFEST), "{broken").unwrap();
        assert!(matches!(load_from_zoo(&dir, None), Err(ZooError::Manifest(_))));

        // Empty manifest.
        std::fs::write(dir.join(ZOO_MANIFEST), "{\"models\": []}").unwrap();
        assert!(matches!(load_from_zoo(&dir, None), Err(ZooError::Empty)));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zoo_on_missing_directory_is_a_structured_error() {
        let dir = zoo_dir("absent");
        assert!(matches!(load_from_zoo(&dir, None), Err(ZooError::Manifest(_))));
    }
}
