//! The trained SNS model and its prediction flow (§3, Figure 1).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sns_circuitformer::{Circuitformer, LabelScaler};
use sns_graphir::{GraphIr, Vocab};
use sns_netlist::{Netlist, NetlistError};
use sns_sampler::{CircuitPath, PathSampler, SampleConfig};

use crate::aggmlp::AggMlp;
use crate::cache::PathPredictionCache;

/// Default activity assumed for paths starting at I/O ports when the user
/// supplies per-register activity coefficients (§3.4.4).
pub(crate) const IO_PATH_ACTIVITY: f32 = 0.5;

/// The output of one SNS prediction — the fast analogue of a synthesis
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPrediction {
    /// Predicted minimum clock period in ps.
    pub timing_ps: f64,
    /// Predicted cell area in µm².
    pub area_um2: f64,
    /// Predicted total power in mW.
    pub power_mw: f64,
    /// Number of complete circuit paths sampled.
    pub path_count: usize,
    /// The predicted critical path as vertex names — SNS keeps path
    /// provenance, so the critical path is located in the design (§2.2).
    pub critical_path: Vec<String>,
    /// Wall-clock time of the whole prediction.
    pub runtime: Duration,
}

/// A fully trained SNS model: Circuitformer + scalers + the three
/// Aggregation MLPs + the sampling configuration it was trained with.
#[derive(Debug, Clone)]
pub struct SnsModel {
    pub(crate) circuitformer: Circuitformer,
    pub(crate) path_scaler: LabelScaler,
    pub(crate) design_scaler: LabelScaler,
    /// Scaler over the correction ratios `label / aggregate` the MLPs
    /// predict in (§3.4 refinement, reparameterized so that a zero MLP
    /// output already yields a proportional estimate).
    pub(crate) corr_scaler: LabelScaler,
    /// Per-target MLPs: `[timing, area, power]`.
    pub(crate) mlps: [AggMlp; 3],
    pub(crate) sample: SampleConfig,
    pub(crate) vocab: Vocab,
    /// Memoized per-path predictions, shared between
    /// [`path_aggregates`](Self::path_aggregates) and
    /// [`critical_paths`](Self::critical_paths).
    pub(crate) cache: PathPredictionCache,
}

impl SnsModel {
    /// The Circuitformer inside this model.
    pub fn circuitformer(&self) -> &Circuitformer {
        &self.circuitformer
    }

    /// The sampling configuration used at inference time.
    pub fn sample_config(&self) -> &SampleConfig {
        &self.sample
    }

    /// Predicts the raw `[timing, area, power]` of a single path given as
    /// vocabulary token ids.
    ///
    /// Routed through the batched entry point (batch of one) so every
    /// inference — including cache-miss recomputes inside the reductions —
    /// runs the same prepacked kernels and quantization mode as the batch
    /// path. In f32 mode this is bit-identical to the unbatched forward;
    /// in int8 mode it keeps single-path values consistent with
    /// batch-filled cache entries.
    pub fn predict_path(&self, tokens: &[usize]) -> [f64; 3] {
        let z = self.circuitformer.predict_batch(&[tokens])[0];
        self.path_scaler.inverse(z)
    }

    /// Predicts many paths in one packed Circuitformer forward pass.
    ///
    /// Per-path results are bit-identical to [`predict_path`]
    /// (Self::predict_path) — batching only changes GEMM operand shapes,
    /// never any path's arithmetic — so callers may batch freely.
    pub fn predict_path_batch(&self, paths: &[&[usize]]) -> Vec<[f64; 3]> {
        self.circuitformer
            .predict_batch(paths)
            .into_iter()
            .map(|z| self.path_scaler.inverse(z))
            .collect()
    }

    /// Full prediction from Verilog source (parse → GraphIR → sample →
    /// Circuitformer → aggregate).
    ///
    /// # Errors
    ///
    /// Returns the front-end error if the source does not parse or
    /// elaborate.
    pub fn predict_verilog(&self, source: &str, top: &str) -> Result<DesignPrediction, NetlistError> {
        let nl = sns_netlist::parse_and_elaborate(source, top)?;
        Ok(self.predict_netlist(&nl, None))
    }

    /// Full prediction from an elaborated netlist, optionally with
    /// per-register activity coefficients for power gating (§3.4.4).
    pub fn predict_netlist(
        &self,
        netlist: &Netlist,
        activity: Option<&HashMap<String, f32>>,
    ) -> DesignPrediction {
        let start = Instant::now();
        let graph = GraphIr::from_netlist(netlist);
        let paths = PathSampler::new(self.sample.clone()).sample(&graph);
        self.aggregate(&graph, &paths, activity, start)
    }

    /// The path-level reductions of §3.4 (max timing, summed area,
    /// activity-scaled summed power), before MLP refinement. Returns the
    /// raw aggregates and the critical path's vertex names.
    pub fn path_aggregates(
        &self,
        graph: &GraphIr,
        paths: &[CircuitPath],
        activity: Option<&HashMap<String, f32>>,
    ) -> ([f64; 3], Vec<String>) {
        let token_seqs = self.predict_paths(graph, paths);
        self.reduce_paths(graph, paths, &token_seqs, activity)
    }

    /// The serial path-order reduction over already-predicted paths.
    ///
    /// Reads each path's prediction from the shared cache; a sequence
    /// evicted between fill and read (bounded caches under concurrent
    /// fills) is transparently recomputed — the Circuitformer is pure, so
    /// the value is bit-identical either way.
    fn reduce_paths(
        &self,
        graph: &GraphIr,
        paths: &[CircuitPath],
        token_seqs: &[Vec<usize>],
        activity: Option<&HashMap<String, f32>>,
    ) -> ([f64; 3], Vec<String>) {
        self.reduce_items(paths.iter().zip(token_seqs).map(|(p, tokens)| {
            // Power gating: scale each path's power by the activity
            // coefficient of its source register (§3.4.4).
            let coeff = match activity {
                None => 1.0,
                Some(map) => {
                    let src = graph.vertex(p.vertices()[0]);
                    if src.vertex.vtype == sns_graphir::VocabType::Dff {
                        map.get(&src.name).copied().unwrap_or(1.0)
                    } else {
                        IO_PATH_ACTIVITY
                    }
                }
            };
            let names = move || {
                p.vertices().iter().map(|&v| graph.vertex(v).name.clone()).collect()
            };
            (tokens.as_slice(), coeff, names)
        }))
    }

    /// The serial reduction core shared by the [`CircuitPath`]-based flow
    /// and the per-terminal portable-path flow of the session layer: each
    /// item is `(token sequence, power coefficient, lazy vertex names)`.
    /// The float operations run in item order with exactly the historical
    /// formulas, so every caller that feeds the same items gets the same
    /// bits (in particular the strict `>` keeps first-wins critical-path
    /// selection).
    pub(crate) fn reduce_items<'a, F, I>(&self, items: I) -> ([f64; 3], Vec<String>)
    where
        F: FnOnce() -> Vec<String>,
        I: Iterator<Item = (&'a [usize], f32, F)>,
    {
        let mut timing_max = 0.0f64;
        let mut area_sum = 0.0f64;
        let mut power_sum = 0.0f64;
        let mut critical: Vec<String> = Vec::new();
        for (tokens, coeff, names) in items {
            let raw =
                self.cache.get(tokens).unwrap_or_else(|| self.predict_path(tokens));
            if raw[0] > timing_max {
                timing_max = raw[0];
                critical = names();
            }
            area_sum += raw[1];
            power_sum += raw[2] * coeff as f64;
        }
        ([timing_max.max(1e-3), area_sum.max(1e-6), power_sum.max(1e-9)], critical)
    }

    /// The full aggregation step (reductions + MLP refinement), exposed
    /// for tests and ablations.
    pub fn aggregate(
        &self,
        graph: &GraphIr,
        paths: &[CircuitPath],
        activity: Option<&HashMap<String, f32>>,
        start: Instant,
    ) -> DesignPrediction {
        let (aggregates, critical) = self.path_aggregates(graph, paths, activity);
        self.refine(graph, paths.len(), aggregates, critical, start)
    }

    /// Like [`aggregate`](Self::aggregate), but assumes the caller has
    /// already primed the shared cache (via
    /// [`prime_path_cache`](Self::prime_path_cache)) for `token_seqs` —
    /// no new Circuitformer forward passes are scheduled here, so many
    /// callers can coalesce their inference into shared batches first and
    /// then reduce independently. Bit-identical to [`aggregate`]: both
    /// run the same serial reduction over the same pure per-path values
    /// (a sequence evicted since priming is recomputed inline).
    ///
    /// [`aggregate`]: Self::aggregate
    pub fn predict_primed(
        &self,
        graph: &GraphIr,
        paths: &[CircuitPath],
        token_seqs: &[Vec<usize>],
        activity: Option<&HashMap<String, f32>>,
        start: Instant,
    ) -> DesignPrediction {
        let (aggregates, critical) = self.reduce_paths(graph, paths, token_seqs, activity);
        self.refine(graph, paths.len(), aggregates, critical, start)
    }

    /// The MLP refinement step shared by [`aggregate`](Self::aggregate),
    /// [`predict_primed`](Self::predict_primed) and the session layer.
    pub(crate) fn refine(
        &self,
        graph: &GraphIr,
        path_count: usize,
        aggregates: [f64; 3],
        critical: Vec<String>,
        start: Instant,
    ) -> DesignPrediction {
        let stats = graph.stats(&self.vocab);
        let mut out = [0.0f64; 3];
        for d in 0..3 {
            let features = self.features(d, aggregates, path_count, &stats);
            let z = self.mlps[d].predict(&features);
            // The MLP predicts the (normalized log) correction ratio to
            // the path aggregate, not the absolute label.
            let ratio = self.corr_scaler.inverse_dim(d, z);
            out[d] = aggregates[d] * ratio;
        }
        DesignPrediction {
            timing_ps: out[0],
            area_um2: out[1],
            power_mw: out[2],
            path_count,
            critical_path: critical,
            runtime: start.elapsed(),
        }
    }

    /// Ranks the `n` slowest predicted paths — §2.2's "knowing both the
    /// length and location of the critical path": each entry is the
    /// predicted path delay (ps) plus the named vertices along the path.
    pub fn critical_paths(
        &self,
        graph: &GraphIr,
        paths: &[CircuitPath],
        n: usize,
    ) -> Vec<(f64, Vec<String>)> {
        let token_seqs = self.predict_paths(graph, paths);
        let mut ranked: Vec<(f64, Vec<String>)> = paths
            .iter()
            .zip(&token_seqs)
            .map(|(p, tokens)| {
                let raw =
                    self.cache.get(tokens).unwrap_or_else(|| self.predict_path(tokens));
                let names =
                    p.vertices().iter().map(|&v| graph.vertex(v).name.clone()).collect();
                (raw[0], names)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite predictions"));
        ranked.truncate(n);
        ranked
    }

    /// Tokenizes every path and makes sure the shared
    /// [`PathPredictionCache`] holds a prediction for each sequence.
    /// Uncached *unique* sequences are bucketed by exact length, packed
    /// into batches of at most [`sns_rt::pool::default_batch`] sequences
    /// (`SNS_BATCH`), and the batches fanned across
    /// [`sns_rt::pool::default_threads`] workers (`SNS_THREADS`), each
    /// batch running one packed Circuitformer forward. Returns the
    /// per-path token sequences for the caller's reduction.
    ///
    /// Because batching is per-path exact, the Circuitformer is pure, and
    /// the callers reduce serially in path order, predictions are
    /// bit-identical at any thread count and any batch size
    /// (`SNS_THREADS=1` vs `8`, `SNS_BATCH=1` vs `32` all agree exactly).
    fn predict_paths(&self, graph: &GraphIr, paths: &[CircuitPath]) -> Vec<Vec<usize>> {
        let token_seqs = self.tokenize_paths(graph, paths);
        let threads = sns_rt::pool::default_threads();
        let batch = sns_rt::pool::default_batch();
        self.prime_path_cache(&token_seqs, threads, batch);
        token_seqs
    }

    /// Tokenizes each sampled path into the vocabulary id sequence the
    /// Circuitformer consumes.
    pub fn tokenize_paths(&self, graph: &GraphIr, paths: &[CircuitPath]) -> Vec<Vec<usize>> {
        paths.iter().map(|p| p.token_ids(graph, &self.vocab)).collect()
    }

    /// Ensures the shared [`PathPredictionCache`] holds a prediction for
    /// every sequence in `token_seqs`, running the missing unique ones in
    /// length-bucketed packed forwards of at most `batch` sequences over
    /// `threads` workers. After this, [`predict_primed`]
    /// (Self::predict_primed) completes without further inference.
    pub fn prime_path_cache(&self, token_seqs: &[Vec<usize>], threads: usize, batch: usize) {
        self.cache.ensure_batched(token_seqs, threads, batch, |chunk| {
            self.predict_path_batch(chunk)
        });
    }

    /// The shared per-path prediction cache (hit/miss counters, capacity
    /// control — see [`PathPredictionCache`]).
    pub fn cache(&self) -> &PathPredictionCache {
        &self.cache
    }

    /// A replica-scoped handle on this model: identical weights, scalers,
    /// vocabulary and sampling configuration, but a *fresh, empty*
    /// [`PathPredictionCache`] owned by the new handle alone.
    ///
    /// This is the unit of scale-out for `sns-shard` mode: each replica
    /// answers bit-identically to every other (the Circuitformer is pure
    /// and the cache never changes values, only latency), while cache
    /// contents stay partitioned so a consistent-hash router preserves
    /// locality. The weight tensors and prepacked panels are cloned per
    /// replica — a deliberate trade: replicas share nothing mutable, and
    /// each one's working set stays local to the cores serving it.
    pub fn fork_replica(&self) -> SnsModel {
        let mut replica = self.clone();
        replica.cache = PathPredictionCache::new();
        replica
    }

    /// The number of unique path sequences memoized so far (shared across
    /// predictions; see [`PathPredictionCache`]).
    pub fn cached_paths(&self) -> usize {
        self.cache.len()
    }

    /// Drops all memoized path predictions. Call after mutating model
    /// weights, which invalidates cached outputs.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Switches the Circuitformer's prepacked inference plan between f32
    /// and int8 and drops the path-prediction cache (cached values carry
    /// the arithmetic of the mode they were computed under, so they must
    /// never survive a mode switch). The aggregation MLPs and scalers are
    /// untouched — quantization applies to the transformer blocks only.
    ///
    /// This is the programmatic form of the `SNS_INT8=1` knob (the env
    /// var is consulted once at model load, never per call, so tests and
    /// concurrent servers can flip modes without env races).
    pub fn set_quant_mode(&mut self, mode: sns_nn::QuantMode) {
        self.circuitformer.prepack(mode);
        self.cache.clear();
    }

    /// The quantization mode of the live prepacked plan.
    pub fn quant_mode(&self) -> sns_nn::QuantMode {
        self.circuitformer.quant_mode()
    }

    /// Resident bytes of all prepacked weight panels in this model: the
    /// Circuitformer plan plus the aggregation MLPs' packed projections.
    /// Surfaced through `/metrics` so operators can see what the
    /// pack-once representation costs.
    pub fn prepack_bytes(&self) -> usize {
        self.circuitformer.prepack_bytes()
            + self.mlps.iter().map(|m| m.prepack_bytes()).sum::<usize>()
    }

    /// Builds the Aggregation-MLP feature vector for target `dim`: the
    /// target's own normalized log aggregate first, then all three
    /// aggregates (timing/area/power reductions are strongly correlated,
    /// so each MLP benefits from seeing the others), the log path count,
    /// and the 79 graph-statistic features of Figure 2(c).
    pub fn features(
        &self,
        dim: usize,
        aggregates: [f64; 3],
        path_count: usize,
        stats: &sns_graphir::GraphStats,
    ) -> Vec<f32> {
        let mut f = Vec::with_capacity(5 + self.vocab.len());
        f.push(self.design_scaler.transform_dim(dim, aggregates[dim]));
        for (d, &agg) in aggregates.iter().enumerate() {
            f.push(self.design_scaler.transform_dim(d, agg));
        }
        f.push((path_count as f32).ln_1p());
        f.extend(stats.to_features());
        f
    }

    /// The feature dimensionality of the Aggregation MLPs.
    pub fn feature_dim(&self) -> usize {
        5 + self.vocab.len()
    }
}
