//! The Aggregation MLP (§3.4): three fully-connected layers of 32 neurons
//! that refine an aggregated path statistic plus the design's graph
//! statistics into the final design-level prediction.

use sns_rt::rng::{SliceRandom, StdRng};

use sns_nn::{Grads, Linear, Mat, Optimizer, PackedLinear, QuantMode, Relu, Sgd};

/// Saved forward state for one backward pass through the four layers.
type MlpFwdCtx = (
    sns_nn::LinearCtx,
    sns_nn::act::ActCtx,
    sns_nn::LinearCtx,
    sns_nn::act::ActCtx,
    sns_nn::LinearCtx,
    sns_nn::act::ActCtx,
    sns_nn::LinearCtx,
);

/// The four layers of an [`AggMlp`] in prepacked inference form. Always
/// f32: the MLPs are microseconds per design, so the int8 path does not
/// extend here — but the m=1 feature-vector GEMMs still benefit from
/// skipping per-call weight packing.
#[derive(Debug, Clone)]
struct PackedMlp {
    l1: PackedLinear,
    l2: PackedLinear,
    l3: PackedLinear,
    out: PackedLinear,
}

/// One per-target Aggregation MLP (`input → 32 → 32 → 32 → 1`).
#[derive(Debug, Clone)]
pub struct AggMlp {
    registry: sns_nn::ParamRegistry,
    l1: Linear,
    l2: Linear,
    l3: Linear,
    out: Linear,
    packed: Option<PackedMlp>,
}

/// Training hyperparameters for the MLP (Table 6 row 2: SGD, batch 64,
/// lr 1e-4, 10240 epochs).
#[derive(Debug, Clone, PartialEq)]
pub struct MlpTrainConfig {
    /// Epochs over the design set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl MlpTrainConfig {
    /// The paper's Table 6 schedule.
    pub fn paper() -> Self {
        MlpTrainConfig { epochs: 10240, batch_size: 64, lr: 1e-4, momentum: 0.9, seed: 7 }
    }

    /// A reduced schedule for CI (the design set is tiny, so far fewer
    /// epochs saturate).
    pub fn fast() -> Self {
        MlpTrainConfig { epochs: 600, ..MlpTrainConfig::paper() }
    }
}

impl AggMlp {
    /// Creates an MLP over `input_dim` features.
    pub fn new(input_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reg = sns_nn::ParamRegistry::new();
        let l1 = Linear::new(&mut reg, input_dim, 32, &mut rng);
        let l2 = Linear::new(&mut reg, 32, 32, &mut rng);
        let l3 = Linear::new(&mut reg, 32, 32, &mut rng);
        let out = Linear::new(&mut reg, 32, 1, &mut rng);
        let mut m = AggMlp { registry: reg, l1, l2, l3, out, packed: None };
        m.prepack();
        m
    }

    /// Rebuilds the prepacked inference snapshot (called by
    /// [`new`](Self::new) and at the end of [`fit`](Self::fit); dropped by
    /// any mutable parameter visit).
    pub fn prepack(&mut self) {
        self.packed = Some(PackedMlp {
            l1: PackedLinear::pack(&self.l1, QuantMode::F32),
            l2: PackedLinear::pack(&self.l2, QuantMode::F32),
            l3: PackedLinear::pack(&self.l3, QuantMode::F32),
            out: PackedLinear::pack(&self.out, QuantMode::F32),
        });
    }

    /// Resident bytes of the prepacked layer panels (0 while mid-fit).
    pub fn prepack_bytes(&self) -> usize {
        self.packed
            .as_ref()
            .map(|p| p.l1.bytes() + p.l2.bytes() + p.l3.bytes() + p.out.bytes())
            .unwrap_or(0)
    }

    /// Input feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.l1.in_dim()
    }

    /// Predicts a scalar for one feature vector. Runs the prepacked
    /// layers when a snapshot is live (bit-identical to the training
    /// forward — both are f32 and honor the GEMM K-order contract), the
    /// unpacked ones otherwise (mid-fit).
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != input_dim()`.
    pub fn predict(&self, features: &[f32]) -> f32 {
        let x = Mat::from_rows(&[features]);
        match &self.packed {
            Some(p) => {
                let a1 = Relu.infer(&p.l1.infer(&x));
                let a2 = Relu.infer(&p.l2.infer(&a1));
                let a3 = Relu.infer(&p.l3.infer(&a2));
                p.out.infer(&a3).get(0, 0)
            }
            None => self.forward(&x).0.get(0, 0),
        }
    }

    fn forward(&self, x: &Mat) -> (Mat, MlpFwdCtx) {
        let (h1, c1) = self.l1.forward(x);
        let (a1, g1) = Relu.forward(&h1);
        let (h2, c2) = self.l2.forward(&a1);
        let (a2, g2) = Relu.forward(&h2);
        let (h3, c3) = self.l3.forward(&a2);
        let (a3, g3) = Relu.forward(&h3);
        let (y, c4) = self.out.forward(&a3);
        (y, (c1, g1, c2, g2, c3, g3, c4))
    }

    /// Trains on `(features, target)` pairs with SGD + momentum; returns
    /// the per-epoch MSE curve.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or a feature vector has the wrong width.
    pub fn fit(&mut self, data: &[(Vec<f32>, f32)], config: &MlpTrainConfig) -> Vec<f32> {
        assert!(!data.is_empty(), "no training data for the Aggregation MLP");
        // The optimizer mutates layer parameters directly below, bypassing
        // visit_mut's invalidation hook — drop the pack for the duration
        // and rebuild it from the final weights on the way out.
        self.packed = None;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut opt = Sgd::new(config.lr, config.momentum);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut curve = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            for batch in order.chunks(config.batch_size) {
                let rows: Vec<&[f32]> = batch.iter().map(|&i| data[i].0.as_slice()).collect();
                let x = Mat::from_rows(&rows);
                let t_rows: Vec<[f32; 1]> = batch.iter().map(|&i| [data[i].1]).collect();
                let t_refs: Vec<&[f32]> = t_rows.iter().map(|r| r.as_slice()).collect();
                let t = Mat::from_rows(&t_refs);
                let (y, ctx) = self.forward(&x);
                let (loss, dy) = sns_nn::mse_loss(&y, &t);
                epoch_loss += loss as f64 * batch.len() as f64;
                let mut grads = Grads::new(&self.registry);
                let (c1, g1, c2, g2, c3, g3, c4) = &ctx;
                let d3 = self.out.backward(c4, &dy, &mut grads);
                let d3 = Relu.backward(g3, &d3);
                let d2 = self.l3.backward(c3, &d3, &mut grads);
                let d2 = Relu.backward(g2, &d2);
                let d1 = self.l2.backward(c2, &d2, &mut grads);
                let d1 = Relu.backward(g1, &d1);
                self.l1.backward(c1, &d1, &mut grads);
                grads.scale(1.0 / batch.len() as f32);
                opt.step_visit(&grads, |f| {
                    self.l1.visit_mut(f);
                    self.l2.visit_mut(f);
                    self.l3.visit_mut(f);
                    self.out.visit_mut(f);
                });
            }
            curve.push((epoch_loss / data.len() as f64) as f32);
        }
        self.prepack();
        curve
    }

    /// Visits all parameters (serialization).
    pub fn visit(&self, f: &mut dyn FnMut(&sns_nn::Param)) {
        self.l1.visit(f);
        self.l2.visit(f);
        self.l3.visit(f);
        self.out.visit(f);
    }

    /// Visits all parameters mutably. Drops the prepacked snapshot (the
    /// visitor may rewrite weights); re-pack with
    /// [`prepack`](Self::prepack) when done — prediction falls back to
    /// the unpacked, bit-identical layers until then.
    pub fn visit_mut(&mut self, f: &mut dyn FnMut(&mut sns_nn::Param)) {
        self.packed = None;
        self.l1.visit_mut(f);
        self.l2.visit_mut(f);
        self.l3.visit_mut(f);
        self.out.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_has_three_32_neuron_hidden_layers() {
        let m = AggMlp::new(10, 1);
        assert_eq!(m.l1.out_dim(), 32);
        assert_eq!(m.l2.out_dim(), 32);
        assert_eq!(m.l3.out_dim(), 32);
        assert_eq!(m.out.out_dim(), 1);
    }

    #[test]
    fn fits_a_simple_function() {
        let mut m = AggMlp::new(2, 3);
        let data: Vec<(Vec<f32>, f32)> = (0..64)
            .map(|i| {
                let a = (i % 8) as f32 / 8.0;
                let b = (i / 8) as f32 / 8.0;
                (vec![a, b], 2.0 * a - b + 0.5)
            })
            .collect();
        let cfg = MlpTrainConfig { epochs: 400, batch_size: 16, lr: 1e-2, momentum: 0.9, seed: 1 };
        let curve = m.fit(&data, &cfg);
        assert!(curve.last().unwrap() < &0.01, "final loss {:?}", curve.last());
        assert!((m.predict(&[0.5, 0.5]) - 1.0).abs() < 0.2);
    }

    #[test]
    fn packed_predict_is_bit_identical_and_tracks_mutation() {
        let m = AggMlp::new(7, 9);
        assert!(m.prepack_bytes() > 0);
        let features: Vec<f32> = (0..7).map(|i| (i as f32 - 3.0) * 0.17).collect();
        let packed_out = m.predict(&features);
        let mut m2 = m.clone();
        m2.visit_mut(&mut |_| {});
        assert_eq!(m2.prepack_bytes(), 0);
        let unpacked_out = m2.predict(&features);
        assert_eq!(packed_out.to_bits(), unpacked_out.to_bits());
        m2.prepack();
        assert_eq!(m2.predict(&features).to_bits(), packed_out.to_bits());
    }

    #[test]
    fn fit_leaves_a_fresh_pack() {
        let mut m = AggMlp::new(2, 3);
        let data = vec![(vec![0.1f32, 0.2], 0.5f32), (vec![0.3, 0.4], 0.7)];
        let cfg = MlpTrainConfig { epochs: 3, batch_size: 2, lr: 1e-3, momentum: 0.9, seed: 1 };
        m.fit(&data, &cfg);
        assert!(m.prepack_bytes() > 0, "fit must re-pack its final weights");
        // The pack reflects the trained weights, not the initial ones.
        let mut unpacked = m.clone();
        unpacked.packed = None;
        assert_eq!(m.predict(&[0.1, 0.2]).to_bits(), unpacked.predict(&[0.1, 0.2]).to_bits());
    }

    #[test]
    fn paper_config_matches_table_6() {
        let c = MlpTrainConfig::paper();
        assert_eq!(c.epochs, 10240);
        assert_eq!(c.batch_size, 64);
        assert!((c.lr - 1e-4).abs() < 1e-9);
    }
}
