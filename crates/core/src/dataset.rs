//! Dataset generation (§4.1–4.2): the Hardware Design Dataset (Table 4)
//! and the Circuit Path Dataset (Table 5).

use std::collections::HashSet;

use sns_rt::rng::{SliceRandom, StdRng};

use sns_designs::Design;
use sns_genmodel::{MarkovChain, PathValidator, SeqGan, SeqGanConfig};
use sns_graphir::{GraphIr, Vocab};
use sns_netlist::parse_and_elaborate;
use sns_sampler::{PathSampler, SampleConfig};
use sns_vsynth::{path_physical, CellLibrary, SynthOptions, SynthReport, UnitCache, VirtualSynthesizer};

/// One Table 4 row: a design plus its ground-truth synthesis labels.
#[derive(Debug, Clone)]
pub struct LabeledDesign {
    /// The design source.
    pub design: Design,
    /// The virtual synthesizer's report (ground truth).
    pub report: SynthReport,
}

/// A `(train, test)` pair of entry-index sets produced by
/// [`HardwareDesignDataset::split`].
pub type SplitIndices = (Vec<usize>, Vec<usize>);

/// The Hardware Design Dataset.
#[derive(Debug, Clone, Default)]
pub struct HardwareDesignDataset {
    /// Labeled designs in catalog order.
    pub entries: Vec<LabeledDesign>,
}

impl HardwareDesignDataset {
    /// Labels every design by running the virtual synthesizer — the
    /// analogue of the paper's Synopsys DC + FreePDK-15 runs. Work is
    /// spread across threads (each design is independent).
    ///
    /// # Panics
    ///
    /// Panics if a design fails to parse/elaborate — catalog designs are
    /// validated by construction, so this indicates a bug.
    pub fn generate(designs: &[Design], options: &SynthOptions) -> Self {
        let threads = sns_rt::pool::default_threads();
        let entries: Vec<LabeledDesign> =
            sns_rt::pool::par_map_chunks(designs, threads, |part| {
                // One design per worker already saturates the pool; pin the
                // synthesizer's internal parallelism to 1 so the label
                // factory doesn't oversubscribe (results are bit-identical
                // at any thread count).
                let synth = VirtualSynthesizer::new(SynthOptions {
                    threads: Some(1),
                    ..options.clone()
                });
                part.iter()
                    .map(|d| {
                        let nl = parse_and_elaborate(&d.verilog, &d.top)
                            .unwrap_or_else(|e| panic!("design `{}`: {e}", d.name));
                        LabeledDesign { design: d.clone(), report: synth.synthesize(&nl) }
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        HardwareDesignDataset { entries }
    }

    /// Splits into (train, test) index sets with approximately
    /// `train_frac` of the *base designs* in the training side. Parameter
    /// variants of one base never straddle the split (§4.1).
    pub fn split(&self, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut bases: Vec<String> = Vec::new();
        for e in &self.entries {
            if !bases.contains(&e.design.base) {
                bases.push(e.design.base.clone());
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        bases.shuffle(&mut rng);
        let n_train = ((bases.len() as f64) * train_frac).round().max(1.0) as usize;
        let train_bases: HashSet<&String> = bases.iter().take(n_train.min(bases.len())).collect();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            if train_bases.contains(&e.design.base) {
                train.push(i);
            } else {
                test.push(i);
            }
        }
        (train, test)
    }

    /// The two folds for 2-fold cross validation (§5.2): a 50/50 split by
    /// base design.
    pub fn two_fold(&self, seed: u64) -> (SplitIndices, SplitIndices) {
        let (a, b) = self.split(0.5, seed);
        ((a.clone(), b.clone()), (b, a))
    }

    /// Borrowed entries for an index set.
    pub fn select(&self, idx: &[usize]) -> Vec<&LabeledDesign> {
        idx.iter().map(|&i| &self.entries[i]).collect()
    }
}

/// Augmentation targets for the Circuit Path Dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentConfig {
    /// Paths to generate with the Markov chain (§4.2.1; paper ≈ 1000).
    pub markov_count: usize,
    /// Paths to generate with SeqGAN (§4.2.2; paper ≈ 3000).
    pub seqgan_count: usize,
    /// SeqGAN training configuration.
    pub seqgan: SeqGanConfig,
    /// Laplace smoothing for the Markov chain.
    pub markov_alpha: f64,
    /// Generation seed.
    pub seed: u64,
}

impl AugmentConfig {
    /// The paper's §4.2 scale: ~1000 Markov + ~3000 SeqGAN paths.
    pub fn paper() -> Self {
        AugmentConfig {
            markov_count: 1000,
            seqgan_count: 3000,
            seqgan: SeqGanConfig::paper(),
            markov_alpha: 0.05,
            seed: 2022,
        }
    }

    /// Reduced counts for CI.
    pub fn fast() -> Self {
        AugmentConfig {
            markov_count: 200,
            seqgan_count: 400,
            seqgan: SeqGanConfig::fast(),
            ..AugmentConfig::paper()
        }
    }

    /// No augmentation (for the ablation study).
    pub fn none() -> Self {
        AugmentConfig { markov_count: 0, seqgan_count: 0, ..AugmentConfig::fast() }
    }
}

/// Labels one tokenized path with the virtual synthesizer's path model:
/// raw `[timing_ps, area_um2, power_mw]` at the library's native node.
/// The single labeling routine shared by batch dataset construction and
/// the `sns-train` daemon's online path labeling, so both produce
/// bit-identical labels for the same token sequence.
pub fn label_path_tokens(
    ids: &[usize],
    vocab: &Vocab,
    library: &CellLibrary,
    cache: &mut UnitCache,
) -> [f64; 3] {
    let tokens: Vec<(sns_graphir::VocabType, u32)> = ids
        .iter()
        .map(|&t| {
            let v = vocab.vertex(t);
            (v.vtype, v.width)
        })
        .collect();
    let phys = path_physical(&tokens, library, cache);
    [phys.timing_ps, phys.area_um2, phys.power_mw]
}

/// The Circuit Path Dataset (Table 5): token sequences with raw
/// `[timing_ps, area_um2, power_mw]` labels.
#[derive(Debug, Clone, Default)]
pub struct CircuitPathDataset {
    /// `(token ids, raw labels)` examples.
    pub examples: Vec<(Vec<usize>, [f64; 3])>,
    /// How many came from direct sampling of real designs.
    pub direct_count: usize,
    /// How many came from the Markov chain.
    pub markov_count: usize,
    /// How many came from SeqGAN.
    pub seqgan_count: usize,
}

impl CircuitPathDataset {
    /// Builds the dataset: samples complete circuit paths from `designs`
    /// (Algorithm 1), labels them with the virtual synthesizer's path
    /// model, then augments with Markov-chain and SeqGAN paths.
    pub fn build(
        designs: &[&Design],
        sample: &SampleConfig,
        augment: &AugmentConfig,
        library: &CellLibrary,
    ) -> Self {
        let vocab = Vocab::new();
        let sampler = PathSampler::new(sample.clone());
        let mut direct: Vec<Vec<usize>> = Vec::new();
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        for d in designs {
            let nl = parse_and_elaborate(&d.verilog, &d.top)
                .unwrap_or_else(|e| panic!("design `{}`: {e}", d.name));
            let g = GraphIr::from_netlist(&nl);
            for p in sampler.sample(&g) {
                let ids = p.token_ids(&g, &vocab);
                if seen.insert(ids.clone()) {
                    direct.push(ids);
                }
            }
        }

        let validator = PathValidator::new(&vocab);
        let mut rng = StdRng::seed_from_u64(augment.seed);
        let mut markov_paths = Vec::new();
        if augment.markov_count > 0 && !direct.is_empty() {
            let mc = MarkovChain::fit(vocab.len(), &direct, augment.markov_alpha);
            let raw = mc.generate_unique(&mut rng, augment.markov_count * 6, sample.max_len, &seen);
            markov_paths = validator.filter(raw);
            markov_paths.truncate(augment.markov_count);
            for p in &markov_paths {
                seen.insert(p.clone());
            }
        }
        let mut seqgan_paths = Vec::new();
        if augment.seqgan_count > 0 && !direct.is_empty() {
            let mut gan = SeqGan::new(vocab.len(), augment.seqgan.clone());
            gan.train(&direct);
            let raw = gan.generate_unique(&mut rng, augment.seqgan_count * 8, &seen);
            seqgan_paths = validator.filter(raw);
            seqgan_paths.truncate(augment.seqgan_count);
        }

        // Label every path with the virtual synthesizer's path model.
        let mut cache = UnitCache::new();
        let mut examples = Vec::new();
        let direct_count = direct.len();
        let markov_count = markov_paths.len();
        let seqgan_count = seqgan_paths.len();
        for ids in direct.into_iter().chain(markov_paths).chain(seqgan_paths) {
            let label = label_path_tokens(&ids, &vocab, library, &mut cache);
            examples.push((ids, label));
        }
        CircuitPathDataset { examples, direct_count, markov_count, seqgan_count }
    }

    /// Total number of labeled paths.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Splits off a validation fraction (deterministic shuffle).
    pub fn train_val_split(&self, val_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut order: Vec<usize> = (0..self.examples.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let n_val = ((self.examples.len() as f64) * val_frac) as usize;
        let val = order[..n_val].to_vec();
        let train = order[n_val..].to_vec();
        (train, val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_designs::{catalog, nonlinear, vector};

    fn tiny_designs() -> Vec<Design> {
        vec![vector::simd_alu(2, 8), nonlinear::piecewise(4, 8)]
    }

    #[test]
    fn labeling_produces_positive_reports() {
        let ds = tiny_designs();
        let set = HardwareDesignDataset::generate(&ds, &SynthOptions::default());
        assert_eq!(set.entries.len(), 2);
        for e in &set.entries {
            assert!(e.report.area_um2 > 0.0, "{}", e.design.name);
            assert!(e.report.timing_ps > 0.0);
            assert!(e.report.power_mw > 0.0);
        }
    }

    #[test]
    fn split_keeps_bases_together() {
        let ds = catalog();
        let set = HardwareDesignDataset {
            entries: ds
                .into_iter()
                .map(|design| LabeledDesign {
                    design,
                    report: SynthReport {
                        area_um2: 1.0,
                        timing_ps: 1.0,
                        power_mw: 1.0,
                        dynamic_mw: 0.5,
                        leakage_mw: 0.5,
                        gate_count: 1,
                        transistor_count: 4,
                        cycles_broken: 0,
                        runtime: std::time::Duration::ZERO,
                    },
                })
                .collect(),
        };
        let (train, test) = set.split(0.5, 3);
        assert!(!train.is_empty() && !test.is_empty());
        let train_bases: HashSet<_> =
            train.iter().map(|&i| set.entries[i].design.base.clone()).collect();
        for &i in &test {
            assert!(
                !train_bases.contains(&set.entries[i].design.base),
                "base `{}` straddles the split",
                set.entries[i].design.base
            );
        }
        // Two-fold covers everything exactly once per fold.
        let ((a1, b1), (a2, b2)) = set.two_fold(3);
        assert_eq!(a1.len() + b1.len(), set.entries.len());
        assert_eq!(a1, b2);
        assert_eq!(b1, a2);
    }

    #[test]
    fn path_dataset_builds_and_labels() {
        let ds = tiny_designs();
        let refs: Vec<&Design> = ds.iter().collect();
        let mut aug = AugmentConfig::fast();
        aug.markov_count = 20;
        aug.seqgan_count = 0; // keep the test fast
        let set = CircuitPathDataset::build(
            &refs,
            &SampleConfig::paper_default(),
            &aug,
            &CellLibrary::freepdk15(),
        );
        assert!(set.direct_count > 0);
        assert!(!set.is_empty());
        for (ids, label) in &set.examples {
            assert!(ids.len() >= 2);
            assert!(label[0] > 0.0, "timing label must be positive");
        }
        let (tr, va) = set.train_val_split(0.25, 1);
        assert_eq!(tr.len() + va.len(), set.len());
    }

    #[test]
    fn augmentation_adds_unique_paths() {
        let ds = tiny_designs();
        let refs: Vec<&Design> = ds.iter().collect();
        let mut aug = AugmentConfig::fast();
        aug.markov_count = 30;
        aug.seqgan_count = 0;
        let with = CircuitPathDataset::build(
            &refs,
            &SampleConfig::paper_default(),
            &aug,
            &CellLibrary::freepdk15(),
        );
        let without = CircuitPathDataset::build(
            &refs,
            &SampleConfig::paper_default(),
            &AugmentConfig::none(),
            &CellLibrary::freepdk15(),
        );
        assert!(with.len() > without.len());
        assert_eq!(without.markov_count, 0);
        let all: HashSet<_> = with.examples.iter().map(|(ids, _)| ids.clone()).collect();
        assert_eq!(all.len(), with.len(), "duplicate paths in dataset");
    }
}
