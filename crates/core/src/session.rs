//! Per-design prediction sessions and ECO (engineering change order)
//! re-prediction.
//!
//! A full prediction through [`SnsModel::predict_session`] registers the
//! design in a [`SessionStore`] under a *content-addressed* base token.
//! A later [`SnsModel::predict_patch`] call names that token plus
//! replacement module sources, and the whole pipeline re-runs
//! *incrementally*:
//!
//! * elaboration goes through the shared [`ModuleElabCache`] — only
//!   modules whose transitive content hash changed rebuild, everything
//!   else splices from cache ([`sns_netlist::elaborate_incremental`]),
//! * the GraphIR is stitched from per-module subgraphs
//!   ([`GraphIr::from_netlist_stitched`]),
//! * sampling reuses the cached per-terminal paths of every terminal
//!   whose forward region the edit did not touch
//!   ([`sns_sampler::PathSampler::resample`]),
//! * per-path Circuitformer predictions come from the model's
//!   [`PathPredictionCache`](crate::PathPredictionCache).
//!
//! The incremental result is **bit-identical** to running the same merged
//! source from scratch — enforced end-to-end by the `incremental`
//! conformance oracle in `sns-conformance`.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use sns_graphir::GraphIr;
use sns_netlist::ast::Design;
use sns_netlist::{
    design_hashes, elaborate_incremental, parse_source, ElabReport, ModuleElabCache, NetlistError,
};
use sns_sampler::{flatten_samples, PathSampler, PortablePath, ResampleOutcome, TerminalSample};

use crate::predictor::{DesignPrediction, SnsModel};

/// Default bound on concurrently retained sessions.
pub const DEFAULT_SESSION_CAP: usize = 64;

/// Why a session-layer prediction failed.
#[derive(Debug)]
pub enum SessionError {
    /// The `base` token does not name a live session (expired or never
    /// registered).
    UnknownBase(String),
    /// The front-end rejected the source or the patched design (parse,
    /// elaboration, or resource-budget failure).
    Front(NetlistError),
}

impl From<NetlistError> for SessionError {
    fn from(e: NetlistError) -> Self {
        SessionError::Front(e)
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownBase(token) => write!(f, "unknown base design `{token}`"),
            SessionError::Front(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// The retained state of one predicted design: everything an ECO needs
/// to re-predict incrementally.
#[derive(Debug)]
pub struct DesignSession {
    token: String,
    top: String,
    design: Design,
    /// Per-module transitive content hashes at registration time.
    trans: HashMap<String, [u64; 2]>,
    /// Per-terminal cached samples, keyed by terminal name.
    /// Reference-counted so a resample reuses them by pointer.
    samples: HashMap<String, Arc<TerminalSample>>,
    prediction: DesignPrediction,
    /// The elaboration report of the session's netlist.
    report: ElabReport,
}

impl DesignSession {
    /// The content-addressed base token.
    pub fn token(&self) -> &str {
        &self.token
    }

    /// The design's top module.
    pub fn top(&self) -> &str {
        &self.top
    }

    /// The prediction computed when the session was registered.
    pub fn prediction(&self) -> &DesignPrediction {
        &self.prediction
    }

    /// The elaboration report (instance → cell range map).
    pub fn report(&self) -> &ElabReport {
        &self.report
    }

    /// The cached per-terminal path samples (terminal name → sample).
    pub fn samples(&self) -> &HashMap<String, Arc<TerminalSample>> {
        &self.samples
    }
}

struct SessionsInner {
    map: HashMap<String, Arc<DesignSession>>,
    order: VecDeque<String>,
    cap: usize,
}

/// Holds live [`DesignSession`]s (bounded, FIFO eviction) plus the
/// [`ModuleElabCache`] they share. Owned by the caller (the serving
/// daemon keeps one per process) and passed into
/// [`SnsModel::predict_session`] / [`SnsModel::predict_patch`].
pub struct SessionStore {
    elab: Arc<ModuleElabCache>,
    inner: RwLock<SessionsInner>,
}

impl std::fmt::Debug for SessionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionStore")
            .field("sessions", &self.session_count())
            .field("elab_cache", &self.elab)
            .finish()
    }
}

impl Default for SessionStore {
    fn default() -> Self {
        Self::new(DEFAULT_SESSION_CAP, ModuleElabCache::DEFAULT_CAPACITY)
    }
}

impl SessionStore {
    /// Creates a store bounded to `session_cap` sessions with a fresh
    /// elaboration-unit cache bounded to `elab_cap` units.
    pub fn new(session_cap: usize, elab_cap: usize) -> Self {
        SessionStore {
            elab: Arc::new(ModuleElabCache::new(elab_cap)),
            inner: RwLock::new(SessionsInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                cap: session_cap,
            }),
        }
    }

    /// The shared per-module elaboration-unit cache.
    pub fn elab_cache(&self) -> &ModuleElabCache {
        &self.elab
    }

    /// The session under `token`, if still live.
    pub fn get(&self, token: &str) -> Option<Arc<DesignSession>> {
        self.inner.read().expect("session lock poisoned").map.get(token).cloned()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.inner.read().expect("session lock poisoned").map.len()
    }

    /// Drops every session (the elaboration cache is untouched).
    pub fn clear(&self) {
        let mut g = self.inner.write().expect("session lock poisoned");
        g.map.clear();
        g.order.clear();
    }

    fn insert(&self, session: Arc<DesignSession>) {
        let mut g = self.inner.write().expect("session lock poisoned");
        let token = session.token.clone();
        if g.map.insert(token.clone(), session).is_none() {
            g.order.push_back(token);
        }
        while g.map.len() > g.cap.max(1) {
            match g.order.pop_front() {
                Some(old) => {
                    g.map.remove(&old);
                }
                None => break,
            }
        }
    }
}

/// The result of a session-layer prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Content-addressed token of the (possibly patched) design — the
    /// `base` for further patches.
    pub token: String,
    /// The design prediction.
    pub prediction: DesignPrediction,
    /// Module names that were (re-)elaborated for this prediction: on a
    /// full predict, every instantiated module; on a patch, the modules
    /// whose transitive content hash changed. Sorted.
    pub reelaborated: Vec<String>,
    /// Terminals whose cached path sample was reused unchanged.
    pub reused_terminals: usize,
    /// Terminals that were re-sampled.
    pub resampled_terminals: usize,
}

impl SnsModel {
    /// Full prediction from Verilog source through the incremental
    /// pipeline, registering the design in `store` for later
    /// [`SnsModel::predict_patch`] calls. The prediction is bit-identical
    /// to re-running the same source on a fresh store.
    ///
    /// # Errors
    ///
    /// Returns the front-end error if the source does not parse or
    /// elaborate.
    pub fn predict_session(
        &self,
        store: &SessionStore,
        source: &str,
        top: &str,
    ) -> Result<SessionOutcome, NetlistError> {
        let design = parse_source(source)?;
        self.run_session(store, design, top, None)
    }

    /// ECO re-prediction: replaces modules of the `base` session's design
    /// with the definitions in `patch` (new modules are appended), then
    /// re-predicts incrementally. Returns the outcome of the *patched*
    /// design, which is itself registered as a new session.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownBase`] if `base` is not live;
    /// [`SessionError::Front`] if the patch does not parse or the patched
    /// design does not elaborate.
    pub fn predict_patch(
        &self,
        store: &SessionStore,
        base: &str,
        patch: &str,
    ) -> Result<SessionOutcome, SessionError> {
        let prev =
            store.get(base).ok_or_else(|| SessionError::UnknownBase(base.to_string()))?;
        let patch_design = parse_source(patch)?;
        let mut design = prev.design.clone();
        for m in patch_design.modules {
            match design.modules.iter_mut().find(|x| x.name == m.name) {
                Some(slot) => *slot = m,
                None => design.modules.push(m),
            }
        }
        let top = prev.top.clone();
        Ok(self.run_session(store, design, &top, Some(&prev))?)
    }

    /// The shared session pipeline: incremental elaboration → stitched
    /// GraphIR → per-terminal (re-)sampling → cached path predictions →
    /// the same serial reduction and MLP refinement as
    /// [`SnsModel::predict_netlist`].
    fn run_session(
        &self,
        store: &SessionStore,
        design: Design,
        top: &str,
        prev: Option<&DesignSession>,
    ) -> Result<SessionOutcome, NetlistError> {
        let start = Instant::now();
        let trans: HashMap<String, [u64; 2]> =
            design_hashes(&design).into_iter().map(|(n, h)| (n, h.trans)).collect();

        // Which modules changed relative to the base session (every module
        // is "changed" on a cold predict). Implicit invalidation: a changed
        // transitive hash is a different cache key.
        let changed: BTreeSet<String> = match prev {
            Some(p) => trans
                .iter()
                .filter(|(name, t)| p.trans.get(*name) != Some(t))
                .map(|(name, _)| name.clone())
                .collect(),
            None => trans.keys().cloned().collect(),
        };
        if prev.is_some() {
            store.elab_cache().note_invalidations(changed.len() as u64);
        }

        let (netlist, report) = elaborate_incremental(&design, top, store.elab_cache())?;
        let stitched = GraphIr::from_netlist_stitched(&netlist, &report);
        let graph = &stitched.graph;

        let sampler = PathSampler::new(self.sample.clone());
        let ResampleOutcome { samples, reused, resampled } = match prev {
            Some(p) => sampler.resample(graph, &self.vocab, &p.samples),
            None => {
                let samples: Vec<Arc<TerminalSample>> = sampler
                    .sample_by_terminal(graph, &self.vocab)
                    .into_iter()
                    .map(Arc::new)
                    .collect();
                let resampled = samples.len();
                ResampleOutcome { samples, reused: 0, resampled }
            }
        };

        let flat: Vec<&PortablePath> = flatten_samples(&samples, self.sample.max_paths);
        let token_seqs: Vec<Vec<usize>> = flat.iter().map(|p| p.tokens.clone()).collect();
        self.prime_path_cache(
            &token_seqs,
            sns_rt::pool::default_threads(),
            sns_rt::pool::default_batch(),
        );
        // Sessions carry no per-register activity map, so every path's
        // coefficient is 1.0 — same as `predict_netlist(_, None)`.
        let (aggregates, critical) = self.reduce_items(
            flat.iter().map(|p| (p.tokens.as_slice(), 1.0f32, move || p.names.clone())),
        );
        let prediction = self.refine(graph, flat.len(), aggregates, critical, start);

        // Reported modules: the changed set restricted to what this design
        // actually elaborates (instantiated modules plus the top).
        let mut instantiated: BTreeSet<&str> =
            report.records.iter().map(|r| r.module.as_str()).collect();
        instantiated.insert(top);
        let reelaborated: Vec<String> = changed
            .iter()
            .filter(|m| instantiated.contains(m.as_str()))
            .cloned()
            .collect();

        let token = design_token(&trans, top);
        let samples_by_name: HashMap<String, Arc<TerminalSample>> =
            samples.into_iter().map(|s| (s.name.clone(), s)).collect();
        store.insert(Arc::new(DesignSession {
            token: token.clone(),
            top: top.to_string(),
            design,
            trans,
            samples: samples_by_name,
            prediction: prediction.clone(),
            report,
        }));

        Ok(SessionOutcome {
            token,
            prediction,
            reelaborated,
            reused_terminals: reused,
            resampled_terminals: resampled,
        })
    }

}

/// Content-addressed design token: a stable hex digest over the top name
/// and every module's transitive content hash. Whitespace/comment-only
/// variants of a design map to the same token.
fn design_token(trans: &HashMap<String, [u64; 2]>, top: &str) -> String {
    let (mut h0, mut h1) = (0xcbf2_9ce4_8422_2325u64, 0x6c62_272e_07bb_0142u64);
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h0 = (h0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            h1 = (h1 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B5);
        }
        h0 = (h0 ^ 0xFF).wrapping_mul(0x0000_0100_0000_01B3);
        h1 = (h1 ^ 0xFF).wrapping_mul(0x0000_0100_0000_01B5);
    };
    mix(top.as_bytes());
    let mut names: Vec<&String> = trans.keys().collect();
    names.sort();
    for name in names {
        mix(name.as_bytes());
        if let Some(t) = trans.get(name) {
            mix(&t[0].to_le_bytes());
            mix(&t[1].to_le_bytes());
        }
    }
    format!("d{h0:016x}{h1:016x}")
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use super::*;
    use crate::train::{train_sns, SnsTrainConfig};

    /// One tiny model shared by every test in this module — training
    /// dominates runtime, prediction does not.
    fn tiny_model() -> &'static SnsModel {
        static MODEL: OnceLock<SnsModel> = OnceLock::new();
        MODEL.get_or_init(|| {
            let designs = sns_designs::catalog();
            let mut cfg = SnsTrainConfig::fast();
            cfg.augment = crate::dataset::AugmentConfig::none();
            cfg.sample =
                sns_sampler::SampleConfig::paper_default().with_max_paths(250).with_k(2);
            train_sns(&designs[..3], &cfg).0
        })
    }

    fn src(leaf_body: &str) -> String {
        format!(
            "module leaf (input [7:0] a, output [7:0] y); assign y = {leaf_body}; endmodule
             module keep (input clk, input [7:0] a, output [7:0] y);
                 reg [7:0] r;
                 always @(posedge clk) r <= r + a;
                 assign y = r;
             endmodule
             module top (input clk, input [7:0] p, output [7:0] y0, output [7:0] y1);
                 leaf l (.a(p), .y(y0));
                 keep k (.clk(clk), .a(p), .y(y1));
             endmodule"
        )
    }

    fn assert_same_prediction(a: &DesignPrediction, b: &DesignPrediction) {
        assert_eq!(a.timing_ps, b.timing_ps);
        assert_eq!(a.area_um2, b.area_um2);
        assert_eq!(a.power_mw, b.power_mw);
        assert_eq!(a.path_count, b.path_count);
        assert_eq!(a.critical_path, b.critical_path);
    }

    #[test]
    fn patch_prediction_matches_from_scratch() {
        let model = tiny_model();
        let store = SessionStore::default();
        let base = model.predict_session(&store, &src("a + 8'd1"), "top").unwrap();
        assert_eq!(store.session_count(), 1);
        assert!(base.reelaborated.contains(&"leaf".to_string()));

        let patched = model
            .predict_patch(
                &store,
                &base.token,
                "module leaf (input [7:0] a, output [7:0] y); assign y = (a * 8'd5) ^ 8'h3C; endmodule",
            )
            .unwrap();
        // Only the edited module re-elaborates; the register terminal's
        // sample is reused.
        assert_eq!(patched.reelaborated, vec!["leaf".to_string(), "top".to_string()]);
        assert!(patched.reused_terminals >= 1, "register sample should be reused");
        assert!(patched.resampled_terminals >= 1);

        // Bit-identical to predicting the merged source from scratch on a
        // completely fresh store and path cache.
        let fresh_model = model.clone();
        fresh_model.clear_cache();
        let scratch = fresh_model
            .predict_session(&SessionStore::default(), &src("(a * 8'd5) ^ 8'h3C"), "top")
            .unwrap();
        assert_eq!(patched.token, scratch.token);
        assert_same_prediction(&patched.prediction, &scratch.prediction);
    }

    #[test]
    fn token_is_content_addressed() {
        let model = tiny_model();
        let store = SessionStore::default();
        let a = model.predict_session(&store, &src("a + 8'd1"), "top").unwrap();
        // Comment/whitespace-only reformulation → same token, same session.
        let reformatted = src("a  +  /* same */  8'd1").replace("module leaf", "module  leaf");
        let b = model.predict_session(&store, &reformatted, "top").unwrap();
        assert_eq!(a.token, b.token);
        assert_eq!(store.session_count(), 1);
        assert_same_prediction(&a.prediction, &b.prediction);
        // A real edit changes the token.
        let c = model.predict_session(&store, &src("a - 8'd1"), "top").unwrap();
        assert_ne!(a.token, c.token);
        assert_eq!(store.session_count(), 2);
    }

    #[test]
    fn unknown_base_and_bad_patch_errors() {
        let model = tiny_model();
        let store = SessionStore::default();
        assert!(matches!(
            model.predict_patch(&store, "dsn-nope", "module m (); endmodule"),
            Err(SessionError::UnknownBase(_))
        ));
        let base = model.predict_session(&store, &src("a + 8'd1"), "top").unwrap();
        assert!(matches!(
            model.predict_patch(&store, &base.token, "module broken ("),
            Err(SessionError::Front(_))
        ));
        // A patch that makes elaboration fail is also a front-end error.
        assert!(matches!(
            model.predict_patch(
                &store,
                &base.token,
                "module leaf (input [7:0] a, output [7:0] y); assign y = nosuch; endmodule",
            ),
            Err(SessionError::Front(_))
        ));
    }

    #[test]
    fn session_store_evicts_fifo() {
        let model = tiny_model();
        let store = SessionStore::new(2, 64);
        let t0 = model.predict_session(&store, &src("a + 8'd1"), "top").unwrap().token;
        let t1 = model.predict_session(&store, &src("a + 8'd2"), "top").unwrap().token;
        let t2 = model.predict_session(&store, &src("a + 8'd3"), "top").unwrap().token;
        assert_eq!(store.session_count(), 2);
        assert!(store.get(&t0).is_none(), "oldest session evicted");
        assert!(store.get(&t1).is_some() && store.get(&t2).is_some());
        store.clear();
        assert_eq!(store.session_count(), 0);
    }

    #[test]
    fn chained_patches_stay_consistent() {
        let model = tiny_model();
        let store = SessionStore::default();
        let mut token =
            model.predict_session(&store, &src("a + 8'd1"), "top").unwrap().token;
        for (i, body) in
            ["a ^ 8'h0F", "(a + 8'd9) & a", "a * 8'd3", "~a"].iter().enumerate()
        {
            let patch = format!(
                "module leaf (input [7:0] a, output [7:0] y); assign y = {body}; endmodule"
            );
            let out = model.predict_patch(&store, &token, &patch).unwrap();
            let scratch_model = model.clone();
            scratch_model.clear_cache();
            let scratch = scratch_model
                .predict_session(&SessionStore::default(), &src(body), "top")
                .unwrap();
            assert_eq!(out.token, scratch.token, "step {i}");
            assert_same_prediction(&out.prediction, &scratch.prediction);
            token = out.token;
        }
        // The shared elab cache saw real reuse across the chain.
        assert!(store.elab_cache().hits() > 0);
        assert!(store.elab_cache().invalidations() > 0);
    }
}
