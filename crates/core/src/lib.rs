//! # sns-core
//!
//! The end-to-end SNS synthesis predictor: the paper's primary
//! contribution, assembled from the workspace substrates.
//!
//! The prediction flow (§3, Figure 1) is:
//!
//! 1. **Preprocess** — compile Verilog into a netlist (`sns-netlist`) and
//!    build the GraphIR (`sns-graphir`),
//! 2. **Sample** — extract complete circuit paths (`sns-sampler`,
//!    Algorithm 1),
//! 3. **Circuitformer** — predict each path's timing/area/power
//!    (`sns-circuitformer`),
//! 4. **Aggregate** — reduce path predictions (max for timing, sum for
//!    area and power, activity-scaled sums for power gating) and refine
//!    with per-target Aggregation MLPs fed by the graph statistics.
//!
//! The training flow (§4, Figure 4) lives in [`train`]: ground-truth
//! labels come from the virtual synthesizer (`sns-vsynth`), scarce path
//! data is augmented with a Markov chain and a SeqGAN (`sns-genmodel`),
//! and everything is tied together with the metrics of §5.1 (RRSE, MAEP).
//!
//! # Example
//!
//! ```rust,no_run
//! use sns_core::{train_sns, SnsTrainConfig};
//!
//! let designs = sns_designs::catalog();
//! let (model, report) = train_sns(&designs[..8], &SnsTrainConfig::fast());
//! println!("trained on {} paths", report.path_dataset_size);
//! let pred = model
//!     .predict_verilog(&designs[8].verilog, &designs[8].top)
//!     .expect("valid Verilog");
//! println!("area = {} um2", pred.area_um2);
//! ```

pub mod aggmlp;
pub mod cache;
pub mod dataset;
pub mod eval;
pub mod metrics;
pub mod model_io;
pub mod predictor;
pub mod session;
pub mod train;

pub use aggmlp::AggMlp;
pub use cache::PathPredictionCache;
pub use dataset::{CircuitPathDataset, HardwareDesignDataset, LabeledDesign};
pub use eval::{cross_validate, CrossValidation, ScatterPoint};
pub use metrics::{maep, rrse};
pub use model_io::{
    load_from_zoo, load_model, model_weight_hash, save_model, save_to_zoo, ZooCheckpointMeta,
    ZooEntry, ZooError, ZooManifest, ZOO_MANIFEST,
};
pub use predictor::{DesignPrediction, SnsModel};
pub use sns_nn::QuantMode;
pub use session::{DesignSession, SessionError, SessionOutcome, SessionStore};
pub use train::{
    refit_correction, train_sns, train_sns_on_labeled, FineTuneConfig, FineTuner, SnsTrainConfig,
    TrainReport,
};
