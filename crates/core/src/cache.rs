//! A shared memo cache for per-path Circuitformer predictions.
//!
//! Regular designs sample many identical token sequences (every PE of a
//! systolic array yields the same path), and the same sequences recur
//! between [`SnsModel::path_aggregates`] and
//! [`SnsModel::critical_paths`], so predictions are memoized once on the
//! model and reused across calls.
//!
//! [`SnsModel::path_aggregates`]: crate::SnsModel::path_aggregates
//! [`SnsModel::critical_paths`]: crate::SnsModel::critical_paths

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::RwLock;

/// Maps a path's vocabulary token sequence to its raw
/// `[timing, area, power]` prediction.
///
/// Interior mutability lets `&self` prediction methods fill the cache;
/// the lock is only ever taken briefly (lookups and batched inserts) —
/// the expensive Circuitformer calls happen outside it.
#[derive(Debug, Default)]
pub struct PathPredictionCache {
    map: RwLock<HashMap<Vec<usize>, [f64; 3]>>,
}

impl Clone for PathPredictionCache {
    fn clone(&self) -> Self {
        PathPredictionCache {
            map: RwLock::new(self.map.read().expect("cache lock poisoned").clone()),
        }
    }
}

impl PathPredictionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized sequences.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (e.g. after mutating model weights).
    pub fn clear(&self) {
        self.map.write().expect("cache lock poisoned").clear();
    }

    /// The memoized prediction for `tokens`, if present.
    pub fn get(&self, tokens: &[usize]) -> Option<[f64; 3]> {
        self.map.read().expect("cache lock poisoned").get(tokens).copied()
    }

    /// Memoizes one prediction.
    pub fn insert(&self, tokens: Vec<usize>, pred: [f64; 3]) {
        self.map.write().expect("cache lock poisoned").insert(tokens, pred);
    }

    /// Ensures every sequence in `seqs` is cached, computing the missing
    /// *unique* ones with `predict` fanned out over `threads` workers.
    ///
    /// `predict` must be pure; results are inserted in one batch, so
    /// concurrent readers never observe a partially computed sequence.
    pub fn ensure<F>(&self, seqs: &[Vec<usize>], threads: usize, predict: F)
    where
        F: Fn(&[usize]) -> [f64; 3] + Sync,
    {
        let missing: Vec<&Vec<usize>> = {
            let map = self.map.read().expect("cache lock poisoned");
            let mut seen: HashSet<&Vec<usize>> = HashSet::new();
            seqs.iter().filter(|t| !map.contains_key(*t) && seen.insert(*t)).collect()
        };
        if missing.is_empty() {
            return;
        }
        let preds = sns_rt::pool::par_map(&missing, threads, |t| predict(t));
        let mut map = self.map.write().expect("cache lock poisoned");
        for (tokens, pred) in missing.into_iter().zip(preds) {
            map.insert(tokens.clone(), pred);
        }
    }

    /// Like [`ensure`](Self::ensure), but hands the missing unique
    /// sequences to `predict_batch` in length-bucketed chunks of at most
    /// `batch` sequences, fanning the chunks over `threads` workers.
    ///
    /// Sequences are grouped by exact token length (shortest bucket
    /// first, deterministically) so every chunk's packed forward sees
    /// uniform sequence shapes. `predict_batch` must be pure and return
    /// one prediction per input, each independent of its batch-mates —
    /// then the cache contents are identical to the per-sequence
    /// [`ensure`](Self::ensure) path at any `threads` or `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `predict_batch` returns the wrong number of predictions.
    pub fn ensure_batched<F>(&self, seqs: &[Vec<usize>], threads: usize, batch: usize, predict_batch: F)
    where
        F: Fn(&[&[usize]]) -> Vec<[f64; 3]> + Sync,
    {
        let missing: Vec<&Vec<usize>> = {
            let map = self.map.read().expect("cache lock poisoned");
            let mut seen: HashSet<&Vec<usize>> = HashSet::new();
            seqs.iter().filter(|t| !map.contains_key(*t) && seen.insert(*t)).collect()
        };
        if missing.is_empty() {
            return;
        }
        let batch = batch.max(1);
        let mut buckets: BTreeMap<usize, Vec<&Vec<usize>>> = BTreeMap::new();
        for t in &missing {
            buckets.entry(t.len()).or_default().push(t);
        }
        let chunks: Vec<Vec<&Vec<usize>>> = buckets
            .into_values()
            .flat_map(|b| b.chunks(batch).map(<[_]>::to_vec).collect::<Vec<_>>())
            .collect();
        let preds = sns_rt::pool::par_map(&chunks, threads, |chunk| {
            let refs: Vec<&[usize]> = chunk.iter().map(|t| t.as_slice()).collect();
            predict_batch(&refs)
        });
        let mut map = self.map.write().expect("cache lock poisoned");
        for (chunk, chunk_preds) in chunks.into_iter().zip(preds) {
            assert_eq!(chunk.len(), chunk_preds.len(), "predict_batch must return one prediction per sequence");
            for (tokens, pred) in chunk.into_iter().zip(chunk_preds) {
                map.insert(tokens.clone(), pred);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn get_after_insert() {
        let cache = PathPredictionCache::new();
        assert!(cache.is_empty());
        cache.insert(vec![1, 2, 3], [4.0, 5.0, 6.0]);
        assert_eq!(cache.get(&[1, 2, 3]), Some([4.0, 5.0, 6.0]));
        assert_eq!(cache.get(&[1, 2]), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn ensure_computes_each_unique_sequence_once() {
        let cache = PathPredictionCache::new();
        cache.insert(vec![9], [9.0, 9.0, 9.0]);
        let calls = AtomicUsize::new(0);
        let seqs = vec![vec![1], vec![2], vec![1], vec![9], vec![2], vec![1]];
        for threads in [1, 4] {
            cache.ensure(&seqs, threads, |t| {
                calls.fetch_add(1, Ordering::Relaxed);
                [t[0] as f64, 0.0, 0.0]
            });
        }
        // Only [1] and [2] were missing, and only on the first call.
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.get(&[1]), Some([1.0, 0.0, 0.0]));
        assert_eq!(cache.get(&[9]), Some([9.0, 9.0, 9.0]));
    }

    #[test]
    fn ensure_batched_buckets_by_length_and_respects_batch_size() {
        let cache = PathPredictionCache::new();
        cache.insert(vec![7, 7], [7.0, 7.0, 7.0]);
        // Lengths: five of len 1, two of len 3; one len-2 already cached.
        let seqs = vec![
            vec![1], vec![2], vec![3], vec![4], vec![5],
            vec![7, 7],
            vec![1, 2, 3], vec![4, 5, 6],
            vec![1], // duplicate
        ];
        let max_chunk = AtomicUsize::new(0);
        cache.ensure_batched(&seqs, 2, 2, |chunk| {
            max_chunk.fetch_max(chunk.len(), Ordering::Relaxed);
            // Every chunk is length-uniform.
            assert!(chunk.iter().all(|t| t.len() == chunk[0].len()), "mixed-length chunk");
            chunk.iter().map(|t| [t[0] as f64, t.len() as f64, 0.0]).collect()
        });
        assert!(max_chunk.load(Ordering::Relaxed) <= 2);
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.get(&[3]), Some([3.0, 1.0, 0.0]));
        assert_eq!(cache.get(&[4, 5, 6]), Some([4.0, 3.0, 0.0]));
        assert_eq!(cache.get(&[7, 7]), Some([7.0, 7.0, 7.0])); // untouched
    }

    #[test]
    fn ensure_batched_matches_ensure_at_any_batch_size() {
        let seqs: Vec<Vec<usize>> =
            (0..20).map(|i| (0..(i % 5 + 1)).map(|j| i + j).collect()).collect();
        let predict = |t: &[usize]| [t.iter().sum::<usize>() as f64, t.len() as f64, 1.0];
        let reference = PathPredictionCache::new();
        reference.ensure(&seqs, 1, predict);
        for batch in [1, 4, 32] {
            for threads in [1, 4] {
                let cache = PathPredictionCache::new();
                cache.ensure_batched(&seqs, threads, batch, |chunk| {
                    chunk.iter().map(|t| predict(t)).collect()
                });
                assert_eq!(cache.len(), reference.len(), "batch={batch} threads={threads}");
                for s in &seqs {
                    assert_eq!(cache.get(s), reference.get(s), "batch={batch} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn clone_is_a_snapshot() {
        let cache = PathPredictionCache::new();
        cache.insert(vec![1], [1.0, 1.0, 1.0]);
        let copy = cache.clone();
        cache.insert(vec![2], [2.0, 2.0, 2.0]);
        assert_eq!(copy.len(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = PathPredictionCache::new();
        cache.insert(vec![1], [1.0, 1.0, 1.0]);
        cache.clear();
        assert!(cache.is_empty());
    }
}
