//! A shared memo cache for per-path Circuitformer predictions.
//!
//! Regular designs sample many identical token sequences (every PE of a
//! systolic array yields the same path), and the same sequences recur
//! between [`SnsModel::path_aggregates`] and
//! [`SnsModel::critical_paths`], so predictions are memoized once on the
//! model and reused across calls.
//!
//! The cache can be **bounded**: [`set_capacity`](PathPredictionCache::set_capacity)
//! installs an entry-count cap with deterministic FIFO (insertion-order)
//! eviction. Eviction only ever changes *recompute cost*, never values —
//! the prediction function is pure, so a re-computed entry is
//! bit-identical to the evicted one. The CLI leaves the cache unbounded;
//! long-lived servers bound it (`SNS_CACHE_CAP`) so memory stays flat
//! under unbounded workload diversity.
//!
//! Fill calls ([`ensure`](PathPredictionCache::ensure) /
//! [`ensure_batched`](PathPredictionCache::ensure_batched)) maintain
//! hit/miss counters over *unique* sequences: a unique sequence already
//! present counts one hit, a unique sequence that must be computed counts
//! one miss. Point lookups via [`get`](PathPredictionCache::get) are not
//! counted (the aggregation reduction reads every path through `get`,
//! which would drown the fill-level signal the counters exist to report).
//!
//! [`SnsModel::path_aggregates`]: crate::SnsModel::path_aggregates
//! [`SnsModel::critical_paths`]: crate::SnsModel::critical_paths

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Vec<usize>, [f64; 3]>,
    /// Insertion order of the keys in `map`, oldest first; drives FIFO
    /// eviction. Only maintained while a capacity is set (entries
    /// inserted before the first `set_capacity` call are backfilled in
    /// deterministic key order at that point).
    order: VecDeque<Vec<usize>>,
    /// Entry cap; `usize::MAX` means unbounded.
    cap: usize,
}

impl Inner {
    /// Inserts one entry, evicting FIFO past the cap; returns how many
    /// entries were evicted.
    fn insert(&mut self, tokens: Vec<usize>, pred: [f64; 3]) -> u64 {
        let fresh = self.map.insert(tokens.clone(), pred).is_none();
        if self.cap == usize::MAX {
            return 0;
        }
        if fresh {
            self.order.push_back(tokens);
        }
        let mut evicted = 0;
        while self.map.len() > self.cap {
            let oldest = self.order.pop_front().expect("order tracks map");
            self.map.remove(&oldest);
            evicted += 1;
        }
        evicted
    }
}

/// Maps a path's vocabulary token sequence to its raw
/// `[timing, area, power]` prediction.
///
/// Interior mutability lets `&self` prediction methods fill the cache;
/// the lock is only ever taken briefly (lookups and batched inserts) —
/// the expensive Circuitformer calls happen outside it.
#[derive(Debug)]
pub struct PathPredictionCache {
    inner: RwLock<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PathPredictionCache {
    fn default() -> Self {
        PathPredictionCache {
            inner: RwLock::new(Inner { map: HashMap::new(), order: VecDeque::new(), cap: usize::MAX }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

impl Clone for PathPredictionCache {
    fn clone(&self) -> Self {
        let inner = self.inner.read().expect("cache lock poisoned");
        PathPredictionCache {
            inner: RwLock::new(Inner {
                map: inner.map.clone(),
                order: inner.order.clone(),
                cap: inner.cap,
            }),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicU64::new(self.misses.load(Ordering::Relaxed)),
            evictions: AtomicU64::new(self.evictions.load(Ordering::Relaxed)),
        }
    }
}

impl PathPredictionCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded to at most `cap` entries (FIFO eviction).
    pub fn with_capacity(cap: usize) -> Self {
        let cache = Self::default();
        cache.set_capacity(Some(cap));
        cache
    }

    /// Installs (or removes, with `None`) an entry-count bound.
    ///
    /// Eviction is deterministic: entries leave in insertion order
    /// (FIFO). Shrinking below the current size evicts immediately.
    pub fn set_capacity(&self, cap: Option<usize>) {
        let mut inner = self.inner.write().expect("cache lock poisoned");
        inner.cap = cap.unwrap_or(usize::MAX);
        if inner.cap == usize::MAX {
            inner.order.clear();
            return;
        }
        if inner.order.is_empty() && !inner.map.is_empty() {
            // Capacity installed on an already-filled unbounded cache:
            // synthesize a deterministic insertion order (sorted keys).
            let mut keys: Vec<Vec<usize>> = inner.map.keys().cloned().collect();
            keys.sort_unstable();
            inner.order = keys.into();
        }
        let mut evicted = 0u64;
        while inner.map.len() > inner.cap {
            let oldest = inner.order.pop_front().expect("order tracks map");
            inner.map.remove(&oldest);
            evicted += 1;
        }
        drop(inner);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// The current entry-count bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        let cap = self.inner.read().expect("cache lock poisoned").cap;
        (cap != usize::MAX).then_some(cap)
    }

    /// Number of memoized sequences.
    pub fn len(&self) -> usize {
        self.inner.read().expect("cache lock poisoned").map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unique sequences found already cached by fill calls.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Unique sequences fill calls had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drops every entry (e.g. after mutating model weights). Counters
    /// are preserved — they describe lifetime traffic, not contents.
    pub fn clear(&self) {
        let mut inner = self.inner.write().expect("cache lock poisoned");
        inner.map.clear();
        inner.order.clear();
    }

    /// The memoized prediction for `tokens`, if present. Not counted in
    /// hit/miss statistics (see the module docs).
    pub fn get(&self, tokens: &[usize]) -> Option<[f64; 3]> {
        self.inner.read().expect("cache lock poisoned").map.get(tokens).copied()
    }

    /// Memoizes one prediction, evicting the oldest entry if a capacity
    /// bound is set and exceeded.
    pub fn insert(&self, tokens: Vec<usize>, pred: [f64; 3]) {
        let mut inner = self.inner.write().expect("cache lock poisoned");
        let evicted = inner.insert(tokens, pred);
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// The unique sequences from `seqs` not currently cached, in first-
    /// occurrence order, updating the hit/miss counters (one hit per
    /// unique cached sequence, one miss per returned sequence).
    pub fn missing_unique(&self, seqs: &[Vec<usize>]) -> Vec<Vec<usize>> {
        let missing: Vec<Vec<usize>> = {
            let inner = self.inner.read().expect("cache lock poisoned");
            let mut seen: HashSet<&Vec<usize>> = HashSet::new();
            let mut unique_hits = 0u64;
            let mut out = Vec::new();
            for t in seqs {
                if !seen.insert(t) {
                    continue;
                }
                if inner.map.contains_key(t) {
                    unique_hits += 1;
                } else {
                    out.push(t.clone());
                }
            }
            self.hits.fetch_add(unique_hits, Ordering::Relaxed);
            out
        };
        self.misses.fetch_add(missing.len() as u64, Ordering::Relaxed);
        missing
    }

    /// Ensures every sequence in `seqs` is cached, computing the missing
    /// *unique* ones with `predict` fanned out over `threads` workers.
    ///
    /// `predict` must be pure; results are inserted in one batch, so
    /// concurrent readers never observe a partially computed sequence.
    pub fn ensure<F>(&self, seqs: &[Vec<usize>], threads: usize, predict: F)
    where
        F: Fn(&[usize]) -> [f64; 3] + Sync,
    {
        let missing = self.missing_unique(seqs);
        if missing.is_empty() {
            return;
        }
        let preds = sns_rt::pool::par_map(&missing, threads, |t| predict(t));
        let mut inner = self.inner.write().expect("cache lock poisoned");
        let mut evicted = 0;
        for (tokens, pred) in missing.into_iter().zip(preds) {
            evicted += inner.insert(tokens, pred);
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Like [`ensure`](Self::ensure), but hands the missing unique
    /// sequences to `predict_batch` in length-bucketed chunks of at most
    /// `batch` sequences, fanning the chunks over `threads` workers.
    ///
    /// Sequences are grouped by exact token length (shortest bucket
    /// first, deterministically) so every chunk's packed forward sees
    /// uniform sequence shapes. `predict_batch` must be pure and return
    /// one prediction per input, each independent of its batch-mates —
    /// then the cache contents are identical to the per-sequence
    /// [`ensure`](Self::ensure) path at any `threads` or `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `predict_batch` returns the wrong number of predictions.
    pub fn ensure_batched<F>(&self, seqs: &[Vec<usize>], threads: usize, batch: usize, predict_batch: F)
    where
        F: Fn(&[&[usize]]) -> Vec<[f64; 3]> + Sync,
    {
        let missing = self.missing_unique(seqs);
        if missing.is_empty() {
            return;
        }
        self.compute_batched(missing, threads, batch, predict_batch);
    }

    /// The fill half of [`ensure_batched`](Self::ensure_batched):
    /// computes `missing` (assumed unique, counters already updated) in
    /// length-bucketed chunks and inserts the results. Exposed so a
    /// cross-request micro-batcher can coalesce the missing sets of many
    /// concurrent callers into one fill.
    pub fn compute_batched<F>(&self, missing: Vec<Vec<usize>>, threads: usize, batch: usize, predict_batch: F)
    where
        F: Fn(&[&[usize]]) -> Vec<[f64; 3]> + Sync,
    {
        if missing.is_empty() {
            return;
        }
        let batch = batch.max(1);
        let mut buckets: BTreeMap<usize, Vec<&Vec<usize>>> = BTreeMap::new();
        for t in &missing {
            buckets.entry(t.len()).or_default().push(t);
        }
        let chunks: Vec<Vec<&Vec<usize>>> = buckets
            .into_values()
            .flat_map(|b| b.chunks(batch).map(<[_]>::to_vec).collect::<Vec<_>>())
            .collect();
        let preds = sns_rt::pool::par_map(&chunks, threads, |chunk| {
            let refs: Vec<&[usize]> = chunk.iter().map(|t| t.as_slice()).collect();
            predict_batch(&refs)
        });
        let mut inner = self.inner.write().expect("cache lock poisoned");
        let mut evicted = 0;
        for (chunk, chunk_preds) in chunks.into_iter().zip(preds) {
            assert_eq!(chunk.len(), chunk_preds.len(), "predict_batch must return one prediction per sequence");
            for (tokens, pred) in chunk.into_iter().zip(chunk_preds) {
                evicted += inner.insert(tokens.clone(), pred);
            }
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn get_after_insert() {
        let cache = PathPredictionCache::new();
        assert!(cache.is_empty());
        cache.insert(vec![1, 2, 3], [4.0, 5.0, 6.0]);
        assert_eq!(cache.get(&[1, 2, 3]), Some([4.0, 5.0, 6.0]));
        assert_eq!(cache.get(&[1, 2]), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn ensure_computes_each_unique_sequence_once() {
        let cache = PathPredictionCache::new();
        cache.insert(vec![9], [9.0, 9.0, 9.0]);
        let calls = AtomicUsize::new(0);
        let seqs = vec![vec![1], vec![2], vec![1], vec![9], vec![2], vec![1]];
        for threads in [1, 4] {
            cache.ensure(&seqs, threads, |t| {
                calls.fetch_add(1, Ordering::Relaxed);
                [t[0] as f64, 0.0, 0.0]
            });
        }
        // Only [1] and [2] were missing, and only on the first call.
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.get(&[1]), Some([1.0, 0.0, 0.0]));
        assert_eq!(cache.get(&[9]), Some([9.0, 9.0, 9.0]));
    }

    #[test]
    fn hit_and_miss_counters_track_unique_fill_traffic() {
        let cache = PathPredictionCache::new();
        let seqs = vec![vec![1], vec![2], vec![1]];
        cache.ensure(&seqs, 1, |t| [t[0] as f64, 0.0, 0.0]);
        // First fill: two unique sequences, both missing.
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        cache.ensure(&seqs, 1, |_| unreachable!("everything is cached"));
        // Second fill: both unique sequences hit.
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        // Point lookups are not counted.
        let _ = cache.get(&[1]);
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn ensure_batched_buckets_by_length_and_respects_batch_size() {
        let cache = PathPredictionCache::new();
        cache.insert(vec![7, 7], [7.0, 7.0, 7.0]);
        // Lengths: five of len 1, two of len 3; one len-2 already cached.
        let seqs = vec![
            vec![1], vec![2], vec![3], vec![4], vec![5],
            vec![7, 7],
            vec![1, 2, 3], vec![4, 5, 6],
            vec![1], // duplicate
        ];
        let max_chunk = AtomicUsize::new(0);
        cache.ensure_batched(&seqs, 2, 2, |chunk| {
            max_chunk.fetch_max(chunk.len(), Ordering::Relaxed);
            // Every chunk is length-uniform.
            assert!(chunk.iter().all(|t| t.len() == chunk[0].len()), "mixed-length chunk");
            chunk.iter().map(|t| [t[0] as f64, t.len() as f64, 0.0]).collect()
        });
        assert!(max_chunk.load(Ordering::Relaxed) <= 2);
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.get(&[3]), Some([3.0, 1.0, 0.0]));
        assert_eq!(cache.get(&[4, 5, 6]), Some([4.0, 3.0, 0.0]));
        assert_eq!(cache.get(&[7, 7]), Some([7.0, 7.0, 7.0])); // untouched
    }

    #[test]
    fn ensure_batched_matches_ensure_at_any_batch_size() {
        let seqs: Vec<Vec<usize>> =
            (0..20).map(|i| (0..(i % 5 + 1)).map(|j| i + j).collect()).collect();
        let predict = |t: &[usize]| [t.iter().sum::<usize>() as f64, t.len() as f64, 1.0];
        let reference = PathPredictionCache::new();
        reference.ensure(&seqs, 1, predict);
        for batch in [1, 4, 32] {
            for threads in [1, 4] {
                let cache = PathPredictionCache::new();
                cache.ensure_batched(&seqs, threads, batch, |chunk| {
                    chunk.iter().map(|t| predict(t)).collect()
                });
                assert_eq!(cache.len(), reference.len(), "batch={batch} threads={threads}");
                for s in &seqs {
                    assert_eq!(cache.get(s), reference.get(s), "batch={batch} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn capacity_bound_evicts_fifo_deterministically() {
        let cache = PathPredictionCache::with_capacity(3);
        for i in 0..5usize {
            cache.insert(vec![i], [i as f64, 0.0, 0.0]);
        }
        assert_eq!(cache.len(), 3);
        // FIFO: [0] and [1] left first.
        assert_eq!(cache.get(&[0]), None);
        assert_eq!(cache.get(&[1]), None);
        assert_eq!(cache.get(&[2]), Some([2.0, 0.0, 0.0]));
        assert_eq!(cache.get(&[4]), Some([4.0, 0.0, 0.0]));
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let cache = PathPredictionCache::new();
        for i in 0..10usize {
            cache.insert(vec![i], [i as f64, 0.0, 0.0]);
        }
        cache.set_capacity(Some(4));
        assert_eq!(cache.len(), 4);
        // Backfilled order is sorted keys, so the 4 largest keys remain.
        for i in 6..10usize {
            assert!(cache.get(&[i]).is_some(), "[{i}] should survive");
        }
        assert_eq!(cache.capacity(), Some(4));
        cache.set_capacity(None);
        assert_eq!(cache.capacity(), None);
    }

    #[test]
    fn eviction_changes_recompute_cost_never_values() {
        // The acceptance property of the bounded cache: with a pure
        // prediction function, a tiny cap forces recomputation but every
        // value handed back is bit-identical to the unbounded run.
        let seqs: Vec<Vec<usize>> =
            (0..30).map(|i| (0..(i % 7 + 1)).map(|j| 31 * i + j).collect()).collect();
        let predict = |t: &[usize]| {
            let s = t.iter().map(|&x| (x as f64).sin()).sum::<f64>();
            [s, s * 0.5, s * 0.25]
        };
        let unbounded = PathPredictionCache::new();
        unbounded.ensure(&seqs, 1, predict);
        let reference: Vec<[f64; 3]> = seqs.iter().map(|s| unbounded.get(s).unwrap()).collect();

        for cap in [1, 3, 7] {
            let cache = PathPredictionCache::with_capacity(cap);
            let calls = AtomicUsize::new(0);
            let mut total_calls_prev = 0;
            for round in 0..3 {
                // Feed the sequences in small windows so each window fits
                // in (or overflows) the cap; every returned value must
                // still match the unbounded reference exactly.
                for window in seqs.chunks(5) {
                    cache.ensure_batched(window, 2, 3, |chunk| {
                        calls.fetch_add(chunk.len(), Ordering::Relaxed);
                        chunk.iter().map(|t| predict(t)).collect()
                    });
                    for s in window {
                        if let Some(v) = cache.get(s) {
                            let expect = reference[seqs.iter().position(|x| x == s).unwrap()];
                            assert_eq!(v, expect, "cap={cap} round={round}");
                        }
                    }
                }
                assert!(cache.len() <= cap, "cap={cap} violated: {}", cache.len());
                let total = calls.load(Ordering::Relaxed);
                // Bounded cache recomputes: later rounds still do work.
                assert!(total >= total_calls_prev, "cap={cap}");
                total_calls_prev = total;
            }
            // With cap=1 almost everything is recomputed every round;
            // with an unbounded cache the 2nd and 3rd rounds would cost 0.
            assert!(
                calls.load(Ordering::Relaxed) > seqs.len(),
                "cap={cap}: expected recomputation beyond the first round"
            );
            assert!(cache.evictions() > 0, "cap={cap}");
        }
    }

    #[test]
    fn clone_is_a_snapshot() {
        let cache = PathPredictionCache::new();
        cache.insert(vec![1], [1.0, 1.0, 1.0]);
        let copy = cache.clone();
        cache.insert(vec![2], [2.0, 2.0, 2.0]);
        assert_eq!(copy.len(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = PathPredictionCache::new();
        cache.insert(vec![1], [1.0, 1.0, 1.0]);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn counters_reconcile_under_capacity_pressure() {
        // The /metrics identity: as long as the cache is only filled
        // through counted paths (ensure) and never cleared, every live
        // entry is exactly a miss that has not been evicted.
        let cache = PathPredictionCache::new();
        cache.set_capacity(Some(4));
        let reconcile = |tag: &str| {
            assert_eq!(
                cache.len() as u64,
                cache.misses() - cache.evictions(),
                "{tag}: len {} hits {} misses {} evictions {}",
                cache.len(),
                cache.hits(),
                cache.misses(),
                cache.evictions()
            );
            assert!(cache.len() <= 4, "{tag}: over capacity");
        };
        let predict = |t: &[usize]| [t[0] as f64, 0.0, 0.0];
        // Fill to capacity: 4 misses, nothing evicted yet.
        let first: Vec<Vec<usize>> = (0..4).map(|i| vec![i]).collect();
        cache.ensure(&first, 2, predict);
        reconcile("full");
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (0, 4, 0));
        // Overflow with three fresh sequences: FIFO evicts the oldest.
        let overflow: Vec<Vec<usize>> = (4..7).map(|i| vec![i]).collect();
        cache.ensure(&overflow, 2, predict);
        reconcile("overflow");
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (0, 7, 3));
        assert_eq!(cache.get(&[0]), None, "oldest entries leave first");
        assert_eq!(cache.get(&[6]), Some([6.0, 0.0, 0.0]));
        // Re-ensuring survivors hits without disturbing the identity.
        cache.ensure(&overflow, 1, |_| unreachable!("survivors are cached"));
        reconcile("re-ensure");
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (3, 7, 3));
        // Re-ensuring an evicted sequence is a fresh miss + eviction.
        cache.ensure(&first[..1], 1, predict);
        reconcile("evicted returns");
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (3, 8, 4));
        // Shrinking capacity evicts immediately and stays reconciled.
        cache.set_capacity(Some(2));
        reconcile("shrunk");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 6);
    }
}
