//! A shared memo cache for per-path Circuitformer predictions.
//!
//! Regular designs sample many identical token sequences (every PE of a
//! systolic array yields the same path), and the same sequences recur
//! between [`SnsModel::path_aggregates`] and
//! [`SnsModel::critical_paths`], so predictions are memoized once on the
//! model and reused across calls.
//!
//! [`SnsModel::path_aggregates`]: crate::SnsModel::path_aggregates
//! [`SnsModel::critical_paths`]: crate::SnsModel::critical_paths

use std::collections::{HashMap, HashSet};
use std::sync::RwLock;

/// Maps a path's vocabulary token sequence to its raw
/// `[timing, area, power]` prediction.
///
/// Interior mutability lets `&self` prediction methods fill the cache;
/// the lock is only ever taken briefly (lookups and batched inserts) —
/// the expensive Circuitformer calls happen outside it.
#[derive(Debug, Default)]
pub struct PathPredictionCache {
    map: RwLock<HashMap<Vec<usize>, [f64; 3]>>,
}

impl Clone for PathPredictionCache {
    fn clone(&self) -> Self {
        PathPredictionCache {
            map: RwLock::new(self.map.read().expect("cache lock poisoned").clone()),
        }
    }
}

impl PathPredictionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized sequences.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (e.g. after mutating model weights).
    pub fn clear(&self) {
        self.map.write().expect("cache lock poisoned").clear();
    }

    /// The memoized prediction for `tokens`, if present.
    pub fn get(&self, tokens: &[usize]) -> Option<[f64; 3]> {
        self.map.read().expect("cache lock poisoned").get(tokens).copied()
    }

    /// Memoizes one prediction.
    pub fn insert(&self, tokens: Vec<usize>, pred: [f64; 3]) {
        self.map.write().expect("cache lock poisoned").insert(tokens, pred);
    }

    /// Ensures every sequence in `seqs` is cached, computing the missing
    /// *unique* ones with `predict` fanned out over `threads` workers.
    ///
    /// `predict` must be pure; results are inserted in one batch, so
    /// concurrent readers never observe a partially computed sequence.
    pub fn ensure<F>(&self, seqs: &[Vec<usize>], threads: usize, predict: F)
    where
        F: Fn(&[usize]) -> [f64; 3] + Sync,
    {
        let missing: Vec<&Vec<usize>> = {
            let map = self.map.read().expect("cache lock poisoned");
            let mut seen: HashSet<&Vec<usize>> = HashSet::new();
            seqs.iter().filter(|t| !map.contains_key(*t) && seen.insert(*t)).collect()
        };
        if missing.is_empty() {
            return;
        }
        let preds = sns_rt::pool::par_map(&missing, threads, |t| predict(t));
        let mut map = self.map.write().expect("cache lock poisoned");
        for (tokens, pred) in missing.into_iter().zip(preds) {
            map.insert(tokens.clone(), pred);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn get_after_insert() {
        let cache = PathPredictionCache::new();
        assert!(cache.is_empty());
        cache.insert(vec![1, 2, 3], [4.0, 5.0, 6.0]);
        assert_eq!(cache.get(&[1, 2, 3]), Some([4.0, 5.0, 6.0]));
        assert_eq!(cache.get(&[1, 2]), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn ensure_computes_each_unique_sequence_once() {
        let cache = PathPredictionCache::new();
        cache.insert(vec![9], [9.0, 9.0, 9.0]);
        let calls = AtomicUsize::new(0);
        let seqs = vec![vec![1], vec![2], vec![1], vec![9], vec![2], vec![1]];
        for threads in [1, 4] {
            cache.ensure(&seqs, threads, |t| {
                calls.fetch_add(1, Ordering::Relaxed);
                [t[0] as f64, 0.0, 0.0]
            });
        }
        // Only [1] and [2] were missing, and only on the first call.
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.get(&[1]), Some([1.0, 0.0, 0.0]));
        assert_eq!(cache.get(&[9]), Some([9.0, 9.0, 9.0]));
    }

    #[test]
    fn clone_is_a_snapshot() {
        let cache = PathPredictionCache::new();
        cache.insert(vec![1], [1.0, 1.0, 1.0]);
        let copy = cache.clone();
        cache.insert(vec![2], [2.0, 2.0, 2.0]);
        assert_eq!(copy.len(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = PathPredictionCache::new();
        cache.insert(vec![1], [1.0, 1.0, 1.0]);
        cache.clear();
        assert!(cache.is_empty());
    }
}
