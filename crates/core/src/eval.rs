//! 2-fold cross-validated evaluation (§5.2): the machinery behind
//! Figure 6 and Table 7.

use crate::dataset::HardwareDesignDataset;
use crate::metrics::{maep, rrse};
use crate::train::{train_sns_on_labeled, SnsTrainConfig};

use sns_netlist::parse_and_elaborate;

/// One design's point in the Figure 6 scatter plots.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterPoint {
    /// Design name.
    pub name: String,
    /// Ground truth `[timing_ps, area_um2, power_mw]`.
    pub truth: [f64; 3],
    /// SNS prediction `[timing_ps, area_um2, power_mw]`.
    pub pred: [f64; 3],
}

/// Cross-validation results: scatter points plus the Table 7 metrics.
#[derive(Debug, Clone, Default)]
pub struct CrossValidation {
    /// One point per evaluated design.
    pub points: Vec<ScatterPoint>,
    /// RRSE per target `[timing, area, power]`.
    pub rrse: [f64; 3],
    /// MAEP (%) per target.
    pub maep: [f64; 3],
}

impl CrossValidation {
    /// The paper's headline "average RRSE" (mean over the three targets;
    /// the abstract quotes 0.4998).
    pub fn mean_rrse(&self) -> f64 {
        self.rrse.iter().sum::<f64>() / 3.0
    }
}

/// Evaluates predictions for `test` designs with a model trained on
/// `train` designs, appending scatter points.
fn eval_fold(
    dataset: &HardwareDesignDataset,
    train: &[usize],
    test: &[usize],
    config: &SnsTrainConfig,
    points: &mut Vec<ScatterPoint>,
) {
    let train_entries = dataset.select(train);
    let (model, _) = train_sns_on_labeled(&train_entries, config);
    for &i in test {
        let e = &dataset.entries[i];
        let nl = parse_and_elaborate(&e.design.verilog, &e.design.top)
            .expect("labeled designs elaborate");
        let p = model.predict_netlist(&nl, None);
        points.push(ScatterPoint {
            name: e.design.name.clone(),
            truth: [e.report.timing_ps, e.report.area_um2, e.report.power_mw],
            pred: [p.timing_ps, p.area_um2, p.power_mw],
        });
    }
}

/// 2-fold cross validation over a labeled dataset: part A is evaluated by
/// a model trained on part B and vice versa, exactly as in §5.2.
pub fn cross_validate(
    dataset: &HardwareDesignDataset,
    config: &SnsTrainConfig,
    seed: u64,
) -> CrossValidation {
    let ((a_train, a_test), (b_train, b_test)) = dataset.two_fold(seed);
    let mut points = Vec::new();
    eval_fold(dataset, &a_train, &a_test, config, &mut points);
    eval_fold(dataset, &b_train, &b_test, config, &mut points);
    summarize(points)
}

/// Single-split evaluation (e.g. the 30 %/70 % row of Table 7).
pub fn evaluate_split(
    dataset: &HardwareDesignDataset,
    train_frac: f64,
    config: &SnsTrainConfig,
    seed: u64,
) -> CrossValidation {
    let (train, test) = dataset.split(train_frac, seed);
    let mut points = Vec::new();
    eval_fold(dataset, &train, &test, config, &mut points);
    summarize(points)
}

fn summarize(points: Vec<ScatterPoint>) -> CrossValidation {
    let mut cv = CrossValidation { points, ..Default::default() };
    for d in 0..3 {
        let pred: Vec<f64> = cv.points.iter().map(|p| p.pred[d]).collect();
        let truth: Vec<f64> = cv.points.iter().map(|p| p.truth[d]).collect();
        if !pred.is_empty() {
            cv.rrse[d] = rrse(&pred, &truth);
            cv.maep[d] = maep(&pred, &truth);
        }
    }
    cv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::AugmentConfig;
    use sns_circuitformer::{CircuitformerConfig, TrainConfig};
    use sns_designs::{dsp, nonlinear, sort, vector};
    use sns_sampler::SampleConfig;
    use sns_vsynth::SynthOptions;

    fn tiny_config() -> SnsTrainConfig {
        let mut c = SnsTrainConfig::fast();
        c.circuitformer =
            CircuitformerConfig { dim: 32, ffn_dim: 64, max_len: 64, ..CircuitformerConfig::fast() };
        c.cf_train = TrainConfig { epochs: 3, batch_size: 32, threads: 2, ..TrainConfig::fast() };
        c.mlp_train = crate::aggmlp::MlpTrainConfig { epochs: 40, ..crate::aggmlp::MlpTrainConfig::fast() };
        c.augment = AugmentConfig::none();
        c.sample = SampleConfig::paper_default().with_max_paths(200);
        c
    }

    #[test]
    fn cross_validation_covers_every_design_once() {
        let designs = vec![
            vector::simd_alu(2, 8),
            nonlinear::piecewise(4, 8),
            dsp::fir(4, 8),
            nonlinear::lut(16, 8),
            sort::radix_sort_stage(4, 8),
            dsp::conv2d(2, 8),
        ];
        let dataset = HardwareDesignDataset::generate(&designs, &SynthOptions::default());
        let cv = cross_validate(&dataset, &tiny_config(), 11);
        assert_eq!(cv.points.len(), designs.len());
        for d in 0..3 {
            assert!(cv.rrse[d].is_finite(), "dim {d}");
            assert!(cv.maep[d].is_finite());
        }
        assert!(cv.mean_rrse().is_finite());
    }
}
