//! The SNS training flow (§4, Figure 4).
//!
//! 1. Label designs with the virtual synthesizer (Hardware Design
//!    Dataset).
//! 2. Sample complete circuit paths from the training designs, label
//!    them, and augment with Markov-chain and SeqGAN paths (Circuit Path
//!    Dataset).
//! 3. Train the Circuitformer on the path dataset.
//! 4. Run the trained Circuitformer over each training design, aggregate
//!    per-design features, and train the three Aggregation MLPs against
//!    the design labels.

use sns_rt::rng::StdRng;

use sns_circuitformer::{
    train as cf_train, Circuitformer, CircuitformerConfig, LabelScaler, TrainConfig, TrainHistory,
};
use sns_designs::Design;
use sns_graphir::{GraphIr, Vocab};
use sns_netlist::parse_and_elaborate;
use sns_sampler::{PathSampler, SampleConfig};
use sns_vsynth::SynthOptions;

use crate::aggmlp::{AggMlp, MlpTrainConfig};
use crate::cache::PathPredictionCache;
use crate::dataset::{AugmentConfig, CircuitPathDataset, HardwareDesignDataset, LabeledDesign};
use crate::predictor::SnsModel;

/// Configuration of the full SNS training flow.
#[derive(Debug, Clone)]
pub struct SnsTrainConfig {
    /// Path sampling (Algorithm 1) configuration; the paper uses k = 5.
    pub sample: SampleConfig,
    /// Path-dataset augmentation (§4.2).
    pub augment: AugmentConfig,
    /// Circuitformer architecture (Table 2).
    pub circuitformer: CircuitformerConfig,
    /// Circuitformer optimization (Table 6 row 1).
    pub cf_train: TrainConfig,
    /// Aggregation-MLP optimization (Table 6 row 2).
    pub mlp_train: MlpTrainConfig,
    /// Virtual synthesizer options for label generation.
    pub synth: SynthOptions,
    /// Upper bound on the number of paths used to train the Circuitformer
    /// (a random subsample; the full set still fits the label scaler and
    /// drives feature aggregation). Large designs sample tens of thousands
    /// of unique paths, far more than the regressor needs per epoch.
    pub cf_path_cap: usize,
    /// Validation fraction of the path dataset (for the Figure 5 curves).
    pub val_frac: f64,
    /// Master seed.
    pub seed: u64,
}

impl SnsTrainConfig {
    /// The paper's full-scale configuration (Tables 2 and 6).
    pub fn paper() -> Self {
        SnsTrainConfig {
            sample: SampleConfig::paper_default(),
            augment: AugmentConfig::paper(),
            circuitformer: CircuitformerConfig::paper(),
            cf_train: TrainConfig::paper(),
            mlp_train: MlpTrainConfig::paper(),
            synth: SynthOptions::default(),
            cf_path_cap: usize::MAX,
            val_frac: 0.1,
            seed: 0x535E5,
        }
    }

    /// A reduced configuration for CI and quick experiments: the same
    /// pipeline and model shapes, smaller schedules.
    pub fn fast() -> Self {
        SnsTrainConfig {
            augment: AugmentConfig::fast(),
            circuitformer: CircuitformerConfig::fast(),
            cf_train: TrainConfig::fast(),
            mlp_train: MlpTrainConfig::fast(),
            cf_path_cap: 2000,
            ..SnsTrainConfig::paper()
        }
    }
}

/// Artifacts and diagnostics of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Total labeled paths (direct + generated).
    pub path_dataset_size: usize,
    /// Directly sampled paths (the paper obtained 684).
    pub direct_paths: usize,
    /// Markov-generated paths (~1000 in the paper).
    pub markov_paths: usize,
    /// SeqGAN-generated paths (~3000 in the paper).
    pub seqgan_paths: usize,
    /// Circuitformer loss curves (Figure 5 data).
    pub cf_history: TrainHistory,
    /// Aggregation-MLP loss curves, `[timing, area, power]`.
    pub mlp_curves: [Vec<f32>; 3],
    /// Number of training designs.
    pub design_count: usize,
}

/// Trains SNS end-to-end on `designs` (labels them first). Returns the
/// trained model and the training report.
///
/// # Panics
///
/// Panics if `designs` is empty or any design fails to elaborate.
pub fn train_sns(designs: &[Design], config: &SnsTrainConfig) -> (SnsModel, TrainReport) {
    assert!(!designs.is_empty(), "no training designs");
    let labeled = HardwareDesignDataset::generate(designs, &config.synth);
    let refs: Vec<&LabeledDesign> = labeled.entries.iter().collect();
    train_sns_on_labeled(&refs, config)
}

/// Trains SNS on pre-labeled designs (used by cross-validation, which
/// labels once and trains per fold).
///
/// # Panics
///
/// Panics if `entries` is empty.
pub fn train_sns_on_labeled(
    entries: &[&LabeledDesign],
    config: &SnsTrainConfig,
) -> (SnsModel, TrainReport) {
    assert!(!entries.is_empty(), "no labeled training designs");
    let vocab = Vocab::new();

    // ---- Circuit Path Dataset (§4.2) ----
    let design_refs: Vec<&Design> = entries.iter().map(|e| &e.design).collect();
    let paths = CircuitPathDataset::build(
        &design_refs,
        &config.sample,
        &config.augment,
        &config.synth.library,
    );
    assert!(!paths.is_empty(), "path sampling produced no paths");

    // ---- Circuitformer (§3.3) ----
    let path_scaler = LabelScaler::fit(
        &paths.examples.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
    );
    let examples: Vec<(Vec<usize>, [f32; 3])> = paths
        .examples
        .iter()
        .map(|(ids, l)| (ids.clone(), path_scaler.transform(*l)))
        .collect();
    let (mut train_idx, val_idx) = paths.train_val_split(config.val_frac, config.seed);
    // Cap the regressor's training set (the full set still fits the
    // scaler and the aggregation features).
    if train_idx.len() > config.cf_path_cap {
        use sns_rt::rng::SliceRandom as _;
        let mut cap_rng = StdRng::seed_from_u64(config.seed ^ 0xCAF);
        train_idx.shuffle(&mut cap_rng);
        train_idx.truncate(config.cf_path_cap);
    }
    let train_set: Vec<_> = train_idx.iter().map(|&i| examples[i].clone()).collect();
    let val_set: Vec<_> = val_idx.iter().map(|&i| examples[i].clone()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut circuitformer = Circuitformer::new(config.circuitformer.clone(), &mut rng);
    let cf_history = cf_train(&mut circuitformer, &train_set, &val_set, &config.cf_train);
    // Training mutated the parameters (dropping the construction-time
    // pack); snapshot the final weights so every inference below and every
    // later prediction runs the prepacked kernels.
    circuitformer.prepack(sns_nn::QuantMode::F32);

    // ---- Aggregation MLPs (§3.4) ----
    let design_labels: Vec<[f64; 3]> = entries
        .iter()
        .map(|e| [e.report.timing_ps, e.report.area_um2, e.report.power_mw])
        .collect();
    let design_scaler = LabelScaler::fit(&design_labels);
    // Correction-ratio scaler is fitted below once aggregates exist; start
    // with a placeholder fitted on unit ratios.
    let corr_scaler = LabelScaler::fit(&[[1.0, 1.0, 1.0], [1.0, 1.0, 1.0]]);
    let mlps = [
        AggMlp::new(5 + vocab.len(), config.seed ^ 1),
        AggMlp::new(5 + vocab.len(), config.seed ^ 2),
        AggMlp::new(5 + vocab.len(), config.seed ^ 3),
    ];
    let mut model = SnsModel {
        circuitformer,
        path_scaler,
        design_scaler,
        corr_scaler,
        mlps,
        sample: config.sample.clone(),
        vocab,
        cache: PathPredictionCache::new(),
    };

    // Per-design features from the trained Circuitformer.
    let sampler = PathSampler::new(config.sample.clone());
    let mut per_design: Vec<([f64; 3], usize, sns_graphir::GraphStats)> = Vec::new();
    for e in entries.iter() {
        let nl = parse_and_elaborate(&e.design.verilog, &e.design.top)
            .unwrap_or_else(|err| panic!("design `{}`: {err}", e.design.name));
        let graph = GraphIr::from_netlist(&nl);
        let paths = sampler.sample(&graph);
        let stats = graph.stats(&model.vocab);
        // The Circuitformer is already trained here, so these predictions
        // prime the model's shared path cache for later inference too.
        let (aggs, _) = model.path_aggregates(&graph, &paths, None);
        per_design.push((aggs, paths.len(), stats));
    }
    // Fit the correction-ratio scaler on label/aggregate ratios, then
    // build the MLP training sets in that space.
    let ratios: Vec<[f64; 3]> = per_design
        .iter()
        .zip(&design_labels)
        .map(|((aggs, _, _), label)| {
            [label[0] / aggs[0], label[1] / aggs[1], label[2] / aggs[2]]
        })
        .collect();
    model.corr_scaler = LabelScaler::fit(&ratios);
    let mut feature_sets: [Vec<(Vec<f32>, f32)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for ((aggs, n_paths, stats), ratio) in per_design.iter().zip(&ratios) {
        for d in 0..3 {
            let f = model.features(d, *aggs, *n_paths, stats);
            let target = model.corr_scaler.transform_dim(d, ratio[d]);
            feature_sets[d].push((f, target));
        }
    }
    let mut mlp_curves: [Vec<f32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for d in 0..3 {
        mlp_curves[d] = model.mlps[d].fit(&feature_sets[d], &config.mlp_train);
    }

    let report = TrainReport {
        path_dataset_size: paths.len(),
        direct_paths: paths.direct_count,
        markov_paths: paths.markov_count,
        seqgan_paths: paths.seqgan_count,
        cf_history,
        mlp_curves,
        design_count: entries.len(),
    };
    (model, report)
}

/// Hyperparameters for online fine-tuning ([`FineTuner`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FineTuneConfig {
    /// Adam learning rate (lower than from-scratch training: the daemon
    /// nudges an already-converged model, it does not retrain it).
    pub lr: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip: f32,
    /// Fixed gradient-accumulation chunk size. Examples are split into
    /// chunks of exactly this many (last chunk ragged), each chunk's
    /// gradients accumulated serially, and chunks merged in index order —
    /// so the summed gradient is a pure function of the example sequence,
    /// **independent of the worker thread count**. (The batch trainer's
    /// chunking depends on `threads`, which is fine at its 1e-4 tolerance
    /// but not for the daemon's bit-identical determinism contract.)
    pub grad_chunk: usize,
}

impl FineTuneConfig {
    /// The label-factory daemon's default schedule.
    pub fn daemon() -> Self {
        FineTuneConfig { lr: 3e-4, clip: 1.0, grad_chunk: 8 }
    }
}

/// Online fine-tuner for a trained [`SnsModel`]'s Circuitformer.
///
/// Owns the Adam state so moment estimates persist across
/// [`step`](Self::step) calls — the daemon's training loop is one long
/// optimization, checkpointed mid-flight into the zoo. Each step
/// consumes raw *physical* path labels (ps / µm² / mW straight from
/// vsynth), normalizes them through the model's own label scaler,
/// takes one clipped Adam step, re-packs the inference kernels and
/// clears the prediction cache (the weights changed; serving stale
/// cached predictions is exactly what the weight-hash cache keying
/// exists to prevent).
#[derive(Debug)]
pub struct FineTuner {
    config: FineTuneConfig,
    opt: sns_nn::Adam,
    steps: u64,
}

impl FineTuner {
    /// Creates a fine-tuner with fresh optimizer state.
    pub fn new(config: FineTuneConfig) -> Self {
        let lr = config.lr;
        FineTuner { config, opt: sns_nn::Adam::new(lr), steps: 0 }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Takes one fine-tune step on `examples` (token sequence, physical
    /// label) and returns the mean normalized MSE over the batch. An
    /// empty batch is a no-op returning 0.0 — the daemon's loop never
    /// stalls on an all-filtered batch.
    ///
    /// Bit-identical at any `threads` ≥ 1 (see [`FineTuneConfig::grad_chunk`]).
    pub fn step(
        &mut self,
        model: &mut SnsModel,
        examples: &[(Vec<usize>, [f64; 3])],
        threads: usize,
    ) -> f32 {
        if examples.is_empty() {
            return 0.0;
        }
        let normalized: Vec<(Vec<usize>, [f32; 3])> = examples
            .iter()
            .map(|(tokens, label)| (tokens.clone(), model.path_scaler.transform(*label)))
            .collect();
        let chunk = self.config.grad_chunk.max(1);
        let chunks: Vec<&[(Vec<usize>, [f32; 3])]> = normalized.chunks(chunk).collect();
        let cf = &model.circuitformer;
        let partials = sns_rt::pool::par_map(&chunks, threads.max(1), |part| {
            let mut grads = sns_nn::Grads::new(cf.registry());
            let mut loss_sum = 0.0f32;
            for (tokens, target) in part.iter() {
                let (out, ctx) = cf.forward(tokens);
                let pred = sns_nn::Mat::from_rows(&[&out]);
                let tgt = sns_nn::Mat::from_rows(&[&target[..]]);
                let (l, dl) = sns_nn::mse_loss(&pred, &tgt);
                loss_sum += l;
                cf.backward(&ctx, [dl.get(0, 0), dl.get(0, 1), dl.get(0, 2)], &mut grads);
            }
            (grads, loss_sum)
        });
        let mut iter = partials.into_iter();
        let (mut grads, mut loss) = match iter.next() {
            Some(first) => first,
            None => return 0.0,
        };
        for (g, l) in iter {
            grads.merge(&g);
            loss += l;
        }
        grads.scale(1.0 / normalized.len() as f32);
        if self.config.clip > 0.0 {
            grads.clip_global_norm(self.config.clip);
        }
        use sns_nn::Optimizer as _;
        self.opt.step_visit(&grads, |f| model.circuitformer.visit_mut(f));
        // The weights changed: re-pack the inference kernels and drop
        // every cached path prediction.
        let mode = model.quant_mode();
        model.circuitformer.prepack(mode);
        model.clear_cache();
        self.steps += 1;
        loss / normalized.len() as f32
    }
}

/// Refits the correction-ratio scaler and the three Aggregation MLPs on
/// `entries` against the *current* Circuitformer — the tail of
/// [`train_sns_on_labeled`], split out so the fine-tune daemon can
/// periodically re-align the design-level correction after the path
/// regressor has drifted from its original training distribution.
///
/// # Errors
///
/// Returns an error if `entries` is empty or a design fails to
/// elaborate; the model is left unchanged in either case.
pub fn refit_correction(
    model: &mut SnsModel,
    entries: &[&LabeledDesign],
    mlp_train: &MlpTrainConfig,
) -> Result<(), String> {
    if entries.is_empty() {
        return Err("refit_correction: no labeled designs".into());
    }
    let sampler = PathSampler::new(model.sample_config().clone());
    let mut per_design: Vec<([f64; 3], usize, sns_graphir::GraphStats)> = Vec::new();
    for e in entries.iter() {
        let nl = parse_and_elaborate(&e.design.verilog, &e.design.top)
            .map_err(|err| format!("design `{}`: {err}", e.design.name))?;
        let graph = GraphIr::from_netlist(&nl);
        let paths = sampler.sample(&graph);
        let stats = graph.stats(&model.vocab);
        let (aggs, _) = model.path_aggregates(&graph, &paths, None);
        per_design.push((aggs, paths.len(), stats));
    }
    let ratios: Vec<[f64; 3]> = per_design
        .iter()
        .zip(entries)
        .map(|((aggs, _, _), e)| {
            [
                e.report.timing_ps / aggs[0],
                e.report.area_um2 / aggs[1],
                e.report.power_mw / aggs[2],
            ]
        })
        .collect();
    model.corr_scaler = LabelScaler::fit(&ratios);
    let mut feature_sets: [Vec<(Vec<f32>, f32)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for ((aggs, n_paths, stats), ratio) in per_design.iter().zip(&ratios) {
        for d in 0..3 {
            let f = model.features(d, *aggs, *n_paths, stats);
            let target = model.corr_scaler.transform_dim(d, ratio[d]);
            feature_sets[d].push((f, target));
        }
    }
    for (mlp, set) in model.mlps.iter_mut().zip(&feature_sets) {
        mlp.fit(set, mlp_train);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_designs::{dsp, nonlinear, vector};

    fn tiny_config() -> SnsTrainConfig {
        let mut c = SnsTrainConfig::fast();
        c.circuitformer =
            CircuitformerConfig { dim: 32, ffn_dim: 64, max_len: 64, ..CircuitformerConfig::fast() };
        c.cf_train = TrainConfig { epochs: 4, batch_size: 32, threads: 2, ..TrainConfig::fast() };
        c.mlp_train = MlpTrainConfig { epochs: 50, ..MlpTrainConfig::fast() };
        c.augment = AugmentConfig::none();
        c.sample = SampleConfig::paper_default().with_max_paths(300);
        c
    }

    fn tiny_designs() -> Vec<Design> {
        vec![
            vector::simd_alu(2, 8),
            nonlinear::piecewise(4, 8),
            dsp::fir(4, 8),
            nonlinear::lut(16, 8),
        ]
    }

    #[test]
    fn end_to_end_training_produces_a_usable_model() {
        let designs = tiny_designs();
        let (model, report) = train_sns(&designs, &tiny_config());
        assert_eq!(report.design_count, 4);
        assert!(report.direct_paths > 0);
        assert_eq!(report.cf_history.epochs.len(), 4);
        // Predictions are positive, finite, and come with a critical path.
        let pred = model.predict_verilog(&designs[0].verilog, &designs[0].top).unwrap();
        assert!(pred.timing_ps.is_finite() && pred.timing_ps > 0.0);
        assert!(pred.area_um2.is_finite() && pred.area_um2 > 0.0);
        assert!(pred.power_mw.is_finite() && pred.power_mw > 0.0);
        assert!(pred.path_count > 0);
        assert!(!pred.critical_path.is_empty());
        assert!(pred.runtime.as_nanos() > 0);
    }

    #[test]
    fn training_loss_decreases() {
        let designs = tiny_designs();
        let (_, report) = train_sns(&designs, &tiny_config());
        let first = report.cf_history.epochs.first().unwrap().train_loss;
        let last = report.cf_history.epochs.last().unwrap().train_loss;
        assert!(last < first, "Circuitformer loss {first} -> {last}");
    }

    #[test]
    fn fine_tune_is_thread_count_invariant_and_reduces_loss() {
        let designs = tiny_designs();
        let (model, _) = train_sns(&designs[..2], &tiny_config());
        // Path examples from the held-out designs, labeled physically.
        let lib = sns_vsynth::CellLibrary::freepdk15();
        let mut cache = sns_vsynth::UnitCache::new();
        let vocab = Vocab::new();
        let mut examples: Vec<(Vec<usize>, [f64; 3])> = Vec::new();
        for d in &designs[2..] {
            let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
            let graph = GraphIr::from_netlist(&nl);
            let paths = PathSampler::new(model.sample_config().clone()).sample(&graph);
            for toks in model.tokenize_paths(&graph, &paths) {
                let label = crate::dataset::label_path_tokens(&toks, &vocab, &lib, &mut cache);
                examples.push((toks, label));
            }
        }
        examples.truncate(40);
        assert!(examples.len() >= 8);

        // Identical steps at 1 and 4 threads produce bit-identical weights.
        let mut runs: Vec<(Vec<u32>, Vec<f32>)> = Vec::new();
        for threads in [1usize, 4] {
            let mut m = model.fork_replica();
            let mut tuner = FineTuner::new(FineTuneConfig::daemon());
            let mut losses = Vec::new();
            for _ in 0..3 {
                losses.push(tuner.step(&mut m, &examples, threads));
            }
            let mut bits = Vec::new();
            m.circuitformer().visit(&mut |p| {
                bits.extend(p.value.as_slice().iter().map(|v| v.to_bits()));
            });
            runs.push((bits, losses));
        }
        assert_eq!(runs[0].0, runs[1].0, "fine-tuned weights differ across thread counts");
        assert_eq!(runs[0].1, runs[1].1, "losses differ across thread counts");
        // Loss moves down over the three steps on this batch.
        let losses = &runs[0].1;
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "fine-tune loss {losses:?} did not decrease"
        );
    }

    #[test]
    fn fine_tune_empty_batch_is_a_no_op() {
        let designs = tiny_designs();
        let (model, _) = train_sns(&designs[..2], &tiny_config());
        let mut m = model.fork_replica();
        let before = crate::model_io::model_weight_hash(&m);
        let mut tuner = FineTuner::new(FineTuneConfig::daemon());
        assert_eq!(tuner.step(&mut m, &[], 4), 0.0);
        assert_eq!(tuner.steps(), 0);
        assert_eq!(crate::model_io::model_weight_hash(&m), before);
    }

    #[test]
    fn refit_correction_rejects_empty_and_accepts_labeled() {
        let designs = tiny_designs();
        let (mut model, _) = train_sns(&designs[..2], &tiny_config());
        assert!(refit_correction(&mut model, &[], &MlpTrainConfig::fast()).is_err());
        let labeled = HardwareDesignDataset::generate(&designs[..2], &SynthOptions::default());
        let refs: Vec<&LabeledDesign> = labeled.entries.iter().collect();
        let cfg = MlpTrainConfig { epochs: 10, ..MlpTrainConfig::fast() };
        refit_correction(&mut model, &refs, &cfg).unwrap();
        let pred = model.predict_verilog(&designs[0].verilog, &designs[0].top).unwrap();
        assert!(pred.timing_ps.is_finite() && pred.timing_ps > 0.0);
    }

    #[test]
    fn activity_coefficients_reduce_aggregated_power() {
        let designs = tiny_designs();
        let (model, _) = train_sns(&designs, &tiny_config());
        let nl = parse_and_elaborate(&designs[2].verilog, &designs[2].top).unwrap();
        // All registers nearly idle.
        let mut act = std::collections::HashMap::new();
        for c in nl.cells() {
            if c.kind == sns_netlist::CellKind::Dff {
                act.insert(c.name.clone(), 0.01f32);
            }
        }
        let graph = sns_graphir::GraphIr::from_netlist(&nl);
        let paths = sns_sampler::PathSampler::new(model.sample_config().clone()).sample(&graph);
        let (base, _) = model.path_aggregates(&graph, &paths, None);
        let (gated, _) = model.path_aggregates(&graph, &paths, Some(&act));
        // §3.4.4: power scales with the coefficients; timing/area do not.
        assert!(gated[2] < base[2] * 0.6, "gated {} !<< base {}", gated[2], base[2]);
        assert_eq!(gated[0], base[0]);
        assert_eq!(gated[1], base[1]);
        // And the end-to-end prediction stays finite with activity given.
        // (Area may shift slightly: the MLPs see all three aggregates, and
        // activity changes the power aggregate.)
        let pred = model.predict_netlist(&nl, Some(&act));
        assert!(pred.power_mw.is_finite() && pred.power_mw > 0.0);
        let base_pred = model.predict_netlist(&nl, None);
        let rel = (pred.area_um2 - base_pred.area_um2).abs() / base_pred.area_um2;
        assert!(rel < 0.5, "area shifted {rel:.2}x under power gating");
    }
}
