//! Bit-identity sweep for the fast synthesis flow.
//!
//! The fast path (parallel per-module elaboration, expansion memoization,
//! sparse levelized STA) must be *bit-identical* to the retained
//! single-threaded dense reference flow — same gate graph node for node,
//! same labels bit for bit — across every `threads × sizing_iterations ×
//! memo` combination. Any divergence means the optimization changed
//! semantics, which would silently re-label every training set.

use std::collections::HashMap;

use sns_netlist::{parse_and_elaborate, CellKind};
use sns_vsynth::{GateLevel, SynthOptions, SynthReport, VirtualSynthesizer};

/// Mixed-operator datapath hitting every memoizable expander (add, sub,
/// mul, div, mod, shifts, compares, reductions) with repeated shapes so
/// the memo actually gets hits.
const MIXED: &str = "module mixed (input clk, input [15:0] a, b, c, d, output reg [15:0] y,
                                   output [15:0] z);
                         reg [15:0] t0, t1, t2, t3;
                         always @(posedge clk) begin
                             t0 <= a * b;
                             t1 <= c * d;
                             t2 <= (a + c) / (b | 16'd1);
                             t3 <= (b - d) % (c | 16'd1);
                             y <= (t0 >> 2) + (t1 << 1) + t2 + t3;
                         end
                         assign z = ((a == b) ? c : d) + ((a > b) ? (&a ? b : c) : (^d ? d : a));
                     endmodule";

/// Big enough (four 24-bit dividers plus multipliers) that the planner's
/// node estimate crosses the parallel-elaboration threshold, so explicit
/// `threads > 1` genuinely exercises chunked expansion and stitching.
const BIG: &str = "module big (input clk, input [23:0] a, b, c, d, output reg [23:0] y);
                       reg [23:0] t0, t1, t2, t3;
                       always @(posedge clk) begin
                           t0 <= a / b;
                           t1 <= c / d;
                           t2 <= (a + c) / (b | 24'd1);
                           t3 <= (b + d) % (a | 24'd1);
                           y <= (t0 * t1) + (t2 ^ t3) + (a * d);
                       end
                   endmodule";

/// A design with many distinct register banks, for the pinned-activity
/// regression: the per-register activity lookup must stay linear and the
/// map must apply to exactly the named banks.
fn many_registers(n: usize) -> String {
    let mut src = String::from("module regs (input clk, input [7:0] a, output [7:0] y);\n");
    for i in 0..n {
        src.push_str(&format!("    reg [7:0] r{i};\n"));
    }
    src.push_str("    always @(posedge clk) begin\n");
    src.push_str("        r0 <= a;\n");
    for i in 1..n {
        src.push_str(&format!("        r{i} <= r{} + 8'd{};\n", i - 1, i % 7));
    }
    src.push_str("    end\n");
    src.push_str(&format!("    assign y = r{};\n", n - 1));
    src.push_str("endmodule\n");
    src
}

fn assert_reports_identical(ctx: &str, r: &SynthReport, r_ref: &SynthReport) {
    for (name, x, y) in [
        ("area_um2", r.area_um2, r_ref.area_um2),
        ("timing_ps", r.timing_ps, r_ref.timing_ps),
        ("power_mw", r.power_mw, r_ref.power_mw),
        ("dynamic_mw", r.dynamic_mw, r_ref.dynamic_mw),
        ("leakage_mw", r.leakage_mw, r_ref.leakage_mw),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: label {name} diverged ({x} vs {y})");
    }
    assert_eq!(r.gate_count, r_ref.gate_count, "{ctx}: gate_count");
    assert_eq!(r.transistor_count, r_ref.transistor_count, "{ctx}: transistor_count");
    assert_eq!(r.cycles_broken, r_ref.cycles_broken, "{ctx}: cycles_broken");
}

fn assert_gatelevel_identical(ctx: &str, gl: &GateLevel, gl_ref: &GateLevel) {
    assert_eq!(
        gl.graph.kind_histogram(),
        gl_ref.graph.kind_histogram(),
        "{ctx}: gate histogram diverged"
    );
    assert_eq!(gl.graph, gl_ref.graph, "{ctx}: gate graph diverged");
    assert_eq!(gl.regions, gl_ref.regions, "{ctx}: region spans diverged");
    assert_eq!(gl.registers, gl_ref.registers, "{ctx}: register banks diverged");
    assert_eq!(gl.outputs, gl_ref.outputs, "{ctx}: output nodes diverged");
    assert_eq!(gl.cycles_broken, gl_ref.cycles_broken, "{ctx}: cycles_broken diverged");
}

/// Runs the full sweep on one source: for each sizing setting, pin the
/// reference flow once, then check every `threads × memo` fast variant
/// against it.
fn sweep(name: &str, src: &str, top: &str, sizing_settings: &[u32]) {
    let nl = parse_and_elaborate(src, top).unwrap();
    for &sizing in sizing_settings {
        let vs_ref = VirtualSynthesizer::new(SynthOptions {
            sizing_iterations: sizing,
            ..SynthOptions::default()
        });
        let gl_ref = vs_ref.elaborate_gates_reference(&nl);
        let r_ref = vs_ref.analyze_reference(&gl_ref);
        for threads in [1usize, 2, 8] {
            for memo in [false, true] {
                let ctx = format!("{name} threads={threads} sizing={sizing} memo={memo}");
                let vs = VirtualSynthesizer::new(SynthOptions {
                    sizing_iterations: sizing,
                    threads: Some(threads),
                    memo,
                    ..SynthOptions::default()
                });
                let gl = vs.elaborate_gates(&nl);
                assert_gatelevel_identical(&ctx, &gl, &gl_ref);
                let r = vs.analyze(&gl);
                assert_reports_identical(&ctx, &r, &r_ref);
            }
        }
    }
}

#[test]
fn mixed_operators_sweep_is_bit_identical() {
    sweep("mixed", MIXED, "mixed", &[0, 2, 8]);
}

#[test]
fn big_design_parallel_sweep_is_bit_identical() {
    // One sizing setting keeps the dense reference runs affordable; the
    // point of this design is crossing the parallel threshold.
    sweep("big", BIG, "big", &[2]);
}

#[test]
fn many_register_sweep_is_bit_identical() {
    let src = many_registers(48);
    sweep("regs", &src, "regs", &[0, 4]);
}

/// Pinned-activity regression: with many register banks, a user activity
/// map must scale the dynamic power of exactly the pinned banks — and the
/// fast flow must agree with the reference bit for bit when a map is set.
#[test]
fn register_activity_map_is_bit_identical_and_effective() {
    let src = many_registers(32);
    let nl = parse_and_elaborate(&src, "regs").unwrap();
    let dffs: Vec<String> = nl
        .cells()
        .filter(|c| c.kind == CellKind::Dff)
        .map(|c| c.name.clone())
        .collect();
    assert!(dffs.len() >= 32, "expected one Dff cell per bank, got {}", dffs.len());

    let mk_map = |act: f32| -> HashMap<String, f32> {
        dffs.iter().map(|n| (n.clone(), act)).collect()
    };
    let run = |map: HashMap<String, f32>| -> (SynthReport, SynthReport) {
        let opts = SynthOptions { register_activity: Some(map), ..SynthOptions::default() };
        let vs = VirtualSynthesizer::new(opts);
        let fast = vs.synthesize(&nl);
        let reference = vs.synthesize_reference(&nl);
        (fast, reference)
    };

    let (hot, hot_ref) = run(mk_map(1.0));
    let (cold, cold_ref) = run(mk_map(0.001));
    assert_reports_identical("hot map", &hot, &hot_ref);
    assert_reports_identical("cold map", &cold, &cold_ref);
    assert!(
        hot.dynamic_mw > cold.dynamic_mw,
        "pinning all banks hot must raise dynamic power: {} vs {}",
        hot.dynamic_mw,
        cold.dynamic_mw
    );
    assert_eq!(hot.area_um2.to_bits(), cold.area_um2.to_bits(), "activity is a power-only knob");
}
