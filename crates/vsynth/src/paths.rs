//! Physical characterization of individual circuit paths (Table 5 labels).
//!
//! SNS trains the Circuitformer on `(path, timing/area/power)` records. The
//! paper obtains these from Synopsys DC; here each path unit is expanded
//! through the same gate-level machinery as whole designs
//! ([`crate::expand`]) and the per-unit results are chained:
//! path timing is the sum of unit delays plus register sequencing overhead,
//! path area the sum of unit areas, and path power the switching + leakage
//! power of the chain at the path's own maximum frequency.

use std::collections::HashMap;

use sns_graphir::VocabType;

use crate::expand::Expander;
use crate::gates::{GateGraph, GateKind, NodeId, NO_NODE};
use crate::library::CellLibrary;

/// Physical characteristics of a single functional unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitPhysical {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Worst input-to-output delay in ps (sequencing overhead for
    /// registers, pad delay for I/O).
    pub delay_ps: f64,
    /// Activity-weighted switching energy per cycle, in fJ.
    pub energy_fj: f64,
    /// Leakage in nW.
    pub leakage_nw: f64,
    /// Gate count.
    pub gates: u64,
    /// Transistor count.
    pub transistors: u64,
}

/// Physical characteristics of a complete circuit path — one row of the
/// paper's Table 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathPhysical {
    /// End-to-end path delay in ps.
    pub timing_ps: f64,
    /// Total area of the units on the path, in µm².
    pub area_um2: f64,
    /// Power of the path at its own maximum frequency, in mW.
    pub power_mw: f64,
}

/// Pad delay charged for I/O vertices on a path, in ps.
const IO_DELAY_PS: f64 = 2.0;
/// Input switching activity used when characterizing units.
const UNIT_ACTIVITY: f32 = 0.2;

/// Computes the physical characteristics of one functional unit by
/// expanding it to gates and running a miniature timing/power analysis.
///
/// # Example
///
/// ```rust
/// use sns_graphir::VocabType;
/// use sns_vsynth::{unit_physical, CellLibrary};
///
/// let lib = CellLibrary::freepdk15();
/// let add16 = unit_physical(VocabType::Add, 16, &lib);
/// let mul16 = unit_physical(VocabType::Mul, 16, &lib);
/// assert!(mul16.area_um2 > add16.area_um2);
/// assert!(mul16.delay_ps > add16.delay_ps);
/// ```
pub fn unit_physical(vtype: VocabType, width: u32, lib: &CellLibrary) -> UnitPhysical {
    let w = width.max(1);
    match vtype {
        VocabType::Io => UnitPhysical {
            area_um2: 0.0,
            delay_ps: IO_DELAY_PS,
            energy_fj: 0.0,
            leakage_nw: 0.0,
            gates: 0,
            transistors: 0,
        },
        VocabType::Dff => {
            let p = lib.params(GateKind::Dff);
            UnitPhysical {
                area_um2: p.area_um2 as f64 * w as f64,
                delay_ps: (lib.clk_to_q_ps + lib.setup_ps) as f64,
                energy_fj: (p.energy_fj * UNIT_ACTIVITY) as f64 * w as f64,
                leakage_nw: p.leakage_nw as f64 * w as f64,
                gates: w as u64,
                transistors: p.transistors as u64 * w as u64,
            }
        }
        _ => {
            let mut g = GateGraph::new();
            let mut e = Expander::new(&mut g);
            build_unit(&mut e, vtype, w);
            characterize(&g, lib)
        }
    }
}

fn build_unit(e: &mut Expander<'_>, vtype: VocabType, w: u32) {
    match vtype {
        VocabType::Mux => {
            let s = e.input();
            let a = e.inputs(w);
            let b = e.inputs(w);
            e.mux(s, &a, &b);
        }
        VocabType::Not => {
            let a = e.inputs(w);
            e.map1(GateKind::Inv, &a);
        }
        VocabType::And | VocabType::Or | VocabType::Xor => {
            let a = e.inputs(w);
            let b = e.inputs(w);
            let k = match vtype {
                VocabType::And => GateKind::And2,
                VocabType::Or => GateKind::Or2,
                _ => GateKind::Xor2,
            };
            e.map2(k, &a, &b);
        }
        VocabType::Sh => {
            let a = e.inputs(w);
            let bits = (32 - (w.max(2) - 1).leading_zeros()).max(1);
            let s = e.inputs(bits);
            e.shift(&a, &s, false);
        }
        VocabType::ReduceAnd | VocabType::ReduceOr | VocabType::ReduceXor => {
            let a = e.inputs(w);
            let k = match vtype {
                VocabType::ReduceAnd => GateKind::And2,
                VocabType::ReduceOr => GateKind::Or2,
                _ => GateKind::Xor2,
            };
            e.reduce(k, &a);
        }
        VocabType::Add => {
            let a = e.inputs(w);
            let b = e.inputs(w);
            e.add(&a, &b);
        }
        VocabType::Mul => {
            let a = e.inputs(w);
            let b = e.inputs(w);
            e.mul(&a, &b, w);
        }
        VocabType::Eq => {
            let a = e.inputs(w);
            let b = e.inputs(w);
            e.equal(&a, &b);
        }
        VocabType::Lgt => {
            let a = e.inputs(w);
            let b = e.inputs(w);
            e.less_than(&a, &b);
        }
        VocabType::Div | VocabType::Mod => {
            let a = e.inputs(w);
            let b = e.inputs(w);
            e.divmod(&a, &b);
        }
        // Io/Dff units are costed directly by `unit_physical` and never
        // reach the gate builder; an empty graph is the safe answer.
        VocabType::Io | VocabType::Dff => {}
    }
}

/// Miniature STA + power over a standalone unit graph.
fn characterize(g: &GateGraph, lib: &CellLibrary) -> UnitPhysical {
    let fanouts = g.fanout_counts();
    let mut area = 0.0f64;
    let mut leak = 0.0f64;
    let mut energy = 0.0f64;
    let mut transistors = 0u64;
    let mut arrival = vec![0.0f32; g.len()];
    let mut act = vec![0.0f32; g.len()];
    let mut worst = 0.0f32;
    for id in 0..g.len() {
        let k = g.kind(id as NodeId);
        area += lib.area(k, 1.0) as f64;
        leak += lib.leakage(k, 1.0) as f64;
        transistors += lib.params(k).transistors as u64;
        if k.is_source() {
            arrival[id] = 0.0;
            act[id] = if k == GateKind::Input { UNIT_ACTIVITY } else { 0.0 };
        } else {
            let mut a = 0.0f32;
            let mut asum = 0.0f32;
            let mut n = 0;
            for &f in &g.fanins(id as NodeId) {
                if f != NO_NODE {
                    a = a.max(arrival[f as usize]);
                    asum += act[f as usize];
                    n += 1;
                }
            }
            arrival[id] = a + lib.delay(k, 1.0, fanouts[id]);
            act[id] = if n == 0 { 0.0 } else { (lib.activity_factor(k) * asum / n as f32).min(1.0) };
        }
        energy += (act[id] * lib.energy(k, 1.0)) as f64;
        worst = worst.max(arrival[id]);
    }
    UnitPhysical {
        area_um2: area,
        delay_ps: worst as f64,
        energy_fj: energy,
        leakage_nw: leak,
        gates: g.gate_count(),
        transistors,
    }
}

/// A memoizing cache of unit characterizations.
///
/// Path labeling touches the same (type, width) pairs constantly; at most
/// 79 entries ever exist, so the cache makes path labeling O(path length).
#[derive(Debug, Default)]
pub struct UnitCache {
    map: HashMap<(VocabType, u32), UnitPhysical>,
}

impl UnitCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        UnitCache::default()
    }

    /// Fetches or computes the characterization of a unit.
    pub fn get(&mut self, vtype: VocabType, width: u32, lib: &CellLibrary) -> UnitPhysical {
        *self.map.entry((vtype, width)).or_insert_with(|| unit_physical(vtype, width, lib))
    }
}

/// Computes the Table 5 label for a complete circuit path given as
/// `(type, width)` tokens.
///
/// # Example
///
/// ```rust
/// use sns_graphir::VocabType;
/// use sns_vsynth::{path_physical, CellLibrary, UnitCache};
///
/// let lib = CellLibrary::freepdk15();
/// let mut cache = UnitCache::new();
/// // The Figure 2 path [io8, mul16, add16, dff16]:
/// let p = path_physical(
///     &[(VocabType::Io, 8), (VocabType::Mul, 16), (VocabType::Add, 16), (VocabType::Dff, 16)],
///     &lib,
///     &mut cache,
/// );
/// assert!(p.timing_ps > 0.0 && p.area_um2 > 0.0 && p.power_mw > 0.0);
/// ```
pub fn path_physical(
    tokens: &[(VocabType, u32)],
    lib: &CellLibrary,
    cache: &mut UnitCache,
) -> PathPhysical {
    let mut timing = 0.0f64;
    let mut area = 0.0f64;
    let mut energy = 0.0f64;
    let mut leak = 0.0f64;
    for (i, &(t, w)) in tokens.iter().enumerate() {
        let u = cache.get(t, w, lib);
        // Structural fusion, as a timing-driven synthesizer would apply it.
        // This is what makes unit *order* matter (§3.3 of the paper): a
        // multiplier followed by an adder fuses into a MAC (the addend
        // enters the multiplier's compression tree, absorbing most of the
        // adder); chained adders share carry-save structure; an inverter
        // after simple logic folds into the preceding gate's output stage.
        let (dt, da, de) = match (i.checked_sub(1).map(|j| tokens[j].0), t) {
            (Some(VocabType::Mul), VocabType::Add) => (0.25, 0.40, 0.50),
            (Some(VocabType::Add), VocabType::Add) => (0.55, 0.75, 0.80),
            (Some(VocabType::And | VocabType::Or | VocabType::Xor), VocabType::Not) => {
                (0.20, 0.20, 0.30)
            }
            (Some(VocabType::Add | VocabType::Mul), VocabType::Lgt) => (0.50, 0.60, 0.70),
            _ => (1.0, 1.0, 1.0),
        };
        timing += u.delay_ps * dt;
        area += u.area_um2 * da;
        energy += u.energy_fj * de;
        leak += u.leakage_nw * da;
    }
    let timing = timing.max(1.0);
    // Power at the path's own maximum operating frequency.
    let freq_ghz = 1000.0 / timing;
    let power_mw = energy * freq_ghz / 1000.0 + leak / 1e6;
    PathPhysical { timing_ps: timing, area_um2: area, power_mw }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::freepdk15()
    }

    #[test]
    fn unit_delay_orders_match_hardware_intuition() {
        let l = lib();
        let and = unit_physical(VocabType::And, 16, &l);
        let add = unit_physical(VocabType::Add, 16, &l);
        let mul = unit_physical(VocabType::Mul, 16, &l);
        let div = unit_physical(VocabType::Div, 16, &l);
        assert!(and.delay_ps < add.delay_ps);
        assert!(add.delay_ps < mul.delay_ps);
        assert!(mul.delay_ps < div.delay_ps);
    }

    #[test]
    fn unit_area_grows_with_width() {
        let l = lib();
        for t in [VocabType::Add, VocabType::Mul, VocabType::Mux, VocabType::Sh] {
            let a8 = unit_physical(t, 8, &l).area_um2;
            let a32 = unit_physical(t, 32, &l).area_um2;
            assert!(a32 > 2.0 * a8, "{t:?}: {a8} -> {a32}");
        }
    }

    #[test]
    fn adder_delay_grows_logarithmically() {
        let l = lib();
        let d8 = unit_physical(VocabType::Add, 8, &l).delay_ps;
        let d64 = unit_physical(VocabType::Add, 64, &l).delay_ps;
        // Prefix adder: delay grows with log(width), so 8x width should be
        // well under 4x delay.
        assert!(d64 < 4.0 * d8, "d8={d8} d64={d64}");
        assert!(d64 > d8);
    }

    #[test]
    fn io_and_dff_have_fixed_costs() {
        let l = lib();
        let io = unit_physical(VocabType::Io, 32, &l);
        assert_eq!(io.area_um2, 0.0);
        assert!(io.delay_ps > 0.0);
        let dff = unit_physical(VocabType::Dff, 16, &l);
        assert_eq!(dff.gates, 16);
        assert!((dff.delay_ps - (l.clk_to_q_ps + l.setup_ps) as f64).abs() < 1e-9);
    }

    #[test]
    fn cache_returns_identical_values() {
        let l = lib();
        let mut c = UnitCache::new();
        let a = c.get(VocabType::Mul, 16, &l);
        let b = c.get(VocabType::Mul, 16, &l);
        assert_eq!(a, b);
        assert_eq!(a, unit_physical(VocabType::Mul, 16, &l));
    }

    #[test]
    fn path_label_shapes_match_table_5() {
        // Longer path => more timing, more area; power stays finite.
        let l = lib();
        let mut c = UnitCache::new();
        let short = path_physical(
            &[(VocabType::Dff, 16), (VocabType::Add, 16), (VocabType::Dff, 16)],
            &l,
            &mut c,
        );
        let long = path_physical(
            &[
                (VocabType::Io, 8),
                (VocabType::Mul, 16),
                (VocabType::Add, 16),
                (VocabType::Add, 16),
                (VocabType::Mul, 32),
                (VocabType::Dff, 32),
            ],
            &l,
            &mut c,
        );
        assert!(long.timing_ps > short.timing_ps);
        assert!(long.area_um2 > short.area_um2);
        assert!(short.power_mw > 0.0 && long.power_mw > 0.0);
    }

    #[test]
    fn mac_order_matters_as_in_section_3_3() {
        // The paper's §3.3 example: [io8, mul16, add16, dff16] fuses into a
        // MAC and must be cheaper than the swapped [io8, add16, mul16,
        // dff16] — this order sensitivity is exactly what the Circuitformer
        // learns and a linear model cannot.
        let l = lib();
        let mut c = UnitCache::new();
        let mac = path_physical(
            &[(VocabType::Io, 8), (VocabType::Mul, 16), (VocabType::Add, 16), (VocabType::Dff, 16)],
            &l,
            &mut c,
        );
        let swapped = path_physical(
            &[(VocabType::Io, 8), (VocabType::Add, 16), (VocabType::Mul, 16), (VocabType::Dff, 16)],
            &l,
            &mut c,
        );
        assert!(mac.timing_ps < swapped.timing_ps);
        assert!(mac.area_um2 < swapped.area_um2);
    }

    #[test]
    fn empty_path_yields_minimum_timing() {
        let l = lib();
        let mut c = UnitCache::new();
        let p = path_physical(&[], &l, &mut c);
        assert_eq!(p.timing_ps, 1.0);
        assert_eq!(p.area_um2, 0.0);
    }
}
