//! The virtual synthesizer driver: netlist → gate graph → timing / area /
//! power report.
//!
//! Two flows share every numeric formula:
//!
//! * the **fast flow** ([`VirtualSynthesizer::synthesize`]) partitions
//!   elaboration across the `sns_rt` scoped pool, splats memoized
//!   expansion templates, and re-propagates only the changed cone inside
//!   the sizing loop (sparse STA);
//! * the **reference flow** ([`VirtualSynthesizer::synthesize_reference`])
//!   runs single-threaded, unmemoized, with full dense re-propagation.
//!
//! The fast flow is bit-identical to the reference at any
//! `SNS_SYNTH_THREADS` — parallel chunks expand against placeholder
//! inputs and are stitched back in serial order, memo templates replay the
//! exact push sequence a direct expansion would have produced, and the
//! sparse worklists recompute nodes with the same pull-style formulas the
//! dense passes use (f32 `max` is order-independent). The conformance
//! oracle re-checks this equivalence continuously.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sns_netlist::{CellId, CellKind, NetId, Netlist, PortDir};

use crate::expand::{Expander, ExpansionMemo, MemoKey, Template};
use crate::gates::{GateGraph, GateKind, NodeId, NO_NODE};
use crate::library::CellLibrary;

/// Below this estimated gate count a design expands serially: the stitch
/// bookkeeping costs more than the parallelism buys.
const PAR_MIN_NODES: usize = 32_768;

/// Target estimated gate count per parallel elaboration chunk. Chunk
/// boundaries depend only on the netlist (never on the thread count), so
/// the stitched graph is identical at any `SNS_SYNTH_THREADS`.
const CHUNK_TARGET_NODES: usize = 16_384;

/// Options controlling a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthOptions {
    /// Iterations of the timing-driven gate-sizing loop. More iterations
    /// means better timing and longer runtime — like raising the effort
    /// level of a real tool.
    pub sizing_iterations: u32,
    /// Switching activity assumed at primary inputs.
    pub input_activity: f32,
    /// Initial switching activity assumed at register outputs (refined by
    /// the power pass, or overridden per register via
    /// [`SynthOptions::register_activity`]).
    pub default_register_activity: f32,
    /// Per-register activity coefficients, keyed by the register's
    /// hierarchical cell name — the paper's power-gating mode (§3.4.4).
    pub register_activity: Option<HashMap<String, f32>>,
    /// Worker threads for parallel elaboration. `None` resolves through
    /// `SNS_SYNTH_THREADS` (see [`sns_rt::pool::synth_threads`]). Results
    /// are bit-identical at any value — purely a throughput knob.
    pub threads: Option<usize>,
    /// Whether to use the process-wide expansion memo (disabled
    /// per-process by `SNS_SYNTH_MEMO_CAP=0`). Bit-identical either way.
    pub memo: bool,
    /// The characterized cell library.
    pub library: CellLibrary,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            sizing_iterations: 8,
            input_activity: 0.2,
            default_register_activity: 0.1,
            register_activity: None,
            threads: None,
            memo: true,
            library: CellLibrary::freepdk15(),
        }
    }
}

/// The result of a synthesis run — the virtual analogue of the paper's
/// Table 4 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthReport {
    /// Total cell area in µm².
    pub area_um2: f64,
    /// Minimum clock period (critical path + sequencing overhead) in ps.
    pub timing_ps: f64,
    /// Total power (dynamic + leakage) at the achieved frequency, in mW.
    pub power_mw: f64,
    /// Dynamic component of [`SynthReport::power_mw`].
    pub dynamic_mw: f64,
    /// Leakage component of [`SynthReport::power_mw`].
    pub leakage_mw: f64,
    /// Number of gates (including flip-flops).
    pub gate_count: u64,
    /// Estimated transistor count.
    pub transistor_count: u64,
    /// Cell inputs that could not be resolved during elaboration and were
    /// replaced by fresh dangling inputs (combinational cycles broken, or
    /// reads of undriven internal nets). Well-formed designs report 0; the
    /// conformance oracle asserts it.
    pub cycles_broken: u64,
    /// Wall-clock time the synthesis run took.
    pub runtime: Duration,
}

/// Per-stage wall-clock seconds of an analyze call, for benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeBreakdown {
    /// Initial full STA (forward arrivals + backward tails).
    pub sta_s: f64,
    /// The sizing loop, including its (sparse or dense) re-propagation.
    pub sizing_s: f64,
    /// Area/activity/power scans.
    pub power_s: f64,
}

/// The elaborated gate level of a design, exposed for tests and benchmarks.
#[derive(Debug)]
pub struct GateLevel {
    /// The flat gate graph.
    pub graph: GateGraph,
    /// For each register cell: its hierarchical name and Q-bit nodes.
    pub registers: Vec<(String, Vec<NodeId>)>,
    /// Primary-output bit nodes.
    pub outputs: Vec<NodeId>,
    /// Per-coarse-cell gate ranges: `(hierarchical cell name, start, end)`
    /// node ids — each functional cell expands contiguously, enabling
    /// hierarchical area breakdowns.
    pub regions: Vec<(String, NodeId, NodeId)>,
    /// Per input port: name and bit nodes, LSB first.
    pub input_ports: Vec<(String, Vec<NodeId>)>,
    /// Per output port: name and bit nodes, LSB first (undriven output
    /// bits map to [`GateLevel::const0`]).
    pub output_ports: Vec<(String, Vec<NodeId>)>,
    /// The shared constant-0 node.
    pub const0: NodeId,
    /// The shared constant-1 node.
    pub const1: NodeId,
    /// Unresolvable cell inputs replaced by fresh dangling inputs (see
    /// [`SynthReport::cycles_broken`]).
    pub cycles_broken: u64,
}

impl GateLevel {
    /// Area per top-level hierarchy prefix (the text before the first
    /// `.` of each cell's name; cells without a prefix group under
    /// `"<top>"`). Returns `(prefix, area_um2)` sorted by descending area.
    pub fn area_breakdown(&self, lib: &CellLibrary) -> Vec<(String, f64)> {
        let mut map: HashMap<String, f64> = HashMap::new();
        for (name, start, end) in &self.regions {
            let prefix = match name.split_once('.') {
                Some((head, _)) => head.to_string(),
                None => "<top>".to_string(),
            };
            let mut area = 0.0;
            for id in *start..*end {
                area += lib.area(self.graph.kind(id), self.graph.drive[id as usize]) as f64;
            }
            *map.entry(prefix).or_default() += area;
        }
        let mut out: Vec<(String, f64)> = map.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }
}

/// The virtual synthesizer.
///
/// See the crate docs for what it models and why. Construction is cheap;
/// each [`VirtualSynthesizer::synthesize`] call is independent.
#[derive(Debug, Clone, Default)]
pub struct VirtualSynthesizer {
    options: SynthOptions,
}

impl VirtualSynthesizer {
    /// Creates a synthesizer with the given options.
    pub fn new(options: SynthOptions) -> Self {
        VirtualSynthesizer { options }
    }

    /// The active options.
    pub fn options(&self) -> &SynthOptions {
        &self.options
    }

    /// Runs the full fast flow: (parallel, memoized) gate-level expansion,
    /// sparse-STA sizing-driven timing closure, and power analysis.
    pub fn synthesize(&self, nl: &Netlist) -> SynthReport {
        let start = Instant::now();
        let gl = self.elaborate_gates(nl);
        let mut report = self.analyze(&gl);
        report.runtime = start.elapsed();
        report
    }

    /// Runs the retained single-threaded reference flow: serial unmemoized
    /// expansion and dense re-propagation. The fast flow is gated
    /// bit-identical against this.
    pub fn synthesize_reference(&self, nl: &Netlist) -> SynthReport {
        let start = Instant::now();
        let gl = self.elaborate_gates_reference(nl);
        let mut report = self.analyze_reference(&gl);
        report.runtime = start.elapsed();
        report
    }

    /// Expands a netlist into its flat gate graph, partitioning across
    /// worker threads and splatting memoized templates when profitable.
    pub fn elaborate_gates(&self, nl: &Netlist) -> GateLevel {
        let plan = plan_elaboration(nl);
        let memo = if self.options.memo { ExpansionMemo::global() } else { None };
        let threads = self.options.threads.unwrap_or_else(sns_rt::pool::synth_threads);
        elaborate_impl(nl, &plan, memo, threads)
    }

    /// Expands a netlist serially with no memoization — the reference
    /// elaboration the fast path is compared against.
    pub fn elaborate_gates_reference(&self, nl: &Netlist) -> GateLevel {
        let plan = plan_elaboration(nl);
        elaborate_impl(nl, &plan, None, 1)
    }

    /// Timing closure + power analysis over an elaborated gate level,
    /// using sparse (changed-cone) re-propagation inside the sizing loop.
    pub fn analyze(&self, gl: &GateLevel) -> SynthReport {
        let mut bd = AnalyzeBreakdown::default();
        self.analyze_impl(gl, true, &mut bd)
    }

    /// Reference analyze: identical math, full dense re-propagation every
    /// sizing iteration.
    pub fn analyze_reference(&self, gl: &GateLevel) -> SynthReport {
        let mut bd = AnalyzeBreakdown::default();
        self.analyze_impl(gl, false, &mut bd)
    }

    /// Analyze with per-stage timings, for benchmarks. `sparse` selects
    /// the fast or reference re-propagation.
    pub fn analyze_with_breakdown(
        &self,
        gl: &GateLevel,
        sparse: bool,
    ) -> (SynthReport, AnalyzeBreakdown) {
        let mut bd = AnalyzeBreakdown::default();
        let report = self.analyze_impl(gl, sparse, &mut bd);
        (report, bd)
    }

    fn analyze_impl(&self, gl: &GateLevel, sparse: bool, bd: &mut AnalyzeBreakdown) -> SynthReport {
        let lib = &self.options.library;
        let graph = &gl.graph;
        let n = graph.len();
        // Scratch drive strengths: sizing must not mutate (or clone) the
        // caller's graph — repeated analyze calls each start from drive 1.
        let mut drive: Vec<f32> = graph.drive.clone();
        let fanouts = graph.fanout_counts();

        let t0 = Instant::now();
        let mut st = StaState::new(graph, gl);
        for id in 0..n {
            let k = graph.kind(id as NodeId);
            st.delays[id] = if k.is_source() { 0.0 } else { lib.delay(k, drive[id], fanouts[id]) };
        }
        st.full_forward(graph, lib.clk_to_q_ps);
        st.full_tail(graph);
        let mut crit = critical(graph, gl, lib, &st.arrivals);
        bd.sta_s += t0.elapsed().as_secs_f64();

        // Timing-driven sizing loop: upsize the low-slack gates, then
        // re-propagate arrivals and tails. The slack of node `id` is
        // `deadline − (arrival + tail)` where `tail` is the longest
        // delay-sum from the node to any endpoint; both flows read the
        // same arrays, so they touch the same gates.
        //
        // The fast flow picks one of two bit-identical strategies per
        // iteration, predicted from the previous iteration's touch count
        // (the count isn't known until after the scan, and both
        // strategies compute the identical fixed point, so a mispredict
        // costs time, never correctness):
        //
        // * **dense** — the scan, the upsizing, and the forward arrival
        //   re-propagation fuse into one ascending pass (each node's
        //   slack is read before its arrival is overwritten, and its
        //   fanins' arrivals are final by the time they're read), then
        //   one descending scatter pass rebuilds tails. The tail pass is
        //   skipped entirely on the final iteration — nothing after the
        //   loop reads tails.
        // * **sparse** — a plain scan, then worklists re-propagate just
        //   the changed cones (see `sparse_forward`/`sparse_tail`).
        //
        // The reference flow re-propagates densely with the unfused
        // three-pass structure every iteration.
        let t1 = Instant::now();
        let mut touched: Vec<NodeId> = Vec::new();
        let mut prev_touched = usize::MAX;
        let mut csr: Option<Csr> = None;
        for _ in 0..self.options.sizing_iterations {
            let deadline = (crit.period_ps - lib.setup_ps as f64) as f32;
            let margin = (crit.path_ps * 0.08) as f32;
            touched.clear();
            let go_sparse = sparse && prev_touched.saturating_mul(16) < n;
            if go_sparse || !sparse {
                for id in 0..n {
                    let slack = deadline - (st.arrivals[id] + st.tail[id]);
                    if slack <= margin && graph.kind(id as NodeId).is_gate() && drive[id] < 4.0 {
                        drive[id] = (drive[id] * 1.25).min(4.0);
                        let k = graph.kind(id as NodeId);
                        st.delays[id] =
                            if k.is_source() { 0.0 } else { lib.delay(k, drive[id], fanouts[id]) };
                        touched.push(id as NodeId);
                    }
                }
                if touched.is_empty() {
                    break;
                }
                if go_sparse {
                    let c = csr.get_or_insert_with(|| Csr::build(graph));
                    st.sparse_forward(c, graph, lib.clk_to_q_ps, &touched);
                } else {
                    st.full_forward(graph, lib.clk_to_q_ps);
                }
            } else {
                // Fused dense pass: scan + upsize + forward in one sweep.
                for id in 0..n {
                    let k = graph.kind(id as NodeId);
                    let slack = deadline - (st.arrivals[id] + st.tail[id]);
                    if slack <= margin && k.is_gate() && drive[id] < 4.0 {
                        drive[id] = (drive[id] * 1.25).min(4.0);
                        st.delays[id] =
                            if k.is_source() { 0.0 } else { lib.delay(k, drive[id], fanouts[id]) };
                        touched.push(id as NodeId);
                    }
                    st.arrivals[id] = st.arrival_of(graph, lib.clk_to_q_ps, id as NodeId);
                }
                if touched.is_empty() {
                    // Nothing was upsized, so the rewritten arrivals are
                    // bit-identical to the old ones (same delays, same
                    // order-independent max recurrence).
                    break;
                }
            }
            prev_touched = touched.len();
            let new_crit = critical(graph, gl, lib, &st.arrivals);
            let converged = new_crit.path_ps >= crit.path_ps * 0.999;
            crit = new_crit;
            if converged {
                break;
            }
            if go_sparse {
                let c = csr.get_or_insert_with(|| Csr::build(graph));
                st.sparse_tail(c, graph, &touched);
            } else {
                st.full_tail(graph);
            }
        }
        bd.sizing_s += t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        // Area, gate and transistor counts.
        let mut area = 0.0f64;
        let mut transistors = 0u64;
        for (id, &d) in drive.iter().enumerate().take(n) {
            let k = graph.kind(id as NodeId);
            area += lib.area(k, d) as f64;
            transistors += lib.params(k).transistors as u64;
        }

        // Activity propagation (two rounds so register activities settle).
        // `pinned` marks register bits whose activity the user fixed — a
        // flat bitvec, so the check is O(1) per node instead of a scan over
        // every register bank.
        let user_act = self.options.register_activity.as_ref();
        let mut reg_act: HashMap<NodeId, f32> = HashMap::new();
        let mut pinned = vec![false; n];
        for (name, qs) in &gl.registers {
            let ua = user_act.and_then(|m| m.get(name).copied());
            let a = ua.unwrap_or(self.options.default_register_activity);
            for &q in qs {
                reg_act.insert(q, a);
                if ua.is_some() {
                    pinned[q as usize] = true;
                }
            }
        }
        let mut act = vec![0.0f32; n];
        for round in 0..2 {
            for id in 0..n {
                let k = graph.kind(id as NodeId);
                act[id] = match k {
                    GateKind::Input => self.options.input_activity,
                    GateKind::Const => 0.0,
                    GateKind::Dff => {
                        if round == 0 || pinned[id] {
                            reg_act[&(id as NodeId)]
                        } else {
                            // refine from the D cone
                            let d = graph.fanins(id as NodeId)[0];
                            if d == NO_NODE {
                                reg_act[&(id as NodeId)]
                            } else {
                                (lib.activity_factor(GateKind::Dff) * act[d as usize]).min(1.0)
                            }
                        }
                    }
                    _ => {
                        let f = graph.fanins(id as NodeId);
                        let mut sum = 0.0;
                        let mut cnt = 0;
                        for &x in &f {
                            if x != NO_NODE {
                                sum += act[x as usize];
                                cnt += 1;
                            }
                        }
                        if cnt == 0 {
                            0.0
                        } else {
                            (lib.activity_factor(k) * sum / cnt as f32).min(1.0)
                        }
                    }
                };
            }
        }

        // Power at the achieved frequency.
        let freq_ghz = 1000.0 / crit.period_ps;
        let mut dyn_uw = 0.0f64;
        let mut leak_nw = 0.0f64;
        for (id, &a) in act.iter().enumerate().take(n) {
            let k = graph.kind(id as NodeId);
            dyn_uw += (a * lib.energy(k, drive[id])) as f64 * freq_ghz;
            leak_nw += lib.leakage(k, drive[id]) as f64;
        }
        let dynamic_mw = dyn_uw / 1000.0;
        let leakage_mw = leak_nw / 1e6;
        bd.power_s += t2.elapsed().as_secs_f64();

        SynthReport {
            area_um2: area,
            timing_ps: crit.period_ps,
            power_mw: dynamic_mw + leakage_mw,
            dynamic_mw,
            leakage_mw,
            gate_count: graph.gate_count(),
            transistor_count: transistors,
            cycles_broken: gl.cycles_broken,
            runtime: Duration::ZERO,
        }
    }
}

// ------------------------------------------------------------ STA engine --

#[derive(Debug, Clone, Copy)]
struct Critical {
    path_ps: f64,
    period_ps: f64,
}

/// Critical path over current arrivals: the worst register-D or
/// primary-output arrival plus setup, floored at the sequencing minimum.
fn critical(graph: &GateGraph, gl: &GateLevel, lib: &CellLibrary, arrivals: &[f32]) -> Critical {
    let mut path = 0.0f32;
    for (_, qs) in &gl.registers {
        for &q in qs {
            let d = graph.fanins(q)[0];
            if d != NO_NODE {
                path = path.max(arrivals[d as usize] + lib.setup_ps);
            }
        }
    }
    for &o in &gl.outputs {
        path = path.max(arrivals[o as usize] + lib.setup_ps);
    }
    let period = path.max(lib.clk_to_q_ps + lib.setup_ps + 1.0);
    Critical { path_ps: path as f64, period_ps: period as f64 }
}

/// Shared state of the dense and sparse STA passes.
///
/// * `arrivals[id]` — the usual forward arrival time.
/// * `tail[id]` — the longest delay-sum from `id` to any timing endpoint
///   (`0` at endpoints, `−∞` where no endpoint is reachable). Slack is
///   then `deadline − (arrival + tail)`: unlike a classic backward
///   required-time pass, `tail` does not depend on the current period, so
///   it stays valid across sizing iterations and can be maintained by a
///   worklist.
///
/// Both quantities are defined by order-independent pull-style recurrences
/// over f32 `max`, so recomputing just the changed cone (sparse) yields
/// bit-identical arrays to a full pass (dense). The consumer CSR excludes
/// edges *into* sources: STA never propagates through a flip-flop (its D
/// pin is an endpoint, handled by `endpoint`).
/// Consumer CSR (node → consumers), excluding edges whose consumer is a
/// source: STA never propagates *through* a flip-flop (its D pin is an
/// endpoint). Only the sparse worklists need it, so it's built lazily the
/// first time an iteration actually goes sparse.
struct Csr {
    co_off: Vec<u32>,
    co: Vec<u32>,
}

impl Csr {
    fn build(graph: &GateGraph) -> Csr {
        let n = graph.len();
        let mut counts = vec![0u32; n];
        for id in 0..n as NodeId {
            if graph.kind(id).is_source() {
                continue;
            }
            for &f in &graph.fanins(id) {
                if f != NO_NODE {
                    counts[f as usize] += 1;
                }
            }
        }
        let mut co_off = vec![0u32; n + 1];
        for i in 0..n {
            co_off[i + 1] = co_off[i] + counts[i];
        }
        let mut co = vec![0u32; co_off[n] as usize];
        let mut cursor: Vec<u32> = co_off[..n].to_vec();
        for id in 0..n as NodeId {
            if graph.kind(id).is_source() {
                continue;
            }
            for &f in &graph.fanins(id) {
                if f != NO_NODE {
                    co[cursor[f as usize] as usize] = id;
                    cursor[f as usize] += 1;
                }
            }
        }
        Csr { co_off, co }
    }
}

struct StaState {
    delays: Vec<f32>,
    arrivals: Vec<f32>,
    tail: Vec<f32>,
    endpoint: Vec<bool>,
    in_heap: Vec<bool>,
}

impl StaState {
    fn new(graph: &GateGraph, gl: &GateLevel) -> StaState {
        let n = graph.len();
        let mut endpoint = vec![false; n];
        for (_, qs) in &gl.registers {
            for &q in qs {
                let d = graph.fanins(q)[0];
                if d != NO_NODE {
                    endpoint[d as usize] = true;
                }
            }
        }
        for &o in &gl.outputs {
            endpoint[o as usize] = true;
        }
        StaState {
            delays: vec![0.0; n],
            arrivals: vec![0.0; n],
            tail: vec![0.0; n],
            endpoint,
            in_heap: vec![false; n],
        }
    }

    fn arrival_of(&self, graph: &GateGraph, clk_to_q: f32, id: NodeId) -> f32 {
        let k = graph.kind(id);
        if k == GateKind::Dff {
            clk_to_q
        } else if k.is_source() {
            0.0
        } else {
            let mut worst = 0.0f32;
            for &f in &graph.fanins(id) {
                if f != NO_NODE {
                    worst = worst.max(self.arrivals[f as usize]);
                }
            }
            worst + self.delays[id as usize]
        }
    }

    fn tail_of(&self, csr: &Csr, id: NodeId) -> f32 {
        let mut t = if self.endpoint[id as usize] { 0.0f32 } else { f32::NEG_INFINITY };
        let (lo, hi) = (csr.co_off[id as usize] as usize, csr.co_off[id as usize + 1] as usize);
        for i in lo..hi {
            let c = csr.co[i] as usize;
            t = t.max(self.delays[c] + self.tail[c]);
        }
        t
    }

    fn full_forward(&mut self, graph: &GateGraph, clk_to_q: f32) {
        for id in 0..graph.len() as NodeId {
            let a = self.arrival_of(graph, clk_to_q, id);
            self.arrivals[id as usize] = a;
        }
    }

    /// Dense tail rebuild as a descending *scatter* pass: when node `id`
    /// is visited, every consumer (higher id) has already scattered into
    /// it, so `tail[id]` is final and can be pushed to its fanins. This
    /// needs no CSR, and computes bit-identical values to the pull
    /// recurrence in [`StaState::tail_of`] (f32 max over the same terms;
    /// all finite tails are non-negative, so tie bits can't differ).
    fn full_tail(&mut self, graph: &GateGraph) {
        for id in 0..graph.len() {
            self.tail[id] = if self.endpoint[id] { 0.0 } else { f32::NEG_INFINITY };
        }
        for id in (0..graph.len() as NodeId).rev() {
            // Edges whose consumer is a source are excluded — STA never
            // propagates through a flip-flop.
            if graph.kind(id).is_source() {
                continue;
            }
            let contrib = self.delays[id as usize] + self.tail[id as usize];
            for &f in &graph.fanins(id) {
                if f != NO_NODE && contrib > self.tail[f as usize] {
                    self.tail[f as usize] = contrib;
                }
            }
        }
    }

    /// Re-propagates arrivals from the gates whose delay changed. Nodes
    /// are processed in increasing id order (fanins precede consumers in
    /// the graph, and all pushes go to higher ids), so each node is
    /// recomputed after every fanin it depends on has settled.
    fn sparse_forward(&mut self, csr: &Csr, graph: &GateGraph, clk_to_q: f32, touched: &[NodeId]) {
        let mut heap: BinaryHeap<Reverse<NodeId>> = BinaryHeap::with_capacity(touched.len());
        for &t in touched {
            if !self.in_heap[t as usize] {
                self.in_heap[t as usize] = true;
                heap.push(Reverse(t));
            }
        }
        while let Some(Reverse(id)) = heap.pop() {
            self.in_heap[id as usize] = false;
            let a = self.arrival_of(graph, clk_to_q, id);
            if a.to_bits() != self.arrivals[id as usize].to_bits() {
                self.arrivals[id as usize] = a;
                let (lo, hi) =
                    (csr.co_off[id as usize] as usize, csr.co_off[id as usize + 1] as usize);
                for i in lo..hi {
                    let c = csr.co[i];
                    if !self.in_heap[c as usize] {
                        self.in_heap[c as usize] = true;
                        heap.push(Reverse(c));
                    }
                }
            }
        }
    }

    /// Re-propagates tails toward fanins from the gates whose delay
    /// changed, in decreasing id order (mirror of `sparse_forward`).
    fn sparse_tail(&mut self, csr: &Csr, graph: &GateGraph, touched: &[NodeId]) {
        let mut heap: BinaryHeap<NodeId> = BinaryHeap::with_capacity(touched.len());
        for &t in touched {
            // A touched source (flip-flop) contributes no delay to any
            // tail — the CSR has no edges into sources.
            if graph.kind(t).is_source() {
                continue;
            }
            for &f in &graph.fanins(t) {
                if f != NO_NODE && !self.in_heap[f as usize] {
                    self.in_heap[f as usize] = true;
                    heap.push(f);
                }
            }
        }
        while let Some(id) = heap.pop() {
            self.in_heap[id as usize] = false;
            let t = self.tail_of(csr, id);
            if t.to_bits() != self.tail[id as usize].to_bits() {
                self.tail[id as usize] = t;
                if graph.kind(id).is_source() {
                    continue;
                }
                for &f in &graph.fanins(id) {
                    if f != NO_NODE && !self.in_heap[f as usize] {
                        self.in_heap[f as usize] = true;
                        heap.push(f);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------- elaboration --

/// Pre-computed elaboration schedule: the cell order, which input reads
/// must mint fresh dangling inputs (a pure function of the netlist, so
/// serial and parallel workers agree without sharing state), per-cell gate
/// estimates for chunking, and the broken-cycle count.
struct ElabPlan {
    order: Vec<CellId>,
    /// Per position in `order`, per input slot: `true` when the net is not
    /// yet defined at that point and a fresh input run must be minted.
    fresh: Vec<Vec<bool>>,
    /// Estimated expansion gate count per position in `order`.
    cell_est: Vec<usize>,
    est_nodes: usize,
    cycles_broken: u64,
}

fn plan_elaboration(nl: &Netlist) -> ElabPlan {
    let driver = nl.driver_map();
    let order = topo_order(nl, &driver);
    // Nets with bits available before the combinational loop starts:
    // input ports and register Q banks (expanded in the prepass).
    let mut defined: HashSet<NetId> = HashSet::new();
    for p in nl.ports() {
        if p.dir == PortDir::Input {
            defined.insert(p.net);
        }
    }
    for (_, cell) in nl.cells_enumerated() {
        if cell.kind == CellKind::Dff {
            defined.insert(cell.output);
        }
    }
    let mut fresh = Vec::with_capacity(order.len());
    let mut cell_est = Vec::with_capacity(order.len());
    let mut est_nodes = 0usize;
    let mut cycles_broken = 0u64;
    for &cid in &order {
        let cell = nl.cell(cid);
        if cell.kind == CellKind::Dff {
            fresh.push(Vec::new());
            cell_est.push(0);
            continue;
        }
        let flags: Vec<bool> = cell.inputs.iter().map(|n| !defined.contains(n)).collect();
        for (slot, &f) in flags.iter().enumerate() {
            // A fresh mint for a net that *has* a driver means the driver
            // is unreachable at this point: a combinational cycle the
            // expander breaks. Driverless nets keep the established
            // "reads as fresh input" semantics without counting.
            if f && driver.contains_key(&cell.inputs[slot]) {
                cycles_broken += 1;
            }
        }
        let in_ws: Vec<u32> = cell.inputs.iter().map(|&n| nl.net(n).width).collect();
        let est = estimate_cell_nodes(cell.kind, nl.net(cell.output).width, &in_ws);
        est_nodes += est;
        cell_est.push(est);
        fresh.push(flags);
        defined.insert(cell.output);
    }
    ElabPlan { order, fresh, cell_est, est_nodes, cycles_broken }
}

/// Rough expansion gate count per cell — only used to balance parallel
/// chunks and gate the parallel path, never for results.
fn estimate_cell_nodes(kind: CellKind, out_w: u32, in_ws: &[u32]) -> usize {
    let w = out_w.max(1) as usize;
    let lg = (usize::BITS - (w.max(2) - 1).leading_zeros()) as usize;
    match kind {
        CellKind::Const
        | CellKind::Buf
        | CellKind::Slice
        | CellKind::Concat
        | CellKind::Replicate
        | CellKind::Dff => 0,
        CellKind::Not
        | CellKind::And
        | CellKind::Or
        | CellKind::Xor
        | CellKind::Xnor
        | CellKind::Mux => w,
        CellKind::Add | CellKind::Sub => w * lg * 4,
        CellKind::Mul => {
            let a = in_ws.first().copied().unwrap_or(out_w) as usize;
            let b = in_ws.get(1).copied().unwrap_or(out_w) as usize;
            a.min(w) * b.min(w) * 5 + w * 8
        }
        CellKind::Div | CellKind::Mod => w * w * 14,
        CellKind::Shl | CellKind::Shr => w * lg * 3,
        CellKind::Eq => in_ws.iter().copied().max().unwrap_or(out_w) as usize * 3,
        CellKind::Lgt => in_ws.iter().copied().max().unwrap_or(out_w) as usize * 6,
        CellKind::ReduceAnd | CellKind::ReduceOr | CellKind::ReduceXor => {
            in_ws.first().copied().unwrap_or(1) as usize
        }
    }
}

/// Expands one coarse cell into gates. `ins` are the resolved input bit
/// vectors. Pure in the operand *widths*: the pushed subgraph shape never
/// depends on which nodes the bits are, which is what makes memoized
/// templates and partition-local expansion bit-exact.
fn expand_cell(
    e: &mut Expander,
    kind: CellKind,
    attr: u64,
    out_w: u32,
    ins: &[Vec<NodeId>],
) -> Vec<NodeId> {
    match kind {
        CellKind::Const => e.const_bits(attr, out_w),
        CellKind::Buf => e.resize(&ins[0], out_w),
        CellKind::Slice => {
            let lsb = attr as usize;
            let taken: Vec<NodeId> =
                ins[0].iter().copied().skip(lsb).take(out_w as usize).collect();
            e.resize(&taken, out_w)
        }
        CellKind::Concat => {
            let mut v = Vec::new();
            for i in ins {
                v.extend_from_slice(i);
            }
            e.resize(&v, out_w)
        }
        CellKind::Replicate => {
            let mut v = Vec::new();
            for _ in 0..attr.max(1) {
                v.extend_from_slice(&ins[0]);
            }
            e.resize(&v, out_w)
        }
        // Register banks are expanded in the prepass; the cell loop never
        // reaches them.
        CellKind::Dff => Vec::new(),
        CellKind::Not => {
            let a = e.resize(&ins[0], out_w);
            e.map1(GateKind::Inv, &a)
        }
        CellKind::And | CellKind::Or | CellKind::Xor | CellKind::Xnor => {
            let a = e.resize(&ins[0], out_w);
            let b = e.resize(&ins[1], out_w);
            let k = match kind {
                CellKind::And => GateKind::And2,
                CellKind::Or => GateKind::Or2,
                CellKind::Xor => GateKind::Xor2,
                _ => GateKind::Xnor2,
            };
            e.map2(k, &a, &b)
        }
        CellKind::Mux => {
            let sel = ins[0][0];
            let a = e.resize(&ins[1], out_w);
            let b = e.resize(&ins[2], out_w);
            e.mux(sel, &a, &b)
        }
        CellKind::Add | CellKind::Sub => {
            let a = e.resize(&ins[0], out_w);
            let b = e.resize(&ins[1], out_w);
            let (s, _) = if kind == CellKind::Add { e.add(&a, &b) } else { e.sub(&a, &b) };
            s
        }
        CellKind::Mul => e.mul(&ins[0], &ins[1], out_w),
        CellKind::Div | CellKind::Mod => {
            let w = out_w.max(1);
            let a = e.resize(&ins[0], w);
            let b = e.resize(&ins[1], w);
            let (q, r) = e.divmod(&a, &b);
            if kind == CellKind::Div {
                q
            } else {
                r
            }
        }
        CellKind::Shl | CellKind::Shr => {
            let a = e.resize(&ins[0], out_w);
            e.shift(&a, &ins[1], kind == CellKind::Shl)
        }
        CellKind::Eq => {
            let w = ins[0].len().max(ins[1].len()) as u32;
            let a = e.resize(&ins[0], w);
            let b = e.resize(&ins[1], w);
            let bit = e.equal(&a, &b);
            e.resize(&[bit], out_w)
        }
        CellKind::Lgt => {
            let w = ins[0].len().max(ins[1].len()) as u32;
            let a = e.resize(&ins[0], w);
            let b = e.resize(&ins[1], w);
            let bit = e.less_than(&a, &b);
            e.resize(&[bit], out_w)
        }
        CellKind::ReduceAnd | CellKind::ReduceOr | CellKind::ReduceXor => {
            let k = match kind {
                CellKind::ReduceAnd => GateKind::And2,
                CellKind::ReduceOr => GateKind::Or2,
                _ => GateKind::Xor2,
            };
            let bit = e.reduce(k, &ins[0]);
            e.resize(&[bit], out_w)
        }
    }
}

/// Kinds worth caching: the super-linear expanders that dominate gate
/// count and repeat constantly across designs. Linear per-bit kinds and
/// wiring are cheaper to expand directly than to key and splat.
/// Estimated expansion size below which memoization costs more than it
/// saves (key hash + shared-lock lookup + context splat vs a direct
/// expansion of a few dozen gates).
const MEMO_MIN_EST_NODES: usize = 384;

fn memoizable(kind: CellKind) -> bool {
    matches!(
        kind,
        CellKind::Add
            | CellKind::Sub
            | CellKind::Mul
            | CellKind::Div
            | CellKind::Mod
            | CellKind::Shl
            | CellKind::Shr
            | CellKind::Eq
            | CellKind::Lgt
            | CellKind::ReduceAnd
            | CellKind::ReduceOr
            | CellKind::ReduceXor
    )
}

/// Builds the canonical template for a shape: a scratch expansion against
/// fresh, distinct input bits (so no aliasing between context slots can
/// leak into the captured structure).
fn build_template(kind: CellKind, attr: u64, out_w: u32, in_widths: &[u32]) -> Template {
    let mut g = GateGraph::new();
    let (n_ctx, outputs) = {
        let mut e = Expander::new(&mut g);
        let ins: Vec<Vec<NodeId>> = in_widths.iter().map(|&w| e.inputs(w)).collect();
        let n_ctx = e.g.len() as u32;
        let outputs = expand_cell(&mut e, kind, attr, out_w, &ins);
        (n_ctx, outputs)
    };
    Template::capture(&g, n_ctx, &outputs)
}

/// Memoizing wrapper over [`expand_cell`]: splats a cached template when
/// the `(kind, attr, out_w, widths)` shape has been characterized before.
fn expand_cell_memo(
    e: &mut Expander,
    kind: CellKind,
    attr: u64,
    out_w: u32,
    ins: &[Vec<NodeId>],
    memo: Option<&ExpansionMemo>,
) -> Vec<NodeId> {
    let Some(memo) = memo else {
        return expand_cell(e, kind, attr, out_w, ins);
    };
    if !memoizable(kind) {
        return expand_cell(e, kind, attr, out_w, ins);
    }
    // Small shapes are cheaper to expand directly than to key, lock, and
    // splat — only cache expansions big enough to amortize the lookup.
    let in_ws: Vec<u32> = ins.iter().map(|v| v.len() as u32).collect();
    if estimate_cell_nodes(kind, out_w, &in_ws) < MEMO_MIN_EST_NODES {
        return expand_cell(e, kind, attr, out_w, ins);
    }
    let key = MemoKey { kind, attr, out_w, in_widths: in_ws };
    let template = match memo.lookup(&key) {
        Some(t) => t,
        None => {
            let t = Arc::new(build_template(kind, attr, out_w, &key.in_widths));
            memo.insert(key, Arc::clone(&t));
            t
        }
    };
    let mut ctx = Vec::with_capacity(2 + ins.iter().map(|v| v.len()).sum::<usize>());
    ctx.push(e.const0());
    ctx.push(e.const1());
    for v in ins {
        ctx.extend_from_slice(v);
    }
    template.splat(e.g, &ctx)
}

/// A run of placeholder `Input` nodes a parallel worker minted for bits it
/// could not resolve locally. `fresh` runs become real dangling inputs at
/// stitch time (exactly where the serial flow would mint them); non-fresh
/// runs are dropped and remapped to the already-stitched bits of `net`.
struct PhRun {
    start: NodeId,
    width: u32,
    net: NetId,
    fresh: bool,
}

/// One worker's expansion of a contiguous chunk of the cell order.
struct ChunkOut {
    graph: GateGraph,
    ph_runs: Vec<PhRun>,
    outs: Vec<(NetId, Vec<NodeId>)>,
    regions: Vec<(String, NodeId, NodeId)>,
}

/// Contiguous chunk boundaries over the cell order, balanced by estimated
/// gate count. A pure function of the netlist — never of the thread count.
fn chunk_ranges(plan: &ElabPlan) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for pos in 0..plan.order.len() {
        acc += plan.cell_est[pos];
        if acc >= CHUNK_TARGET_NODES {
            ranges.push((start, pos + 1));
            start = pos + 1;
            acc = 0;
        }
    }
    if start < plan.order.len() {
        ranges.push((start, plan.order.len()));
    }
    ranges
}

fn elaborate_impl(
    nl: &Netlist,
    plan: &ElabPlan,
    memo: Option<&ExpansionMemo>,
    threads: usize,
) -> GateLevel {
    let mut graph = GateGraph::with_capacity(nl.cell_count() * 8);
    let mut net_bits: HashMap<NetId, Vec<NodeId>> = HashMap::new();
    let mut registers: Vec<(String, Vec<NodeId>)> = Vec::new();
    let mut dff_patches: Vec<(Vec<NodeId>, NetId)> = Vec::new();
    let mut regions: Vec<(String, NodeId, NodeId)> = Vec::new();
    let mut input_ports: Vec<(String, Vec<NodeId>)> = Vec::new();
    let (const0, const1);

    {
        let mut e = Expander::new(&mut graph);
        const0 = e.const0();
        const1 = e.const1();

        // Primary inputs.
        for p in nl.ports() {
            if p.dir == PortDir::Input {
                let w = nl.net(p.net).width;
                let bits = e.inputs(w);
                input_ports.push((p.name.clone(), bits.clone()));
                net_bits.insert(p.net, bits);
            }
        }

        // Register banks first: a register's Q bits must exist before any
        // reader expands, and readers may precede the Dff cell in any
        // combinational topological order (registers are sequential
        // sources, so the order among them is free). Expanding a reader
        // before its register would silently substitute fresh dangling
        // inputs for the Q bits.
        for (_, cell) in nl.cells_enumerated() {
            if cell.kind != CellKind::Dff {
                continue;
            }
            let region_start = e.g.len() as NodeId;
            let q = e.dff_bank(nl.net(cell.output).width);
            registers.push((cell.name.clone(), q.clone()));
            dff_patches.push((q.clone(), cell.inputs[0]));
            net_bits.insert(cell.output, q);
            regions.push((cell.name.clone(), region_start, e.g.len() as NodeId));
        }
    }

    let parallel = threads > 1 && plan.est_nodes >= PAR_MIN_NODES;
    if parallel {
        elaborate_parallel_body(
            nl, plan, memo, threads, &mut graph, &mut net_bits, &mut regions, const0, const1,
        );
    } else {
        let mut e = Expander::attach(&mut graph);
        for (pos, &cid) in plan.order.iter().enumerate() {
            let cell = nl.cell(cid);
            if cell.kind == CellKind::Dff {
                continue; // bank already materialized above
            }
            let region_start = e.g.len() as NodeId;
            let out_w = nl.net(cell.output).width;
            let flags = &plan.fresh[pos];
            let ins: Vec<Vec<NodeId>> = cell
                .inputs
                .iter()
                .enumerate()
                .map(|(slot, &n)| {
                    if flags.get(slot).copied().unwrap_or(false) {
                        // Unresolvable input (combinational cycle or
                        // undriven net): a fresh input keeps the run
                        // robust; the plan counted it.
                        e.inputs(nl.net(n).width)
                    } else {
                        net_bits
                            .get(&n)
                            .cloned()
                            .unwrap_or_else(|| e.inputs(nl.net(n).width))
                    }
                })
                .collect();
            let bits = expand_cell_memo(&mut e, cell.kind, cell.attr, out_w, &ins, memo);
            net_bits.insert(cell.output, bits);
            let region_end = e.g.len() as NodeId;
            if region_end > region_start && !cell.kind.is_wiring() {
                regions.push((cell.name.clone(), region_start, region_end));
            }
        }
    }

    // Patch register D inputs now the full combinational cone exists.
    {
        let e = Expander::attach(&mut graph);
        for (q_bits, d_net) in dff_patches {
            let d_bits =
                net_bits.get(&d_net).cloned().unwrap_or_else(|| vec![const0; q_bits.len()]);
            let d_bits = e.resize(&d_bits, q_bits.len() as u32);
            for (q, d) in q_bits.iter().zip(d_bits) {
                e.g.set_fanin(*q, 0, d);
            }
        }
    }

    let mut outputs = Vec::new();
    let mut output_ports: Vec<(String, Vec<NodeId>)> = Vec::new();
    for p in nl.ports() {
        if p.dir == PortDir::Output {
            if let Some(bits) = net_bits.get(&p.net) {
                outputs.extend_from_slice(bits);
                output_ports.push((p.name.clone(), bits.clone()));
            } else {
                // Undriven output: reads as constant zero, matching the
                // netlist simulator's never-written net value.
                let w = nl.net(p.net).width as usize;
                output_ports.push((p.name.clone(), vec![const0; w]));
            }
        }
    }
    GateLevel {
        graph,
        registers,
        outputs,
        regions,
        input_ports,
        output_ports,
        const0,
        const1,
        cycles_broken: plan.cycles_broken,
    }
}

/// Parallel expansion of the combinational cell loop: workers expand
/// contiguous chunks of the serial order into private graphs (minting
/// placeholder input runs for bits defined outside the chunk), and a
/// serial stitch replays the chunks in order, dropping placeholders for
/// defined nets and remapping everything else. Because every worker mints
/// nodes exactly where the serial flow would (and dropped placeholders
/// emit nothing), the stitched graph is the serial graph, node for node.
#[allow(clippy::too_many_arguments)]
fn elaborate_parallel_body(
    nl: &Netlist,
    plan: &ElabPlan,
    memo: Option<&ExpansionMemo>,
    threads: usize,
    graph: &mut GateGraph,
    net_bits: &mut HashMap<NetId, Vec<NodeId>>,
    regions: &mut Vec<(String, NodeId, NodeId)>,
    const0: NodeId,
    const1: NodeId,
) {
    let ranges = chunk_ranges(plan);
    let chunks: Vec<ChunkOut> = sns_rt::pool::par_map(&ranges, threads, |&(lo, hi)| {
        let mut lgraph = GateGraph::new();
        let mut local: HashMap<NetId, Vec<NodeId>> = HashMap::new();
        let mut ext: HashMap<NetId, Vec<NodeId>> = HashMap::new();
        let mut ph_runs: Vec<PhRun> = Vec::new();
        let mut louts: Vec<(NetId, Vec<NodeId>)> = Vec::new();
        let mut lregions: Vec<(String, NodeId, NodeId)> = Vec::new();
        {
            let mut e = Expander::new(&mut lgraph);
            for pos in lo..hi {
                let cell = nl.cell(plan.order[pos]);
                if cell.kind == CellKind::Dff {
                    continue;
                }
                let region_start = e.g.len() as NodeId;
                let out_w = nl.net(cell.output).width;
                let flags = &plan.fresh[pos];
                let ins: Vec<Vec<NodeId>> = cell
                    .inputs
                    .iter()
                    .enumerate()
                    .map(|(slot, &n)| {
                        let w = nl.net(n).width;
                        if flags.get(slot).copied().unwrap_or(false) {
                            // Fresh dangling input — minted per
                            // consumption, exactly like the serial flow.
                            let start = e.g.len() as NodeId;
                            let bits = e.inputs(w);
                            ph_runs.push(PhRun { start, width: w, net: n, fresh: true });
                            bits
                        } else if let Some(b) = local.get(&n) {
                            b.clone()
                        } else if let Some(b) = ext.get(&n) {
                            b.clone()
                        } else {
                            // Defined outside this chunk: placeholder run,
                            // resolved (and dropped) at stitch time.
                            let start = e.g.len() as NodeId;
                            let bits = e.inputs(w);
                            ph_runs.push(PhRun { start, width: w, net: n, fresh: false });
                            ext.insert(n, bits.clone());
                            bits
                        }
                    })
                    .collect();
                let bits = expand_cell_memo(&mut e, cell.kind, cell.attr, out_w, &ins, memo);
                local.insert(cell.output, bits.clone());
                louts.push((cell.output, bits));
                let region_end = e.g.len() as NodeId;
                if region_end > region_start && !cell.kind.is_wiring() {
                    lregions.push((cell.name.clone(), region_start, region_end));
                }
            }
        }
        ChunkOut { graph: lgraph, ph_runs, outs: louts, regions: lregions }
    });

    // Serial stitch, chunk order = cell order. `gindex[i]` is the global
    // length just before local node `i` was replayed, so local region
    // spans map straight onto global spans.
    for co in &chunks {
        let lg = &co.graph;
        let llen = lg.len();
        let mut remap: Vec<NodeId> = Vec::with_capacity(llen);
        let mut gindex: Vec<NodeId> = Vec::with_capacity(llen + 1);
        let mut ri = 0usize;
        for id in 0..llen as NodeId {
            gindex.push(graph.len() as NodeId);
            if id == 0 {
                remap.push(const0);
                continue;
            }
            if id == 1 {
                remap.push(const1);
                continue;
            }
            while ri < co.ph_runs.len() && co.ph_runs[ri].start + co.ph_runs[ri].width <= id {
                ri += 1;
            }
            if ri < co.ph_runs.len() && co.ph_runs[ri].start <= id {
                let run = &co.ph_runs[ri];
                if run.fresh {
                    remap.push(graph.push(GateKind::Input, [NO_NODE; 3]));
                } else {
                    let bit = net_bits
                        .get(&run.net)
                        .and_then(|b| b.get((id - run.start) as usize))
                        .copied();
                    remap.push(match bit {
                        Some(b) => b,
                        // Defensive: a placeholder for a net the stitch has
                        // not seen would indicate a planning bug; minting a
                        // dangling input keeps the graph well-formed and
                        // the bit-identity gate catches it.
                        None => graph.push(GateKind::Input, [NO_NODE; 3]),
                    });
                }
            } else {
                let f = lg.fanins(id);
                let mf = {
                    let m = |x: NodeId| if x == NO_NODE { NO_NODE } else { remap[x as usize] };
                    [m(f[0]), m(f[1]), m(f[2])]
                };
                let nid = graph.push(lg.kind(id), mf);
                remap.push(nid);
            }
        }
        gindex.push(graph.len() as NodeId);
        for (net, bits) in &co.outs {
            net_bits.insert(*net, bits.iter().map(|&b| remap[b as usize]).collect());
        }
        for (name, s, t) in &co.regions {
            let (gs, gt) = (gindex[*s as usize], gindex[*t as usize]);
            // A chunk-local span can consist entirely of placeholder runs
            // (an external-net consumer that expands to pure wiring);
            // those nodes vanish at stitch time, and the serial flow never
            // records empty regions.
            if gt > gs {
                regions.push((name.clone(), gs, gt));
            }
        }
    }
}

/// Topological order over cells (Kahn), treating register outputs as
/// sources. Cells stuck in combinational cycles are appended at the end in
/// id order (the expander substitutes fresh inputs for their unresolved
/// fanins).
fn topo_order(nl: &Netlist, driver: &HashMap<NetId, CellId>) -> Vec<CellId> {
    let mut indegree: Vec<u32> = Vec::with_capacity(nl.cell_count());
    let mut ready: Vec<CellId> = Vec::new();
    for (cid, cell) in nl.cells_enumerated() {
        let deg = if cell.kind == CellKind::Dff {
            0
        } else {
            cell.inputs
                .iter()
                .filter(|n| driver.get(n).is_some_and(|&d| nl.cell(d).kind != CellKind::Dff))
                .count() as u32
        };
        indegree.push(deg);
        if deg == 0 {
            ready.push(cid);
        }
    }
    let readers = nl.reader_map();
    let mut order = Vec::with_capacity(nl.cell_count());
    let mut head = 0;
    while head < ready.len() {
        let cid = ready[head];
        head += 1;
        order.push(cid);
        // Register outputs were never counted in consumer in-degrees (they
        // are sequential sources), so they must not decrement them either —
        // otherwise consumers are re-queued and expanded repeatedly.
        if nl.cell(cid).kind == CellKind::Dff {
            continue;
        }
        if let Some(consumers) = readers.get(&nl.cell(cid).output) {
            for &r in consumers {
                if nl.cell(r).kind == CellKind::Dff {
                    continue;
                }
                let d = &mut indegree[r.0 as usize];
                if *d > 0 {
                    *d -= 1;
                    if *d == 0 {
                        ready.push(r);
                    }
                }
            }
        }
    }
    if order.len() < nl.cell_count() {
        let mut seen = vec![false; nl.cell_count()];
        for &c in &order {
            seen[c.0 as usize] = true;
        }
        for (i, &s) in seen.iter().enumerate() {
            if !s {
                order.push(CellId(i as u32));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::parse_and_elaborate;

    fn synth(src: &str, top: &str) -> SynthReport {
        let nl = parse_and_elaborate(src, top).unwrap();
        VirtualSynthesizer::new(SynthOptions::default()).synthesize(&nl)
    }

    const MAC: &str = "module mac (input clk, input [7:0] a, b, output [15:0] y);
                           reg [15:0] acc;
                           always @(posedge clk) acc <= acc + a * b;
                           assign y = acc;
                       endmodule";

    #[test]
    fn mac_report_is_physically_plausible() {
        let r = synth(MAC, "mac");
        assert!(r.gate_count > 100, "a 16-bit MAC is a few hundred gates, got {}", r.gate_count);
        assert!(r.area_um2 > 10.0 && r.area_um2 < 10_000.0, "area {}", r.area_um2);
        assert!(r.timing_ps > 50.0 && r.timing_ps < 2_000.0, "timing {}", r.timing_ps);
        assert!(r.power_mw > 0.0 && r.power_mw < 100.0, "power {}", r.power_mw);
        assert!(r.transistor_count > 2 * r.gate_count);
    }

    #[test]
    fn wider_datapath_costs_more_area_and_delay() {
        let narrow = synth(MAC, "mac");
        let wide = synth(
            "module mac (input clk, input [31:0] a, b, output [63:0] y);
                 reg [63:0] acc;
                 always @(posedge clk) acc <= acc + a * b;
                 assign y = acc;
             endmodule",
            "mac",
        );
        assert!(wide.area_um2 > 5.0 * narrow.area_um2);
        assert!(wide.timing_ps > narrow.timing_ps);
        assert!(wide.power_mw > narrow.power_mw);
    }

    #[test]
    fn divider_is_much_slower_than_adder() {
        let add = synth(
            "module m (input clk, input [15:0] a, b, output reg [15:0] y);
                 always @(posedge clk) y <= a + b;
             endmodule",
            "m",
        );
        let div = synth(
            "module m (input clk, input [15:0] a, b, output reg [15:0] y);
                 always @(posedge clk) y <= a / b;
             endmodule",
            "m",
        );
        assert!(div.timing_ps > 3.0 * add.timing_ps, "div {} vs add {}", div.timing_ps, add.timing_ps);
        assert!(div.area_um2 > 5.0 * add.area_um2);
    }

    #[test]
    fn sizing_iterations_improve_timing() {
        let nl = parse_and_elaborate(MAC, "mac").unwrap();
        let lazy = VirtualSynthesizer::new(SynthOptions { sizing_iterations: 0, ..Default::default() })
            .synthesize(&nl);
        let tuned = VirtualSynthesizer::new(SynthOptions { sizing_iterations: 10, ..Default::default() })
            .synthesize(&nl);
        assert!(tuned.timing_ps < lazy.timing_ps);
        assert!(tuned.area_um2 > lazy.area_um2); // upsizing costs area
    }

    #[test]
    fn register_activity_scales_power() {
        let nl = parse_and_elaborate(MAC, "mac").unwrap();
        let reg_name = nl
            .cells()
            .find(|c| c.kind == CellKind::Dff)
            .map(|c| c.name.clone())
            .unwrap();
        let mut hot = HashMap::new();
        hot.insert(reg_name.clone(), 1.0f32);
        let mut cold = HashMap::new();
        cold.insert(reg_name, 0.001f32);
        let mk = |m: HashMap<String, f32>| {
            VirtualSynthesizer::new(SynthOptions {
                register_activity: Some(m),
                ..Default::default()
            })
            .synthesize(&nl)
        };
        let hot_r = mk(hot);
        let cold_r = mk(cold);
        assert!(hot_r.dynamic_mw > cold_r.dynamic_mw);
        assert_eq!(hot_r.area_um2, cold_r.area_um2); // power-only knob
    }

    #[test]
    fn purely_combinational_design_synthesizes() {
        let r = synth(
            "module comb (input [7:0] a, b, output [7:0] y); assign y = a ^ b; endmodule",
            "comb",
        );
        assert_eq!(r.gate_count, 8);
        assert!(r.timing_ps > 0.0);
    }

    #[test]
    fn gate_counts_match_expander_math() {
        // 64-bit AND reduction: 63 gates + nothing else.
        let r = synth(
            "module m (input [63:0] a, output y); assign y = &a; endmodule",
            "m",
        );
        assert_eq!(r.gate_count, 63);
    }

    #[test]
    fn runtime_is_recorded() {
        let r = synth(MAC, "mac");
        assert!(r.runtime > Duration::ZERO);
    }

    #[test]
    fn well_formed_designs_break_no_cycles() {
        for (src, top) in [
            (MAC, "mac"),
            ("module comb (input [7:0] a, b, output [7:0] y); assign y = a ^ b; endmodule", "comb"),
        ] {
            let r = synth(src, top);
            assert_eq!(r.cycles_broken, 0, "{top}");
        }
    }

    #[test]
    fn fast_flow_matches_reference_on_mac() {
        let nl = parse_and_elaborate(MAC, "mac").unwrap();
        let reference = VirtualSynthesizer::new(SynthOptions::default());
        let ref_gl = reference.elaborate_gates_reference(&nl);
        let ref_r = reference.analyze_reference(&ref_gl);
        for threads in [1usize, 3] {
            let fast = VirtualSynthesizer::new(SynthOptions {
                threads: Some(threads),
                ..Default::default()
            });
            let gl = fast.elaborate_gates(&nl);
            assert_eq!(gl.graph, ref_gl.graph, "threads={threads}");
            assert_eq!(gl.regions, ref_gl.regions, "threads={threads}");
            let r = fast.analyze(&gl);
            assert_eq!(r.area_um2.to_bits(), ref_r.area_um2.to_bits());
            assert_eq!(r.timing_ps.to_bits(), ref_r.timing_ps.to_bits());
            assert_eq!(r.power_mw.to_bits(), ref_r.power_mw.to_bits());
            assert_eq!(r.gate_count, ref_r.gate_count);
        }
    }

    #[test]
    fn reference_flow_reports_cycles_for_combinational_loops() {
        // Two assigns feeding each other: both cells end up cycle-stuck,
        // and every unresolved read mints (and counts) a fresh input.
        let nl = parse_and_elaborate(
            "module loopy (input [3:0] a, output [3:0] y);
                 wire [3:0] p, q;
                 assign p = q + a;
                 assign q = p + 4'd1;
                 assign y = p;
             endmodule",
            "loopy",
        );
        if let Ok(nl) = nl {
            let s = VirtualSynthesizer::new(SynthOptions::default());
            let r = s.synthesize(&nl);
            let rr = s.synthesize_reference(&nl);
            assert!(r.cycles_broken > 0, "a combinational loop must be counted");
            assert_eq!(r.cycles_broken, rr.cycles_broken);
        }
    }
}
