//! The virtual synthesizer driver: netlist → gate graph → timing / area /
//! power report.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sns_netlist::{CellId, CellKind, NetId, Netlist, PortDir};

use crate::expand::Expander;
use crate::gates::{GateGraph, GateKind, NodeId, NO_NODE};
use crate::library::CellLibrary;

/// Options controlling a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthOptions {
    /// Iterations of the timing-driven gate-sizing loop. More iterations
    /// means better timing and longer runtime — like raising the effort
    /// level of a real tool.
    pub sizing_iterations: u32,
    /// Switching activity assumed at primary inputs.
    pub input_activity: f32,
    /// Initial switching activity assumed at register outputs (refined by
    /// the power pass, or overridden per register via
    /// [`SynthOptions::register_activity`]).
    pub default_register_activity: f32,
    /// Per-register activity coefficients, keyed by the register's
    /// hierarchical cell name — the paper's power-gating mode (§3.4.4).
    pub register_activity: Option<HashMap<String, f32>>,
    /// The characterized cell library.
    pub library: CellLibrary,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            sizing_iterations: 8,
            input_activity: 0.2,
            default_register_activity: 0.1,
            register_activity: None,
            library: CellLibrary::freepdk15(),
        }
    }
}

/// The result of a synthesis run — the virtual analogue of the paper's
/// Table 4 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthReport {
    /// Total cell area in µm².
    pub area_um2: f64,
    /// Minimum clock period (critical path + sequencing overhead) in ps.
    pub timing_ps: f64,
    /// Total power (dynamic + leakage) at the achieved frequency, in mW.
    pub power_mw: f64,
    /// Dynamic component of [`SynthReport::power_mw`].
    pub dynamic_mw: f64,
    /// Leakage component of [`SynthReport::power_mw`].
    pub leakage_mw: f64,
    /// Number of gates (including flip-flops).
    pub gate_count: u64,
    /// Estimated transistor count.
    pub transistor_count: u64,
    /// Wall-clock time the synthesis run took.
    pub runtime: Duration,
}

/// The elaborated gate level of a design, exposed for tests and benchmarks.
#[derive(Debug)]
pub struct GateLevel {
    /// The flat gate graph.
    pub graph: GateGraph,
    /// For each register cell: its hierarchical name and Q-bit nodes.
    pub registers: Vec<(String, Vec<NodeId>)>,
    /// Primary-output bit nodes.
    pub outputs: Vec<NodeId>,
    /// Per-coarse-cell gate ranges: `(hierarchical cell name, start, end)`
    /// node ids — each functional cell expands contiguously, enabling
    /// hierarchical area breakdowns.
    pub regions: Vec<(String, NodeId, NodeId)>,
    /// Per input port: name and bit nodes, LSB first.
    pub input_ports: Vec<(String, Vec<NodeId>)>,
    /// Per output port: name and bit nodes, LSB first (undriven output
    /// bits map to [`GateLevel::const0`]).
    pub output_ports: Vec<(String, Vec<NodeId>)>,
    /// The shared constant-0 node.
    pub const0: NodeId,
    /// The shared constant-1 node.
    pub const1: NodeId,
}

impl GateLevel {
    /// Area per top-level hierarchy prefix (the text before the first
    /// `.` of each cell's name; cells without a prefix group under
    /// `"<top>"`). Returns `(prefix, area_um2)` sorted by descending area.
    pub fn area_breakdown(&self, lib: &CellLibrary) -> Vec<(String, f64)> {
        let mut map: HashMap<String, f64> = HashMap::new();
        for (name, start, end) in &self.regions {
            let prefix = match name.split_once('.') {
                Some((head, _)) => head.to_string(),
                None => "<top>".to_string(),
            };
            let mut area = 0.0;
            for id in *start..*end {
                area += lib.area(self.graph.kind(id), self.graph.drive[id as usize]) as f64;
            }
            *map.entry(prefix).or_default() += area;
        }
        let mut out: Vec<(String, f64)> = map.into_iter().collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite areas"));
        out
    }
}

/// The virtual synthesizer.
///
/// See the crate docs for what it models and why. Construction is cheap;
/// each [`VirtualSynthesizer::synthesize`] call is independent.
#[derive(Debug, Clone, Default)]
pub struct VirtualSynthesizer {
    options: SynthOptions,
}

impl VirtualSynthesizer {
    /// Creates a synthesizer with the given options.
    pub fn new(options: SynthOptions) -> Self {
        VirtualSynthesizer { options }
    }

    /// The active options.
    pub fn options(&self) -> &SynthOptions {
        &self.options
    }

    /// Runs the full flow: gate-level expansion, sizing-driven timing
    /// closure, and power analysis.
    pub fn synthesize(&self, nl: &Netlist) -> SynthReport {
        let start = Instant::now();
        let gl = self.elaborate_gates(nl);
        let mut report = self.analyze(&gl);
        report.runtime = start.elapsed();
        report
    }

    /// Expands a netlist into its flat gate graph.
    pub fn elaborate_gates(&self, nl: &Netlist) -> GateLevel {
        let mut graph = GateGraph::with_capacity(nl.cell_count() * 8);
        let mut e = Expander::new(&mut graph);
        let mut net_bits: HashMap<NetId, Vec<NodeId>> = HashMap::new();
        let mut registers: Vec<(String, Vec<NodeId>)> = Vec::new();
        let mut dff_patches: Vec<(Vec<NodeId>, NetId)> = Vec::new();
        let mut regions: Vec<(String, NodeId, NodeId)> = Vec::new();

        let (const0, const1) = (e.const0(), e.const1());

        // Primary inputs.
        let mut input_ports: Vec<(String, Vec<NodeId>)> = Vec::new();
        for p in nl.ports() {
            if p.dir == PortDir::Input {
                let w = nl.net(p.net).width;
                let bits = e.inputs(w);
                input_ports.push((p.name.clone(), bits.clone()));
                net_bits.insert(p.net, bits);
            }
        }

        // Register banks first: a register's Q bits must exist before any
        // reader expands, and readers may precede the Dff cell in any
        // combinational topological order (registers are sequential
        // sources, so the order among them is free). Expanding a reader
        // before its register would silently substitute fresh dangling
        // inputs for the Q bits.
        for (_, cell) in nl.cells_enumerated() {
            if cell.kind != CellKind::Dff {
                continue;
            }
            let region_start = e.g.len() as NodeId;
            let q = e.dff_bank(nl.net(cell.output).width);
            registers.push((cell.name.clone(), q.clone()));
            dff_patches.push((q.clone(), cell.inputs[0]));
            net_bits.insert(cell.output, q);
            regions.push((cell.name.clone(), region_start, e.g.len() as NodeId));
        }

        for cid in topo_order(nl) {
            let cell = nl.cell(cid);
            if cell.kind == CellKind::Dff {
                continue; // bank already materialized above
            }
            let region_start = e.g.len() as NodeId;
            let out_w = nl.net(cell.output).width;
            let ins: Vec<Vec<NodeId>> = cell
                .inputs
                .iter()
                .map(|&n| {
                    net_bits
                        .get(&n)
                        .cloned()
                        // Unresolvable input (combinational cycle): treat as
                        // a fresh input so the run stays robust.
                        .unwrap_or_else(|| e.inputs(nl.net(n).width))
                })
                .collect();
            let bits = match cell.kind {
                CellKind::Const => e.const_bits(cell.attr, out_w),
                CellKind::Buf => e.resize(&ins[0], out_w),
                CellKind::Slice => {
                    let lsb = cell.attr as usize;
                    let have = &ins[0];
                    let taken: Vec<NodeId> = have
                        .iter()
                        .copied()
                        .skip(lsb)
                        .take(out_w as usize)
                        .collect();
                    e.resize(&taken, out_w)
                }
                CellKind::Concat => {
                    let mut v = Vec::new();
                    for i in &ins {
                        v.extend_from_slice(i);
                    }
                    e.resize(&v, out_w)
                }
                CellKind::Replicate => {
                    let mut v = Vec::new();
                    for _ in 0..cell.attr.max(1) {
                        v.extend_from_slice(&ins[0]);
                    }
                    e.resize(&v, out_w)
                }
                CellKind::Dff => unreachable!("register banks are expanded in the prepass"),
                CellKind::Not => {
                    let a = e.resize(&ins[0], out_w);
                    e.map1(GateKind::Inv, &a)
                }
                CellKind::And | CellKind::Or | CellKind::Xor | CellKind::Xnor => {
                    let a = e.resize(&ins[0], out_w);
                    let b = e.resize(&ins[1], out_w);
                    let k = match cell.kind {
                        CellKind::And => GateKind::And2,
                        CellKind::Or => GateKind::Or2,
                        CellKind::Xor => GateKind::Xor2,
                        _ => GateKind::Xnor2,
                    };
                    e.map2(k, &a, &b)
                }
                CellKind::Mux => {
                    let sel = ins[0][0];
                    let a = e.resize(&ins[1], out_w);
                    let b = e.resize(&ins[2], out_w);
                    e.mux(sel, &a, &b)
                }
                CellKind::Add | CellKind::Sub => {
                    let a = e.resize(&ins[0], out_w);
                    let b = e.resize(&ins[1], out_w);
                    let (s, _) =
                        if cell.kind == CellKind::Add { e.add(&a, &b) } else { e.sub(&a, &b) };
                    s
                }
                CellKind::Mul => e.mul(&ins[0], &ins[1], out_w),
                CellKind::Div | CellKind::Mod => {
                    let w = out_w.max(1);
                    let a = e.resize(&ins[0], w);
                    let b = e.resize(&ins[1], w);
                    let (q, r) = e.divmod(&a, &b);
                    if cell.kind == CellKind::Div {
                        q
                    } else {
                        r
                    }
                }
                CellKind::Shl | CellKind::Shr => {
                    let a = e.resize(&ins[0], out_w);
                    e.shift(&a, &ins[1], cell.kind == CellKind::Shl)
                }
                CellKind::Eq => {
                    let w = ins[0].len().max(ins[1].len()) as u32;
                    let a = e.resize(&ins[0], w);
                    let b = e.resize(&ins[1], w);
                    let bit = e.equal(&a, &b);
                    e.resize(&[bit], out_w)
                }
                CellKind::Lgt => {
                    let w = ins[0].len().max(ins[1].len()) as u32;
                    let a = e.resize(&ins[0], w);
                    let b = e.resize(&ins[1], w);
                    let bit = e.less_than(&a, &b);
                    e.resize(&[bit], out_w)
                }
                CellKind::ReduceAnd | CellKind::ReduceOr | CellKind::ReduceXor => {
                    let k = match cell.kind {
                        CellKind::ReduceAnd => GateKind::And2,
                        CellKind::ReduceOr => GateKind::Or2,
                        _ => GateKind::Xor2,
                    };
                    let bit = e.reduce(k, &ins[0]);
                    e.resize(&[bit], out_w)
                }
            };
            net_bits.insert(cell.output, bits);
            let region_end = e.g.len() as NodeId;
            if region_end > region_start && !cell.kind.is_wiring() {
                regions.push((cell.name.clone(), region_start, region_end));
            }
        }

        // Patch register D inputs now the full combinational cone exists.
        for (q_bits, d_net) in dff_patches {
            let d_bits = net_bits
                .get(&d_net)
                .cloned()
                .unwrap_or_else(|| vec![e.const0(); q_bits.len()]);
            let d_bits = e.resize(&d_bits, q_bits.len() as u32);
            for (q, d) in q_bits.iter().zip(d_bits) {
                e.g.set_fanin(*q, 0, d);
            }
        }

        let mut outputs = Vec::new();
        let mut output_ports: Vec<(String, Vec<NodeId>)> = Vec::new();
        for p in nl.ports() {
            if p.dir == PortDir::Output {
                if let Some(bits) = net_bits.get(&p.net) {
                    outputs.extend_from_slice(bits);
                    output_ports.push((p.name.clone(), bits.clone()));
                } else {
                    // Undriven output: reads as constant zero, matching the
                    // netlist simulator's never-written net value.
                    let w = nl.net(p.net).width as usize;
                    output_ports.push((p.name.clone(), vec![const0; w]));
                }
            }
        }
        GateLevel { graph, registers, outputs, regions, input_ports, output_ports, const0, const1 }
    }

    /// Timing closure + power analysis over an elaborated gate level.
    pub fn analyze(&self, gl: &GateLevel) -> SynthReport {
        let lib = &self.options.library;
        let mut graph = gl.graph.clone();
        let fanouts = graph.fanout_counts();

        // Timing-driven sizing loop: forward STA, backward required-time
        // (slack) propagation, then upsize the low-slack gates — the same
        // inner loop a real timing-driven synthesis tool iterates, and the
        // super-linear part of its runtime.
        let mut arrivals = vec![0.0f32; graph.len()];
        let mut required = vec![0.0f32; graph.len()];
        let mut crit = self.sta(&graph, &fanouts, gl, &mut arrivals);
        for _ in 0..self.options.sizing_iterations {
            self.required_times(&graph, &fanouts, gl, &arrivals, crit, &mut required);
            let margin = (crit.path_ps * 0.08) as f32;
            let mut touched = 0u64;
            for id in 0..graph.len() {
                let slack = required[id] - arrivals[id];
                if slack <= margin && graph.kind(id as NodeId).is_gate() && graph.drive[id] < 4.0
                {
                    graph.drive[id] = (graph.drive[id] * 1.25).min(4.0);
                    touched += 1;
                }
            }
            if touched == 0 {
                break;
            }
            let new_crit = self.sta(&graph, &fanouts, gl, &mut arrivals);
            if new_crit.path_ps >= crit.path_ps * 0.999 {
                crit = new_crit;
                break;
            }
            crit = new_crit;
        }

        // Area, gate and transistor counts.
        let mut area = 0.0f64;
        let mut transistors = 0u64;
        for id in 0..graph.len() {
            let k = graph.kind(id as NodeId);
            area += lib.area(k, graph.drive[id]) as f64;
            transistors += lib.params(k).transistors as u64;
        }

        // Activity propagation (two rounds so register activities settle).
        let user_act = self.options.register_activity.as_ref();
        let mut reg_act: HashMap<NodeId, f32> = HashMap::new();
        for (name, qs) in &gl.registers {
            let a = user_act
                .and_then(|m| m.get(name).copied())
                .unwrap_or(self.options.default_register_activity);
            for &q in qs {
                reg_act.insert(q, a);
            }
        }
        let mut act = vec![0.0f32; graph.len()];
        for round in 0..2 {
            for id in 0..graph.len() {
                let k = graph.kind(id as NodeId);
                act[id] = match k {
                    GateKind::Input => self.options.input_activity,
                    GateKind::Const => 0.0,
                    GateKind::Dff => {
                        let pinned = user_act.is_some()
                            && reg_act.contains_key(&(id as NodeId))
                            && user_act
                                .map(|m| {
                                    gl.registers
                                        .iter()
                                        .any(|(n, qs)| m.contains_key(n) && qs.contains(&(id as NodeId)))
                                })
                                .unwrap_or(false);
                        if round == 0 || pinned {
                            reg_act[&(id as NodeId)]
                        } else {
                            // refine from the D cone
                            let d = graph.fanins(id as NodeId)[0];
                            if d == NO_NODE {
                                reg_act[&(id as NodeId)]
                            } else {
                                (lib.activity_factor(GateKind::Dff) * act[d as usize]).min(1.0)
                            }
                        }
                    }
                    _ => {
                        let f = graph.fanins(id as NodeId);
                        let mut sum = 0.0;
                        let mut n = 0;
                        for &x in &f {
                            if x != NO_NODE {
                                sum += act[x as usize];
                                n += 1;
                            }
                        }
                        if n == 0 {
                            0.0
                        } else {
                            (lib.activity_factor(k) * sum / n as f32).min(1.0)
                        }
                    }
                };
            }
        }

        // Power at the achieved frequency.
        let freq_ghz = 1000.0 / crit.period_ps;
        let mut dyn_uw = 0.0f64;
        let mut leak_nw = 0.0f64;
        for (id, &a) in act.iter().enumerate().take(graph.len()) {
            let k = graph.kind(id as NodeId);
            dyn_uw += (a * lib.energy(k, graph.drive[id])) as f64 * freq_ghz;
            leak_nw += lib.leakage(k, graph.drive[id]) as f64;
        }
        let dynamic_mw = dyn_uw / 1000.0;
        let leakage_mw = leak_nw / 1e6;

        SynthReport {
            area_um2: area,
            timing_ps: crit.period_ps,
            power_mw: dynamic_mw + leakage_mw,
            dynamic_mw,
            leakage_mw,
            gate_count: graph.gate_count(),
            transistor_count: transistors,
            runtime: Duration::ZERO,
        }
    }

    fn sta(
        &self,
        graph: &GateGraph,
        fanouts: &[u32],
        gl: &GateLevel,
        arrivals: &mut [f32],
    ) -> Critical {
        let lib = &self.options.library;
        for id in 0..graph.len() {
            let k = graph.kind(id as NodeId);
            arrivals[id] = if k == GateKind::Dff {
                lib.clk_to_q_ps
            } else if k.is_source() {
                0.0
            } else {
                let mut worst = 0.0f32;
                for &f in &graph.fanins(id as NodeId) {
                    if f != NO_NODE {
                        worst = worst.max(arrivals[f as usize]);
                    }
                }
                worst + lib.delay(k, graph.drive[id], fanouts[id])
            };
        }
        let mut path = 0.0f32;
        for (_, qs) in &gl.registers {
            for &q in qs {
                let d = graph.fanins(q)[0];
                if d != NO_NODE {
                    path = path.max(arrivals[d as usize] + lib.setup_ps);
                }
            }
        }
        for &o in &gl.outputs {
            path = path.max(arrivals[o as usize] + lib.setup_ps);
        }
        let period = path.max(lib.clk_to_q_ps + lib.setup_ps + 1.0);
        Critical { path_ps: path as f64, period_ps: period as f64 }
    }
}

impl VirtualSynthesizer {
    /// Backward required-time pass: endpoints get `period − setup`;
    /// every fanin must be ready `delay` before its consumer.
    fn required_times(
        &self,
        graph: &GateGraph,
        fanouts: &[u32],
        gl: &GateLevel,
        _arrivals: &[f32],
        crit: Critical,
        required: &mut [f32],
    ) {
        let lib = &self.options.library;
        let deadline = (crit.period_ps - lib.setup_ps as f64) as f32;
        required.fill(f32::INFINITY);
        for (_, qs) in &gl.registers {
            for &q in qs {
                let d = graph.fanins(q)[0];
                if d != NO_NODE {
                    required[d as usize] = required[d as usize].min(deadline);
                }
            }
        }
        for &o in &gl.outputs {
            required[o as usize] = required[o as usize].min(deadline);
        }
        for id in (0..graph.len()).rev() {
            let k = graph.kind(id as NodeId);
            if k.is_source() {
                continue;
            }
            let req = required[id];
            if req == f32::INFINITY {
                continue;
            }
            let own = lib.delay(k, graph.drive[id], fanouts[id]);
            for &f in &graph.fanins(id as NodeId) {
                if f != NO_NODE {
                    required[f as usize] = required[f as usize].min(req - own);
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Critical {
    path_ps: f64,
    period_ps: f64,
}

/// Topological order over cells (Kahn), treating register outputs as
/// sources. Cells stuck in combinational cycles are appended at the end in
/// id order (the expander substitutes fresh inputs for their unresolved
/// fanins).
fn topo_order(nl: &Netlist) -> Vec<CellId> {
    let driver = nl.driver_map();
    let mut indegree: Vec<u32> = Vec::with_capacity(nl.cell_count());
    let mut ready: Vec<CellId> = Vec::new();
    for (cid, cell) in nl.cells_enumerated() {
        let deg = if cell.kind == CellKind::Dff {
            0
        } else {
            cell.inputs
                .iter()
                .filter(|n| {
                    driver.get(n).is_some_and(|&d| nl.cell(d).kind != CellKind::Dff)
                })
                .count() as u32
        };
        indegree.push(deg);
        if deg == 0 {
            ready.push(cid);
        }
    }
    let readers = nl.reader_map();
    let mut order = Vec::with_capacity(nl.cell_count());
    let mut head = 0;
    while head < ready.len() {
        let cid = ready[head];
        head += 1;
        order.push(cid);
        // Register outputs were never counted in consumer in-degrees (they
        // are sequential sources), so they must not decrement them either —
        // otherwise consumers are re-queued and expanded repeatedly.
        if nl.cell(cid).kind == CellKind::Dff {
            continue;
        }
        if let Some(consumers) = readers.get(&nl.cell(cid).output) {
            for &r in consumers {
                if nl.cell(r).kind == CellKind::Dff {
                    continue;
                }
                let d = &mut indegree[r.0 as usize];
                if *d > 0 {
                    *d -= 1;
                    if *d == 0 {
                        ready.push(r);
                    }
                }
            }
        }
    }
    if order.len() < nl.cell_count() {
        let mut seen = vec![false; nl.cell_count()];
        for &c in &order {
            seen[c.0 as usize] = true;
        }
        for (i, &s) in seen.iter().enumerate() {
            if !s {
                order.push(CellId(i as u32));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::parse_and_elaborate;

    fn synth(src: &str, top: &str) -> SynthReport {
        let nl = parse_and_elaborate(src, top).unwrap();
        VirtualSynthesizer::new(SynthOptions::default()).synthesize(&nl)
    }

    const MAC: &str = "module mac (input clk, input [7:0] a, b, output [15:0] y);
                           reg [15:0] acc;
                           always @(posedge clk) acc <= acc + a * b;
                           assign y = acc;
                       endmodule";

    #[test]
    fn mac_report_is_physically_plausible() {
        let r = synth(MAC, "mac");
        assert!(r.gate_count > 100, "a 16-bit MAC is a few hundred gates, got {}", r.gate_count);
        assert!(r.area_um2 > 10.0 && r.area_um2 < 10_000.0, "area {}", r.area_um2);
        assert!(r.timing_ps > 50.0 && r.timing_ps < 2_000.0, "timing {}", r.timing_ps);
        assert!(r.power_mw > 0.0 && r.power_mw < 100.0, "power {}", r.power_mw);
        assert!(r.transistor_count > 2 * r.gate_count);
    }

    #[test]
    fn wider_datapath_costs_more_area_and_delay() {
        let narrow = synth(MAC, "mac");
        let wide = synth(
            "module mac (input clk, input [31:0] a, b, output [63:0] y);
                 reg [63:0] acc;
                 always @(posedge clk) acc <= acc + a * b;
                 assign y = acc;
             endmodule",
            "mac",
        );
        assert!(wide.area_um2 > 5.0 * narrow.area_um2);
        assert!(wide.timing_ps > narrow.timing_ps);
        assert!(wide.power_mw > narrow.power_mw);
    }

    #[test]
    fn divider_is_much_slower_than_adder() {
        let add = synth(
            "module m (input clk, input [15:0] a, b, output reg [15:0] y);
                 always @(posedge clk) y <= a + b;
             endmodule",
            "m",
        );
        let div = synth(
            "module m (input clk, input [15:0] a, b, output reg [15:0] y);
                 always @(posedge clk) y <= a / b;
             endmodule",
            "m",
        );
        assert!(div.timing_ps > 3.0 * add.timing_ps, "div {} vs add {}", div.timing_ps, add.timing_ps);
        assert!(div.area_um2 > 5.0 * add.area_um2);
    }

    #[test]
    fn sizing_iterations_improve_timing() {
        let nl = parse_and_elaborate(MAC, "mac").unwrap();
        let lazy = VirtualSynthesizer::new(SynthOptions { sizing_iterations: 0, ..Default::default() })
            .synthesize(&nl);
        let tuned = VirtualSynthesizer::new(SynthOptions { sizing_iterations: 10, ..Default::default() })
            .synthesize(&nl);
        assert!(tuned.timing_ps < lazy.timing_ps);
        assert!(tuned.area_um2 > lazy.area_um2); // upsizing costs area
    }

    #[test]
    fn register_activity_scales_power() {
        let nl = parse_and_elaborate(MAC, "mac").unwrap();
        let reg_name = nl
            .cells()
            .find(|c| c.kind == CellKind::Dff)
            .map(|c| c.name.clone())
            .unwrap();
        let mut hot = HashMap::new();
        hot.insert(reg_name.clone(), 1.0f32);
        let mut cold = HashMap::new();
        cold.insert(reg_name, 0.001f32);
        let mk = |m: HashMap<String, f32>| {
            VirtualSynthesizer::new(SynthOptions {
                register_activity: Some(m),
                ..Default::default()
            })
            .synthesize(&nl)
        };
        let hot_r = mk(hot);
        let cold_r = mk(cold);
        assert!(hot_r.dynamic_mw > cold_r.dynamic_mw);
        assert_eq!(hot_r.area_um2, cold_r.area_um2); // power-only knob
    }

    #[test]
    fn purely_combinational_design_synthesizes() {
        let r = synth(
            "module comb (input [7:0] a, b, output [7:0] y); assign y = a ^ b; endmodule",
            "comb",
        );
        assert_eq!(r.gate_count, 8);
        assert!(r.timing_ps > 0.0);
    }

    #[test]
    fn gate_counts_match_expander_math() {
        // 64-bit AND reduction: 63 gates + nothing else.
        let r = synth(
            "module m (input [63:0] a, output y); assign y = &a; endmodule",
            "m",
        );
        assert_eq!(r.gate_count, 63);
    }

    #[test]
    fn runtime_is_recorded() {
        let r = synth(MAC, "mac");
        assert!(r.runtime > Duration::ZERO);
    }
}
