//! A two-state evaluator for elaborated gate graphs.
//!
//! [`GateSim`] plays the same role for a [`GateLevel`] that
//! `sns_netlist::Simulator` plays for a coarse-cell netlist: drive the
//! input ports, propagate, latch flip-flops on [`GateSim::step`], read the
//! output ports. The two simulators form a differential pair — the
//! `sns-conformance` harness runs random RTL through both and demands
//! bit-identical traces, which is what pins down the semantics of every
//! expander in [`crate::expand`] against the elaborator's.
//!
//! Evaluation cost is one pass over the graph per [`GateSim::eval`]
//! (nodes are stored in topological order; flip-flop D fanins are the only
//! backward edges and are skipped until [`GateSim::step`]).
//!
//! # Example
//!
//! ```rust
//! use sns_netlist::parse_and_elaborate;
//! use sns_vsynth::{GateSim, SynthOptions, VirtualSynthesizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = parse_and_elaborate(
//!     "module mac (input clk, input [7:0] a, b, output [15:0] y);
//!          reg [15:0] acc;
//!          always @(posedge clk) acc <= acc + a * b;
//!          assign y = acc;
//!      endmodule",
//!     "mac",
//! )?;
//! let gl = VirtualSynthesizer::new(SynthOptions::default()).elaborate_gates(&nl);
//! let mut sim = GateSim::new(&gl)?;
//! sim.set_input("a", 3)?;
//! sim.set_input("b", 5)?;
//! sim.step(); // acc <- 0 + 15
//! sim.step(); // acc <- 15 + 15
//! assert_eq!(sim.output("y")?, 30);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::gates::{GateKind, NodeId, NO_NODE};
use crate::synth::GateLevel;

/// Maximum port width [`GateSim`] packs into a scalar value.
const MAX_PORT_WIDTH: usize = 128;

/// A two-state gate-level interpreter over a [`GateLevel`].
#[derive(Debug)]
pub struct GateSim<'a> {
    gl: &'a GateLevel,
    /// Current boolean value of every node.
    values: Vec<bool>,
    /// Flip-flop node ids, in graph order.
    dffs: Vec<NodeId>,
    inputs: HashMap<&'a str, &'a [NodeId]>,
    outputs: HashMap<&'a str, &'a [NodeId]>,
}

impl<'a> GateSim<'a> {
    /// Prepares an evaluator for `gl`.
    ///
    /// # Errors
    ///
    /// Returns an error if any port is wider than 128 bits (its value
    /// would not fit the scalar accessors) — mirroring the width limit of
    /// the netlist simulator this one is differenced against.
    pub fn new(gl: &'a GateLevel) -> Result<Self, String> {
        let mut inputs = HashMap::new();
        for (name, bits) in &gl.input_ports {
            if bits.len() > MAX_PORT_WIDTH {
                return Err(format!(
                    "input port `{name}` is {} bits wide; GateSim supports at most {MAX_PORT_WIDTH}",
                    bits.len()
                ));
            }
            inputs.insert(name.as_str(), bits.as_slice());
        }
        let mut outputs = HashMap::new();
        for (name, bits) in &gl.output_ports {
            if bits.len() > MAX_PORT_WIDTH {
                return Err(format!(
                    "output port `{name}` is {} bits wide; GateSim supports at most {MAX_PORT_WIDTH}",
                    bits.len()
                ));
            }
            outputs.insert(name.as_str(), bits.as_slice());
        }
        let mut values = vec![false; gl.graph.len()];
        if (gl.const1 as usize) < values.len() {
            values[gl.const1 as usize] = true;
        }
        let dffs = (0..gl.graph.len() as NodeId)
            .filter(|&id| gl.graph.kind(id) == GateKind::Dff)
            .collect();
        Ok(GateSim { gl, values, dffs, inputs, outputs })
    }

    /// Drives an input port (value is truncated to the port width).
    ///
    /// # Errors
    ///
    /// Returns an error if the port does not exist.
    pub fn set_input(&mut self, name: &str, value: u128) -> Result<(), String> {
        let bits = *self.inputs.get(name).ok_or_else(|| format!("no input port `{name}`"))?;
        for (i, &b) in bits.iter().enumerate() {
            self.values[b as usize] = (value >> i) & 1 == 1;
        }
        Ok(())
    }

    /// Reads an output port (after [`GateSim::eval`] or [`GateSim::step`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the port does not exist.
    pub fn output(&self, name: &str) -> Result<u128, String> {
        let bits = *self.outputs.get(name).ok_or_else(|| format!("no output port `{name}`"))?;
        let mut v = 0u128;
        for (i, &b) in bits.iter().enumerate() {
            v |= (self.values[b as usize] as u128) << i;
        }
        Ok(v)
    }

    /// Propagates combinational logic with the current inputs and
    /// flip-flop states.
    pub fn eval(&mut self) {
        let g = &self.gl.graph;
        for id in 0..g.len() as NodeId {
            let kind = g.kind(id);
            if kind.is_source() {
                // Inputs and constants hold their driven values; flip-flops
                // hold state until `step`.
                continue;
            }
            let f = g.fanins(id);
            // An unused slot reads as 0 — only reachable for kinds whose
            // arity leaves the slot unread, or for graphs built by hand.
            let v = |slot: usize| f[slot] != NO_NODE && self.values[f[slot] as usize];
            self.values[id as usize] = match kind {
                GateKind::Inv => !v(0),
                GateKind::Buf => v(0),
                GateKind::Nand2 => !(v(0) && v(1)),
                GateKind::Nor2 => !(v(0) || v(1)),
                GateKind::And2 => v(0) && v(1),
                GateKind::Or2 => v(0) || v(1),
                GateKind::Xor2 => v(0) ^ v(1),
                GateKind::Xnor2 => !(v(0) ^ v(1)),
                GateKind::Mux2 => {
                    if v(0) {
                        v(2)
                    } else {
                        v(1)
                    }
                }
                GateKind::Maj3 => (v(0) && v(1)) || (v(0) && v(2)) || (v(1) && v(2)),
                // Filtered by the `is_source` check above; keep the match
                // total without a panic path.
                GateKind::Input | GateKind::Const | GateKind::Dff => continue,
            };
        }
    }

    /// One clock cycle: combinational propagate, then every flip-flop
    /// latches its D fanin simultaneously (an unpatched D holds 0), then
    /// propagate again so outputs reflect the post-edge state — the same
    /// contract as `sns_netlist::Simulator::step`.
    pub fn step(&mut self) {
        self.eval();
        let next: Vec<bool> = self
            .dffs
            .iter()
            .map(|&q| {
                let d = self.gl.graph.fanins(q)[0];
                d != NO_NODE && self.values[d as usize]
            })
            .collect();
        for (&q, v) in self.dffs.iter().zip(next) {
            self.values[q as usize] = v;
        }
        self.eval();
    }

    /// Resets all state (inputs, nets, flip-flops) to zero.
    pub fn reset_state(&mut self) {
        self.values.fill(false);
        if (self.gl.const1 as usize) < self.values.len() {
            self.values[self.gl.const1 as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthOptions, VirtualSynthesizer};
    use sns_netlist::{parse_and_elaborate, Simulator};

    fn gate_level(src: &str, top: &str) -> GateLevel {
        let nl = parse_and_elaborate(src, top).unwrap();
        VirtualSynthesizer::new(SynthOptions::default()).elaborate_gates(&nl)
    }

    #[test]
    fn mac_accumulates_like_the_netlist_simulator() {
        let src = "module mac (input clk, input [7:0] a, b, output [15:0] y);
                       reg [15:0] acc;
                       always @(posedge clk) acc <= acc + a * b;
                       assign y = acc;
                   endmodule";
        let nl = parse_and_elaborate(src, "mac").unwrap();
        let gl = VirtualSynthesizer::new(SynthOptions::default()).elaborate_gates(&nl);
        let mut gsim = GateSim::new(&gl).unwrap();
        let mut nsim = Simulator::new(&nl).unwrap();
        for (a, b) in [(3u128, 5u128), (200, 200), (0, 7), (255, 255)] {
            gsim.set_input("a", a).unwrap();
            gsim.set_input("b", b).unwrap();
            nsim.set_input("a", a).unwrap();
            nsim.set_input("b", b).unwrap();
            gsim.step();
            nsim.step().unwrap();
            assert_eq!(gsim.output("y").unwrap(), nsim.output("y").unwrap(), "a={a} b={b}");
        }
    }

    #[test]
    fn division_by_zero_is_all_ones_quotient() {
        let gl = gate_level(
            "module top (input [3:0] a, b, output [3:0] q, r);
                 assign q = a / b;
                 assign r = a % b;
             endmodule",
            "top",
        );
        let mut sim = GateSim::new(&gl).unwrap();
        sim.set_input("a", 13).unwrap();
        sim.set_input("b", 0).unwrap();
        sim.eval();
        assert_eq!(sim.output("q").unwrap(), 15);
        assert_eq!(sim.output("r").unwrap(), 13);
    }

    #[test]
    fn register_feedback_accumulates_regardless_of_cell_order() {
        // Regression (found by sns-conformance): when a combinational cell
        // reading a register net expanded before the Dff cell itself, the
        // expander substituted dangling fresh inputs for the Q bits and the
        // feedback path silently read constant zero. The register-bank
        // prepass in `elaborate_gates` guarantees Q bits exist first.
        let gl = gate_level(
            "module ctr (input clk, input [3:0] i0, output [3:0] o0);
                 reg [3:0] s0;
                 always @(posedge clk) s0 <= s0 + i0;
                 assign o0 = s0;
             endmodule",
            "ctr",
        );
        let mut sim = GateSim::new(&gl).unwrap();
        let mut acc = 0u128;
        for i0 in [5u128, 2, 9, 3] {
            sim.set_input("i0", i0).unwrap();
            sim.step();
            acc = (acc + i0) & 0xf;
            assert_eq!(sim.output("o0").unwrap(), acc, "after adding {i0}");
        }
    }

    #[test]
    fn undriven_output_reads_zero() {
        let gl = gate_level(
            "module top (input [3:0] a, output [3:0] y, z);
                 assign y = a;
             endmodule",
            "top",
        );
        let mut sim = GateSim::new(&gl).unwrap();
        sim.set_input("a", 9).unwrap();
        sim.eval();
        assert_eq!(sim.output("y").unwrap(), 9);
        assert_eq!(sim.output("z").unwrap(), 0);
    }

    #[test]
    fn reset_clears_registers() {
        let gl = gate_level(
            "module ctr (input clk, output [3:0] y);
                 reg [3:0] c;
                 always @(posedge clk) c <= c + 4'd1;
                 assign y = c;
             endmodule",
            "ctr",
        );
        let mut sim = GateSim::new(&gl).unwrap();
        sim.step();
        sim.step();
        assert_eq!(sim.output("y").unwrap(), 2);
        sim.reset_state();
        sim.eval();
        assert_eq!(sim.output("y").unwrap(), 0);
    }

    #[test]
    fn constants_wider_than_64_bits_zero_extend() {
        // Regression (found by sns-conformance): comparing a wide concat
        // against a literal adapts the constant to the 72-bit context, and
        // `const_bits` used to shift its 64-bit payload out of range.
        let gl = gate_level(
            "module top (input [35:0] a, b, output o);
                 wire [71:0] s;
                 assign s = {a, b};
                 assign o = (s == 5'd9);
             endmodule",
            "top",
        );
        let nl = parse_and_elaborate(
            "module top (input [35:0] a, b, output o);
                 wire [71:0] s;
                 assign s = {a, b};
                 assign o = (s == 5'd9);
             endmodule",
            "top",
        )
        .unwrap();
        let mut gsim = GateSim::new(&gl).unwrap();
        let mut nsim = Simulator::new(&nl).unwrap();
        for (a, b) in [(0u128, 9u128), (0, 8), (1, 9), (0xFFF, 0xFFF)] {
            gsim.set_input("a", a).unwrap();
            gsim.set_input("b", b).unwrap();
            nsim.set_input("a", a).unwrap();
            nsim.set_input("b", b).unwrap();
            gsim.eval();
            nsim.eval().unwrap();
            assert_eq!(gsim.output("o").unwrap(), nsim.output("o").unwrap(), "a={a} b={b}");
            assert_eq!(gsim.output("o").unwrap(), u128::from(a == 0 && b == 9));
        }
    }

    #[test]
    fn unknown_ports_error() {
        let gl = gate_level("module m (input a, output y); assign y = a; endmodule", "m");
        let mut sim = GateSim::new(&gl).unwrap();
        assert!(sim.set_input("nope", 1).is_err());
        assert!(sim.output("nada").is_err());
    }

    #[test]
    fn wide_ports_are_rejected() {
        let gl = gate_level(
            "module w (input [199:0] a, output [199:0] y); assign y = a; endmodule",
            "w",
        );
        assert!(GateSim::new(&gl).is_err());
    }
}
