//! # sns-vsynth
//!
//! A "virtual synthesizer": the stand-in for Synopsys Design Compiler +
//! FreePDK-15 in this reproduction of SNS (ISCA 2022).
//!
//! The paper uses a commercial synthesis flow for two things:
//!
//! 1. **Ground-truth labels** — area / power / timing for whole designs
//!    (Table 4) and for individual circuit paths (Table 5), and
//! 2. **The runtime baseline** — the slow tool SNS is compared against
//!    (Figure 7).
//!
//! This crate provides both. It is not a logic optimizer, but it does real,
//! physically-grounded work proportional to design size:
//!
//! * every coarse functional cell is expanded into an explicit **bit-level
//!   gate graph** using textbook implementations (Sklansky prefix adders,
//!   Wallace-tree multipliers, barrel shifters, restoring array dividers,
//!   balanced reduction trees) over a characterized 15 nm-class cell
//!   library ([`library`]),
//! * **static timing analysis** propagates arrival times over the full gate
//!   graph (flip-flop to flip-flop, with clk→Q and setup),
//! * an iterative **gate-sizing loop** upsizes gates near the critical path
//!   (this is what makes the baseline's runtime scale super-linearly with
//!   design size, like a real synthesis tool),
//! * **power analysis** propagates switching activity through the graph and
//!   sums dynamic + leakage power at the achieved frequency; per-register
//!   activity coefficients can be supplied for the paper's power-gating
//!   mode (§3.4.4),
//! * [`scaling`] implements Stillmaker–Baas-style technology scaling used
//!   for the DianNao 65 nm → 15 nm comparison (Table 12).
//!
//! # Example
//!
//! ```rust
//! use sns_netlist::parse_and_elaborate;
//! use sns_vsynth::{SynthOptions, VirtualSynthesizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nl = parse_and_elaborate(
//!     "module mac (input clk, input [7:0] a, b, output [15:0] y);
//!          reg [15:0] acc;
//!          always @(posedge clk) acc <= acc + a * b;
//!          assign y = acc;
//!      endmodule",
//!     "mac",
//! )?;
//! let report = VirtualSynthesizer::new(SynthOptions::default()).synthesize(&nl);
//! assert!(report.area_um2 > 0.0);
//! assert!(report.timing_ps > 0.0);
//! assert!(report.power_mw > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod expand;
pub mod gates;
pub mod geval;
pub mod library;
pub mod paths;
pub mod scaling;
pub mod synth;

pub use expand::{ExpansionMemo, MemoKey, MemoStats, Template, DEFAULT_MEMO_CAP_NODES};
pub use gates::{GateGraph, GateKind, NodeId};
pub use geval::GateSim;
pub use library::{CellLibrary, GateParams};
pub use paths::{path_physical, unit_physical, PathPhysical, UnitCache, UnitPhysical};
pub use scaling::{scale_area, scale_delay, scale_power, TechNode};
pub use synth::{AnalyzeBreakdown, GateLevel, SynthOptions, SynthReport, VirtualSynthesizer};
