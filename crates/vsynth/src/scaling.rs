//! Technology-node scaling (Stillmaker & Baas, *Integration* 2017 style).
//!
//! The paper scales DianNao's published 65 nm synthesis results to the
//! 15 nm node SNS targets (Table 12). This module provides per-node scaling
//! factors for area, delay and power, normalized to 45 nm; the 65 nm →
//! 15 nm ratios are calibrated to reproduce the paper's Table 12 scaling
//! (area ×0.115, delay ×0.324, power ×0.499).

use std::fmt;

/// A CMOS technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TechNode {
    /// 180 nm
    N180,
    /// 130 nm
    N130,
    /// 90 nm
    N90,
    /// 65 nm
    N65,
    /// 45 nm
    N45,
    /// 32 nm
    N32,
    /// 22 nm
    N22,
    /// 15 nm (FreePDK15-class)
    N15,
    /// 7 nm
    N7,
}

impl TechNode {
    /// All nodes, largest feature size first.
    pub const ALL: [TechNode; 9] = [
        TechNode::N180,
        TechNode::N130,
        TechNode::N90,
        TechNode::N65,
        TechNode::N45,
        TechNode::N32,
        TechNode::N22,
        TechNode::N15,
        TechNode::N7,
    ];

    /// The feature size in nanometres.
    pub fn nanometres(self) -> u32 {
        match self {
            TechNode::N180 => 180,
            TechNode::N130 => 130,
            TechNode::N90 => 90,
            TechNode::N65 => 65,
            TechNode::N45 => 45,
            TechNode::N32 => 32,
            TechNode::N22 => 22,
            TechNode::N15 => 15,
            TechNode::N7 => 7,
        }
    }

    /// Area factor relative to 45 nm.
    pub fn area_factor(self) -> f64 {
        match self {
            TechNode::N180 => 16.0,
            TechNode::N130 => 8.35,
            TechNode::N90 => 4.0,
            TechNode::N65 => 2.09,
            TechNode::N45 => 1.0,
            TechNode::N32 => 0.50,
            TechNode::N22 => 0.30,
            TechNode::N15 => 0.240_141,
            TechNode::N7 => 0.08,
        }
    }

    /// Delay factor relative to 45 nm.
    pub fn delay_factor(self) -> f64 {
        match self {
            TechNode::N180 => 3.53,
            TechNode::N130 => 2.62,
            TechNode::N90 => 1.96,
            TechNode::N65 => 1.60,
            TechNode::N45 => 1.0,
            TechNode::N32 => 0.78,
            TechNode::N22 => 0.62,
            TechNode::N15 => 0.517_647,
            TechNode::N7 => 0.36,
        }
    }

    /// Power factor (iso-design, at each node's native frequency) relative
    /// to 45 nm. Post-Dennard voltage stagnation makes this scale slowly.
    pub fn power_factor(self) -> f64 {
        match self {
            TechNode::N180 => 4.5,
            TechNode::N130 => 3.6,
            TechNode::N90 => 2.9,
            TechNode::N65 => 2.3,
            TechNode::N45 => 1.75,
            TechNode::N32 => 1.50,
            TechNode::N22 => 1.30,
            TechNode::N15 => 1.148_255,
            TechNode::N7 => 0.95,
        }
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.nanometres())
    }
}

/// Scales an area value from one node to another.
///
/// # Example
///
/// ```rust
/// use sns_vsynth::{scale_area, TechNode};
///
/// // DianNao's 0.8466 mm² at 65 nm becomes ≈ 0.0973 mm² at 15 nm.
/// let scaled = scale_area(0.846563, TechNode::N65, TechNode::N15);
/// assert!((scaled - 0.097302).abs() < 1e-4);
/// ```
pub fn scale_area(value: f64, from: TechNode, to: TechNode) -> f64 {
    value * to.area_factor() / from.area_factor()
}

/// Scales a delay value from one node to another.
pub fn scale_delay(value: f64, from: TechNode, to: TechNode) -> f64 {
    value * to.delay_factor() / from.delay_factor()
}

/// Scales a power value from one node to another.
pub fn scale_power(value: f64, from: TechNode, to: TechNode) -> f64 {
    value * to.power_factor() / from.power_factor()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_monotone_in_feature_size() {
        for pair in TechNode::ALL.windows(2) {
            let (big, small) = (pair[0], pair[1]);
            assert!(big.area_factor() > small.area_factor(), "{big} vs {small}");
            assert!(big.delay_factor() > small.delay_factor(), "{big} vs {small}");
            assert!(big.power_factor() > small.power_factor(), "{big} vs {small}");
        }
    }

    #[test]
    fn table_12_scaling_is_reproduced() {
        // Paper Table 12: 65 nm synthesis (132 mW, 0.846563 mm², 1.02 ns)
        // scales to 15 nm as (65.90 mW, 0.097302 mm², 0.33 ns).
        let area = scale_area(0.846563, TechNode::N65, TechNode::N15);
        let delay = scale_delay(1.02, TechNode::N65, TechNode::N15);
        let power = scale_power(132.0, TechNode::N65, TechNode::N15);
        assert!((area - 0.097302).abs() < 5e-4, "area {area}");
        assert!((delay - 0.33).abs() < 5e-3, "delay {delay}");
        assert!((power - 65.90).abs() < 0.5, "power {power}");
    }

    #[test]
    fn scaling_round_trips() {
        let v = 123.456;
        let there = scale_area(v, TechNode::N90, TechNode::N22);
        let back = scale_area(there, TechNode::N22, TechNode::N90);
        assert!((back - v).abs() < 1e-9);
        assert_eq!(scale_delay(v, TechNode::N45, TechNode::N45), v);
    }

    #[test]
    fn display_shows_nanometres() {
        assert_eq!(TechNode::N15.to_string(), "15nm");
        assert_eq!(TechNode::N180.nanometres(), 180);
    }
}
