//! The characterized cell library.
//!
//! Parameter values are representative of a 15 nm-class standard-cell
//! library (the paper uses FreePDK-15): gate areas of a few tenths of a
//! µm², intrinsic delays of a few picoseconds, switching energies of a
//! fraction of a femtojoule, and leakage of tens of nanowatts.
//! Absolute accuracy is not the goal (see DESIGN.md §1); internal
//! consistency and correct *relative* costs across gate types are.

use crate::gates::GateKind;

/// Physical parameters of one gate type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateParams {
    /// Cell area in µm² at drive 1.
    pub area_um2: f32,
    /// Intrinsic propagation delay in ps at drive 1.
    pub delay_ps: f32,
    /// Additional delay per fanout load, in ps.
    pub load_ps_per_fanout: f32,
    /// Energy per output toggle, in fJ.
    pub energy_fj: f32,
    /// Leakage power in nW.
    pub leakage_nw: f32,
    /// Transistor count (for the paper's gate/transistor statistics).
    pub transistors: u32,
}

const ZERO: GateParams = GateParams {
    area_um2: 0.0,
    delay_ps: 0.0,
    load_ps_per_fanout: 0.0,
    energy_fj: 0.0,
    leakage_nw: 0.0,
    transistors: 0,
};

/// A complete characterized library.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    params: [GateParams; 13],
    /// Flip-flop clock-to-Q delay in ps.
    pub clk_to_q_ps: f32,
    /// Flip-flop setup time in ps.
    pub setup_ps: f32,
}

impl CellLibrary {
    /// The default 15 nm-class library.
    pub fn freepdk15() -> Self {
        let mut params = [ZERO; 13];
        let set = |p: &mut [GateParams; 13], k: GateKind, v: GateParams| p[k as usize] = v;
        set(&mut params, GateKind::Inv, GateParams {
            area_um2: 0.098,
            delay_ps: 4.0,
            load_ps_per_fanout: 1.0,
            energy_fj: 0.08,
            leakage_nw: 15.0,
            transistors: 2,
        });
        set(&mut params, GateKind::Buf, GateParams {
            area_um2: 0.130,
            delay_ps: 6.0,
            load_ps_per_fanout: 0.8,
            energy_fj: 0.10,
            leakage_nw: 18.0,
            transistors: 4,
        });
        set(&mut params, GateKind::Nand2, GateParams {
            area_um2: 0.147,
            delay_ps: 5.5,
            load_ps_per_fanout: 1.1,
            energy_fj: 0.10,
            leakage_nw: 20.0,
            transistors: 4,
        });
        set(&mut params, GateKind::Nor2, GateParams {
            area_um2: 0.147,
            delay_ps: 6.5,
            load_ps_per_fanout: 1.2,
            energy_fj: 0.11,
            leakage_nw: 22.0,
            transistors: 4,
        });
        set(&mut params, GateKind::And2, GateParams {
            area_um2: 0.196,
            delay_ps: 7.5,
            load_ps_per_fanout: 1.1,
            energy_fj: 0.13,
            leakage_nw: 25.0,
            transistors: 6,
        });
        set(&mut params, GateKind::Or2, GateParams {
            area_um2: 0.196,
            delay_ps: 8.0,
            load_ps_per_fanout: 1.2,
            energy_fj: 0.14,
            leakage_nw: 26.0,
            transistors: 6,
        });
        set(&mut params, GateKind::Xor2, GateParams {
            area_um2: 0.294,
            delay_ps: 9.5,
            load_ps_per_fanout: 1.3,
            energy_fj: 0.20,
            leakage_nw: 30.0,
            transistors: 8,
        });
        set(&mut params, GateKind::Xnor2, GateParams {
            area_um2: 0.294,
            delay_ps: 9.5,
            load_ps_per_fanout: 1.3,
            energy_fj: 0.20,
            leakage_nw: 30.0,
            transistors: 10,
        });
        set(&mut params, GateKind::Mux2, GateParams {
            area_um2: 0.245,
            delay_ps: 8.5,
            load_ps_per_fanout: 1.2,
            energy_fj: 0.16,
            leakage_nw: 28.0,
            transistors: 12,
        });
        set(&mut params, GateKind::Maj3, GateParams {
            area_um2: 0.294,
            delay_ps: 9.0,
            load_ps_per_fanout: 1.3,
            energy_fj: 0.18,
            leakage_nw: 32.0,
            transistors: 10,
        });
        set(&mut params, GateKind::Dff, GateParams {
            area_um2: 0.882,
            delay_ps: 0.0, // sequenced by clk_to_q / setup below
            load_ps_per_fanout: 1.0,
            energy_fj: 0.90,
            leakage_nw: 60.0,
            transistors: 24,
        });
        CellLibrary { params, clk_to_q_ps: 22.0, setup_ps: 15.0 }
    }

    /// Parameters for a gate kind.
    pub fn params(&self, kind: GateKind) -> GateParams {
        self.params[kind as usize]
    }

    /// Effective propagation delay of a gate at a drive strength and fanout.
    ///
    /// Upsizing speeds the gate up (toward ~55 % of intrinsic delay) and
    /// drives load more easily, at an area/energy cost — the classic
    /// sizing trade the synthesizer's timing loop exploits.
    pub fn delay(&self, kind: GateKind, drive: f32, fanout: u32) -> f32 {
        let p = self.params(kind);
        if kind.is_source() {
            return 0.0;
        }
        p.delay_ps * (0.55 + 0.45 / drive) + p.load_ps_per_fanout * fanout as f32 / drive
    }

    /// Effective area at a drive strength.
    pub fn area(&self, kind: GateKind, drive: f32) -> f32 {
        self.params(kind).area_um2 * drive
    }

    /// Effective switching energy at a drive strength.
    pub fn energy(&self, kind: GateKind, drive: f32) -> f32 {
        self.params(kind).energy_fj * (0.7 + 0.3 * drive)
    }

    /// Effective leakage at a drive strength.
    pub fn leakage(&self, kind: GateKind, drive: f32) -> f32 {
        self.params(kind).leakage_nw * drive
    }

    /// The activity transmission factor of a gate: what fraction of input
    /// switching propagates to the output, on average. Used by the power
    /// pass.
    pub fn activity_factor(&self, kind: GateKind) -> f32 {
        match kind {
            GateKind::Inv | GateKind::Buf => 1.0,
            GateKind::Xor2 | GateKind::Xnor2 => 0.95,
            GateKind::Nand2 | GateKind::Nor2 | GateKind::And2 | GateKind::Or2 => 0.55,
            GateKind::Mux2 => 0.65,
            GateKind::Maj3 => 0.75,
            GateKind::Dff => 0.9,
            GateKind::Input | GateKind::Const => 0.0,
        }
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::freepdk15()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_logic_gates_are_characterized() {
        let lib = CellLibrary::freepdk15();
        for k in GateKind::ALL {
            let p = lib.params(k);
            if k.is_gate() {
                assert!(p.area_um2 > 0.0, "{k:?} has no area");
                assert!(p.transistors > 0, "{k:?} has no transistors");
            } else {
                assert_eq!(p.area_um2, 0.0);
            }
        }
    }

    #[test]
    fn sizing_speeds_up_but_costs_area() {
        let lib = CellLibrary::freepdk15();
        let d1 = lib.delay(GateKind::Nand2, 1.0, 4);
        let d2 = lib.delay(GateKind::Nand2, 2.0, 4);
        assert!(d2 < d1);
        assert!(lib.area(GateKind::Nand2, 2.0) > lib.area(GateKind::Nand2, 1.0));
        assert!(lib.energy(GateKind::Nand2, 2.0) > lib.energy(GateKind::Nand2, 1.0));
    }

    #[test]
    fn fanout_increases_delay() {
        let lib = CellLibrary::freepdk15();
        assert!(lib.delay(GateKind::Inv, 1.0, 8) > lib.delay(GateKind::Inv, 1.0, 1));
    }

    #[test]
    fn sources_have_zero_delay() {
        let lib = CellLibrary::freepdk15();
        assert_eq!(lib.delay(GateKind::Input, 1.0, 100), 0.0);
        assert_eq!(lib.delay(GateKind::Dff, 1.0, 100), 0.0); // clk→Q handled separately
    }

    #[test]
    fn relative_costs_are_sane() {
        let lib = CellLibrary::freepdk15();
        // XOR is costlier than NAND; DFF is the biggest cell.
        assert!(lib.params(GateKind::Xor2).area_um2 > lib.params(GateKind::Nand2).area_um2);
        assert!(lib.params(GateKind::Dff).area_um2 > lib.params(GateKind::Xor2).area_um2);
        assert!(lib.activity_factor(GateKind::Xor2) > lib.activity_factor(GateKind::And2));
    }
}
