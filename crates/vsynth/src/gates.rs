//! The bit-level gate graph.
//!
//! Stored struct-of-arrays for cache-friendly full-graph passes (STA,
//! sizing, power): a design of a few million gates fits comfortably and
//! traverses in milliseconds per pass.

/// Index of a node in a [`GateGraph`].
pub type NodeId = u32;

/// Sentinel for an absent fanin slot.
pub const NO_NODE: NodeId = u32::MAX;

/// The primitive gate/node kinds of the virtual cell library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum GateKind {
    /// A primary input bit (zero delay source).
    Input,
    /// A constant bit (zero delay source).
    Const,
    /// A D-flip-flop bit. Fanin 0 is the D input; the node itself is the Q
    /// output and an STA startpoint.
    Dff,
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 mux: fanins `[sel, a, b]`.
    Mux2,
    /// 3-input majority (carry) gate.
    Maj3,
}

impl GateKind {
    /// All kinds, for iteration in tests and reports.
    pub const ALL: [GateKind; 13] = [
        GateKind::Input,
        GateKind::Const,
        GateKind::Dff,
        GateKind::Inv,
        GateKind::Buf,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Xor2,
        GateKind::Xnor2,
        GateKind::Mux2,
        GateKind::Maj3,
    ];

    /// Whether the node is an STA source (no delay contribution from
    /// fanins).
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const | GateKind::Dff)
    }

    /// Whether the node counts as a logic gate in gate-count reports
    /// (sources do not; flip-flops do).
    pub fn is_gate(self) -> bool {
        !matches!(self, GateKind::Input | GateKind::Const)
    }
}

/// A flat gate-level graph.
///
/// Nodes are appended in (combinational) topological order by the expander,
/// except that flip-flop D fanins are patched in afterwards — which is fine
/// because STA never propagates *through* a flip-flop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateGraph {
    kinds: Vec<GateKind>,
    fanins: Vec<[NodeId; 3]>,
    /// Per-node drive strength multiplier (sizing), starts at 1.0.
    pub drive: Vec<f32>,
}

impl GateGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        GateGraph::default()
    }

    /// Creates an empty graph with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        let mut g = GateGraph::new();
        g.kinds.reserve(n);
        g.fanins.reserve(n);
        g.drive.reserve(n);
        g
    }

    /// Appends a node and returns its id.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any fanin id is ≥ the new node's id and
    /// not `NO_NODE` (nodes must arrive topologically, flip-flop D patches
    /// excepted — use [`GateGraph::set_fanin`] for those).
    pub fn push(&mut self, kind: GateKind, fanins: [NodeId; 3]) -> NodeId {
        let id = self.kinds.len() as NodeId;
        debug_assert!(
            fanins.iter().all(|&f| f == NO_NODE || f < id),
            "fanins must precede the node (kind {kind:?})"
        );
        self.kinds.push(kind);
        self.fanins.push(fanins);
        self.drive.push(1.0);
        id
    }

    /// Convenience: push a 1-input gate.
    pub fn push1(&mut self, kind: GateKind, a: NodeId) -> NodeId {
        self.push(kind, [a, NO_NODE, NO_NODE])
    }

    /// Convenience: push a 2-input gate.
    pub fn push2(&mut self, kind: GateKind, a: NodeId, b: NodeId) -> NodeId {
        self.push(kind, [a, b, NO_NODE])
    }

    /// Convenience: push a 3-input gate.
    pub fn push3(&mut self, kind: GateKind, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        self.push(kind, [a, b, c])
    }

    /// Patches a fanin slot after the fact (used for flip-flop D inputs,
    /// which may close cycles through the register).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `slot >= 3`.
    pub fn set_fanin(&mut self, node: NodeId, slot: usize, value: NodeId) {
        self.fanins[node as usize][slot] = value;
    }

    /// Number of nodes (including sources).
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind of a node.
    pub fn kind(&self, id: NodeId) -> GateKind {
        self.kinds[id as usize]
    }

    /// The fanins of a node (`NO_NODE` marks unused slots).
    pub fn fanins(&self, id: NodeId) -> [NodeId; 3] {
        self.fanins[id as usize]
    }

    /// Number of logic gates (excludes inputs/constants, includes DFFs).
    pub fn gate_count(&self) -> u64 {
        self.kinds.iter().filter(|k| k.is_gate()).count() as u64
    }

    /// Computes per-node fanout counts (one full pass).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.len()];
        for f in &self.fanins {
            for &x in f {
                if x != NO_NODE {
                    fo[x as usize] += 1;
                }
            }
        }
        fo
    }

    /// Histogram of node kinds.
    pub fn kind_histogram(&self) -> [u64; 13] {
        let mut h = [0u64; 13];
        for &k in &self.kinds {
            h[k as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut g = GateGraph::new();
        let a = g.push(GateKind::Input, [NO_NODE; 3]);
        let b = g.push(GateKind::Input, [NO_NODE; 3]);
        let n = g.push2(GateKind::Nand2, a, b);
        assert_eq!(g.len(), 3);
        assert_eq!(g.kind(n), GateKind::Nand2);
        assert_eq!(g.fanins(n), [a, b, NO_NODE]);
        assert_eq!(g.gate_count(), 1);
    }

    #[test]
    fn fanout_counts() {
        let mut g = GateGraph::new();
        let a = g.push(GateKind::Input, [NO_NODE; 3]);
        let x = g.push1(GateKind::Inv, a);
        let _y = g.push2(GateKind::And2, a, x);
        let fo = g.fanout_counts();
        assert_eq!(fo[a as usize], 2);
        assert_eq!(fo[x as usize], 1);
    }

    #[test]
    fn dff_fanin_patching() {
        let mut g = GateGraph::new();
        let q = g.push(GateKind::Dff, [NO_NODE; 3]);
        let inc = g.push1(GateKind::Inv, q);
        g.set_fanin(q, 0, inc);
        assert_eq!(g.fanins(q)[0], inc);
        assert!(GateKind::Dff.is_source());
        assert!(GateKind::Dff.is_gate());
    }

    #[test]
    fn kind_histogram_counts() {
        let mut g = GateGraph::new();
        let a = g.push(GateKind::Input, [NO_NODE; 3]);
        g.push1(GateKind::Inv, a);
        g.push1(GateKind::Inv, a);
        let h = g.kind_histogram();
        assert_eq!(h[GateKind::Inv as usize], 2);
        assert_eq!(h[GateKind::Input as usize], 1);
    }
}
