//! Bit-level expansion of coarse functional cells into gates.
//!
//! Implementations follow what a timing-driven synthesizer would pick:
//! Kogge–Stone parallel-prefix adders and comparators, AND-array +
//! Wallace-tree multipliers, barrel shifters, restoring array dividers and
//! balanced reduction trees. Widths are bit-exact: callers pass LSB-first
//! bit vectors and get LSB-first bit vectors back.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use sns_netlist::CellKind;

use crate::gates::{GateGraph, GateKind, NodeId, NO_NODE};

/// Builder for gate subgraphs, caching the constant-0/1 nodes.
#[derive(Debug)]
pub struct Expander<'g> {
    /// The graph being extended.
    pub g: &'g mut GateGraph,
    c0: NodeId,
    c1: NodeId,
}

impl<'g> Expander<'g> {
    /// Wraps a graph, allocating the shared constant nodes.
    pub fn new(g: &'g mut GateGraph) -> Self {
        let c0 = g.push(GateKind::Const, [NO_NODE; 3]);
        let c1 = g.push(GateKind::Const, [NO_NODE; 3]);
        Expander { g, c0, c1 }
    }

    /// Re-wraps a graph whose constant nodes already exist (nodes 0 and 1,
    /// as allocated by a previous [`Expander::new`] on the same graph).
    pub fn attach(g: &'g mut GateGraph) -> Self {
        debug_assert!(g.len() >= 2, "attach requires the constant nodes");
        Expander { g, c0: 0, c1: 1 }
    }

    /// The constant-0 bit.
    pub fn const0(&self) -> NodeId {
        self.c0
    }

    /// The constant-1 bit.
    pub fn const1(&self) -> NodeId {
        self.c1
    }

    /// A fresh primary-input bit.
    pub fn input(&mut self) -> NodeId {
        self.g.push(GateKind::Input, [NO_NODE; 3])
    }

    /// A vector of fresh primary-input bits.
    pub fn inputs(&mut self, w: u32) -> Vec<NodeId> {
        (0..w).map(|_| self.input()).collect()
    }

    /// Bits of a constant value (LSB first). Widths beyond 64 zero-extend:
    /// constants are adapted to their context width, which can exceed the
    /// 64-bit attribute payload (e.g. comparisons against wide concats).
    pub fn const_bits(&self, value: u64, w: u32) -> Vec<NodeId> {
        (0..w)
            .map(|i| if i < 64 && (value >> i) & 1 == 1 { self.c1 } else { self.c0 })
            .collect()
    }

    /// Zero-extends or truncates a bit vector to `w` bits (free — wiring).
    pub fn resize(&self, bits: &[NodeId], w: u32) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = bits.iter().copied().take(w as usize).collect();
        while v.len() < w as usize {
            v.push(self.c0);
        }
        v
    }

    // ---- bitwise ----

    /// Per-bit unary gate.
    pub fn map1(&mut self, kind: GateKind, a: &[NodeId]) -> Vec<NodeId> {
        a.iter().map(|&x| self.g.push1(kind, x)).collect()
    }

    /// Per-bit binary gate (operands must be equal width).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn map2(&mut self, kind: GateKind, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        assert_eq!(a.len(), b.len(), "map2 operands must match");
        a.iter().zip(b).map(|(&x, &y)| self.g.push2(kind, x, y)).collect()
    }

    /// Per-bit 2:1 mux selecting `b` when `sel` is high.
    pub fn mux(&mut self, sel: NodeId, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        assert_eq!(a.len(), b.len(), "mux operands must match");
        a.iter().zip(b).map(|(&x, &y)| self.g.push3(GateKind::Mux2, sel, x, y)).collect()
    }

    /// Balanced reduction tree.
    pub fn reduce(&mut self, kind: GateKind, bits: &[NodeId]) -> NodeId {
        assert!(!bits.is_empty(), "cannot reduce zero bits");
        let mut level: Vec<NodeId> = bits.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.g.push2(kind, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        level[0]
    }

    // ---- arithmetic ----

    /// Kogge–Stone prefix carries: returns `(p, carries)` where
    /// `carries[i]` is the carry *into* bit `i` and `p[i] = a_i ⊕ b_i`.
    fn prefix_carries(
        &mut self,
        a: &[NodeId],
        b: &[NodeId],
        cin: NodeId,
    ) -> (Vec<NodeId>, Vec<NodeId>, NodeId) {
        let w = a.len();
        let p: Vec<NodeId> = (0..w).map(|i| self.g.push2(GateKind::Xor2, a[i], b[i])).collect();
        let mut gg: Vec<NodeId> = (0..w).map(|i| self.g.push2(GateKind::And2, a[i], b[i])).collect();
        let mut pp = p.clone();
        // Fold the carry-in into bit 0's generate.
        if cin != self.c0 {
            let t = self.g.push2(GateKind::And2, pp[0], cin);
            gg[0] = self.g.push2(GateKind::Or2, gg[0], t);
        }
        let mut s = 1usize;
        while s < w {
            let mut g2 = gg.clone();
            let mut p2 = pp.clone();
            for i in s..w {
                let t = self.g.push2(GateKind::And2, pp[i], gg[i - s]);
                g2[i] = self.g.push2(GateKind::Or2, gg[i], t);
                p2[i] = self.g.push2(GateKind::And2, pp[i], pp[i - s]);
            }
            gg = g2;
            pp = p2;
            s <<= 1;
        }
        // carry into bit i is the prefix generate of [0..i).
        let mut carries = Vec::with_capacity(w);
        carries.push(cin);
        carries.extend_from_slice(&gg[..w - 1]);
        let cout = gg[w - 1];
        (p, carries, cout)
    }

    /// Prefix adder: returns `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if operand widths differ or are zero.
    pub fn add(&mut self, a: &[NodeId], b: &[NodeId]) -> (Vec<NodeId>, NodeId) {
        self.add_cin(a, b, self.c0)
    }

    /// Prefix adder with explicit carry-in.
    pub fn add_cin(&mut self, a: &[NodeId], b: &[NodeId], cin: NodeId) -> (Vec<NodeId>, NodeId) {
        assert!(!a.is_empty() && a.len() == b.len(), "add operands must match");
        let (p, carries, cout) = self.prefix_carries(a, b, cin);
        let sum = (0..a.len()).map(|i| self.g.push2(GateKind::Xor2, p[i], carries[i])).collect();
        (sum, cout)
    }

    /// Subtractor `a - b`: returns `(difference, borrow_free)` where the
    /// second element is the adder's carry-out (1 when `a >= b`).
    pub fn sub(&mut self, a: &[NodeId], b: &[NodeId]) -> (Vec<NodeId>, NodeId) {
        let nb = self.map1(GateKind::Inv, b);
        self.add_cin(a, &nb, self.c1)
    }

    /// Magnitude comparator (`a < b` as a single bit — the Lgt cell; the
    /// gate cost is direction-independent).
    pub fn less_than(&mut self, a: &[NodeId], b: &[NodeId]) -> NodeId {
        let (_, cout) = self.sub(a, b);
        self.g.push1(GateKind::Inv, cout)
    }

    /// Equality comparator as a single bit.
    pub fn equal(&mut self, a: &[NodeId], b: &[NodeId]) -> NodeId {
        let x = self.map2(GateKind::Xnor2, a, b);
        self.reduce(GateKind::And2, &x)
    }

    /// Wallace-tree multiplier, truncated to `out_w` result bits.
    pub fn mul(&mut self, a: &[NodeId], b: &[NodeId], out_w: u32) -> Vec<NodeId> {
        let out_w = out_w as usize;
        let mut cols: Vec<Vec<NodeId>> = vec![Vec::new(); out_w];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                if i + j < out_w {
                    let pp = self.g.push2(GateKind::And2, ai, bj);
                    cols[i + j].push(pp);
                }
            }
        }
        // Wallace-style column compression: reduce in waves so the tree
        // stays logarithmic in depth (never feed a freshly produced sum
        // back into the same wave).
        while cols.iter().any(|c| c.len() > 2) {
            let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); out_w];
            for c in 0..out_w {
                let col = std::mem::take(&mut cols[c]);
                for chunk in col.chunks(3) {
                    match *chunk {
                        [x, y, z] => {
                            let t = self.g.push2(GateKind::Xor2, x, y);
                            let sum = self.g.push2(GateKind::Xor2, t, z);
                            let carry = self.g.push3(GateKind::Maj3, x, y, z);
                            next[c].push(sum);
                            if c + 1 < out_w {
                                next[c + 1].push(carry);
                            }
                        }
                        ref rest => next[c].extend_from_slice(rest),
                    }
                }
            }
            cols = next;
        }
        // Final carry-propagate add over the remaining two rows.
        let mut x = Vec::with_capacity(out_w);
        let mut y = Vec::with_capacity(out_w);
        for col in &cols {
            x.push(col.first().copied().unwrap_or(self.c0));
            y.push(col.get(1).copied().unwrap_or(self.c0));
        }
        let (sum, _) = self.add(&x, &y);
        sum
    }

    /// Restoring array divider: returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if operand widths differ or are zero.
    pub fn divmod(&mut self, a: &[NodeId], b: &[NodeId]) -> (Vec<NodeId>, Vec<NodeId>) {
        assert!(!a.is_empty() && a.len() == b.len(), "divmod operands must match");
        let w = a.len();
        let bw = self.resize(b, w as u32 + 1);
        let mut r: Vec<NodeId> = vec![self.c0; w + 1];
        let mut q: Vec<NodeId> = vec![self.c0; w];
        for i in (0..w).rev() {
            // r = (r << 1) | a[i]
            let mut shifted = Vec::with_capacity(w + 1);
            shifted.push(a[i]);
            shifted.extend_from_slice(&r[..w]);
            // trial subtract
            let (diff, no_borrow) = self.sub(&shifted, &bw);
            q[i] = no_borrow;
            r = self.mux(no_borrow, &shifted, &diff);
        }
        r.truncate(w);
        (q, r)
    }

    /// Barrel shifter. `left` selects the direction; vacated bits fill with
    /// zero.
    pub fn shift(&mut self, a: &[NodeId], amount: &[NodeId], left: bool) -> Vec<NodeId> {
        let w = a.len();
        let stages = (usize::BITS - (w.max(2) - 1).leading_zeros()) as usize;
        let mut cur: Vec<NodeId> = a.to_vec();
        for (s, &sel) in amount.iter().enumerate().take(stages) {
            let dist = 1usize << s;
            let shifted: Vec<NodeId> = (0..w)
                .map(|i| {
                    if left {
                        if i >= dist { cur[i - dist] } else { self.c0 }
                    } else if i + dist < w {
                        cur[i + dist]
                    } else {
                        self.c0
                    }
                })
                .collect();
            cur = self.mux(sel, &cur, &shifted);
        }
        // Any higher shift-amount bit zeroes the result.
        if amount.len() > stages {
            let high = &amount[stages..];
            let any = self.reduce(GateKind::Or2, high);
            let zeros = vec![self.c0; w];
            cur = self.mux(any, &cur, &zeros);
        }
        cur
    }

    /// A register bank: returns Q bits whose D fanins must be patched with
    /// [`GateGraph::set_fanin`] once the input cone exists.
    pub fn dff_bank(&mut self, w: u32) -> Vec<NodeId> {
        (0..w).map(|_| self.g.push(GateKind::Dff, [NO_NODE; 3])).collect()
    }
}

// ------------------------------------------------ expansion memoization --

/// Key of a memoized expansion: everything the gate subgraph's *shape*
/// depends on. Every expander above is width-driven — it never inspects
/// which nodes its operand bits actually are (the one id comparison,
/// `cin != c0` in `prefix_carries`, only ever sees internal constants) —
/// so two cells with equal `(kind, attr, out_w, input widths)` expand to
/// structurally identical subgraphs and can share one [`Template`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// The coarse cell kind.
    pub kind: CellKind,
    /// The cell attribute (constant payload, slice LSB, replicate count).
    pub attr: u64,
    /// Output net width.
    pub out_w: u32,
    /// Width of each input operand's bit vector, in input order.
    pub in_widths: Vec<u32>,
}

/// A characterized gate subgraph, captured once from a canonical scratch
/// expansion and splatted into live graphs with an offset remap.
///
/// Node ids below `n_ctx` are *context references*: slot 0 is constant-0,
/// slot 1 is constant-1, and slots 2.. are the flattened input bits in
/// operand order. Ids at or above `n_ctx` are internal nodes, stored in
/// push order so a splat reproduces the exact node sequence a direct
/// expansion would have pushed.
#[derive(Debug, Clone)]
pub struct Template {
    n_ctx: u32,
    nodes: Vec<(GateKind, [NodeId; 3])>,
    outputs: Vec<NodeId>,
}

impl Template {
    /// Captures the tail of `g` (everything from node `n_ctx` on) as a
    /// template with the given output bits.
    pub fn capture(g: &GateGraph, n_ctx: u32, outputs: &[NodeId]) -> Template {
        let nodes = (n_ctx..g.len() as NodeId).map(|id| (g.kind(id), g.fanins(id))).collect();
        Template { n_ctx, nodes, outputs: outputs.to_vec() }
    }

    /// Number of context slots the splat context must provide.
    pub fn n_ctx(&self) -> usize {
        self.n_ctx as usize
    }

    /// Number of internal nodes a splat appends.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Appends this template to `g`, mapping context references through
    /// `ctx` (`[const0, const1, input bits...]`) and internal references
    /// by offset. Returns the mapped output bits.
    pub fn splat(&self, g: &mut GateGraph, ctx: &[NodeId]) -> Vec<NodeId> {
        let base = g.len() as NodeId;
        let n_ctx = self.n_ctx;
        let map = |x: NodeId| {
            if x == NO_NODE {
                NO_NODE
            } else if x < n_ctx {
                ctx[x as usize]
            } else {
                base + (x - n_ctx)
            }
        };
        for &(kind, fanins) in &self.nodes {
            g.push(kind, [map(fanins[0]), map(fanins[1]), map(fanins[2])]);
        }
        self.outputs.iter().map(|&o| map(o)).collect()
    }
}

/// Counters describing a memo's effectiveness (read by benchmarks).
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoStats {
    /// Splats served from a cached template.
    pub hits: u64,
    /// Canonical expansions that had to be characterized.
    pub misses: u64,
    /// Clear-on-full evictions.
    pub evictions: u64,
    /// Cached templates right now.
    pub templates: u64,
    /// Total internal nodes across cached templates right now.
    pub nodes: u64,
}

#[derive(Default)]
struct MemoInner {
    map: HashMap<MemoKey, Arc<Template>>,
    total_nodes: usize,
}

/// A concurrent cache of characterized expansion templates, bounded by
/// total template nodes with clear-on-full eviction (repeated shapes are
/// heavily clustered, so a full clear refills with the working set almost
/// immediately and needs no recency bookkeeping).
pub struct ExpansionMemo {
    inner: RwLock<MemoInner>,
    cap_nodes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ExpansionMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ExpansionMemo").field("cap_nodes", &self.cap_nodes).field("stats", &s).finish()
    }
}

/// Default template-node budget when `SNS_SYNTH_MEMO_CAP` is unset:
/// roughly a few hundred MB worst case, far beyond any realistic working
/// set of distinct `(kind, widths)` shapes.
pub const DEFAULT_MEMO_CAP_NODES: usize = 4_000_000;

impl ExpansionMemo {
    /// A memo bounded at `cap_nodes` total template nodes (0 disables
    /// caching entirely: lookups miss and inserts are dropped).
    pub fn with_cap(cap_nodes: usize) -> Self {
        ExpansionMemo {
            inner: RwLock::new(MemoInner::default()),
            cap_nodes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide memo, shared across synthesis runs (the soak and
    /// the label factory synthesize thousands of designs that repeat the
    /// same adder/multiplier/divider shapes endlessly). Capacity comes
    /// from `SNS_SYNTH_MEMO_CAP` (total template nodes, read once);
    /// returns `None` when the cap is 0, which disables memoization.
    pub fn global() -> Option<&'static ExpansionMemo> {
        static MEMO: OnceLock<ExpansionMemo> = OnceLock::new();
        let memo = MEMO.get_or_init(|| {
            let cap = std::env::var("SNS_SYNTH_MEMO_CAP")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(DEFAULT_MEMO_CAP_NODES);
            ExpansionMemo::with_cap(cap)
        });
        if memo.cap_nodes == 0 {
            None
        } else {
            Some(memo)
        }
    }

    /// Fetches a cached template, counting a hit or miss.
    pub fn lookup(&self, key: &MemoKey) -> Option<Arc<Template>> {
        let hit = match self.inner.read() {
            Ok(inner) => inner.map.get(key).cloned(),
            Err(poisoned) => poisoned.into_inner().map.get(key).cloned(),
        };
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Caches a freshly characterized template (no-op at cap 0; clears
    /// the whole cache first when the node budget would overflow).
    pub fn insert(&self, key: MemoKey, template: Arc<Template>) {
        if self.cap_nodes == 0 {
            return;
        }
        let mut inner = match self.inner.write() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        let add = template.node_count();
        if inner.total_nodes + add > self.cap_nodes && !inner.map.is_empty() {
            inner.map.clear();
            inner.total_nodes = 0;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        if inner.map.insert(key, template).is_none() {
            inner.total_nodes += add;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> MemoStats {
        let (templates, nodes) = match self.inner.read() {
            Ok(inner) => (inner.map.len() as u64, inner.total_nodes as u64),
            Err(poisoned) => {
                let inner = poisoned.into_inner();
                (inner.map.len() as u64, inner.total_nodes as u64)
            }
        };
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            templates,
            nodes,
        }
    }

    /// Drops every cached template (counters are kept).
    pub fn clear(&self) {
        let mut inner = match self.inner.write() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.map.clear();
        inner.total_nodes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::GateGraph;

    /// Evaluates the graph on concrete input values (two-level sim) for
    /// functional verification of the expanders.
    fn eval(g: &GateGraph, values: &mut Vec<Option<bool>>) {
        values.resize(g.len(), None);
        for id in 0..g.len() as NodeId {
            let f = g.fanins(id);
            let v = |slot: usize| values[f[slot] as usize].expect("fanin evaluated");
            let out = match g.kind(id) {
                GateKind::Input | GateKind::Dff => values[id as usize].unwrap_or(false),
                GateKind::Const => values[id as usize].unwrap_or(false),
                GateKind::Inv => !v(0),
                GateKind::Buf => v(0),
                GateKind::Nand2 => !(v(0) && v(1)),
                GateKind::Nor2 => !(v(0) || v(1)),
                GateKind::And2 => v(0) && v(1),
                GateKind::Or2 => v(0) || v(1),
                GateKind::Xor2 => v(0) ^ v(1),
                GateKind::Xnor2 => !(v(0) ^ v(1)),
                GateKind::Mux2 => {
                    if v(0) {
                        v(2)
                    } else {
                        v(1)
                    }
                }
                GateKind::Maj3 => (v(0) && v(1)) || (v(0) && v(2)) || (v(1) && v(2)),
            };
            values[id as usize] = Some(out);
        }
    }

    fn set_bits(values: &mut Vec<Option<bool>>, bits: &[NodeId], x: u64) {
        for (i, &b) in bits.iter().enumerate() {
            if values.len() <= b as usize {
                values.resize(b as usize + 1, None);
            }
            values[b as usize] = Some((x >> i) & 1 == 1);
        }
    }

    fn read_bits(values: &[Option<bool>], bits: &[NodeId]) -> u64 {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| (values[b as usize].unwrap() as u64) << i)
            .sum()
    }

    fn fresh(w: u32) -> (GateGraph, Vec<NodeId>, Vec<NodeId>) {
        let mut g = GateGraph::new();
        let mut e = Expander::new(&mut g);
        let a = e.inputs(w);
        let b = e.inputs(w);
        (g, a, b)
    }

    #[test]
    fn adder_is_functionally_correct() {
        for (x, y) in [(0u64, 0u64), (1, 1), (200, 55), (255, 255), (170, 85)] {
            let (mut g, a, b) = fresh(8);
            let (sum, cout) = {
                let mut e = Expander { g: &mut g, c0: 0, c1: 1 };
                e.add(&a, &b)
            };
            let mut vals = vec![Some(false), Some(true)];
            set_bits(&mut vals, &a, x);
            set_bits(&mut vals, &b, y);
            eval(&g, &mut vals);
            let got = read_bits(&vals, &sum) | ((vals[cout as usize].unwrap() as u64) << 8);
            assert_eq!(got, x + y, "{x}+{y}");
        }
    }

    #[test]
    fn subtractor_is_functionally_correct() {
        for (x, y) in [(9u64, 3u64), (3, 9), (255, 0), (0, 255), (128, 128)] {
            let (mut g, a, b) = fresh(8);
            let (diff, no_borrow) = {
                let mut e = Expander { g: &mut g, c0: 0, c1: 1 };
                e.sub(&a, &b)
            };
            let mut vals = vec![Some(false), Some(true)];
            set_bits(&mut vals, &a, x);
            set_bits(&mut vals, &b, y);
            eval(&g, &mut vals);
            assert_eq!(read_bits(&vals, &diff), x.wrapping_sub(y) & 0xFF, "{x}-{y}");
            assert_eq!(vals[no_borrow as usize].unwrap(), x >= y, "{x}>={y}");
        }
    }

    #[test]
    fn multiplier_is_functionally_correct() {
        for (x, y) in [(0u64, 7u64), (3, 5), (15, 15), (12, 11), (9, 14)] {
            let (mut g, a, b) = fresh(4);
            let prod = {
                let mut e = Expander { g: &mut g, c0: 0, c1: 1 };
                e.mul(&a, &b, 8)
            };
            let mut vals = vec![Some(false), Some(true)];
            set_bits(&mut vals, &a, x);
            set_bits(&mut vals, &b, y);
            eval(&g, &mut vals);
            assert_eq!(read_bits(&vals, &prod), x * y, "{x}*{y}");
        }
    }

    #[test]
    fn divider_is_functionally_correct() {
        for (x, y) in [(13u64, 3u64), (255, 16), (7, 9), (100, 10), (42, 1)] {
            let (mut g, a, b) = fresh(8);
            let (q, r) = {
                let mut e = Expander { g: &mut g, c0: 0, c1: 1 };
                e.divmod(&a, &b)
            };
            let mut vals = vec![Some(false), Some(true)];
            set_bits(&mut vals, &a, x);
            set_bits(&mut vals, &b, y);
            eval(&g, &mut vals);
            assert_eq!(read_bits(&vals, &q), x / y, "{x}/{y}");
            assert_eq!(read_bits(&vals, &r), x % y, "{x}%{y}");
        }
    }

    #[test]
    fn shifter_is_functionally_correct() {
        for (x, s) in [(0b1011u64, 1u64), (0xF0, 4), (1, 7), (0xFF, 0), (0xFF, 9)] {
            let (mut g, a, _) = fresh(8);
            let sh = {
                let mut e = Expander { g: &mut g, c0: 0, c1: 1 };
                e.inputs(4)
            };
            let left = {
                let mut e = Expander { g: &mut g, c0: 0, c1: 1 };
                e.shift(&a, &sh, true)
            };
            let mut vals = vec![Some(false), Some(true)];
            set_bits(&mut vals, &a, x);
            set_bits(&mut vals, &sh, s);
            eval(&g, &mut vals);
            assert_eq!(read_bits(&vals, &left), (x << s) & 0xFF, "{x}<<{s}");
        }
    }

    #[test]
    fn comparators_are_functionally_correct() {
        for (x, y) in [(3u64, 5u64), (5, 3), (7, 7), (0, 255)] {
            let (mut g, a, b) = fresh(8);
            let (lt, eq) = {
                let mut e = Expander { g: &mut g, c0: 0, c1: 1 };
                let lt = e.less_than(&a, &b);
                let eq = e.equal(&a, &b);
                (lt, eq)
            };
            let mut vals = vec![Some(false), Some(true)];
            set_bits(&mut vals, &a, x);
            set_bits(&mut vals, &b, y);
            eval(&g, &mut vals);
            assert_eq!(vals[lt as usize].unwrap(), x < y, "{x}<{y}");
            assert_eq!(vals[eq as usize].unwrap(), x == y, "{x}=={y}");
        }
    }

    #[test]
    fn multiplier_gate_count_grows_quadratically() {
        let count = |w: u32| {
            let mut g = GateGraph::new();
            let mut e = Expander::new(&mut g);
            let a = e.inputs(w);
            let b = e.inputs(w);
            e.mul(&a, &b, 2 * w);
            g.gate_count()
        };
        let g8 = count(8);
        let g16 = count(16);
        let g32 = count(32);
        assert!(g16 > 3 * g8, "mul16 {g16} vs mul8 {g8}");
        assert!(g32 > 3 * g16, "mul32 {g32} vs mul16 {g16}");
    }

    #[test]
    fn reduction_tree_is_balanced() {
        let mut g = GateGraph::new();
        let mut e = Expander::new(&mut g);
        let a = e.inputs(64);
        e.reduce(GateKind::And2, &a);
        // 63 AND gates for 64 bits.
        assert_eq!(g.kind_histogram()[GateKind::And2 as usize], 63);
    }

    /// Builds `(graph, template, outputs)` for an 8-bit adder two ways:
    /// directly, and via capture + splat of a canonical scratch expansion.
    #[test]
    fn template_splat_reproduces_direct_expansion() {
        let mut direct = GateGraph::new();
        let direct_sum = {
            let mut e = Expander::new(&mut direct);
            let a = e.inputs(8);
            let b = e.inputs(8);
            let (s, _) = e.add(&a, &b);
            s
        };

        // Canonical scratch expansion with fresh distinct inputs.
        let mut scratch = GateGraph::new();
        let (tpl_outputs, n_ctx) = {
            let mut e = Expander::new(&mut scratch);
            let a = e.inputs(8);
            let b = e.inputs(8);
            let n_ctx = e.g.len() as NodeId;
            let (s, _) = e.add(&a, &b);
            (s, n_ctx)
        };
        let tpl = Template::capture(&scratch, n_ctx, &tpl_outputs);
        assert_eq!(tpl.n_ctx(), 18); // c0, c1, 16 input bits

        // Splat into a graph with the same preamble as `direct`.
        let mut via_tpl = GateGraph::new();
        let ctx: Vec<NodeId> = {
            let mut e = Expander::new(&mut via_tpl);
            let a = e.inputs(8);
            let b = e.inputs(8);
            let mut ctx = vec![e.const0(), e.const1()];
            ctx.extend(a);
            ctx.extend(b);
            ctx
        };
        let splat_sum = tpl.splat(&mut via_tpl, &ctx);

        assert_eq!(splat_sum, direct_sum);
        assert_eq!(via_tpl.len(), direct.len());
        for id in 0..direct.len() as NodeId {
            assert_eq!(via_tpl.kind(id), direct.kind(id), "node {id}");
            assert_eq!(via_tpl.fanins(id), direct.fanins(id), "node {id}");
        }
    }

    fn tiny_template(w: u32) -> (MemoKey, Arc<Template>) {
        let mut g = GateGraph::new();
        let (outs, n_ctx) = {
            let mut e = Expander::new(&mut g);
            let a = e.inputs(w);
            let n_ctx = e.g.len() as NodeId;
            let outs = e.map1(GateKind::Inv, &a);
            (outs, n_ctx)
        };
        let key = MemoKey { kind: CellKind::Not, attr: 0, out_w: w, in_widths: vec![w] };
        (key, Arc::new(Template::capture(&g, n_ctx, &outs)))
    }

    #[test]
    fn memo_hits_after_insert_and_clears_when_full() {
        let memo = ExpansionMemo::with_cap(12);
        let (k4, t4) = tiny_template(4);
        assert!(memo.lookup(&k4).is_none());
        memo.insert(k4.clone(), t4);
        assert!(memo.lookup(&k4).is_some());
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.templates, s.nodes), (1, 1, 1, 4));

        // 4 + 10 nodes exceeds the 12-node cap: clear-on-full.
        let (k10, t10) = tiny_template(10);
        memo.insert(k10.clone(), t10);
        let s = memo.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!((s.templates, s.nodes), (1, 10));
        assert!(memo.lookup(&k4).is_none());
        assert!(memo.lookup(&k10).is_some());
    }

    #[test]
    fn memo_cap_zero_disables_caching() {
        let memo = ExpansionMemo::with_cap(0);
        let (k, t) = tiny_template(4);
        memo.insert(k.clone(), t);
        assert!(memo.lookup(&k).is_none());
        assert_eq!(memo.stats().templates, 0);
    }
}
