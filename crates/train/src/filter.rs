//! The active-learning batch filter.
//!
//! The label factory can synthesize labels for every design it mints,
//! but fine-tune capacity is the scarce resource: each step should spend
//! its gradient budget where the model is *wrong*. The filter takes the
//! per-design disagreement scores (relative error between the model's
//! prediction and vsynth's label) and keeps the top-q fraction — the
//! classic uncertainty-sampling heuristic, with the oracle's labels
//! standing in for uncertainty.

/// Selects the indices of the top `q` fraction of `scores` (highest
/// first), returning them in **ascending index order** so downstream
/// iteration is deterministic.
///
/// * `k = ceil(q * n)`, clamped to `[0, n]` — so any `q > 0` with a
///   non-empty batch selects at least one design, and `q >= 1` selects
///   all of them.
/// * Ties are broken toward the **lower index** (first minted wins), so
///   selection is stable: permuting equal scores never changes which
///   positions survive relative to distinct scores, and equal runs are
///   taken prefix-first.
/// * Non-finite scores sort via `f64::total_cmp` (NaN above +∞), so a
///   pathological score cannot panic the loop — it just gets prioritized
///   like the maximal disagreement it is.
/// * An empty batch or `q <= 0` yields an empty selection; callers treat
///   that as "skip the fine-tune step", never as a stall.
pub fn select_top_q(scores: &[f64], q: f64) -> Vec<usize> {
    let n = scores.len();
    if n == 0 || q <= 0.0 {
        return Vec::new();
    }
    let k = if q >= 1.0 { n } else { ((q * n as f64).ceil() as usize).clamp(1, n) };
    let mut order: Vec<usize> = (0..n).collect();
    // Descending by score, ascending by index on ties.
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    let mut selected = order[..k].to_vec();
    selected.sort_unstable();
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_exact_top_q() {
        let scores = [0.1, 0.9, 0.5, 0.7, 0.2, 0.8, 0.3, 0.4];
        // q = 0.25 of 8 → exactly 2: indices of 0.9 and 0.8.
        assert_eq!(select_top_q(&scores, 0.25), vec![1, 5]);
        // q = 0.5 → 4 highest.
        assert_eq!(select_top_q(&scores, 0.5), vec![1, 2, 3, 5]);
    }

    #[test]
    fn k_is_ceil_and_at_least_one() {
        // ceil(0.3 * 7) = 3.
        let scores = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert_eq!(select_top_q(&scores, 0.3).len(), 3);
        // Tiny q on a non-empty batch still picks one.
        assert_eq!(select_top_q(&scores, 0.001), vec![6]);
        // q >= 1 selects everything, in index order.
        assert_eq!(select_top_q(&scores, 1.0), vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(select_top_q(&scores, 3.5), vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn ties_break_toward_lower_index() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(select_top_q(&scores, 0.5), vec![0, 1]);
        // A distinct maximum plus a tied run: max survives, then the
        // earliest of the tie.
        let scores = [0.5, 0.9, 0.5, 0.5];
        assert_eq!(select_top_q(&scores, 0.5), vec![0, 1]);
    }

    #[test]
    fn tie_selection_is_stable_under_unrelated_permutation() {
        // Moving the distinct scores around must not change which of the
        // tied positions is chosen relative to them.
        let a = [0.9, 0.5, 0.5, 0.1];
        let b = [0.1, 0.5, 0.5, 0.9];
        assert_eq!(select_top_q(&a, 0.5), vec![0, 1]);
        assert_eq!(select_top_q(&b, 0.5), vec![1, 3]);
    }

    #[test]
    fn empty_and_degenerate_batches_do_not_stall() {
        assert!(select_top_q(&[], 0.5).is_empty());
        assert!(select_top_q(&[1.0, 2.0], 0.0).is_empty());
        assert!(select_top_q(&[1.0, 2.0], -1.0).is_empty());
        // Single element.
        assert_eq!(select_top_q(&[0.7], 0.5), vec![0]);
    }

    #[test]
    fn non_finite_scores_are_prioritized_not_fatal() {
        let scores = [0.5, f64::NAN, 0.9, f64::INFINITY];
        let sel = select_top_q(&scores, 0.5);
        assert_eq!(sel, vec![1, 3], "NaN and +inf outrank finite scores");
    }
}
