//! The label-factory daemon: generate → vsynth-label → fine-tune, with a
//! versioned model zoo as the output artifact.
//!
//! ## Determinism contract
//!
//! Same [`DaemonConfig`] + same step count ⇒ **bit-identical model**, at
//! any `SNS_THREADS` / `SNS_BATCH` / `SNS_SYNTH_THREADS`. Every stage
//! holds the invariant independently: the conformance generator is a
//! pure function of its seed, vsynth is bit-identical at any thread
//! count, model predictions are bit-identical at any thread/batch
//! setting, [`FineTuner`] accumulates gradients in fixed-size chunks,
//! the Markov arm consumes its own seeded RNG, and the bootstrap
//! trainer's thread knob is pinned to 1 in the config (the batch
//! trainer's chunking is the one thread-dependent site in the
//! workspace). `tests/train_determinism.rs` sweeps the env knobs and
//! compares zoo weight hashes.
//!
//! ## Technology corners
//!
//! Path-level physics (Circuitformer labels) stay at the cell library's
//! native 15 nm node; the Stillmaker–Baas scaling hooks are applied to
//! the *design-level* labels the aggregation-correction layer is fitted
//! against, so one path regressor serves any corner and the corner lives
//! in the correction MLPs — and in the zoo manifest (`tech_nm`).

use std::collections::HashSet;
use std::path::PathBuf;

use sns_circuitformer::{CircuitformerConfig, TrainConfig};
use sns_conformance::{generate, GenConfig};
use sns_core::aggmlp::MlpTrainConfig;
use sns_core::dataset::{label_path_tokens, AugmentConfig, LabeledDesign};
use sns_core::{
    refit_correction, save_to_zoo, train_sns_on_labeled, DesignPrediction, FineTuneConfig,
    FineTuner, SnsModel, SnsTrainConfig, ZooCheckpointMeta, ZooEntry,
};
use sns_designs::Design;
use sns_genmodel::{MarkovArm, PathValidator};
use sns_graphir::{GraphIr, Vocab};
use sns_netlist::parse_and_elaborate;
use sns_rt::rng::StdRng;
use sns_sampler::{PathSampler, SampleConfig};
use sns_vsynth::{
    scale_area, scale_delay, scale_power, SynthReport, TechNode, UnitCache,
    VirtualSynthesizer,
};

use crate::filter::select_top_q;

/// Configuration of the label-factory daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Master seed: design minting, bootstrap training, and the Markov
    /// arm all derive from it.
    pub seed: u64,
    /// Designs minted and labeled per step.
    pub designs_per_step: usize,
    /// Active-learning fraction: the top-q designs by model-vs-vsynth
    /// relative error feed the fine-tune batch.
    pub top_q: f64,
    /// Synthetic Markov-arm paths appended to each fine-tune batch
    /// (0 disables the second generator arm).
    pub markov_per_step: usize,
    /// Cap on fine-tune path examples taken from one design.
    pub max_paths_per_design: usize,
    /// Designs minted for the from-scratch bootstrap training run.
    pub bootstrap_designs: usize,
    /// Write a zoo checkpoint every N steps (0 = only the final one).
    pub checkpoint_every: usize,
    /// Refit the correction scaler + MLPs on the replay buffer every N
    /// steps (0 = never).
    pub refit_every: usize,
    /// Labeled-design replay buffer capacity (newest kept).
    pub replay_cap: usize,
    /// Zoo directory; `None` disables checkpointing.
    pub zoo_dir: Option<PathBuf>,
    /// Checkpoint id prefix (ids are `{prefix}-{steps:06}`).
    pub model_prefix: String,
    /// Technology corner design labels are scaled to.
    pub tech: TechNode,
    /// Random-RTL generator bounds.
    pub gen: GenConfig,
    /// Online fine-tune schedule.
    pub fine_tune: FineTuneConfig,
    /// Bootstrap (from-scratch) training configuration. Its
    /// `cf_train.threads` **must stay 1** for the determinism contract.
    pub bootstrap: SnsTrainConfig,
}

impl DaemonConfig {
    /// A small, fast default: tiny Circuitformer, modest batches —
    /// suitable for CI smokes and the soak benchmark. Deterministic: no
    /// field depends on the environment.
    pub fn fast() -> Self {
        let mut bootstrap = SnsTrainConfig::fast();
        bootstrap.circuitformer = CircuitformerConfig {
            dim: 32,
            ffn_dim: 64,
            max_len: 64,
            ..CircuitformerConfig::fast()
        };
        // threads is pinned to 1: the batch trainer's gradient chunking
        // depends on the thread count (1e-4-tolerance, not bit-exact).
        bootstrap.cf_train =
            TrainConfig { epochs: 8, batch_size: 32, threads: 1, ..TrainConfig::fast() };
        bootstrap.mlp_train = MlpTrainConfig { epochs: 200, ..MlpTrainConfig::fast() };
        bootstrap.augment = AugmentConfig::none();
        bootstrap.sample = SampleConfig::paper_default().with_max_paths(250);
        DaemonConfig {
            seed: 0x5E1F_7A11,
            designs_per_step: 8,
            top_q: 0.5,
            markov_per_step: 16,
            max_paths_per_design: 64,
            bootstrap_designs: 12,
            checkpoint_every: 0,
            refit_every: 4,
            replay_cap: 64,
            zoo_dir: None,
            model_prefix: "sns".into(),
            tech: TechNode::N15,
            gen: GenConfig::default(),
            fine_tune: FineTuneConfig::daemon(),
            bootstrap,
        }
    }

    /// [`DaemonConfig::fast`] with `SNS_ZOO_DIR` / `SNS_TRAIN_*`
    /// environment overrides applied:
    ///
    /// | variable | field |
    /// |---|---|
    /// | `SNS_ZOO_DIR` | `zoo_dir` |
    /// | `SNS_TRAIN_SEED` | `seed` |
    /// | `SNS_TRAIN_DESIGNS_PER_STEP` | `designs_per_step` |
    /// | `SNS_TRAIN_TOP_Q` | `top_q` |
    /// | `SNS_TRAIN_MARKOV` | `markov_per_step` |
    /// | `SNS_TRAIN_BOOTSTRAP` | `bootstrap_designs` |
    /// | `SNS_TRAIN_CHECKPOINT_EVERY` | `checkpoint_every` |
    /// | `SNS_TRAIN_REFIT_EVERY` | `refit_every` |
    /// | `SNS_TRAIN_TECH_NM` | `tech` (nearest-none: must name a node) |
    /// | `SNS_TRAIN_PREFIX` | `model_prefix` |
    pub fn from_env() -> Self {
        let mut cfg = DaemonConfig::fast();
        if let Ok(v) = std::env::var("SNS_ZOO_DIR") {
            if !v.trim().is_empty() {
                cfg.zoo_dir = Some(PathBuf::from(v.trim()));
            }
        }
        if let Some(v) = env_u64("SNS_TRAIN_SEED") {
            cfg.seed = v;
        }
        if let Some(v) = env_usize("SNS_TRAIN_DESIGNS_PER_STEP") {
            cfg.designs_per_step = v.max(1);
        }
        if let Some(v) = env_f64("SNS_TRAIN_TOP_Q") {
            cfg.top_q = v.clamp(0.0, 1.0);
        }
        if let Some(v) = env_usize("SNS_TRAIN_MARKOV") {
            cfg.markov_per_step = v;
        }
        if let Some(v) = env_usize("SNS_TRAIN_BOOTSTRAP") {
            cfg.bootstrap_designs = v.max(1);
        }
        if let Some(v) = env_usize("SNS_TRAIN_CHECKPOINT_EVERY") {
            cfg.checkpoint_every = v;
        }
        if let Some(v) = env_usize("SNS_TRAIN_REFIT_EVERY") {
            cfg.refit_every = v;
        }
        if let Some(nm) = env_usize("SNS_TRAIN_TECH_NM") {
            if let Some(t) = TechNode::ALL.into_iter().find(|t| t.nanometres() as usize == nm) {
                cfg.tech = t;
            }
        }
        if let Ok(v) = std::env::var("SNS_TRAIN_PREFIX") {
            if !v.trim().is_empty() {
                cfg.model_prefix = v.trim().to_string();
            }
        }
        cfg
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Diagnostics for one daemon step.
#[derive(Debug, Clone)]
pub struct StepStats {
    /// 0-based step index.
    pub step: usize,
    /// Designs minted and labeled this step.
    pub designs: usize,
    /// Designs selected by the active-learning filter.
    pub selected: usize,
    /// Per-design model-vs-vsynth relative error, in mint order,
    /// measured **before** this step's update (prequential).
    pub per_design_rel_err: Vec<f64>,
    /// Mean of [`StepStats::per_design_rel_err`].
    pub mean_rel_err: f64,
    /// Directly-sampled path examples in the fine-tune batch.
    pub direct_examples: usize,
    /// Markov-arm synthetic examples in the fine-tune batch.
    pub markov_examples: usize,
    /// Mean normalized fine-tune MSE (0.0 when the batch was empty).
    pub fine_tune_loss: f32,
    /// Whether the correction layer was refitted after this step.
    pub refit: bool,
}

/// The daemon: owns the model, the fine-tuner, the Markov arm, the
/// replay buffer, and the zoo-checkpoint lineage.
pub struct TrainDaemon {
    config: DaemonConfig,
    model: SnsModel,
    tuner: FineTuner,
    arm: MarkovArm,
    arm_rng: StdRng,
    replay: Vec<LabeledDesign>,
    synth: VirtualSynthesizer,
    vocab: Vocab,
    validator: PathValidator,
    design_counter: u64,
    labeled_total: u64,
    steps_done: usize,
    checkpoints: Vec<ZooEntry>,
    last_checkpoint_at: Option<usize>,
}

impl TrainDaemon {
    /// Bootstraps the daemon: mints `bootstrap_designs` designs, labels
    /// them, and trains the initial model from scratch.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is degenerate or a minted
    /// design fails to label.
    pub fn new(config: DaemonConfig) -> Result<Self, String> {
        if config.bootstrap_designs == 0 {
            return Err("bootstrap_designs must be >= 1".into());
        }
        if config.designs_per_step == 0 {
            return Err("designs_per_step must be >= 1".into());
        }
        let vocab = Vocab::new();
        let validator = PathValidator::new(&vocab);
        let synth = VirtualSynthesizer::new(config.bootstrap.synth.clone());
        let mut design_counter = 0u64;
        let mut labeled = Vec::with_capacity(config.bootstrap_designs);
        for _ in 0..config.bootstrap_designs {
            let design = mint_design(config.seed, &mut design_counter, &config.gen);
            labeled.push(label_design(&synth, design, config.tech)?);
        }
        let refs: Vec<&LabeledDesign> = labeled.iter().collect();
        let (model, _report) = train_sns_on_labeled(&refs, &config.bootstrap);
        let mut daemon = TrainDaemon {
            arm: MarkovArm::new(vocab.len(), config.bootstrap.augment.markov_alpha.max(0.01)),
            arm_rng: StdRng::seed_from_u64(config.seed ^ 0x4D41_524B),
            model,
            tuner: FineTuner::new(config.fine_tune.clone()),
            replay: labeled,
            synth,
            vocab,
            validator,
            design_counter,
            labeled_total: config.bootstrap_designs as u64,
            steps_done: 0,
            checkpoints: Vec::new(),
            last_checkpoint_at: None,
            config,
        };
        daemon.trim_replay();
        Ok(daemon)
    }

    /// The current model (fine-tuned up to the last completed step).
    pub fn model(&self) -> &SnsModel {
        &self.model
    }

    /// Completed fine-tune steps.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// Designs labeled so far (bootstrap included).
    pub fn labeled_total(&self) -> u64 {
        self.labeled_total
    }

    /// Zoo entries written so far, oldest first.
    pub fn checkpoints(&self) -> &[ZooEntry] {
        &self.checkpoints
    }

    /// One generate → label → filter → fine-tune step.
    ///
    /// # Errors
    ///
    /// Returns an error when labeling, prediction, refit, or a periodic
    /// checkpoint fails; the loop can be resumed after a failed step.
    pub fn step(&mut self) -> Result<StepStats, String> {
        let step_idx = self.steps_done;
        // 1. Mint and label this step's batch.
        let mut minted = Vec::with_capacity(self.config.designs_per_step);
        for _ in 0..self.config.designs_per_step {
            let design = mint_design(self.config.seed, &mut self.design_counter, &self.config.gen);
            minted.push(label_design(&self.synth, design, self.config.tech)?);
        }
        self.labeled_total += minted.len() as u64;

        // 2. Prequential disagreement: model vs oracle, before updating.
        let mut errs = Vec::with_capacity(minted.len());
        for ld in &minted {
            let pred = self
                .model
                .predict_verilog(&ld.design.verilog, &ld.design.top)
                .map_err(|e| format!("predict `{}`: {e}", ld.design.name))?;
            errs.push(mean_rel_err(&pred, &ld.report));
        }

        // 3. Active-learning filter: spend gradients where the model is
        // most wrong.
        let selected = select_top_q(&errs, self.config.top_q);

        // 4. Fine-tune examples: unseen path token sequences from the
        // selected designs, labeled by the vsynth path model.
        let mut examples: Vec<(Vec<usize>, [f64; 3])> = Vec::new();
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        let mut unit_cache = UnitCache::new();
        let sampler = PathSampler::new(self.model.sample_config().clone());
        let library = self.synth.options().library.clone();
        for &i in &selected {
            let ld = &minted[i];
            let nl = parse_and_elaborate(&ld.design.verilog, &ld.design.top)
                .map_err(|e| format!("design `{}`: {e}", ld.design.name))?;
            let graph = GraphIr::from_netlist(&nl);
            let paths = sampler.sample(&graph);
            let mut kept = 0usize;
            for toks in self.model.tokenize_paths(&graph, &paths) {
                if kept >= self.config.max_paths_per_design {
                    break;
                }
                if !seen.insert(toks.clone()) {
                    continue;
                }
                let label = label_path_tokens(&toks, &self.vocab, &library, &mut unit_cache);
                self.arm.observe(&toks);
                examples.push((toks, label));
                kept += 1;
            }
        }
        let direct_examples = examples.len();

        // 5. Second generator arm: synthetic Markov paths biased toward
        // the transition statistics observed so far.
        if self.config.markov_per_step > 0 {
            let max_len = self.model.sample_config().max_len;
            let raw = self.arm.generate_batch(
                &mut self.arm_rng,
                self.config.markov_per_step * 4,
                max_len,
                &seen,
            );
            for toks in self.validator.filter(raw).into_iter().take(self.config.markov_per_step)
            {
                let label = label_path_tokens(&toks, &self.vocab, &library, &mut unit_cache);
                examples.push((toks, label));
            }
        }
        let markov_examples = examples.len() - direct_examples;

        // 6. One fine-tune step (no-op on an empty batch — the loop
        // never stalls).
        let threads = sns_rt::pool::default_threads();
        let fine_tune_loss = self.tuner.step(&mut self.model, &examples, threads);

        // 7. Replay + periodic design-level correction refit.
        self.replay.extend(minted.iter().cloned());
        self.trim_replay();
        let mut refit = false;
        if self.config.refit_every > 0
            && (step_idx + 1).is_multiple_of(self.config.refit_every)
            && !self.replay.is_empty()
        {
            let refs: Vec<&LabeledDesign> = self.replay.iter().collect();
            refit_correction(&mut self.model, &refs, &self.config.bootstrap.mlp_train)?;
            refit = true;
        }

        self.steps_done += 1;

        // 8. Periodic zoo checkpoint.
        if self.config.checkpoint_every > 0
            && self.config.zoo_dir.is_some()
            && self.steps_done.is_multiple_of(self.config.checkpoint_every)
        {
            self.checkpoint()?;
        }

        let mean_rel_err = if errs.is_empty() {
            0.0
        } else {
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        Ok(StepStats {
            step: step_idx,
            designs: minted.len(),
            selected: selected.len(),
            per_design_rel_err: errs,
            mean_rel_err,
            direct_examples,
            markov_examples,
            fine_tune_loss,
            refit,
        })
    }

    /// Runs `steps` steps and writes a final zoo checkpoint (when a zoo
    /// directory is configured and the last step didn't just write one).
    ///
    /// # Errors
    ///
    /// Propagates the first step or checkpoint failure.
    pub fn run(&mut self, steps: usize) -> Result<Vec<StepStats>, String> {
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            out.push(self.step()?);
        }
        if self.config.zoo_dir.is_some() {
            self.checkpoint()?;
        }
        Ok(out)
    }

    /// Writes the current model into the zoo with full provenance.
    /// Idempotent per step count: a second call at the same
    /// `steps_done` returns the existing entry instead of duplicating.
    ///
    /// # Errors
    ///
    /// Returns an error when no zoo directory is configured or the
    /// write fails.
    pub fn checkpoint(&mut self) -> Result<ZooEntry, String> {
        if self.last_checkpoint_at == Some(self.steps_done) {
            if let Some(last) = self.checkpoints.last() {
                return Ok(last.clone());
            }
        }
        let dir = self
            .config
            .zoo_dir
            .clone()
            .ok_or_else(|| "no zoo directory configured".to_string())?;
        let meta = ZooCheckpointMeta {
            id: format!("{}-{:06}", self.config.model_prefix, self.steps_done),
            tech: self.config.tech,
            train_steps: self.tuner.steps(),
            labeled_designs: self.labeled_total,
            seed: self.config.seed,
        };
        let entry = save_to_zoo(&self.model, &dir, &meta).map_err(|e| e.to_string())?;
        self.last_checkpoint_at = Some(self.steps_done);
        self.checkpoints.push(entry.clone());
        Ok(entry)
    }

    fn trim_replay(&mut self) {
        let cap = self.config.replay_cap.max(1);
        if self.replay.len() > cap {
            let excess = self.replay.len() - cap;
            self.replay.drain(..excess);
        }
    }
}

/// Mints design number `*counter` deterministically from the master
/// seed, bumping the counter: the design stream is a pure function of
/// `(seed, counter, gen)`, independent of when in the run it is drawn.
fn mint_design(seed: u64, counter: &mut u64, gen: &GenConfig) -> Design {
    let i = *counter;
    *counter += 1;
    let design_seed = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    generate(design_seed, gen).to_design(format!("gen-{i:06}"))
}

/// Labels one design with vsynth, scaling the report from the library's
/// native 15 nm node to the configured corner.
fn label_design(
    synth: &VirtualSynthesizer,
    design: Design,
    tech: TechNode,
) -> Result<LabeledDesign, String> {
    let nl = parse_and_elaborate(&design.verilog, &design.top)
        .map_err(|e| format!("design `{}`: {e}", design.name))?;
    let mut report = synth.synthesize(&nl);
    scale_report(&mut report, TechNode::N15, tech);
    Ok(LabeledDesign { design, report })
}

/// Mean relative error across the three metrics, with a floor on the
/// denominators so a degenerate label cannot blow the score up to NaN.
fn mean_rel_err(pred: &DesignPrediction, label: &SynthReport) -> f64 {
    let dims = [
        (pred.timing_ps, label.timing_ps),
        (pred.area_um2, label.area_um2),
        (pred.power_mw, label.power_mw),
    ];
    dims.iter().map(|(p, l)| (p - l).abs() / l.abs().max(1e-9)).sum::<f64>() / dims.len() as f64
}

/// Scales a synthesis report between technology nodes in place
/// (Stillmaker–Baas factors; exact identity when `from == to`).
fn scale_report(report: &mut SynthReport, from: TechNode, to: TechNode) {
    report.area_um2 = scale_area(report.area_um2, from, to);
    report.timing_ps = scale_delay(report.timing_ps, from, to);
    report.power_mw = scale_power(report.power_mw, from, to);
    report.dynamic_mw = scale_power(report.dynamic_mw, from, to);
    report.leakage_mw = scale_power(report.leakage_mw, from, to);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::{load_from_zoo, model_weight_hash};

    fn tiny_daemon_config(zoo: Option<PathBuf>) -> DaemonConfig {
        let mut cfg = DaemonConfig::fast();
        cfg.bootstrap_designs = 6;
        cfg.designs_per_step = 4;
        cfg.markov_per_step = 8;
        cfg.max_paths_per_design = 32;
        cfg.refit_every = 2;
        cfg.gen = GenConfig { max_items: 8, ..GenConfig::default() };
        cfg.bootstrap.cf_train.epochs = 4;
        cfg.bootstrap.mlp_train.epochs = 60;
        cfg.zoo_dir = zoo;
        cfg
    }

    #[test]
    fn daemon_smoke_runs_checkpoints_and_round_trips() {
        let zoo = std::env::temp_dir().join(format!("sns_daemon_zoo_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&zoo);
        let mut daemon = TrainDaemon::new(tiny_daemon_config(Some(zoo.clone()))).unwrap();
        assert_eq!(daemon.labeled_total(), 6);

        let stats = daemon.run(2).unwrap();
        assert_eq!(stats.len(), 2);
        assert_eq!(daemon.steps_done(), 2);
        assert_eq!(daemon.labeled_total(), 6 + 8);
        for s in &stats {
            assert_eq!(s.designs, 4);
            assert_eq!(s.selected, 2, "top-q 0.5 of 4");
            assert_eq!(s.per_design_rel_err.len(), 4);
            assert!(s.mean_rel_err.is_finite() && s.mean_rel_err >= 0.0);
            assert!(s.direct_examples > 0, "selected designs contributed no paths");
        }
        // Step 2 refits (refit_every = 2).
        assert!(stats[1].refit);
        // The Markov arm warmed up by step 2 at the latest.
        assert!(stats[1].markov_examples > 0, "markov arm stayed cold");

        // run() wrote a final checkpoint; it round-trips bit-exactly.
        assert_eq!(daemon.checkpoints().len(), 1);
        let entry = daemon.checkpoints()[0].clone();
        assert_eq!(entry.train_steps, 2);
        assert_eq!(entry.labeled_designs, 14);
        let (loaded, loaded_entry) = load_from_zoo(&zoo, None).unwrap();
        assert_eq!(loaded_entry, entry);
        assert_eq!(model_weight_hash(&loaded), entry.weight_hash);
        assert_eq!(model_weight_hash(daemon.model()), entry.weight_hash);

        // checkpoint() is idempotent at the same step count.
        let again = daemon.checkpoint().unwrap();
        assert_eq!(again, entry);
        assert_eq!(daemon.checkpoints().len(), 1);

        let _ = std::fs::remove_dir_all(&zoo);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut cfg = tiny_daemon_config(None);
        cfg.bootstrap_designs = 0;
        assert!(TrainDaemon::new(cfg).is_err());
        let mut cfg = tiny_daemon_config(None);
        cfg.designs_per_step = 0;
        assert!(TrainDaemon::new(cfg).is_err());
    }

    #[test]
    fn checkpoint_without_zoo_dir_is_an_error_not_a_panic() {
        let mut daemon = TrainDaemon::new(tiny_daemon_config(None)).unwrap();
        assert!(daemon.checkpoint().is_err());
        // And run() without a zoo just runs.
        let stats = daemon.run(1).unwrap();
        assert_eq!(stats.len(), 1);
    }
}
