//! Label-factory soak benchmark: runs the daemon until a target number
//! of designs has been labeled, then writes `BENCH_train.json` with
//! throughput and the disagreement trend over the run.
//!
//! ```text
//! train_soak [--designs N] [--seed S] [--zoo DIR] [--out FILE]
//! ```
//!
//! The trend metric is prequential: each step's model-vs-vsynth relative
//! error is measured *before* that step's update, so a decreasing trend
//! means the model is genuinely tracking the oracle better, not just
//! memorizing the designs it trained on. With `SNS_TRAIN_REQUIRE_TREND=1`
//! the process exits non-zero unless the mean relative error strictly
//! decreases from the first to the last quartile of the run.

use std::time::Instant;

use sns_rt::json::Json;
use sns_train::{DaemonConfig, TrainDaemon};

fn fail(msg: &str) -> ! {
    eprintln!("train_soak: {msg}");
    std::process::exit(2)
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let designs_target: usize = match arg(&args, "--designs") {
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => fail(&format!("bad --designs value `{v}`")),
        },
        None => 500,
    };

    let mut cfg = DaemonConfig::from_env();
    if let Some(v) = arg(&args, "--seed") {
        match v.parse() {
            Ok(s) => cfg.seed = s,
            Err(_) => fail(&format!("bad --seed value `{v}`")),
        }
    }
    if let Some(dir) = arg(&args, "--zoo") {
        cfg.zoo_dir = Some(dir.into());
    }
    let out_path = arg(&args, "--out").unwrap_or_else(|| "BENCH_train.json".into());

    let steps = designs_target
        .saturating_sub(cfg.bootstrap_designs)
        .div_ceil(cfg.designs_per_step.max(1));
    eprintln!(
        "train_soak: bootstrap {} designs, then {} steps x {} designs (seed {:#x}, tech {} nm)",
        cfg.bootstrap_designs,
        steps,
        cfg.designs_per_step,
        cfg.seed,
        cfg.tech.nanometres()
    );

    let t0 = Instant::now();
    let mut daemon = match TrainDaemon::new(cfg) {
        Ok(d) => d,
        Err(e) => fail(&format!("bootstrap failed: {e}")),
    };
    let bootstrap_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let stats = match daemon.run(steps) {
        Ok(s) => s,
        Err(e) => fail(&format!("run failed: {e}")),
    };
    let loop_s = t1.elapsed().as_secs_f64();
    let total_s = t0.elapsed().as_secs_f64();

    // Per-design disagreement in mint order, split into quartiles.
    let errs: Vec<f64> = stats.iter().flat_map(|s| s.per_design_rel_err.iter().copied()).collect();
    let quartiles = quartile_means(&errs);
    let trend_ok = quartiles.first().zip(quartiles.last()).map(|(f, l)| l < f).unwrap_or(false);

    let labeled = daemon.labeled_total();
    let designs_per_s = if total_s > 0.0 { labeled as f64 / total_s } else { 0.0 };
    let steps_per_s = if loop_s > 0.0 { stats.len() as f64 / loop_s } else { 0.0 };
    let mean_first = stats.first().map(|s| s.mean_rel_err).unwrap_or(0.0);
    let mean_last = stats.last().map(|s| s.mean_rel_err).unwrap_or(0.0);

    let report = Json::obj(vec![
        ("bench", Json::Str("train_soak".into())),
        ("designs_labeled", Json::UInt(labeled)),
        ("steps", Json::UInt(stats.len() as u64)),
        ("fine_tune_steps", Json::UInt(daemon.steps_done() as u64)),
        ("bootstrap_s", Json::Num(bootstrap_s)),
        ("loop_s", Json::Num(loop_s)),
        ("total_s", Json::Num(total_s)),
        ("designs_per_s", Json::Num(designs_per_s)),
        ("steps_per_s", Json::Num(steps_per_s)),
        ("quartile_mean_rel_err", Json::Arr(quartiles.iter().map(|&q| Json::Num(q)).collect())),
        ("first_step_mean_rel_err", Json::Num(mean_first)),
        ("last_step_mean_rel_err", Json::Num(mean_last)),
        ("trend_ok", Json::Bool(trend_ok)),
        (
            "checkpoints",
            Json::Arr(daemon.checkpoints().iter().map(|e| Json::Str(e.id.clone())).collect()),
        ),
        (
            "final_weight_hash",
            Json::Str(
                daemon
                    .checkpoints()
                    .last()
                    .map(|e| e.weight_hash.clone())
                    .unwrap_or_else(|| sns_core::model_weight_hash(daemon.model())),
            ),
        ),
    ]);
    if let Err(e) = sns_rt::fsx::write_atomic(std::path::Path::new(&out_path), report.print().as_bytes())
    {
        fail(&format!("writing {out_path}: {e}"));
    }
    eprintln!(
        "train_soak: {labeled} designs in {total_s:.1}s ({designs_per_s:.1}/s), \
         quartile rel-err {quartiles:?}, trend_ok={trend_ok} -> {out_path}"
    );

    let require_trend =
        std::env::var("SNS_TRAIN_REQUIRE_TREND").map(|v| v == "1").unwrap_or(false);
    if require_trend && !trend_ok {
        fail(&format!(
            "disagreement did not decrease: first quartile {:?} -> last {:?}",
            quartiles.first(),
            quartiles.last()
        ));
    }
}

/// Means of the four contiguous quartiles of `errs` (empty input → empty).
fn quartile_means(errs: &[f64]) -> Vec<f64> {
    if errs.is_empty() {
        return Vec::new();
    }
    let n = errs.len();
    (0..4)
        .map(|q| {
            let lo = q * n / 4;
            let hi = ((q + 1) * n / 4).max(lo + 1).min(n);
            let part = &errs[lo..hi];
            part.iter().sum::<f64>() / part.len() as f64
        })
        .collect()
}
