//! # sns-train
//!
//! The **self-training label factory**: the paper's premise is that a
//! learned predictor can stand in for a synthesizer, which only holds
//! while the model keeps tracking the oracle. This crate closes that
//! loop with a training daemon built from parts the workspace already
//! owns:
//!
//! * **Generate** — the conformance generator (`sns-conformance`) mints
//!   unlimited valid RTL, seeded and byte-deterministic;
//! * **Label** — the fast virtual synthesizer (`sns-vsynth`) prices
//!   every design bit-exactly, with Stillmaker–Baas scaling to the
//!   configured technology corner;
//! * **Filter** — an active-learning top-q filter ([`select_top_q`])
//!   spends the gradient budget on the designs where the model disagrees
//!   most with the oracle;
//! * **Fine-tune** — `sns_core::FineTuner` takes one thread-invariant
//!   Adam step per batch on the selected designs' path labels, plus a
//!   second generator arm of synthetic paths from an online Markov model
//!   (`sns_genmodel::MarkovArm`);
//! * **Checkpoint** — snapshots land in a **versioned model zoo**
//!   (`sns_core::model_io`): a manifest of model id, corner, train-step
//!   provenance, and FNV-128 weight hash, written atomically so
//!   `sns-serve` can hot-swap from it at any moment.
//!
//! The whole loop is deterministic end to end: same seed + same step
//! count ⇒ bit-identical model, at any `SNS_THREADS` / `SNS_BATCH` /
//! `SNS_SYNTH_THREADS` (see `tests/train_determinism.rs`).
//!
//! The `train_soak` binary runs the daemon over hundreds of designs and
//! writes `BENCH_train.json` (labeling/step throughput, disagreement
//! trend by quartile); `scripts/train_soak.sh` drives it and a ~100
//! design smoke rides in `scripts/tier1.sh`.
//!
//! Environment knobs (see [`DaemonConfig::from_env`]): `SNS_ZOO_DIR`,
//! `SNS_TRAIN_SEED`, `SNS_TRAIN_DESIGNS_PER_STEP`, `SNS_TRAIN_TOP_Q`,
//! `SNS_TRAIN_MARKOV`, `SNS_TRAIN_BOOTSTRAP`,
//! `SNS_TRAIN_CHECKPOINT_EVERY`, `SNS_TRAIN_REFIT_EVERY`,
//! `SNS_TRAIN_TECH_NM`, `SNS_TRAIN_PREFIX`.

pub mod daemon;
pub mod filter;

pub use daemon::{DaemonConfig, StepStats, TrainDaemon};
pub use filter::select_top_q;
