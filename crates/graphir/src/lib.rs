//! # sns-graphir
//!
//! The GraphIR circuit representation from SNS (§3.1 of the paper): a
//! directed graph whose vertices are functional units typed by a
//! `(type, width)` vocabulary (Table 1) and whose edges are wiring
//! connections.
//!
//! Key behaviours reproduced from the paper:
//!
//! * the 79-entry vocabulary of Table 1 ([`Vocab`]),
//! * width rounding to the closest power of two (ties round up), clamped to
//!   each type's allowed range, using the *maximum* connection width of the
//!   unit,
//! * wiring pseudo-cells (slices, concatenations, constants) are collapsed
//!   into edges, so the graph contains only functional units and ports,
//! * per-design graph statistics (vocabulary histograms) consumed by the
//!   Aggregation MLP.
//!
//! # Example
//!
//! ```rust
//! use sns_netlist::parse_and_elaborate;
//! use sns_graphir::GraphIr;
//!
//! # fn main() -> Result<(), sns_netlist::NetlistError> {
//! let nl = parse_and_elaborate(
//!     "module mac (input clk, input [7:0] a, b, output [15:0] y);
//!          reg [15:0] acc;
//!          always @(posedge clk) acc <= acc + a * b;
//!          assign y = acc;
//!      endmodule",
//!     "mac",
//! )?;
//! let g = GraphIr::from_netlist(&nl);
//! // io8 ports, a mul16, an add16, a dff16 and an io16 — as in Figure 2.
//! assert!(g.vertices().any(|v| v.vertex.token_name() == "mul16"));
//! assert!(g.vertices().any(|v| v.vertex.token_name() == "dff16"));
//! # Ok(())
//! # }
//! ```

pub mod graph;
pub mod vocab;

pub use graph::{GraphIr, GraphStats, StitchedGraph, VertexId, VertexInfo};
pub use vocab::{Vertex, Vocab, VocabType};
