//! The GraphIR embedding vocabulary (Table 1 of the paper).
//!
//! Each vertex is a `(type, width)` pair. Eleven types allow widths
//! {4, 8, 16, 32, 64} and six arithmetic types allow {8, 16, 32, 64},
//! giving 11 × 5 + 6 × 4 = **79** vocabulary entries — the number quoted in
//! the paper's Table 2.

use std::fmt;

/// The functional-unit types of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VocabType {
    /// Input/output port.
    Io,
    /// D-flip-flop.
    Dff,
    /// Multiplexer.
    Mux,
    /// Bitwise NOT.
    Not,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR (and XNOR).
    Xor,
    /// Parametrizable shifter (left and right).
    Sh,
    /// AND reduction.
    ReduceAnd,
    /// OR reduction.
    ReduceOr,
    /// XOR reduction.
    ReduceXor,
    /// Adder/subtractor.
    Add,
    /// Multiplier.
    Mul,
    /// Equality comparator.
    Eq,
    /// Less-than / greater-than comparator.
    Lgt,
    /// Divider.
    Div,
    /// Modulus.
    Mod,
}

impl VocabType {
    /// All types, in Table 1 order.
    pub const ALL: [VocabType; 17] = [
        VocabType::Io,
        VocabType::Dff,
        VocabType::Mux,
        VocabType::Not,
        VocabType::And,
        VocabType::Or,
        VocabType::Xor,
        VocabType::Sh,
        VocabType::ReduceAnd,
        VocabType::ReduceOr,
        VocabType::ReduceXor,
        VocabType::Add,
        VocabType::Mul,
        VocabType::Eq,
        VocabType::Lgt,
        VocabType::Div,
        VocabType::Mod,
    ];

    /// The allowed (rounded) widths for this type, per Table 1.
    pub fn allowed_widths(self) -> &'static [u32] {
        match self {
            VocabType::Add
            | VocabType::Mul
            | VocabType::Eq
            | VocabType::Lgt
            | VocabType::Div
            | VocabType::Mod => &[8, 16, 32, 64],
            _ => &[4, 8, 16, 32, 64],
        }
    }

    /// The short name used in token strings (e.g. `"reduce_and"`).
    pub fn short_name(self) -> &'static str {
        match self {
            VocabType::Io => "io",
            VocabType::Dff => "dff",
            VocabType::Mux => "mux",
            VocabType::Not => "not",
            VocabType::And => "and",
            VocabType::Or => "or",
            VocabType::Xor => "xor",
            VocabType::Sh => "sh",
            VocabType::ReduceAnd => "reduce_and",
            VocabType::ReduceOr => "reduce_or",
            VocabType::ReduceXor => "reduce_xor",
            VocabType::Add => "add",
            VocabType::Mul => "mul",
            VocabType::Eq => "eq",
            VocabType::Lgt => "lgt",
            VocabType::Div => "div",
            VocabType::Mod => "mod",
        }
    }

    /// Whether paths may begin/end at this type ("contains flip-flops" in
    /// the paper's phrasing: registers and ports).
    pub fn is_terminal(self) -> bool {
        matches!(self, VocabType::Io | VocabType::Dff)
    }

    /// Rounds a raw connection width into this type's allowed set: closest
    /// power of two, ties rounding **up** (the paper maps widths 12–23 to
    /// 16), clamped to the ends of the range.
    ///
    /// # Example
    ///
    /// ```rust
    /// use sns_graphir::VocabType;
    ///
    /// assert_eq!(VocabType::Div.round_width(17), 16);
    /// assert_eq!(VocabType::Div.round_width(12), 16); // tie rounds up
    /// assert_eq!(VocabType::Div.round_width(3), 8);   // clamped low
    /// assert_eq!(VocabType::Io.round_width(3), 4);
    /// assert_eq!(VocabType::Io.round_width(100), 64); // clamped high
    /// ```
    pub fn round_width(self, raw: u32) -> u32 {
        let allowed = self.allowed_widths();
        let mut best = allowed[0];
        let mut best_d = u32::MAX;
        for &w in allowed {
            let d = raw.abs_diff(w);
            // Strictly smaller distance wins; equal distance prefers the
            // larger width (tie rounds up).
            if d < best_d || (d == best_d && w > best) {
                best = w;
                best_d = d;
            }
        }
        best
    }
}

impl fmt::Display for VocabType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A vocabulary entry: a functional-unit type at a rounded width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vertex {
    /// The functional-unit type.
    pub vtype: VocabType,
    /// The rounded width (a member of `vtype.allowed_widths()`).
    pub width: u32,
}

impl Vertex {
    /// Builds a vertex from a raw (unrounded) width.
    pub fn new(vtype: VocabType, raw_width: u32) -> Self {
        Vertex { vtype, width: vtype.round_width(raw_width) }
    }

    /// The token string the paper uses, e.g. `"mul16"`.
    pub fn token_name(&self) -> String {
        format!("{}{}", self.vtype.short_name(), self.width)
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.vtype.short_name(), self.width)
    }
}

/// The full 79-entry vocabulary, with stable token ids.
///
/// Token ids are dense in `0..len()` and ordered by Table 1 (type-major,
/// width-minor), so they can index embedding matrices directly.
///
/// # Example
///
/// ```rust
/// use sns_graphir::{Vocab, Vertex, VocabType};
///
/// let vocab = Vocab::new();
/// assert_eq!(vocab.len(), 79);
/// let v = Vertex::new(VocabType::Mul, 12); // rounds to mul16
/// let id = vocab.token_id(v).unwrap();
/// assert_eq!(vocab.vertex(id), v);
/// ```
#[derive(Debug, Clone)]
pub struct Vocab {
    entries: Vec<Vertex>,
}

impl Vocab {
    /// Builds the Table 1 vocabulary.
    pub fn new() -> Self {
        let mut entries = Vec::new();
        for t in VocabType::ALL {
            for &w in t.allowed_widths() {
                entries.push(Vertex { vtype: t, width: w });
            }
        }
        Vocab { entries }
    }

    /// Number of vocabulary entries (79).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vocabulary is empty (never, for the standard table).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The dense token id of `v`, if its width is a legal rounded width.
    pub fn token_id(&self, v: Vertex) -> Option<usize> {
        self.entries.iter().position(|&e| e == v)
    }

    /// The vertex for a dense token id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= self.len()`.
    pub fn vertex(&self, id: usize) -> Vertex {
        self.entries[id]
    }

    /// Iterates over all entries in token-id order.
    pub fn iter(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.entries.iter().copied()
    }
}

impl Default for Vocab {
    fn default() -> Self {
        Vocab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_has_79_entries_as_in_table_2() {
        assert_eq!(Vocab::new().len(), 79);
    }

    #[test]
    fn token_ids_are_dense_and_stable() {
        let v = Vocab::new();
        for id in 0..v.len() {
            assert_eq!(v.token_id(v.vertex(id)), Some(id));
        }
    }

    #[test]
    fn rounding_matches_paper_examples() {
        // "dividers with widths 12..23 are all considered div16"
        for w in 12..=23 {
            assert_eq!(VocabType::Div.round_width(w), 16, "width {w}");
        }
        assert_eq!(VocabType::Div.round_width(24), 32);
        assert_eq!(VocabType::Div.round_width(11), 8);
    }

    #[test]
    fn rounding_clamps_to_type_range() {
        assert_eq!(VocabType::Add.round_width(1), 8);
        assert_eq!(VocabType::Add.round_width(1000), 64);
        assert_eq!(VocabType::Mux.round_width(1), 4);
        assert_eq!(VocabType::Mux.round_width(128), 64);
    }

    #[test]
    fn rounding_is_identity_on_allowed_widths() {
        for t in VocabType::ALL {
            for &w in t.allowed_widths() {
                assert_eq!(t.round_width(w), w);
            }
        }
    }

    #[test]
    fn token_names_match_paper_format() {
        assert_eq!(Vertex::new(VocabType::Mul, 16).token_name(), "mul16");
        assert_eq!(Vertex::new(VocabType::Io, 8).token_name(), "io8");
        assert_eq!(Vertex::new(VocabType::ReduceXor, 5).token_name(), "reduce_xor4");
    }

    #[test]
    fn terminals_are_io_and_dff_only() {
        for t in VocabType::ALL {
            assert_eq!(
                t.is_terminal(),
                matches!(t, VocabType::Io | VocabType::Dff),
                "{t}"
            );
        }
    }

    #[test]
    fn unknown_width_vertex_has_no_token_id() {
        let vocab = Vocab::new();
        assert!(vocab.token_id(Vertex { vtype: VocabType::Add, width: 5 }).is_none());
    }
}
