//! The GraphIR circuit graph and its construction from a netlist.

use std::collections::HashMap;

use sns_netlist::{CellId, CellKind, ElabReport, InstanceRecord, NetId, Netlist, PortDir};

use crate::vocab::{Vertex, Vocab, VocabType};

/// Index of a vertex in a [`GraphIr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

/// A GraphIR vertex: the vocabulary entry plus provenance information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexInfo {
    /// The `(type, rounded width)` vocabulary entry.
    pub vertex: Vertex,
    /// Source-level name (port name or hierarchical cell name), kept so that
    /// sampled paths can be located back in the design (§2.2 of the paper).
    pub name: String,
}

impl VertexInfo {
    /// Whether complete circuit paths may begin or end here.
    pub fn is_terminal(&self) -> bool {
        self.vertex.vtype.is_terminal()
    }
}

/// Per-design vocabulary histogram ("graph statistics" in Figure 2(c)),
/// used as auxiliary input to the Aggregation MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    counts: Vec<u32>,
}

impl GraphStats {
    /// The count for a dense vocabulary token id.
    ///
    /// # Panics
    ///
    /// Panics if `token_id` is out of range for the vocabulary this was
    /// built with.
    pub fn count(&self, token_id: usize) -> u32 {
        self.counts[token_id]
    }

    /// The histogram as a slice, indexed by token id.
    pub fn as_slice(&self) -> &[u32] {
        &self.counts
    }

    /// Total number of vertices counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// The histogram as normalized `f32` features (log1p-scaled counts),
    /// the form consumed by the Aggregation MLP.
    pub fn to_features(&self) -> Vec<f32> {
        self.counts.iter().map(|&c| (c as f32).ln_1p()).collect()
    }
}

/// The GraphIR: a directed graph of functional units.
///
/// Built from a [`Netlist`] with [`GraphIr::from_netlist`]; wiring
/// pseudo-cells are collapsed into edges and constants are dropped.
/// Equality is structural — two construction orders that visit ports and
/// cells identically produce `==` graphs (relied on by the incremental
/// conformance oracle).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphIr {
    vertices: Vec<VertexInfo>,
    succs: Vec<Vec<VertexId>>,
    preds: Vec<Vec<VertexId>>,
}

impl GraphIr {
    /// Converts a flat netlist into GraphIR.
    ///
    /// Every non-wiring cell and every top-level port becomes a vertex; the
    /// vertex width is the maximum of all its connection widths, rounded per
    /// Table 1. Wiring cells (slice/concat/replicate/buf) are traversed
    /// transparently when building edges; constant drivers produce no edge.
    pub fn from_netlist(nl: &Netlist) -> Self {
        let whole = [(None, 0u32, nl.cell_count() as u32)];
        build(nl, &whole).graph
    }

    /// Converts a flat netlist into GraphIR as stitched per-module
    /// subgraphs, using the [`ElabReport`] from incremental elaboration to
    /// carve the cell space into instance regions.
    ///
    /// Each top-level instance's cell range becomes its own subgraph part,
    /// built independently; the gaps between ranges form the top module's
    /// body part. Parts meet only through nets at instance boundaries (the
    /// bound input nets and output-driven lvalues), and the stitch resolves
    /// those shared nets into cross-part edges. The resulting graph is
    /// `==` to [`GraphIr::from_netlist`] on the same netlist.
    pub fn from_netlist_stitched(nl: &Netlist, report: &ElabReport) -> StitchedGraph {
        let n = nl.cell_count() as u32;
        let mut tops: Vec<&InstanceRecord> = report.top_level().collect();
        tops.sort_by_key(|r| r.cell_start);
        let mut parts: Vec<String> = Vec::with_capacity(tops.len());
        let mut segments: Vec<(Option<usize>, u32, u32)> = Vec::new();
        let mut at = 0u32;
        for r in tops {
            let (s, e) = (r.cell_start.min(n), r.cell_end.min(n));
            if s < at || e < s {
                continue; // overlapping/garbage record: fold into enclosing part
            }
            if at < s {
                segments.push((None, at, s));
            }
            segments.push((Some(parts.len()), s, e));
            parts.push(r.path.clone());
            at = e;
        }
        if at < n {
            segments.push((None, at, n));
        }
        let built = build(nl, &segments);
        StitchedGraph { graph: built.graph, cell_of: built.cell_of, part_of: built.part_of, parts }
    }

    fn push(&mut self, v: VertexInfo) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(v);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    fn add_edge(&mut self, from: VertexId, to: VertexId) {
        self.succs[from.0 as usize].push(to);
        self.preds[to.0 as usize].push(from);
    }

    fn dedup_edges(&mut self) {
        for v in self.succs.iter_mut().chain(self.preds.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of (deduplicated) directed edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// The vertex info for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn vertex(&self, id: VertexId) -> &VertexInfo {
        &self.vertices[id.0 as usize]
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = &VertexInfo> {
        self.vertices.iter()
    }

    /// Iterates over `(id, info)` pairs.
    pub fn vertices_enumerated(&self) -> impl Iterator<Item = (VertexId, &VertexInfo)> {
        self.vertices.iter().enumerate().map(|(i, v)| (VertexId(i as u32), v))
    }

    /// Successors of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn successors(&self, id: VertexId) -> &[VertexId] {
        &self.succs[id.0 as usize]
    }

    /// Predecessors of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn predecessors(&self, id: VertexId) -> &[VertexId] {
        &self.preds[id.0 as usize]
    }

    /// Ids of all terminal vertices (io / dff) — the legal path endpoints.
    pub fn terminals(&self) -> Vec<VertexId> {
        self.vertices_enumerated()
            .filter(|(_, v)| v.is_terminal())
            .map(|(id, _)| id)
            .collect()
    }

    /// Builds the vocabulary histogram of this graph.
    pub fn stats(&self, vocab: &Vocab) -> GraphStats {
        let mut counts = vec![0u32; vocab.len()];
        for v in &self.vertices {
            if let Some(id) = vocab.token_id(v.vertex) {
                counts[id] += 1;
            }
        }
        GraphStats { counts }
    }
}

/// A [`GraphIr`] carved into per-module subgraph parts, as produced by
/// [`GraphIr::from_netlist_stitched`].
#[derive(Debug, Clone, PartialEq)]
pub struct StitchedGraph {
    /// The stitched graph (`==` to the flat construction).
    pub graph: GraphIr,
    /// Per vertex: the originating netlist cell (`None` for port vertices).
    pub cell_of: Vec<Option<CellId>>,
    /// Per vertex: index into [`StitchedGraph::parts`], or `None` for port
    /// vertices and the top module's own body.
    pub part_of: Vec<Option<usize>>,
    /// Instance paths of the top-level subgraph parts, in cell order.
    pub parts: Vec<String>,
}

impl StitchedGraph {
    /// Ids of vertices whose originating cell lies in any of the given
    /// half-open cell ranges — e.g. the ranges of re-elaborated instances
    /// from an ECO, to seed invalidation in the sampler.
    pub fn vertices_in_cell_ranges(&self, ranges: &[(u32, u32)]) -> Vec<VertexId> {
        self.cell_of
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|cid| (VertexId(i as u32), cid.0)))
            .filter(|&(_, c)| ranges.iter().any(|&(s, e)| s <= c && c < e))
            .map(|(v, _)| v)
            .collect()
    }
}

struct BuiltGraph {
    graph: GraphIr,
    cell_of: Vec<Option<CellId>>,
    part_of: Vec<Option<usize>>,
}

/// Shared graph builder over an ordered segmentation of the cell space.
///
/// `segments` must cover `0..cell_count` in ascending order; each segment
/// carries an optional part index. Vertices are created ports-first, then
/// segment by segment in cell order — identical to the flat construction —
/// and edges resolve through a netlist-global memo, which is what stitches
/// parts together across instance-boundary nets.
fn build(nl: &Netlist, segments: &[(Option<usize>, u32, u32)]) -> BuiltGraph {
    let mut g = GraphIr::default();
    let mut cell_of: Vec<Option<CellId>> = Vec::new();
    let mut part_of: Vec<Option<usize>> = Vec::new();
    let mut cell_vertex: HashMap<CellId, VertexId> = HashMap::new();
    let mut port_vertex: HashMap<NetId, VertexId> = HashMap::new();

    // Ports first (stable ordering), then logic cells.
    for p in nl.ports() {
        let w = nl.net(p.net).width;
        let id = g
            .push(VertexInfo { vertex: Vertex::new(VocabType::Io, w), name: p.name.clone() });
        cell_of.push(None);
        part_of.push(None);
        if p.dir == PortDir::Input {
            port_vertex.insert(p.net, id);
        } else {
            port_vertex.entry(p.net).or_insert(id);
        }
    }
    for &(part, start, end) in segments {
        for idx in start..end {
            let cid = CellId(idx);
            let cell = nl.cell(cid);
            let Some(vtype) = vocab_type(cell.kind) else { continue };
            let mut w = nl.net(cell.output).width;
            for &i in &cell.inputs {
                w = w.max(nl.net(i).width);
            }
            let id =
                g.push(VertexInfo { vertex: Vertex::new(vtype, w), name: cell.name.clone() });
            cell_of.push(Some(cid));
            part_of.push(part);
            cell_vertex.insert(cid, id);
        }
    }

    // Resolve the real (non-wiring) sources behind every net, memoized.
    // The memo is netlist-global: a net bound across an instance boundary
    // resolves to vertices in whichever part drives it.
    let driver = nl.driver_map();
    let mut memo: HashMap<NetId, Vec<VertexId>> = HashMap::new();
    let mut sources = |net: NetId| -> Vec<VertexId> {
        resolve_sources(nl, &driver, &cell_vertex, &port_vertex, &mut memo, net)
    };

    // Edges: into every logic cell, and into every output-port vertex.
    for &(_, start, end) in segments {
        for idx in start..end {
            let cid = CellId(idx);
            let Some(&dst) = cell_vertex.get(&cid) else { continue };
            for &input in &nl.cell(cid).inputs {
                for src in sources(input) {
                    g.add_edge(src, dst);
                }
            }
        }
    }
    for p in nl.ports() {
        if p.dir == PortDir::Output {
            let dst = port_vertex[&p.net];
            for src in sources(p.net) {
                if src != dst {
                    g.add_edge(src, dst);
                }
            }
        }
    }
    g.dedup_edges();
    BuiltGraph { graph: g, cell_of, part_of }
}

fn vocab_type(kind: CellKind) -> Option<VocabType> {
    Some(match kind {
        CellKind::Dff => VocabType::Dff,
        CellKind::Mux => VocabType::Mux,
        CellKind::Not => VocabType::Not,
        CellKind::And => VocabType::And,
        CellKind::Or => VocabType::Or,
        CellKind::Xor | CellKind::Xnor => VocabType::Xor,
        CellKind::Shl | CellKind::Shr => VocabType::Sh,
        CellKind::ReduceAnd => VocabType::ReduceAnd,
        CellKind::ReduceOr => VocabType::ReduceOr,
        CellKind::ReduceXor => VocabType::ReduceXor,
        CellKind::Add | CellKind::Sub => VocabType::Add,
        CellKind::Mul => VocabType::Mul,
        CellKind::Eq => VocabType::Eq,
        CellKind::Lgt => VocabType::Lgt,
        CellKind::Div => VocabType::Div,
        CellKind::Mod => VocabType::Mod,
        CellKind::Slice
        | CellKind::Concat
        | CellKind::Replicate
        | CellKind::Const
        | CellKind::Buf => return None,
    })
}

/// Finds the non-wiring vertices that (transitively) drive `net`.
///
/// Iterative (explicit work stack) rather than recursive: untrusted input
/// can chain wiring cells arbitrarily deep — `assign w1 = in; assign
/// w2 = w1; …` ten thousand times — and the front-end must not overflow
/// the call stack on any input it accepts.
fn resolve_sources(
    nl: &Netlist,
    driver: &HashMap<NetId, CellId>,
    cell_vertex: &HashMap<CellId, VertexId>,
    port_vertex: &HashMap<NetId, VertexId>,
    memo: &mut HashMap<NetId, Vec<VertexId>>,
    net: NetId,
) -> Vec<VertexId> {
    enum Frame {
        /// Resolve this net (expanding a wiring cell's inputs first).
        Enter(NetId),
        /// All inputs of this net's wiring driver are memoized; combine them.
        Combine(NetId),
    }
    let mut stack = vec![Frame::Enter(net)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(n) => {
                if memo.contains_key(&n) {
                    continue;
                }
                match driver.get(&n) {
                    Some(&cid) => {
                        let cell = nl.cell(cid);
                        if let Some(&v) = cell_vertex.get(&cid) {
                            memo.insert(n, vec![v]);
                        } else if cell.kind == CellKind::Const {
                            memo.insert(n, Vec::new());
                        } else {
                            // Wiring cell: placeholder breaks cycles through
                            // wiring (shouldn't occur in valid designs, but
                            // stay defensive), then visit inputs in order
                            // before combining.
                            memo.insert(n, Vec::new());
                            stack.push(Frame::Combine(n));
                            for &i in cell.inputs.iter().rev() {
                                stack.push(Frame::Enter(i));
                            }
                        }
                    }
                    None => {
                        let r = match port_vertex.get(&n) {
                            Some(&v) => vec![v],
                            None => Vec::new(), // undriven
                        };
                        memo.insert(n, r);
                    }
                }
            }
            Frame::Combine(n) => {
                let Some(&cid) = driver.get(&n) else { continue };
                // Union of the wiring cell's inputs' sources.
                let mut out = Vec::new();
                for &i in &nl.cell(cid).inputs {
                    if let Some(srcs) = memo.get(&i) {
                        out.extend(srcs.iter().copied());
                    }
                }
                out.sort_unstable();
                out.dedup();
                memo.insert(n, out);
            }
        }
    }
    memo.get(&net).cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::parse_and_elaborate;

    fn mac() -> GraphIr {
        let nl = parse_and_elaborate(
            "module mac (input clk, input [7:0] a, input [7:0] b, output [15:0] out);
                 reg [15:0] acc;
                 always @(posedge clk) acc <= acc + a * b;
                 assign out = acc;
             endmodule",
            "mac",
        )
        .unwrap();
        GraphIr::from_netlist(&nl)
    }

    fn names(g: &GraphIr) -> Vec<String> {
        let mut v: Vec<String> = g.vertices().map(|x| x.vertex.token_name()).collect();
        v.sort();
        v
    }

    #[test]
    fn figure_2_mac_graph_structure() {
        let g = mac();
        let n = names(&g);
        // clk io, two io8 inputs, one io16 output, mul16, add16, dff16.
        assert!(n.contains(&"io8".to_string()));
        assert!(n.contains(&"io16".to_string()));
        assert!(n.contains(&"mul16".to_string()));
        assert!(n.contains(&"add16".to_string()));
        assert!(n.contains(&"dff16".to_string()));
        assert_eq!(g.vertex_count(), 7);
    }

    #[test]
    fn figure_2_mac_edges() {
        let g = mac();
        let find = |tok: &str| {
            g.vertices_enumerated().find(|(_, v)| v.vertex.token_name() == tok).unwrap().0
        };
        let mul = find("mul16");
        let add = find("add16");
        let dff = find("dff16");
        let out = find("io16");
        assert!(g.successors(mul).contains(&add));
        assert!(g.successors(add).contains(&dff));
        // The accumulator feeds back into the adder and drives the output.
        assert!(g.successors(dff).contains(&add));
        assert!(g.successors(dff).contains(&out));
        // io8 inputs feed the multiplier.
        assert!(g.predecessors(mul).iter().all(|&p| g.vertex(p).vertex.vtype == VocabType::Io));
        assert_eq!(g.predecessors(mul).len(), 2);
    }

    #[test]
    fn stats_histogram_counts_vertices() {
        let g = mac();
        let vocab = Vocab::new();
        let s = g.stats(&vocab);
        assert_eq!(s.total(), 7);
        let mul16 = vocab.token_id(Vertex::new(VocabType::Mul, 16)).unwrap();
        assert_eq!(s.count(mul16), 1);
        assert_eq!(s.as_slice().len(), 79);
        assert_eq!(s.to_features().len(), 79);
        assert!(s.to_features()[mul16] > 0.0);
    }

    #[test]
    fn wiring_cells_are_collapsed() {
        // Concats, slices and constants must not appear as vertices.
        let nl = parse_and_elaborate(
            "module m (input [7:0] a, output [3:0] y, output [11:0] z);
                 assign y = a[7:4];
                 assign z = {a, 4'b0};
             endmodule",
            "m",
        )
        .unwrap();
        let g = GraphIr::from_netlist(&nl);
        // Only the three io ports remain.
        assert_eq!(g.vertex_count(), 3);
        // And the edges pass through the wiring.
        let input = g.vertices_enumerated().find(|(_, v)| v.name == "a").unwrap().0;
        assert_eq!(g.successors(input).len(), 2);
    }

    #[test]
    fn terminals_are_io_and_dff_vertices() {
        let g = mac();
        let t = g.terminals();
        assert_eq!(t.len(), 5); // clk, a, b, out, acc
        assert!(t.iter().all(|&id| g.vertex(id).is_terminal()));
    }

    #[test]
    fn width_uses_max_connection() {
        // 8-bit inputs into a 16-bit comparator context: eq takes max width.
        let nl = parse_and_elaborate(
            "module m (input [15:0] a, input [7:0] b, output y);
                 assign y = a == b;
             endmodule",
            "m",
        )
        .unwrap();
        let g = GraphIr::from_netlist(&nl);
        assert!(g.vertices().any(|v| v.vertex.token_name() == "eq16"));
    }

    #[test]
    fn stitched_equals_flat_construction() {
        use sns_netlist::{elaborate_incremental, parse_source, ModuleElabCache};
        let src = "
            module leaf #(parameter W = 4) (input [W-1:0] a, input [W-1:0] b,
                                            output [W-1:0] y);
                assign y = (a & b) + (a ^ b);
            endmodule
            module mid #(parameter W = 4) (input clk, input [W-1:0] a, input [W-1:0] b,
                                           output [W-1:0] y);
                wire [W-1:0] t;
                reg [W-1:0] r;
                leaf #(.W(W)) u0 (.a(a), .b(b), .y(t));
                always @(posedge clk) r <= t;
                assign y = r;
            endmodule
            module top (input clk, input [7:0] p, input [7:0] q,
                        output [7:0] r, output [3:0] s);
                wire [3:0] n;
                mid #(.W(8)) m8 (.clk(clk), .a(p), .b(q), .y(r));
                mid #(.W(4)) m4 (.clk(clk), .a(p[3:0]), .b(n), .y(s));
                leaf u (.a(p[3:0]), .b(q[7:4]), .y(n));
            endmodule";
        let design = parse_source(src).unwrap();
        let cache = ModuleElabCache::default();
        let (nl, report) = elaborate_incremental(&design, "top", &cache).unwrap();
        let flat = GraphIr::from_netlist(&nl);
        let stitched = GraphIr::from_netlist_stitched(&nl, &report);
        assert_eq!(flat, stitched.graph);
        // Three top-level parts, in cell order.
        assert_eq!(stitched.parts, vec!["m8", "m4", "u"]);
        assert_eq!(stitched.part_of.len(), stitched.graph.vertex_count());
        assert_eq!(stitched.cell_of.len(), stitched.graph.vertex_count());
        // Every non-port vertex maps back to its originating cell.
        for (i, c) in stitched.cell_of.iter().enumerate() {
            if let Some(cid) = c {
                assert_eq!(nl.cell(*cid).name, stitched.graph.vertex(VertexId(i as u32)).name);
            }
        }
        // Vertices in m8's cell range are exactly the part-0 vertices.
        let m8 = report.records.iter().find(|r| r.path == "m8").unwrap();
        let in_range = stitched.vertices_in_cell_ranges(&[(m8.cell_start, m8.cell_end)]);
        for (i, part) in stitched.part_of.iter().enumerate() {
            let vid = VertexId(i as u32);
            assert_eq!(*part == Some(0), in_range.contains(&vid));
        }
    }

    #[test]
    fn stitched_with_empty_report_is_one_top_part() {
        let nl = parse_and_elaborate(
            "module m (input [7:0] a, output [7:0] y); assign y = ~a; endmodule",
            "m",
        )
        .unwrap();
        let stitched =
            GraphIr::from_netlist_stitched(&nl, &sns_netlist::ElabReport::default());
        assert_eq!(stitched.graph, GraphIr::from_netlist(&nl));
        assert!(stitched.parts.is_empty());
        assert!(stitched.part_of.iter().all(Option::is_none));
    }

    #[test]
    fn empty_netlist_yields_empty_graph() {
        let nl = Netlist::new("empty");
        let g = GraphIr::from_netlist(&nl);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.terminals().is_empty());
    }
}
