//! The conformance suite: ≥200 seeded random designs through all four
//! differential oracles, corpus replay, generation determinism, and
//! monotone synthesis families.
//!
//! A failing design is shrunk to a few lines and persisted under
//! `tests/corpus/pending/` before the test panics, so the reproducer
//! survives the failing CI run.

use std::sync::{Arc, OnceLock};

use sns_conformance::corpus;
use sns_conformance::generator::{generate, DesignSpec, GenConfig};
use sns_conformance::oracle::{
    check_sim_vs_gates, check_vsynth_invariants, PredictorHarness, ServeHarness,
};
use sns_conformance::shrink::shrink;
use sns_netlist::parse_and_elaborate;
use sns_rt::pool::par_map;
use sns_vsynth::{SynthOptions, VirtualSynthesizer};

/// Designs the smoke test sweeps (tier-1 acceptance floor: 200).
const SMOKE_DESIGNS: u64 = 200;
/// Every how-many designs the (expensive) model-level oracles run.
const MODEL_STRIDE: u64 = 10;
/// Stimulus cycles per design: enough to move every register and memory.
const SIM_CYCLES: usize = 5;
const STIM_SEED_SALT: u64 = 0x5EED_5717;

/// One tiny model shared by every test in this binary (training dominates
/// runtime). Tests must leave its cache unbounded and may clear it.
fn harness() -> &'static PredictorHarness {
    static HARNESS: OnceLock<PredictorHarness> = OnceLock::new();
    HARNESS.get_or_init(PredictorHarness::train)
}

/// Shrinks `spec` against `oracle`, persists the minimized reproducer,
/// and panics with a pointer to it.
fn fail_with_repro(
    spec: &DesignSpec,
    label: &str,
    detail: &str,
    oracle: &mut dyn FnMut(&DesignSpec) -> bool,
) -> ! {
    let min = shrink(spec, oracle, 600);
    let hint = match corpus::write_pending(&min, label) {
        Ok(path) => format!("minimized reproducer written to {}", path.display()),
        Err(e) => format!("could not persist reproducer ({e}); minimized source:\n{}", min.verilog()),
    };
    panic!("conformance failure [{label}]: {detail}\n{hint}");
}

#[test]
fn smoke_all_oracles_over_200_seeded_designs() {
    let cfg = GenConfig::default();
    let harness = harness();
    let serve = ServeHarness::start(Arc::clone(harness.model()), None).unwrap();
    for seed in 1..=SMOKE_DESIGNS {
        let spec = generate(seed, &cfg);
        let stim_seed = seed ^ STIM_SEED_SALT;
        if let Err(e) = check_sim_vs_gates(&spec, stim_seed, SIM_CYCLES) {
            fail_with_repro(&spec, &format!("sim_vs_gates_{seed}"), &e, &mut |s| {
                check_sim_vs_gates(s, stim_seed, SIM_CYCLES).is_err()
            });
        }
        if let Err(e) = check_vsynth_invariants(&spec) {
            fail_with_repro(&spec, &format!("vsynth_invariants_{seed}"), &e, &mut |s| {
                check_vsynth_invariants(s).is_err()
            });
        }
        // The model-level oracles cost several full predictions each, so
        // they sample the stream instead of running on every design.
        if seed % MODEL_STRIDE == 0 {
            if let Err(e) = harness.check(&spec) {
                fail_with_repro(&spec, &format!("predictor_determinism_{seed}"), &e, &mut |s| {
                    harness.check(s).is_err()
                });
            }
            if let Err(e) = serve.check(&spec) {
                fail_with_repro(&spec, &format!("serve_identity_{seed}"), &e, &mut |s| {
                    serve.check(s).is_err()
                });
            }
        }
    }
    serve.shutdown();
}

#[test]
fn generation_is_identical_on_any_thread_count() {
    let cfg = GenConfig::default();
    let seeds: Vec<u64> = (1..=64).collect();
    let serial: Vec<String> = seeds.iter().map(|&s| generate(s, &cfg).verilog()).collect();
    for threads in [2, 8] {
        let parallel = par_map(&seeds, threads, |&s| generate(s, &cfg).verilog());
        assert_eq!(serial, parallel, "generation diverged at {threads} threads");
    }
}

#[test]
fn corpus_cases_replay_bit_identically() {
    let dir = corpus::corpus_dir();
    if corpus::blessing() {
        // SNS_BLESS=1: (re-)pin every sidecar to current behavior. New
        // cases without a sidecar get the default stimulus parameters.
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|s| s.to_str()) == Some("v"))
            .collect();
        files.sort();
        let blessed = files.len();
        for vpath in files {
            let (top, stim_seed, cycles) = match corpus::load_case(&vpath) {
                Ok(c) => (c.top, c.stim_seed, c.cycles),
                Err(_) => ("top".to_string(), corpus::DEFAULT_STIM_SEED, corpus::DEFAULT_CYCLES),
            };
            corpus::bless(&vpath, &top, stim_seed, cycles).unwrap();
        }
        eprintln!("blessed {blessed} corpus sidecars");
        return;
    }
    let cases = corpus::load_corpus(&dir).unwrap();
    assert!(
        cases.len() >= 5,
        "the corpus should hold the checked-in regression cases, found {}",
        cases.len()
    );
    for case in &cases {
        corpus::replay(case).unwrap();
    }
}

#[test]
fn synthesis_labels_grow_monotonically_with_width() {
    // Dedicated families with the sizing loop pinned off: the sizing
    // iterations trade area for timing nonmonotonically by design, but
    // at zero iterations a wider datapath must never get cheaper.
    let options = || SynthOptions { sizing_iterations: 0, ..SynthOptions::default() };
    let families: &[(&str, fn(u32) -> String)] = &[
        ("adder", |w| {
            format!(
                "module top (input [{0}:0] a, b, output [{1}:0] y); assign y = a + b; endmodule",
                w - 1,
                w
            )
        }),
        ("multiplier", |w| {
            format!(
                "module top (input [{0}:0] a, b, output [{1}:0] y); assign y = a * b; endmodule",
                w - 1,
                2 * w - 1
            )
        }),
        ("comparator", |w| {
            format!(
                "module top (input [{0}:0] a, b, output y); assign y = a < b; endmodule",
                w - 1
            )
        }),
        ("accumulator", |w| {
            format!(
                "module top (input clk, input [{0}:0] a, output [{0}:0] y);\n\
                     reg [{0}:0] acc;\n\
                     always @(posedge clk) acc <= acc + a;\n\
                     assign y = acc;\n\
                 endmodule",
                w - 1
            )
        }),
    ];
    for (name, src) in families {
        let mut prev: Option<(f64, u64)> = None;
        for w in [4u32, 8, 12, 16] {
            let nl = parse_and_elaborate(&src(w), "top").unwrap();
            let r = VirtualSynthesizer::new(options()).synthesize(&nl);
            if let Some((area, gates)) = prev {
                assert!(
                    r.area_um2 >= area,
                    "{name}: area shrank when widening to {w} bits ({area} -> {})",
                    r.area_um2
                );
                assert!(
                    r.gate_count >= gates,
                    "{name}: gate count shrank when widening to {w} bits ({gates} -> {})",
                    r.gate_count
                );
            }
            prev = Some((r.area_um2, r.gate_count));
        }
    }
}

#[test]
fn random_designs_never_shrink_under_widening() {
    // The generator's own widening transform, gate-count only (the default
    // sizing loop runs here, which is exactly what the soak exercises).
    let cfg = GenConfig::default();
    for seed in 300..320 {
        let spec = generate(seed, &cfg);
        let count = |s: &DesignSpec| {
            let nl = parse_and_elaborate(&s.verilog(), s.top()).unwrap();
            let gl = VirtualSynthesizer::new(SynthOptions::default()).elaborate_gates(&nl);
            gl.graph.len()
        };
        let base = count(&spec);
        let wide = count(&spec.widened());
        assert!(
            wide >= base,
            "seed {seed}: widening shrank the gate graph ({base} -> {wide})"
        );
    }
}

#[test]
fn serve_metrics_reconcile_under_cache_pressure() {
    // A deliberately tiny cache so predictions evict each other; the
    // /metrics counters must reconcile exactly: every cached entry is a
    // miss that has not been evicted. Trains its own model — the shared
    // harness model's cache is being exercised concurrently by the smoke
    // test, which would make the counter assertions racy.
    let cfg = GenConfig::default();
    let own = PredictorHarness::train();
    let model = Arc::clone(own.model());
    let cap = 16usize;
    let serve = ServeHarness::start(Arc::clone(&model), Some(cap)).unwrap();

    let check = |tag: &str| {
        let m = serve.metrics().unwrap();
        let cache = m.get("cache").unwrap();
        let entries = cache.get("entries").and_then(|v| v.as_u64()).unwrap();
        let capacity = cache.get("capacity").and_then(|v| v.as_u64()).unwrap();
        let hits = cache.get("hits").and_then(|v| v.as_u64()).unwrap();
        let misses = cache.get("misses").and_then(|v| v.as_u64()).unwrap();
        let evictions = cache.get("evictions").and_then(|v| v.as_u64()).unwrap();
        let hit_rate = cache.get("hit_rate").and_then(|v| v.as_f64()).unwrap();
        assert_eq!(capacity, cap as u64, "{tag}");
        assert!(entries <= cap as u64, "{tag}: {entries} entries over capacity {cap}");
        assert_eq!(
            entries,
            misses - evictions,
            "{tag}: entries must equal misses - evictions (hits={hits} misses={misses})"
        );
        assert!((0.0..=1.0).contains(&hit_rate), "{tag}: hit_rate {hit_rate}");
        (hits, misses, evictions)
    };

    // Counters are lifetime, and training itself fills the cache through
    // the counted paths — so assert deltas from a baseline, not zeros.
    let (h0, m0, e0) = check("baseline");
    // Distinct designs force misses and (cumulatively) evictions ...
    for seed in [901u64, 902, 903] {
        let spec = generate(seed, &cfg);
        serve.check(&spec).unwrap();
    }
    let (_, m1, _) = check("after distinct designs");
    assert!(m1 > m0, "distinct designs must miss");
    // ... and an immediate repeat of the last design hits what it just
    // filled (FIFO eviction: its own sequences are the newest entries).
    let spec = generate(903, &cfg);
    serve.check(&spec).unwrap();
    let (h2, _, e2) = check("after repeat");
    assert!(h2 > h0, "an immediate repeat must hit the cache");
    assert!(e2 > e0, "distinct designs through a {cap}-entry cache must evict");

    serve.shutdown();
}
